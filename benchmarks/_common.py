"""Shared helpers for the benchmark harness.

Each ``bench_figureN.py`` regenerates one figure of the paper: it runs
the sweep (timed by pytest-benchmark), prints the paper-style table,
gains and ASCII plot, and asserts the paper's qualitative shape.

Knobs (environment variables):

``REPRO_BENCH_SIM_TIME``
    Simulated horizon per run (default 20000; the paper used ~1e5 --
    see EXPERIMENTS.md).  Larger = tighter agreement, longer wall time.
``REPRO_BENCH_SEEDS``
    Comma-separated seeds (default "0,1").
``REPRO_BENCH_TSWITCH``
    Comma-separated T_switch sweep (default "100,1000,10000").
``REPRO_BENCH_WORKERS``
    Process-pool width over (point, seed) tasks (default 0 = serial).
``REPRO_BENCH_NO_CACHE``
    Set to any non-empty value to bypass the content-addressed trace
    cache (default: cache enabled; the disk tier follows
    ``REPRO_TRACE_CACHE_DIR``).
"""

from __future__ import annotations

import os

from repro.experiments import figure_report, run_figure, validate_figure
from repro.experiments.runner import SweepResult


def bench_sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000"))


def bench_seeds() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "0,1")
    return tuple(int(s) for s in raw.split(","))


def bench_t_switch() -> tuple[float, ...]:
    raw = os.environ.get("REPRO_BENCH_TSWITCH", "100,1000,10000")
    return tuple(float(s) for s in raw.split(","))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def bench_use_cache() -> bool:
    return not os.environ.get("REPRO_BENCH_NO_CACHE", "")


def run_figure_bench(figure: int, benchmark) -> SweepResult:
    """Body shared by the six figure benchmarks."""
    result = benchmark.pedantic(
        run_figure,
        kwargs=dict(
            figure=figure,
            sim_time=bench_sim_time(),
            seeds=bench_seeds(),
            t_switch_values=bench_t_switch(),
            workers=bench_workers(),
            use_cache=bench_use_cache(),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure_report(result, figure=figure))
    report = validate_figure(result, spread_tolerance=0.5)
    print()
    print(report)
    assert report.ok, f"figure {figure} lost the paper's shape:\n{report}"
    # record headline numbers in the benchmark JSON
    last = result.points[-1]
    benchmark.extra_info["t_switch_max"] = last.t_switch
    for name in result.protocols():
        benchmark.extra_info[f"n_total_{name}"] = last.mean_total(name)
    return result
