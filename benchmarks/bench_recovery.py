"""Recovery evaluation: the paper's stated future work (Section 6).

"Future work is focused on the evaluation of the recovery time and of
the amount of undone computation due to a failure."

For every protocol we inject a crash of each host at the end of a shared
workload and measure:

* undone computation (events rolled back, summed over hosts),
* worst per-host rollback time,
* propagation iterations (domino indicator).

Expected shape: the CIC protocols bound the rollback; uncoordinated
checkpointing undoes far more work and needs multi-pass propagation.
"""

import os

from repro.core.consistency import annotate_replay
from repro.core.recovery import minimal_rollback, protocol_line_rollback
from repro.protocols import (
    BCSProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)
from repro.workload import WorkloadConfig, generate_trace


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 4


PROTOCOLS = {
    "TP": lambda n, m: TwoPhaseProtocol(n, m),
    "BCS": lambda n, m: BCSProtocol(n, m),
    "QBC": lambda n, m: QBCProtocol(n, m),
    "UNC": lambda n, m: UncoordinatedProtocol(n, m, period=500.0),
}


def _run():
    cfg = WorkloadConfig(
        p_send=0.4, p_switch=0.8, t_switch=500.0, sim_time=_sim_time(), seed=1
    )
    trace = generate_trace(cfg)
    rows = {}
    for name, factory in PROTOCOLS.items():
        protocol = factory(cfg.n_hosts, cfg.n_mss)
        run = annotate_replay(trace, protocol)
        undone = []
        rb_time = []
        iters = []
        for failed in range(cfg.n_hosts):
            if name == "UNC":
                outcome = minimal_rollback(run, failed, end_time=trace.sim_time)
            else:
                outcome = protocol_line_rollback(
                    run, protocol, failed, end_time=trace.sim_time
                )
            undone.append(outcome.total_undone_events)
            rb_time.append(outcome.max_rollback_time)
            iters.append(outcome.iterations)
        rows[name] = dict(
            mean_undone=sum(undone) / len(undone),
            worst_rollback_time=max(rb_time),
            max_iterations=max(iters),
        )
    return rows


def test_recovery_cost_per_protocol(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        f"{'protocol':>9} {'mean undone events':>19} "
        f"{'worst rollback time':>20} {'max iters':>10}"
    )
    for name, row in rows.items():
        print(
            f"{name:>9} {row['mean_undone']:>19.1f} "
            f"{row['worst_rollback_time']:>20.1f} {row['max_iterations']:>10}"
        )
        benchmark.extra_info[f"undone_{name}"] = row["mean_undone"]

    # CIC protocols bound the rollback far below uncoordinated.
    for name in ("BCS", "QBC", "TP"):
        assert rows[name]["mean_undone"] < rows["UNC"]["mean_undone"]


def _run_latency():
    from repro.core.recovery_online import plan_recovery
    from repro.engine import RunSpec, execute

    cfg = WorkloadConfig(
        p_send=0.4, p_switch=0.8, t_switch=500.0, sim_time=_sim_time(), seed=1
    )
    result = execute(
        RunSpec(protocols=("BCS", "QBC"), workload=cfg, engine="online")
    )
    rows = {}
    for outcome in result.outcomes:
        times, ctrl, fetches = [], 0, 0
        for failed in range(cfg.n_hosts):
            plan = plan_recovery(
                outcome.online.system, outcome.protocol, failed
            )
            times.append(plan.recovery_time)
            ctrl += plan.control_messages + plan.line_computation_messages
            fetches += plan.checkpoint_fetches
        rows[outcome.name] = dict(
            worst_recovery_time=max(times),
            control_messages=ctrl / cfg.n_hosts,
            fetches=fetches / cfg.n_hosts,
        )
    return rows, cfg.leg_latency


def test_recovery_time_wired_side(benchmark):
    """The paper's index-based selling point, measured: executing a
    rollback costs a handful of network legs because the recovery line
    is computed from the MSS-side stored indices -- no wireless search."""
    rows, leg = benchmark.pedantic(_run_latency, rounds=1, iterations=1)
    print()
    print(
        f"{'protocol':>9} {'worst recovery time':>20} "
        f"{'ctrl msgs/failure':>18} {'fetches/failure':>16}"
    )
    for name, row in rows.items():
        print(
            f"{name:>9} {row['worst_recovery_time']:>20.3f} "
            f"{row['control_messages']:>18.1f} {row['fetches']:>16.1f}"
        )
        benchmark.extra_info[f"rec_time_{name}"] = row["worst_recovery_time"]
        assert row["worst_recovery_time"] <= 7 * leg + 1e-12
