"""Ablation: design-space variants around the paper's protocols.

Three questions DESIGN.md calls out:

* **BQF autonomous period** -- the paper's QBC never checkpoints
  spontaneously; its wired ancestor BQF adds timer-driven basic
  checkpoints.  How much does an autonomous period cost in a mobile
  setting?  (period = inf degenerates to QBC exactly.)
* **Mobility model** -- the paper's uniform cell choice vs a random walk
  on a cell-adjacency cycle: does the protocol ordering survive a
  geographic mobility model?
* **Blocking receive** -- the paper under-specifies the receive
  operation; non-blocking (our default) vs blocking semantics.
"""

import os

from repro.core.replay import replay
from repro.protocols import BCSProtocol, BQFProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig, generate_trace


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 4


def _base(seed=0, **kw):
    defaults = dict(
        p_send=0.4, p_switch=0.8, t_switch=1000.0, sim_time=_sim_time(), seed=seed
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_bqf_period_ablation(benchmark):
    def run():
        cfg = _base()
        trace = generate_trace(cfg)
        rows = {}
        qbc = replay(trace, QBCProtocol(cfg.n_hosts, cfg.n_mss)).n_total
        rows["QBC"] = qbc
        for period in (float("inf"), 2000.0, 500.0, 100.0):
            n = replay(
                trace, BQFProtocol(cfg.n_hosts, cfg.n_mss, period=period)
            ).n_total
            rows[f"BQF(period={period:g})"] = n
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, n in rows.items():
        print(f"{name:>22}: N_tot={n}")
        benchmark.extra_info[name] = n
    assert rows["BQF(period=inf)"] == rows["QBC"]  # exact degeneration
    assert rows["BQF(period=100)"] > rows["BQF(period=2000)"]


def test_mobility_model_ablation(benchmark):
    def run():
        rows = {}
        for chooser in ("uniform", "graph"):
            cfg = _base(cell_chooser=chooser)
            trace = generate_trace(cfg)
            rows[chooser] = {
                cls.name: replay(trace, cls(cfg.n_hosts, cfg.n_mss)).n_total
                for cls in (TwoPhaseProtocol, BCSProtocol, QBCProtocol)
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for chooser, counts in rows.items():
        print(f"{chooser:>8}: " + " ".join(f"{k}={v}" for k, v in counts.items()))
        # the paper's ordering holds under both mobility models
        assert counts["QBC"] <= counts["BCS"] < counts["TP"]
        for name, n in counts.items():
            benchmark.extra_info[f"{chooser}_{name}"] = n


def test_destination_sampling_ablation(benchmark):
    """The buffered-flood effect: sending to disconnected hosts (their
    traffic buffers at the MSS and floods them at reconnection with
    ascending indices) erodes QBC's edge over BCS in disconnection-heavy
    heterogeneous regimes.  The paper's figures match the connected-only
    reading; this ablation keeps the other reading measurable."""

    def run():
        rows = {}
        for connected_only in (True, False):
            bcs = qbc = 0
            for seed in (0, 1):
                cfg = _base(
                    seed=seed,
                    t_switch=500.0,
                    heterogeneity=0.5,
                    send_to_connected_only=connected_only,
                )
                trace = generate_trace(cfg)
                bcs += replay(trace, BCSProtocol(cfg.n_hosts, cfg.n_mss)).n_total
                qbc += replay(trace, QBCProtocol(cfg.n_hosts, cfg.n_mss)).n_total
            rows[connected_only] = (bcs, qbc)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for connected_only, (bcs, qbc) in rows.items():
        label = "connected-only" if connected_only else "buffered-flood"
        gain = 100 * (bcs - qbc) / bcs
        print(f"{label:>15}: BCS={bcs} QBC={qbc} QBC-gain={gain:+.1f}%")
        benchmark.extra_info[f"gain_{label}"] = gain
    gain_conn = (rows[True][0] - rows[True][1]) / rows[True][0]
    gain_buf = (rows[False][0] - rows[False][1]) / rows[False][0]
    # the flood measurably erodes the gain
    assert gain_conn > gain_buf


def test_blocking_receive_ablation(benchmark):
    def run():
        rows = {}
        for blocking in (False, True):
            cfg = _base(block_on_empty_receive=blocking, p_send=0.5)
            trace = generate_trace(cfg)
            rows[blocking] = {
                cls.name: replay(trace, cls(cfg.n_hosts, cfg.n_mss)).n_total
                for cls in (TwoPhaseProtocol, BCSProtocol, QBCProtocol)
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for blocking, counts in rows.items():
        label = "blocking" if blocking else "non-blocking"
        print(f"{label:>13}: " + " ".join(f"{k}={v}" for k, v in counts.items()))
        assert counts["QBC"] <= counts["BCS"] < counts["TP"]
