"""Ablation: design-space variants around the paper's protocols.

Three questions DESIGN.md calls out:

* **BQF autonomous period** -- the paper's QBC never checkpoints
  spontaneously; its wired ancestor BQF adds timer-driven basic
  checkpoints.  How much does an autonomous period cost in a mobile
  setting?  (period = inf degenerates to QBC exactly.)
* **Mobility model** -- the paper's uniform cell choice vs a random walk
  on a cell-adjacency cycle: does the protocol ordering survive a
  geographic mobility model?
* **Blocking receive** -- the paper under-specifies the receive
  operation; non-blocking (our default) vs blocking semantics.

All variants run through the fused engine
(:func:`repro.engine.execute`); the BQF periods ride along as factory
overrides in a single shared-trace pass.
"""

import os

from repro.engine import RunSpec, execute
from repro.protocols import BQFProtocol
from repro.workload import WorkloadConfig, generate_trace


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 4


def _base(seed=0, **kw):
    defaults = dict(
        p_send=0.4, p_switch=0.8, t_switch=1000.0, sim_time=_sim_time(), seed=seed
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def _totals(cfg, names, factories=None):
    """{protocol: N_tot} from one fused engine pass over cfg's trace."""
    result = execute(
        RunSpec(
            protocols=tuple(names),
            workload=cfg,
            engine="fused",
            factories=factories,
        )
    )
    return {o.name: o.n_total for o in result.outcomes}


def test_bqf_period_ablation(benchmark):
    def run():
        cfg = _base()
        trace = generate_trace(cfg)

        def bqf_factory(period):
            return lambda n_hosts, n_mss: BQFProtocol(
                n_hosts, n_mss, period=period
            )

        factories = {
            f"BQF(period={period:g})": bqf_factory(period)
            for period in (float("inf"), 2000.0, 500.0, 100.0)
        }
        result = execute(
            RunSpec(
                protocols=("QBC", *factories),
                trace=trace,
                engine="fused",
                factories=factories,
            )
        )
        return {o.name: o.n_total for o in result.outcomes}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, n in rows.items():
        print(f"{name:>22}: N_tot={n}")
        benchmark.extra_info[name] = n
    assert rows["BQF(period=inf)"] == rows["QBC"]  # exact degeneration
    assert rows["BQF(period=100)"] > rows["BQF(period=2000)"]


def test_mobility_model_ablation(benchmark):
    def run():
        return {
            chooser: _totals(_base(cell_chooser=chooser), ("TP", "BCS", "QBC"))
            for chooser in ("uniform", "graph")
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for chooser, counts in rows.items():
        print(f"{chooser:>8}: " + " ".join(f"{k}={v}" for k, v in counts.items()))
        # the paper's ordering holds under both mobility models
        assert counts["QBC"] <= counts["BCS"] < counts["TP"]
        for name, n in counts.items():
            benchmark.extra_info[f"{chooser}_{name}"] = n


def test_destination_sampling_ablation(benchmark):
    """The buffered-flood effect: sending to disconnected hosts (their
    traffic buffers at the MSS and floods them at reconnection with
    ascending indices) erodes QBC's edge over BCS in disconnection-heavy
    heterogeneous regimes.  The paper's figures match the connected-only
    reading; this ablation keeps the other reading measurable."""

    def run():
        rows = {}
        for connected_only in (True, False):
            bcs = qbc = 0
            for seed in (0, 1):
                cfg = _base(
                    seed=seed,
                    t_switch=500.0,
                    heterogeneity=0.5,
                    send_to_connected_only=connected_only,
                )
                counts = _totals(cfg, ("BCS", "QBC"))
                bcs += counts["BCS"]
                qbc += counts["QBC"]
            rows[connected_only] = (bcs, qbc)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for connected_only, (bcs, qbc) in rows.items():
        label = "connected-only" if connected_only else "buffered-flood"
        gain = 100 * (bcs - qbc) / bcs
        print(f"{label:>15}: BCS={bcs} QBC={qbc} QBC-gain={gain:+.1f}%")
        benchmark.extra_info[f"gain_{label}"] = gain
    gain_conn = (rows[True][0] - rows[True][1]) / rows[True][0]
    gain_buf = (rows[False][0] - rows[False][1]) / rows[False][0]
    # the flood measurably erodes the gain
    assert gain_conn > gain_buf


def test_blocking_receive_ablation(benchmark):
    def run():
        return {
            blocking: _totals(
                _base(block_on_empty_receive=blocking, p_send=0.5),
                ("TP", "BCS", "QBC"),
            )
            for blocking in (False, True)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for blocking, counts in rows.items():
        label = "blocking" if blocking else "non-blocking"
        print(f"{label:>13}: " + " ".join(f"{k}={v}" for k, v in counts.items()))
        assert counts["QBC"] <= counts["BCS"] < counts["TP"]
