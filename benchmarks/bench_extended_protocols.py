"""Extension bench: the full index-based design space.

Beyond the paper: the no-send skip rule (checkpoint renaming, cf. the
Helary et al. CIC family and the equivalence formalisation of the
paper's refs [6, 14]) composes with QBC's basic-side replacement.  This
bench sweeps the four index protocols (BCS, QBC, BCS-NS, QBC-NS) over
two regimes and reports N_tot plus the renames (metadata-only MSS
updates) that replaced forced checkpoints.
"""

import os

from repro.engine import RunSpec, execute
from repro.workload import WorkloadConfig

PROTOCOLS = ("BCS", "QBC", "BCS-NS", "QBC-NS")


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 2


REGIMES = {
    "homogeneous": dict(t_switch=1000.0, p_switch=0.8, heterogeneity=0.0),
    "heterogeneous": dict(t_switch=1000.0, p_switch=0.8, heterogeneity=0.3),
}


def _run():
    out = {}
    for regime, params in REGIMES.items():
        rows = {}
        for seed in (0, 1):
            cfg = WorkloadConfig(
                p_send=0.4, sim_time=_sim_time(), seed=seed, **params
            )
            result = execute(
                RunSpec(protocols=PROTOCOLS, workload=cfg, engine="fused")
            )
            for o in result.outcomes:
                entry = rows.setdefault(o.name, {"n_total": 0, "renamed": 0})
                entry["n_total"] += o.n_total
                entry["renamed"] += o.protocol.n_renamed
        out[regime] = rows
    return out


def test_extended_protocol_family(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    for regime, rows in results.items():
        print(f"-- {regime}")
        print(f"{'protocol':>9} {'N_tot':>8} {'renames':>8}")
        for name, row in rows.items():
            print(f"{name:>9} {row['n_total']:>8} {row['renamed']:>8}")
            benchmark.extra_info[f"{regime}_{name}"] = row["n_total"]
        # shape: each refinement is at least as frugal, on aggregate
        assert rows["BCS-NS"]["n_total"] <= rows["BCS"]["n_total"]
        assert rows["QBC-NS"]["n_total"] <= rows["QBC"]["n_total"]
        assert rows["QBC-NS"]["n_total"] <= rows["BCS-NS"]["n_total"]
        assert rows["BCS-NS"]["renamed"] > 0
