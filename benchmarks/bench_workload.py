"""Workload-layer benchmarks: streaming-compile memory and throughput.

The streaming trace compiler (:mod:`repro.core.streamed`) exists so
compilation does not require the whole event list in memory; this bench
*gates* that claim.  Both pipelines consume the same synthetic
1M-event schedule:

* **materialized** -- build the full ``TraceEvent`` list, then
  ``compile_trace`` it (the classic path: peak = event objects + the
  compiled python-list columns);
* **streaming** -- feed events one at a time into a
  :class:`~repro.core.streamed.StreamingCompiler` (peak = one staging
  block + the numpy slabs, 56 bytes/event).

Peaks are measured with ``tracemalloc`` (numpy allocations register
with it), and the gate requires the streaming peak under 25% of the
materialized one.  Headline numbers land in ``BENCH_workload.json`` so
CI can archive the trend.

``REPRO_BENCH_WORKLOAD_EVENTS`` overrides the event count (default
1_000_000; CI may shrink it -- the gate is a ratio, so it holds at any
size past the staging block).
"""

import json
import os
import tracemalloc

from repro.core.compiled import compile_trace
from repro.core.streamed import StreamingCompiler
from repro.core.trace import EventType, Trace, TraceEvent
from repro.workload.config import WorkloadConfig
from repro.workload.driver import generate_streamed, generate_trace

N_EVENTS = int(os.environ.get("REPRO_BENCH_WORKLOAD_EVENTS", "1000000"))
N_HOSTS = 10
N_MSS = 5

BENCH_JSON = os.environ.get(
    "REPRO_BENCH_WORKLOAD_JSON", "BENCH_workload.json"
)

#: The gate: streaming peak must stay under this fraction of the
#: materialized peak.
PEAK_RATIO_GATE = 0.25


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_workload.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def _synthetic_events(n: int):
    """Deterministic n-event schedule: send/receive pairs + filler.

    Same shape either pipeline sees from the driver, without paying the
    simulator's cost for a million events: every third event is a SEND,
    matched by a RECEIVE two events later, with INTERNAL filler.
    """
    time = 0.0
    msg = 0
    i = 0
    while i < n:
        time += 0.25
        if i % 3 == 0 and i + 2 < n:
            src = i % N_HOSTS
            dst = (i + 1) % N_HOSTS
            yield time, int(EventType.SEND), src, msg, dst, -1
            yield time + 0.1, int(EventType.INTERNAL), dst, -1, -1, -1
            yield time + 0.2, int(EventType.RECEIVE), dst, msg, src, -1
            msg += 1
            i += 3
        else:
            yield time, int(EventType.INTERNAL), i % N_HOSTS, -1, -1, -1
            i += 1


def _materialized_peak(n: int) -> tuple[int, int]:
    """(peak bytes, n_events) of the event-list + compile_trace path."""
    tracemalloc.start()
    try:
        events = [
            TraceEvent(
                time=t, etype=EventType(et), host=h, msg_id=m, peer=p, cell=c
            )
            for t, et, h, m, p, c in _synthetic_events(n)
        ]
        trace = Trace(
            n_hosts=N_HOSTS, n_mss=N_MSS, sim_time=events[-1].time + 1.0,
            events=events,
        )
        compiled = compile_trace(trace)
        _, peak = tracemalloc.get_traced_memory()
        return peak, compiled.n_events
    finally:
        tracemalloc.stop()


def _streaming_peak(n: int) -> tuple[int, int]:
    """(peak bytes, n_events) of the StreamingCompiler path."""
    tracemalloc.start()
    try:
        compiler = StreamingCompiler(
            n_hosts=N_HOSTS, n_mss=N_MSS, sim_time=float(n)
        )
        for t, et, h, m, p, c in _synthetic_events(n):
            compiler.feed(t, et, h, m, p, c)
        streamed = compiler.finish()
        _, peak = tracemalloc.get_traced_memory()
        return peak, streamed.n_events
    finally:
        tracemalloc.stop()


def test_streaming_compile_peak_memory():
    """The tentpole gate: streaming peak < 25% of materialized peak."""
    mat_peak, mat_events = _materialized_peak(N_EVENTS)
    stream_peak, stream_events = _streaming_peak(N_EVENTS)
    assert mat_events == stream_events
    ratio = stream_peak / mat_peak
    _record(
        "streaming_peak",
        {
            "n_events": mat_events,
            "materialized_peak_mb": round(mat_peak / 1e6, 2),
            "streaming_peak_mb": round(stream_peak / 1e6, 2),
            "ratio": round(ratio, 4),
            "gate": PEAK_RATIO_GATE,
        },
    )
    assert ratio < PEAK_RATIO_GATE, (
        f"streaming compile peaked at {stream_peak / 1e6:.1f} MB = "
        f"{ratio:.1%} of the materialized {mat_peak / 1e6:.1f} MB "
        f"(gate: {PEAK_RATIO_GATE:.0%})"
    )


def test_streaming_throughput(benchmark):
    """Events/second through the streaming compiler (no gate)."""
    n = min(N_EVENTS, 200_000)

    def _run():
        compiler = StreamingCompiler(
            n_hosts=N_HOSTS, n_mss=N_MSS, sim_time=float(n)
        )
        for t, et, h, m, p, c in _synthetic_events(n):
            compiler.feed(t, et, h, m, p, c)
        return compiler.finish()

    streamed = benchmark.pedantic(_run, rounds=3, iterations=1)
    rate = streamed.n_events / benchmark.stats.stats.mean
    _record(
        "streaming_throughput",
        {"n_events": streamed.n_events, "events_per_s": round(rate)},
    )
    assert streamed.n_events == n


def test_generate_streamed_matches_and_records():
    """Driver-level identity on a real (small) simulation + bookkeeping."""
    cfg = WorkloadConfig(sim_time=500.0).validate()
    streamed = generate_streamed(cfg)
    compiled = compile_trace(generate_trace(cfg))
    assert streamed.to_compiled() == compiled
    _record(
        "generate_streamed_identity",
        {"sim_time": cfg.sim_time, "n_events": streamed.n_events, "ok": True},
    )
