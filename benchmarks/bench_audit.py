"""Audit-mode overhead benchmark.

The invariant audit re-replays every protocol (reference pass, fused
pass, annotated oracle pass) on top of the sweep's own fused pass, so
it is expected to cost a multiple of the plain sweep -- this bench
measures that multiple and records it in ``BENCH_audit.json`` so the
overhead stays visible as the audit grows more checks.  It also asserts
the grid audits clean: a violation here means a real engine regression,
not a benchmark failure.
"""

import json
import os
import time

from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.obs.audit import run_audit_grid
from repro.workload import WorkloadConfig

BENCH_JSON = os.environ.get("REPRO_BENCH_AUDIT_JSON", "BENCH_audit.json")


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_audit.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best(fn, rounds: int):
    """(best wall seconds, last return value) over *rounds* calls."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_audit_overhead(benchmark, tmp_path):
    """One small grid, audit off vs on, traces served from the cache in
    both cases so the delta is pure audit work."""
    config = SweepConfig(
        base=WorkloadConfig(p_switch=0.8, sim_time=1500.0),
        t_switch_values=(100.0, 1000.0),
        seeds=(0, 1),
        workers=0,
        cache_dir=str(tmp_path),
    )
    run_sweep(config)  # warm the trace cache

    plain_time, plain = _best(lambda: run_sweep(config), rounds=3)
    audit_time, grid = benchmark.pedantic(
        lambda: _best(lambda: run_audit_grid(config), rounds=3),
        rounds=1,
        iterations=1,
    )

    assert grid.ok, f"audit found violations:\n{grid.report()}"
    assert [p.runs for p in grid.sweep.points] == [
        p.runs for p in plain.points
    ]
    assert all(r.n_violations == 0 for r in grid.telemetry)

    overhead = audit_time / plain_time
    payload = {
        "tasks": len(grid.telemetry),
        "plain_ms": round(plain_time * 1e3, 2),
        "audit_ms": round(audit_time * 1e3, 2),
        "overhead_x": round(overhead, 2),
    }
    benchmark.extra_info.update(payload)
    _record("audit_overhead", payload)
    # The audit adds a reference replay, a fused replay and the
    # annotated oracle pass per protocol (~25-30x today); anything
    # beyond ~60x means an accidental quadratic check crept in.
    assert overhead < 60.0, (
        f"audit {overhead:.1f}x slower than the plain sweep "
        f"({audit_time*1e3:.0f}ms vs {plain_time*1e3:.0f}ms)"
    )
