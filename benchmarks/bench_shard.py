"""Sharded dispatch overhead benchmark.

The sharded service adds framing, lease bookkeeping and heartbeat
traffic on every (point, seed) cell; its *per-cell* dispatch price must
stay within 10% of the in-process pool's on a warm cache.  Two fairness
rules keep the comparison honest:

* Spawning worker processes is a fixed per-sweep cost on either path,
  so the per-cell price is measured as a slope: time a small and a
  large grid, difference out the fixed part, divide by the extra
  cells.
* Worker lifecycle must match.  The sharded service spawns fresh
  workers per sweep, whose first touch of each trace is a disk-tier
  cache load; a persistent pool would instead serve repeat rounds from
  its in-memory trace cache (~10x cheaper per cell) and the gate would
  be comparing cache tiers, not dispatch layers.  The pooled baseline
  therefore shuts its pool down between rounds so both sides replay
  every cell from the warm *disk* tier.

Headline numbers are appended to ``BENCH_shard.json`` (same
merge-don't-clobber idiom as ``BENCH_resilience.json``) so CI can
archive the trend.
"""

import json
import os
import time

from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep, shutdown_pool
from repro.workload import WorkloadConfig

BENCH_JSON = os.environ.get("REPRO_BENCH_SHARD_JSON", "BENCH_shard.json")

SMALL = (100.0, 500.0)
LARGE = (100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0)
SEEDS = (0, 1)


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_shard.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best(fn, rounds: int):
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _config(tmp_path, t_switch_values, **overrides):
    kw = dict(
        base=WorkloadConfig(sim_time=1500.0),
        t_switch_values=t_switch_values,
        seeds=SEEDS,
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )
    return SweepConfig(**kw).validate()


def test_sharded_dispatch_overhead(benchmark, tmp_path):
    """Per-cell sharded dispatch must stay within 10% of the
    in-process pool (plus a small absolute allowance for the frame +
    lease round trip, which is fixed per cell, not proportional)."""
    # Warm the on-disk trace cache so every path replays only.
    run_sweep(_config(tmp_path, LARGE, workers=2))

    def slope(run_small, run_large, rounds=3):
        t_small, _ = _best(run_small, rounds)
        t_large, result = _best(run_large, rounds)
        cells = (len(LARGE) - len(SMALL)) * len(SEEDS)
        return (t_large - t_small) / cells, result

    def pooled(values):
        # Fresh pool per round: match the sharded worker lifecycle so
        # both sides pay the same disk-tier cache load per cell.
        shutdown_pool()
        return run_sweep(_config(tmp_path, values, workers=2))

    pooled_pc, pooled_result = slope(
        lambda: pooled(SMALL),
        lambda: pooled(LARGE),
    )
    shutdown_pool()

    def sharded(values):
        return run_sweep(
            _config(
                tmp_path,
                values,
                shards=2,
                shard_heartbeat_s=0.5,
                shard_lease_timeout_s=5.0,
            )
        )

    (sharded_pc, sharded_result), _ = (
        benchmark.pedantic(
            lambda: slope(
                lambda: sharded(SMALL), lambda: sharded(LARGE)
            ),
            rounds=1,
            iterations=1,
        ),
        None,
    )
    assert pooled_result.complete and sharded_result.complete

    overhead = sharded_pc / pooled_pc - 1.0 if pooled_pc > 0 else 0.0
    payload = {
        "pooled_per_cell_ms": round(pooled_pc * 1e3, 3),
        "sharded_per_cell_ms": round(sharded_pc * 1e3, 3),
        "overhead_pct": round(100 * overhead, 1),
    }
    benchmark.extra_info.update(payload)
    _record("sharded_dispatch_overhead", payload)
    # Gate: within 10%, or within 5ms/cell absolute -- on a warm cache
    # the cells are so cheap that scheduler jitter alone can exceed
    # 10% of them.
    assert overhead < 0.10 or (sharded_pc - pooled_pc) < 0.005, (
        f"sharded dispatch adds {100 * overhead:.1f}%/cell "
        f"({sharded_pc * 1e3:.2f}ms vs {pooled_pc * 1e3:.2f}ms pooled)"
    )
