"""Ablation: non-negligible checkpoint time (paper Section 5.1).

The paper: "we simulated situations in which the time for taking a
checkpoint is non negligible and we did not found a remarkable impact on
the number of taken checkpoints."  This bench reproduces that check by
running BCS and QBC online with checkpoint latencies of 0, 0.1 and 1.0
time units (10x-100x the 0.01 message leg) and comparing N_tot.
"""

import os

from repro.engine import RunSpec, execute
from repro.workload import WorkloadConfig


def _config(seed: int) -> WorkloadConfig:
    return WorkloadConfig(
        p_send=0.4,
        p_switch=0.8,
        t_switch=1000.0,
        sim_time=float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 2,
        seed=seed,
    )


LATENCIES = (0.0, 0.1, 1.0)


def _run_all() -> dict[str, dict[float, int]]:
    out: dict[str, dict[float, int]] = {"BCS": {}, "QBC": {}}
    for lat in LATENCIES:
        result = execute(
            RunSpec(
                protocols=("BCS", "QBC"),
                workload=_config(seed=0),
                engine="online",
                ckpt_latency=lat,
            )
        )
        for outcome in result.outcomes:
            out[outcome.name][lat] = outcome.metrics.n_total
    return out


def test_checkpoint_latency_has_no_remarkable_impact(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(f"{'protocol':>9} " + " ".join(f"lat={l:>5}" for l in LATENCIES))
    for name, per_latency in results.items():
        print(f"{name:>9} " + " ".join(f"{per_latency[l]:>9}" for l in LATENCIES))
        baseline = per_latency[0.0]
        for lat, n in per_latency.items():
            benchmark.extra_info[f"{name}_lat{lat}"] = n
            # "no remarkable impact": within 15% of the instantaneous run
            assert abs(n - baseline) <= 0.15 * baseline, (
                f"{name}: latency {lat} changed N_tot {baseline} -> {n}"
            )
