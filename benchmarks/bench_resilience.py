"""Resilience-layer overhead benchmarks.

The supervision wrapper (per-task deadline plumbing, retry accounting,
error taxonomy) and the fsynced sweep journal both sit on the hot path
of every (point, seed) task, so their cost must stay a small fraction
of the task itself.  Two cases:

* ``supervision_overhead`` -- identical serial sweep with and without
  the journal disabled vs the plain pre-resilience path is not
  reconstructable, so we measure the supervised sweep against the raw
  per-task body (``_evaluate_task``) summed over the same grid; the
  delta is everything the supervisor adds.
* ``journal_overhead`` -- the same sweep with and without an fsynced
  journal; the delta is the ledger's price per task.

Headline numbers are appended to ``BENCH_resilience.json`` (same
merge-don't-clobber idiom as ``BENCH_engine.json``) so CI can archive
the trend.
"""

import json
import os
import time

from repro.experiments.config import SweepConfig
from repro.experiments.runner import _evaluate_task, run_sweep
from repro.workload import WorkloadConfig

BENCH_JSON = os.environ.get(
    "REPRO_BENCH_RESILIENCE_JSON", "BENCH_resilience.json"
)

GRID = dict(t_switch_values=(100.0, 500.0, 2000.0), seeds=(0, 1))


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_resilience.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best(fn, rounds: int):
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _sweep_config(tmp_path, **overrides):
    kw = dict(
        base=WorkloadConfig(sim_time=1500.0),
        workers=0,
        cache_dir=str(tmp_path / "cache"),
        **GRID,
    )
    kw.update(overrides)
    return SweepConfig(**kw).validate()


def test_supervision_overhead(benchmark, tmp_path):
    """The supervised serial sweep must cost < 25% over the bare task
    bodies run back to back on a warm cache."""
    config = _sweep_config(tmp_path)
    run_sweep(config)  # warm the trace cache so both sides replay only

    tasks = [
        (
            config.base,
            t,
            seed,
            tuple(config.protocols),
            config.use_cache,
            config.cache_dir,
            config.audit,
        )
        for t in config.t_switch_values
        for seed in config.seeds
    ]

    def bare():
        return [_evaluate_task(*task) for task in tasks]

    bare_time, _ = _best(bare, rounds=5)
    sup_time, result = benchmark.pedantic(
        lambda: _best(lambda: run_sweep(config), rounds=5),
        rounds=1,
        iterations=1,
    )
    assert result.complete
    overhead = sup_time / bare_time - 1.0
    payload = {
        "bare_ms": round(bare_time * 1e3, 2),
        "supervised_ms": round(sup_time * 1e3, 2),
        "overhead_pct": round(100 * overhead, 1),
    }
    benchmark.extra_info.update(payload)
    _record("supervision_overhead", payload)
    assert overhead < 0.25, (
        f"supervision adds {100 * overhead:.1f}% over the bare task loop "
        f"({sup_time * 1e3:.1f}ms vs {bare_time * 1e3:.1f}ms)"
    )


def test_journal_overhead(benchmark, tmp_path):
    """An fsynced journal entry per task must stay cheap relative to the
    task (< 100% even on a warm cache, where tasks are at their
    cheapest and the journal is proportionally most expensive)."""
    plain_cfg = _sweep_config(tmp_path)
    run_sweep(plain_cfg)  # warm cache
    plain_time, _ = _best(lambda: run_sweep(plain_cfg), rounds=5)

    counter = [0]

    def journaled():
        counter[0] += 1
        path = str(tmp_path / f"journal-{counter[0]}.jsonl")
        return run_sweep(_sweep_config(tmp_path, journal_path=path))

    journal_time, result = benchmark.pedantic(
        lambda: _best(journaled, rounds=5), rounds=1, iterations=1
    )
    assert result.complete
    n_tasks = len(GRID["t_switch_values"]) * len(GRID["seeds"])
    per_task_ms = (journal_time - plain_time) * 1e3 / n_tasks
    payload = {
        "plain_ms": round(plain_time * 1e3, 2),
        "journaled_ms": round(journal_time * 1e3, 2),
        "per_task_journal_ms": round(per_task_ms, 3),
    }
    benchmark.extra_info.update(payload)
    _record("journal_overhead", payload)
    assert journal_time < plain_time * 2.0, (
        f"journal doubles the warm sweep: {journal_time * 1e3:.1f}ms vs "
        f"{plain_time * 1e3:.1f}ms"
    )
