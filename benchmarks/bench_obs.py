"""Observability overhead benchmarks: the full observer stack is cheap.

The observability layer (span tracing, the metrics registry, outcome
streaming) rides the existing :class:`~repro.engine.RunObserver`
lifecycle, so its entire cost is a handful of callback dispatches and
``perf_counter`` reads per run phase -- nothing per simulation event.
``test_observer_stack_overhead`` pins that contract: a fused
counters-only run with the full stack attached (``TimingObserver`` +
``MetricsObserver`` + ``StreamObserver``) must stay within 5% of the
same run with no observers at all.  The two paths are timed interleaved
(bare, observed, bare, observed, ...) so host load drift hits both
equally.

Headline numbers are appended to ``BENCH_obs.json`` in the working
directory so CI can archive the trend without parsing benchmark output.
"""

import json
import os
import time

from repro.engine import (
    MetricsObserver,
    RunSpec,
    StreamObserver,
    TimingObserver,
    execute,
)
from repro.workload import WorkloadConfig, generate_trace

PAPER_PROTOCOLS = ("TP", "BCS", "QBC")

BENCH_JSON = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs.json")

#: Satellite gate from the issue: the full stack must cost < 5% wall
#: time over a bare fused run.  The dominant term is the run itself
#: (tens of ms of replay); the observers add microseconds of dispatch.
MAX_OVERHEAD = 0.05


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_obs.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_observer_stack_overhead(benchmark, tmp_path):
    cfg = WorkloadConfig(sim_time=4000.0, seed=0)
    trace = generate_trace(cfg)
    trace.compiled()  # warm the compiled form, as a sweep would

    stream_path = tmp_path / "outcomes.jsonl"

    def bare():
        return execute(
            RunSpec(
                protocols=PAPER_PROTOCOLS, trace=trace, engine="fused",
                counters_only=True,
            )
        )

    def observed():
        stream = StreamObserver(stream_path)
        try:
            return execute(
                RunSpec(
                    protocols=PAPER_PROTOCOLS, trace=trace, engine="fused",
                    counters_only=True,
                    observers=(
                        TimingObserver(), MetricsObserver(), stream,
                    ),
                )
            )
        finally:
            stream.close()

    def interleaved(rounds=11):
        bare_best = observed_best = float("inf")
        bare_result = observed_result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            bare_result = bare()
            bare_best = min(bare_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            observed_result = observed()
            observed_best = min(observed_best, time.perf_counter() - t0)
        return bare_best, bare_result, observed_best, observed_result

    bare_time, bare_result, obs_time, obs_result = benchmark.pedantic(
        interleaved, rounds=1, iterations=1
    )
    # The stack is display/export only: identical outcomes either way.
    for b, o in zip(bare_result.outcomes, obs_result.outcomes):
        assert b.metrics.stats.n_total == o.metrics.stats.n_total
        assert b.metrics.stats.n_basic == o.metrics.stats.n_basic
        assert b.metrics.stats.n_forced == o.metrics.stats.n_forced
    assert not obs_result.observer_errors

    overhead = obs_time / bare_time - 1.0
    payload = {
        "trace_events": len(trace),
        "bare_fused_ms": round(bare_time * 1e3, 2),
        "observed_fused_ms": round(obs_time * 1e3, 2),
        "overhead_pct": round(100 * overhead, 2),
        "gate_pct": round(100 * MAX_OVERHEAD, 1),
    }
    benchmark.extra_info.update(payload)
    _record("observer_stack", payload)
    assert obs_time <= bare_time * (1.0 + MAX_OVERHEAD), (
        f"observer stack adds {100*overhead:.1f}% over a bare fused run "
        f"({obs_time*1e3:.2f}ms vs {bare_time*1e3:.2f}ms)"
    )


def test_tracer_span_cost(benchmark):
    """A single span is two clock reads and a list append -- the tracer
    must sustain well over 10^5 spans/s so per-phase instrumentation
    never shows up in a profile."""
    from repro.obs.tracing import Tracer

    tracer = Tracer()
    n = 10_000

    def spans():
        tracer.clear()
        for _ in range(n):
            with tracer.span("phase", protocol="TP"):
                pass
        return len(tracer)

    count = benchmark.pedantic(spans, rounds=3, iterations=1)
    assert count == n
    per_span_us = benchmark.stats.stats.min / n * 1e6
    payload = {"spans": n, "per_span_us": round(per_span_us, 3)}
    benchmark.extra_info.update(payload)
    _record("tracer_span", payload)
    assert per_span_us < 100, f"span costs {per_span_us:.1f}us"


def test_fleet_plane_overhead(benchmark, tmp_path):
    """The fleet plane (delta source + aggregation + exporters) must
    stay inside the same <5% envelope as the observer stack.  Measured
    over a serial sweep so the comparison is single-process and stable;
    the cross-process transport adds only pickled frames on the
    existing heartbeat cadence."""
    from repro.experiments import SweepConfig, run_sweep
    from repro.workload import WorkloadConfig as WC

    def config(**fleet):
        return SweepConfig(
            base=WC(p_switch=0.8, sim_time=2000.0),
            t_switch_values=(100.0, 800.0),
            seeds=(0,),
            use_cache=False,
            progress=False,
            **fleet,
        )

    prom = tmp_path / "fleet.prom"
    otlp = tmp_path / "fleet-otlp.json"

    def plain():
        return run_sweep(config())

    def observed():
        return run_sweep(config(
            run_id="bench",
            prom_path=str(prom),
            otlp_path=str(otlp),
        ))

    def interleaved(rounds=7):
        plain_best = obs_best = float("inf")
        plain_result = obs_result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            plain_result = plain()
            plain_best = min(plain_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            obs_result = observed()
            obs_best = min(obs_best, time.perf_counter() - t0)
        return plain_best, plain_result, obs_best, obs_result

    plain_time, plain_result, obs_time, obs_result = benchmark.pedantic(
        interleaved, rounds=1, iterations=1
    )

    # Purely observational: identical values with the plane on or off.
    for pp, op in zip(plain_result.points, obs_result.points):
        assert [  # full counter signature per run
            (r.protocol, r.seed, r.n_total, r.n_basic, r.n_forced)
            for r in pp.runs
        ] == [
            (r.protocol, r.seed, r.n_total, r.n_basic, r.n_forced)
            for r in op.runs
        ]
    assert prom.exists() and otlp.exists()

    overhead = obs_time / plain_time - 1.0
    payload = {
        "plain_sweep_ms": round(plain_time * 1e3, 2),
        "fleet_sweep_ms": round(obs_time * 1e3, 2),
        "overhead_pct": round(100 * overhead, 2),
        "gate_pct": round(100 * MAX_OVERHEAD, 1),
    }
    benchmark.extra_info.update(payload)
    _record("fleet_plane", payload)
    assert obs_time <= plain_time * (1.0 + MAX_OVERHEAD), (
        f"fleet plane adds {100*overhead:.1f}% over a plain sweep "
        f"({obs_time*1e3:.2f}ms vs {plain_time*1e3:.2f}ms)"
    )


def test_metrics_delta_cost(benchmark):
    """One delta cycle (snapshot + diff over ~100 live series) rides
    every worker heartbeat; it must stay far below the heartbeat
    interval."""
    from repro.obs.fleet import MetricsDeltaSource
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    for i in range(50):
        reg.counter("repro_bench_total", series=str(i)).inc(i)
        reg.histogram("repro_bench_seconds", series=str(i)).observe(0.1)
    source = MetricsDeltaSource(reg)
    source.delta()  # absorb the initial state

    def cycle():
        reg.counter("repro_bench_total", series="0").inc()
        return source.delta()

    delta = benchmark(cycle)
    assert delta is not None and len(delta["series"]) == 1
    per_cycle_us = benchmark.stats.stats.min * 1e6
    payload = {"series": 100, "per_delta_us": round(per_cycle_us, 1)}
    benchmark.extra_info.update(payload)
    _record("metrics_delta", payload)
    assert per_cycle_us < 50_000, f"delta costs {per_cycle_us:.0f}us"
