"""Paper Figure 2: N_tot vs T_switch, homogeneous hosts with disconnections (P_switch=0.8, H=0%).

Regenerates the figure's rows (mean N_tot per T_switch per protocol),
prints the gains and an ASCII log-log plot, and asserts the paper's
qualitative shape (TP worst, QBC <= BCS, gain growing with T_switch).
Run with ``pytest benchmarks/bench_figure2.py --benchmark-only -s``.
"""

from benchmarks._common import run_figure_bench


def test_figure2(benchmark):
    run_figure_bench(2, benchmark)
