"""Ablation: multi-seed agreement (paper Section 5.1).

The paper: "for each value of T_switch and H, we did several simulation
runs with different seeds and the result were within 4% of each other,
thus, variance is not reported in the plots."

This bench runs one representative point at the closest-to-paper horizon
(``REPRO_BENCH_VARIANCE_SIM_TIME``, default 50000; the paper's is ~1e5)
with 4 seeds and reports the relative spread per protocol.
"""

import os

from repro.analysis import relative_spread
from repro.experiments import SweepConfig, run_point
from repro.workload import WorkloadConfig


def _run():
    cfg = SweepConfig(
        base=WorkloadConfig(
            p_send=0.4,
            p_switch=1.0,
            sim_time=float(
                os.environ.get("REPRO_BENCH_VARIANCE_SIM_TIME", "50000")
            ),
        ),
        t_switch_values=(1000.0,),
        seeds=(0, 1, 2, 3),
    )
    return run_point(cfg, 1000.0)


def test_seed_agreement_within_paper_band(benchmark):
    point = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"{'protocol':>9} {'mean N_tot':>12} {'max |dev|':>10} {'max-min':>8}")
    for name in ("TP", "BCS", "QBC"):
        totals = [float(v) for v in point.totals(name)]
        mean = sum(totals) / len(totals)
        # The paper's "within 4% of each other" most plausibly means a
        # +-4% band around the mean; report both that deviation and the
        # stricter (max - min) / mean for transparency.
        deviation = max(abs(v - mean) for v in totals) / mean
        spread = relative_spread(totals)
        print(
            f"{name:>9} {mean:>12.1f} {100 * deviation:>9.1f}% "
            f"{100 * spread:>7.1f}%"
        )
        benchmark.extra_info[f"deviation_{name}"] = deviation
        benchmark.extra_info[f"spread_{name}"] = spread
        # +-4% at the paper's ~1e5 horizon; sqrt-scaling headroom at the
        # default half horizon gives the 8% gate.
        assert deviation <= 0.08, (
            f"{name} seeds deviate by {100 * deviation:.1f}% from the mean"
        )
