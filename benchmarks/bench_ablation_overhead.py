"""Ablation: control-information overhead (paper Section 2 discussion).

Two comparisons the paper argues qualitatively, measured here:

* **Piggyback scalability**: TP ships two n-entry vectors on every
  application message (O(n) integers); BCS/QBC ship one integer.  We
  report total piggybacked integers over identical traffic.
* **Coordinated baselines**: Chandy-Lamport / Koo-Toueg /
  Prakash-Singhal add explicit located control messages per snapshot
  round (and, for Koo-Toueg, blocking time), which CIC protocols avoid
  entirely by piggybacking on application traffic.
"""

import os

from repro.engine import RunSpec, execute
from repro.workload import WorkloadConfig


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 4


def _run():
    cfg = WorkloadConfig(
        p_send=0.4, p_switch=0.9, t_switch=500.0, sim_time=_sim_time(), seed=0
    )
    cic = execute(
        RunSpec(protocols=("TP", "BCS", "QBC"), workload=cfg, engine="fused")
    )
    cic_rows = [
        dict(
            protocol=o.name,
            n_total=o.metrics.n_total,
            piggyback_per_msg=o.protocol.piggyback_ints,
            piggyback_ints=o.metrics.piggyback_ints_total,
            control_messages=0,
        )
        for o in cic.outcomes
    ]
    coord = execute(
        RunSpec(
            protocols=("CL", "KT", "PS"),
            workload=cfg,
            engine="online",
            snapshot_interval=200.0,
        )
    )
    coord_rows = [
        dict(
            protocol=o.coordinated.scheme.value,
            n_total=o.coordinated.n_total,
            piggyback_per_msg=0,
            piggyback_ints=0,
            control_messages=o.coordinated.control_messages,
            blocked_time=o.coordinated.blocked_time,
        )
        for o in coord.outcomes
    ]
    return cic_rows, coord_rows


def test_control_information_overhead(benchmark):
    cic_rows, coord_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    from repro.experiments.report import overhead_table

    print()
    print(overhead_table(cic_rows + coord_rows))

    by_name = {r["protocol"]: r for r in cic_rows}
    # TP's piggyback is O(n): 20x the index protocols' single integer
    # at n = 10 hosts.
    assert by_name["TP"]["piggyback_per_msg"] == 20
    assert by_name["BCS"]["piggyback_per_msg"] == 1
    assert (
        by_name["TP"]["piggyback_ints"] == 20 * by_name["BCS"]["piggyback_ints"]
    )
    # CIC protocols send zero coordination messages; every coordinated
    # baseline pays per round.
    assert all(r["control_messages"] > 0 for r in coord_rows)
    kt = next(r for r in coord_rows if r["protocol"] == "koo-toueg")
    assert kt["blocked_time"] > 0.0
    for r in cic_rows + coord_rows:
        benchmark.extra_info[f"ctrl_{r['protocol']}"] = r["control_messages"]
        benchmark.extra_info[f"pg_{r['protocol']}"] = r["piggyback_ints"]
