"""Paper Figure 6: N_tot vs T_switch, heterogeneous hosts H=30% with disconnections (P_switch=0.8).

Regenerates the figure's rows (mean N_tot per T_switch per protocol),
prints the gains and an ASCII log-log plot, and asserts the paper's
qualitative shape (TP worst, QBC <= BCS, gain growing with T_switch).
Run with ``pytest benchmarks/bench_figure6.py --benchmark-only -s``.
"""

from benchmarks._common import run_figure_bench


def test_figure6(benchmark):
    run_figure_bench(6, benchmark)
