"""Engine micro-benchmarks: DES event throughput and replay speed.

Not a paper experiment -- these guard the substrate's performance so the
figure sweeps stay tractable (the whole methodology leans on cheap
trace generation and cheaper replay).

The replay cases run through the unified execution engine
(:mod:`repro.engine`), so the timings cover the full production path:
plan resolution, observer dispatch and result assembly, not just the
inner loops.  ``test_engine_overhead`` pins the cost of that layer --
a fused run through the engine must stay within a few percent of
calling :func:`repro.core.replay.replay_fused` directly (this file is
the one sanctioned raw call site outside the engine, allowlisted by
``tests/test_import_contracts.py``).

Besides the pytest-benchmark timings, the headline engine numbers
(fused-replay and vectorized-replay speedups, multi-seed batch
speedup, engine overhead, trace-cache speedup) are appended to
``BENCH_engine.json`` in the working directory so CI can archive the
trend without parsing benchmark output -- and gate ``vectorized_ms``
against regressions (see .github/workflows/ci.yml).
"""

import json
import os
import time

from repro.core.replay import replay_fused
from repro.des import Environment
from repro.engine import RunSpec, execute, resolve_protocols
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.workload import TraceCache, WorkloadConfig, generate_trace

N_EVENTS = 50_000

#: The paper's three protocols, the fused engine's standard cargo.
PAPER_PROTOCOLS = ("TP", "BCS", "QBC")

BENCH_JSON = os.environ.get("REPRO_BENCH_ENGINE_JSON", "BENCH_engine.json")


def _record(case: str, payload: dict) -> None:
    """Merge one case's numbers into ``BENCH_engine.json``."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[case] = payload
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _best(fn, rounds: int):
    """(best wall seconds, last return value) over *rounds* calls."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _event_loop_throughput():
    env = Environment()
    remaining = [N_EVENTS]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            env.call_later(1.0, tick)

    for _ in range(16):
        env.call_later(0.0, tick)
    env.run()
    return env.event_count


def test_event_loop_throughput(benchmark):
    count = benchmark.pedantic(_event_loop_throughput, rounds=3, iterations=1)
    assert count >= N_EVENTS
    benchmark.extra_info["events"] = count


def test_trace_generation_throughput(benchmark):
    cfg = WorkloadConfig(t_switch=500.0, p_switch=0.8, sim_time=2000.0, seed=0)
    trace = benchmark.pedantic(generate_trace, args=(cfg,), rounds=3, iterations=1)
    benchmark.extra_info["trace_events"] = len(trace)
    assert len(trace) > 1000


def test_replay_throughput(benchmark):
    cfg = WorkloadConfig(t_switch=500.0, p_switch=0.8, sim_time=4000.0, seed=0)
    trace = generate_trace(cfg)
    spec = RunSpec(protocols=("QBC",), trace=trace, engine="reference")

    def run():
        return execute(spec).outcomes[0].n_total

    total = benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["trace_events"] = len(trace)
    benchmark.extra_info["n_total"] = total


def test_fused_replay_speedup(benchmark):
    """The sweep engine's core claims: one fused counters-only pass
    over TP+BCS+QBC beats three sequential reference replays by >= 2x,
    and the vectorized batch kernels beat the fused pass by >= 10x on
    a warm trace -- all with identical N_tot / n_basic / n_forced, all
    paths through the engine layer."""
    cfg = WorkloadConfig(sim_time=4000.0, seed=0)
    trace = generate_trace(cfg)
    trace.compiled()  # the sweep compiles once per trace; warm it here

    ref_spec = RunSpec(
        protocols=PAPER_PROTOCOLS, trace=trace, engine="reference"
    )
    fused_spec = RunSpec(
        protocols=PAPER_PROTOCOLS, trace=trace, engine="fused",
        counters_only=True,
    )
    vec_spec = RunSpec(
        protocols=PAPER_PROTOCOLS, trace=trace, engine="vectorized",
        counters_only=True,
    )
    execute(vec_spec)  # warm the per-trace vectorized lowering + closure

    seq_time, seq_result = _best(lambda: execute(ref_spec), rounds=7)
    vec_time, vec_result = _best(lambda: execute(vec_spec), rounds=7)
    fused_time, fused_result = benchmark.pedantic(
        lambda: _best(lambda: execute(fused_spec), rounds=7),
        rounds=1, iterations=1,
    )
    for ref, fus, vec in zip(
        seq_result.outcomes, fused_result.outcomes, vec_result.outcomes
    ):
        for got in (fus, vec):
            assert ref.metrics.stats.n_total == got.metrics.stats.n_total
            assert ref.metrics.stats.n_basic == got.metrics.stats.n_basic
            assert ref.metrics.stats.n_forced == got.metrics.stats.n_forced
    speedup = seq_time / fused_time
    vec_speedup = fused_time / vec_time
    payload = {
        "trace_events": len(trace),
        "sequential_ms": round(seq_time * 1e3, 2),
        "fused_ms": round(fused_time * 1e3, 2),
        "vectorized_ms": round(vec_time * 1e3, 3),
        "speedup": round(speedup, 2),
        "vectorized_speedup": round(vec_speedup, 2),
    }
    benchmark.extra_info.update(payload)
    _record("fused_replay", payload)
    assert speedup >= 2.0, (
        f"fused replay only {speedup:.2f}x faster than three sequential "
        f"replays ({seq_time*1e3:.1f}ms vs {fused_time*1e3:.1f}ms)"
    )
    assert vec_speedup >= 10.0, (
        f"vectorized replay only {vec_speedup:.2f}x faster than the fused "
        f"pass ({vec_time*1e3:.2f}ms vs {fused_time*1e3:.2f}ms)"
    )


def test_vectorized_batch_speedup(benchmark):
    """Batching N seeds into one row-block grid must beat N sequential
    fused passes: the per-pass numpy overheads (lowering, closure,
    kernel launches) amortize across the batch."""
    from repro.engine import execute_batch

    seeds = tuple(range(8))
    configs = [WorkloadConfig(sim_time=4000.0, seed=s) for s in seeds]
    traces = {s: generate_trace(c) for s, c in zip(seeds, configs)}
    for trace in traces.values():
        trace.compiled()

    fused_specs = [
        RunSpec(
            protocols=PAPER_PROTOCOLS, trace=traces[s], engine="fused",
            counters_only=True,
        )
        for s in seeds
    ]
    vec_specs = [
        RunSpec(
            protocols=PAPER_PROTOCOLS, trace=traces[s], engine="vectorized",
            counters_only=True,
        )
        for s in seeds
    ]

    seq_time, seq_results = _best(
        lambda: [execute(s) for s in fused_specs], rounds=3
    )
    batch_time, batch_results = benchmark.pedantic(
        lambda: _best(lambda: execute_batch(vec_specs), rounds=3),
        rounds=1, iterations=1,
    )
    for seq, bat in zip(seq_results, batch_results):
        for ref, got in zip(seq.outcomes, bat.outcomes):
            assert ref.metrics.stats.n_total == got.metrics.stats.n_total
    speedup = seq_time / batch_time
    payload = {
        "n_seeds": len(seeds),
        "sequential_fused_ms": round(seq_time * 1e3, 2),
        "batch_ms": round(batch_time * 1e3, 2),
        "batch_speedup": round(speedup, 2),
    }
    benchmark.extra_info.update(payload)
    _record("vectorized_batch", payload)
    assert speedup >= 1.1, (
        f"batched vectorized replay only {speedup:.2f}x faster than "
        f"{len(seeds)} sequential fused passes "
        f"({batch_time*1e3:.1f}ms vs {seq_time*1e3:.1f}ms)"
    )


def test_engine_overhead(benchmark):
    """The engine layer is dispatch + bookkeeping only: a fused run
    through :func:`repro.engine.execute` must stay within a few percent
    of the raw :func:`~repro.core.replay.replay_fused` call it wraps.
    The two paths are timed interleaved (raw, engine, raw, engine, ...)
    so load drift on the host hits both equally; the 10% gate is far
    above plan-resolution cost but far below any real regression (an
    accidental trace recompile or per-event observer work would be
    2x+, not 1.1x)."""
    cfg = WorkloadConfig(sim_time=4000.0, seed=0)
    trace = generate_trace(cfg)
    trace.compiled()
    entries = resolve_protocols(PAPER_PROTOCOLS)

    def raw():
        instances = []
        for entry in entries:
            protocol = entry.make(cfg.n_hosts, cfg.n_mss)
            protocol.log_checkpoints = False
            instances.append(protocol)
        return replay_fused(trace, instances)

    spec = RunSpec(
        protocols=PAPER_PROTOCOLS, trace=trace, engine="fused",
        counters_only=True,
    )

    def engined():
        return execute(spec)

    def interleaved(rounds=11):
        raw_best = engine_best = float("inf")
        raw_results = engine_result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            raw_results = raw()
            raw_best = min(raw_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            engine_result = engined()
            engine_best = min(engine_best, time.perf_counter() - t0)
        return raw_best, raw_results, engine_best, engine_result

    raw_time, raw_results, engine_time, engine_result = benchmark.pedantic(
        interleaved, rounds=1, iterations=1
    )
    for rr, outcome in zip(raw_results, engine_result.outcomes):
        assert rr.metrics.stats.n_total == outcome.metrics.stats.n_total
    overhead = engine_time / raw_time - 1.0
    payload = {
        "raw_fused_ms": round(raw_time * 1e3, 2),
        "engine_fused_ms": round(engine_time * 1e3, 2),
        "overhead_pct": round(100 * overhead, 2),
    }
    benchmark.extra_info.update(payload)
    _record("engine_overhead", payload)
    assert engine_time <= raw_time * 1.10, (
        f"engine adds {100*overhead:.1f}% over raw replay_fused "
        f"({engine_time*1e3:.2f}ms vs {raw_time*1e3:.2f}ms)"
    )


def test_trace_cache_warm_vs_cold(benchmark, tmp_path):
    """Warm (memory or disk) cache lookups must be far cheaper than
    regeneration; a warm end-to-end sweep regenerates nothing."""
    cfg = WorkloadConfig(sim_time=2000.0, seed=0)
    cache = TraceCache(disk_dir=tmp_path)

    cold_time, trace = _best(lambda: cache.get_or_generate(cfg), rounds=1)
    warm_time, warm = benchmark.pedantic(
        lambda: _best(lambda: cache.get_or_generate(cfg), rounds=5),
        rounds=1,
        iterations=1,
    )
    assert warm is trace  # memory tier serves the same object
    assert cache.stats()["misses"] == 1

    disk_cache = TraceCache(max_entries=0, disk_dir=tmp_path)
    disk_time, disk_trace = _best(
        lambda: disk_cache.get_or_generate(cfg), rounds=5
    )
    assert disk_cache.stats()["misses"] == 0
    assert len(disk_trace) == len(trace)

    sweep_base = WorkloadConfig(sim_time=1000.0)
    sweep_cfg = SweepConfig(
        base=sweep_base,
        t_switch_values=(300.0, 1000.0),
        seeds=(0, 1),
        workers=0,
        use_cache=True,
        cache_dir=str(tmp_path),
    )
    sweep_cold, cold_result = _best(lambda: run_sweep(sweep_cfg), rounds=1)
    sweep_warm, warm_result = _best(lambda: run_sweep(sweep_cfg), rounds=3)
    assert [p.runs for p in warm_result.points] == [
        p.runs for p in cold_result.points
    ]

    payload = {
        "generate_ms": round(cold_time * 1e3, 2),
        "memory_hit_ms": round(warm_time * 1e3, 4),
        "disk_hit_ms": round(disk_time * 1e3, 2),
        "sweep_cold_ms": round(sweep_cold * 1e3, 2),
        "sweep_warm_ms": round(sweep_warm * 1e3, 2),
        "sweep_speedup": round(sweep_cold / sweep_warm, 2),
    }
    benchmark.extra_info.update(payload)
    _record("trace_cache", payload)
    assert warm_time < cold_time / 10, (
        f"memory hit ({warm_time*1e3:.2f}ms) should be >10x cheaper than "
        f"generation ({cold_time*1e3:.1f}ms)"
    )
    assert sweep_warm < sweep_cold, (
        f"warm sweep ({sweep_warm*1e3:.1f}ms) not faster than cold "
        f"({sweep_cold*1e3:.1f}ms)"
    )
