"""Engine micro-benchmarks: DES event throughput and replay speed.

Not a paper experiment -- these guard the substrate's performance so the
figure sweeps stay tractable (the whole methodology leans on cheap
trace generation and cheaper replay).
"""

from repro.core.replay import replay
from repro.des import Environment
from repro.protocols import QBCProtocol
from repro.workload import WorkloadConfig, generate_trace

N_EVENTS = 50_000


def _event_loop_throughput():
    env = Environment()
    remaining = [N_EVENTS]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            env.call_later(1.0, tick)

    for _ in range(16):
        env.call_later(0.0, tick)
    env.run()
    return env.event_count


def test_event_loop_throughput(benchmark):
    count = benchmark.pedantic(_event_loop_throughput, rounds=3, iterations=1)
    assert count >= N_EVENTS
    benchmark.extra_info["events"] = count


def test_trace_generation_throughput(benchmark):
    cfg = WorkloadConfig(t_switch=500.0, p_switch=0.8, sim_time=2000.0, seed=0)
    trace = benchmark.pedantic(generate_trace, args=(cfg,), rounds=3, iterations=1)
    benchmark.extra_info["trace_events"] = len(trace)
    assert len(trace) > 1000


def test_replay_throughput(benchmark):
    cfg = WorkloadConfig(t_switch=500.0, p_switch=0.8, sim_time=4000.0, seed=0)
    trace = generate_trace(cfg)

    def run():
        return replay(trace, QBCProtocol(cfg.n_hosts, cfg.n_mss)).n_total

    total = benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["trace_events"] = len(trace)
    benchmark.extra_info["n_total"] = total
