"""Failure-rate sweep: checkpoint premium vs lost-work claims.

Beyond the paper (its Section 6 future work): inject Poisson crash
failures at increasing rates and measure, per protocol, the trade
between failure-free overhead (N_tot) and failure cost (lost work,
recovery downtime, availability).  Expected shape: TP's dense
checkpoints shorten its rollback window; the index-based protocols pay
a far smaller premium but their min-index line can lag, so they lose
more work per crash.
"""

import os

from repro.core.failures import run_with_failures
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 4


INTERVALS = (2000.0, 500.0)


def _run():
    rows = {}
    for cls in (TwoPhaseProtocol, BCSProtocol, QBCProtocol):
        per_rate = {}
        for interval in INTERVALS:
            cfg = WorkloadConfig(
                p_send=0.4,
                p_switch=0.9,
                t_switch=500.0,
                sim_time=_sim_time(),
                seed=3,
            )
            result = run_with_failures(
                cfg, cls(cfg.n_hosts, cfg.n_mss), failure_mean_interval=interval
            )
            per_rate[interval] = result
        rows[cls.name] = per_rate
    return rows


def test_failure_rate_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        f"{'protocol':>9} {'mean fail ivl':>14} {'failures':>9} "
        f"{'N_tot':>7} {'lost work':>10} {'availability':>13}"
    )
    for name, per_rate in rows.items():
        for interval, res in per_rate.items():
            print(
                f"{name:>9} {interval:>14.0f} {res.n_failures:>9} "
                f"{res.protocol.n_total:>7} {res.total_lost_work:>10.1f} "
                f"{100 * res.availability:>12.2f}%"
            )
            benchmark.extra_info[f"{name}_{interval:.0f}_lost"] = (
                res.total_lost_work
            )
    # shape assertions
    for name, per_rate in rows.items():
        frequent, rare = per_rate[INTERVALS[1]], per_rate[INTERVALS[0]]
        assert frequent.n_failures >= rare.n_failures
    for interval in INTERVALS:
        # TP's dense checkpoints give it the smallest rollback window
        tp = rows["TP"][interval]
        bcs = rows["BCS"][interval]
        if tp.n_failures and bcs.n_failures:
            assert (
                tp.total_lost_work / tp.n_failures
                <= bcs.total_lost_work / bcs.n_failures
            )