"""Ablation: incremental checkpointing (paper Section 2.2).

"Incremental checkpointing transfer[s] on the MSS stable storage only
the information that changed since the last checkpoint" -- this bench
measures what that buys end to end: wireless bytes shipped, cross-MSS
base fetches after handoffs, and (under a finite wireless bandwidth)
how much application progress the smaller transfers preserve.
"""

import os

from repro.engine import RunSpec, execute
from repro.workload import WorkloadConfig


def _sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIM_TIME", "20000")) / 8


def _run():
    rows = {}
    for incremental in (False, True):
        cfg = WorkloadConfig(
            p_send=0.4,
            p_switch=0.9,
            t_switch=200.0,
            sim_time=_sim_time(),
            seed=2,
            incremental_checkpointing=incremental,
            # 1 MiB state, ~2 pages dirtied per op: between two
            # checkpoints only a small fraction of the state changes
            state_pages=256,
            dirty_pages_per_op=2,
            wireless_bandwidth=100_000.0,
        )
        result = execute(
            RunSpec(protocols=("BCS", "QBC"), workload=cfg, engine="online")
        )
        rows[incremental] = {
            o.name: dict(
                n_total=o.metrics.n_total,
                bytes_shipped=o.online.bytes_shipped,
                fetches=o.online.system.checkpoint_fetches,
                n_sends=o.metrics.n_sends,
            )
            for o in result.outcomes
        }
    return rows


def test_incremental_checkpointing_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        f"{'mode':>12} {'protocol':>9} {'N_tot':>7} {'shipped KiB':>12} "
        f"{'fetches':>8} {'app sends':>10}"
    )
    for incremental, per_protocol in rows.items():
        label = "incremental" if incremental else "full"
        for name, row in per_protocol.items():
            print(
                f"{label:>12} {name:>9} {row['n_total']:>7} "
                f"{row['bytes_shipped'] / 1024:>12.0f} {row['fetches']:>8} "
                f"{row['n_sends']:>10}"
            )
            benchmark.extra_info[f"{label}_{name}_KiB"] = (
                row["bytes_shipped"] / 1024
            )
    for name in ("BCS", "QBC"):
        full, inc = rows[False][name], rows[True][name]
        # the headline saving: deltas ship a fraction of the state
        assert inc["bytes_shipped"] < 0.5 * full["bytes_shipped"]
        # smaller transfers leave more time for application work
        assert inc["n_sends"] >= full["n_sends"]