"""Paper Figure 3: N_tot vs T_switch, heterogeneous hosts H=50%, no disconnections (P_switch=1.0).

Regenerates the figure's rows (mean N_tot per T_switch per protocol),
prints the gains and an ASCII log-log plot, and asserts the paper's
qualitative shape (TP worst, QBC <= BCS, gain growing with T_switch).
Run with ``pytest benchmarks/bench_figure3.py --benchmark-only -s``.
"""

from benchmarks._common import run_figure_bench


def test_figure3(benchmark):
    run_figure_bench(3, benchmark)
