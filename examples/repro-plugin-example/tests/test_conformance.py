"""The plugin's whole test suite: the conformance kit, one line.

Requires the plugin to be installed (``pip install -e .``) so entry-
point discovery finds it; the suite fails collection with an unknown-
protocol error (and did-you-mean suggestions) otherwise.
"""

from repro.testing import conformance_suite

TestXBCS = conformance_suite("XBCS")
