"""Example protocol plugin distribution (see README.md)."""

from repro_plugin_example.protocol import StrideBCSProtocol

__all__ = ["StrideBCSProtocol"]
