"""StrideBCS: a BCS variant distributed as a third-party plugin.

Basic (mobility-mandated) checkpoints advance the sequence number by a
stride of 2 instead of 1, spreading hosts' indices further apart so
forced checkpoints land less often on hosts that just handed off.
Forced checkpoints still jump exactly to the piggybacked index, so the
BCS same-index theorem is untouched: ``sn_i`` always equals the index
of host *i*'s latest checkpoint, and a message is always consumed at an
index >= the sender's, which is what the equal-index recovery line
rests on.  The inherited ``recovery_line_indices`` (min-``sn`` plus the
first-checkpoint-after-a-jump rule) therefore stays sound, and the
conformance kit's consistency-oracle battery proves it on every run.

The point of this module is not the protocol -- it is the packaging:
the single ``[project.entry-points."repro.protocols"]`` line in
``pyproject.toml`` is all it takes for ``pip install`` of this
distribution to make ``XBCS`` resolvable everywhere (CLI, sweeps,
audit, conformance kit).
"""

from __future__ import annotations

from repro.protocols.bcs import BCSProtocol


class StrideBCSProtocol(BCSProtocol):
    """BCS with stride-2 basic index advance."""

    #: How far a basic checkpoint advances the sequence number.
    stride = 2

    # BCS ships batch kernels for its own basic rule; this subclass
    # changes that rule, so it must opt out of the vectorized engine
    # (the conformance kit's engine-equivalence battery would catch a
    # plugin that forgets this).
    vectorizable = False

    def _basic(self, host: int, now: float) -> None:
        self.sn[host] += self.stride
        self.take(host, self.sn[host], "basic", now)
