#!/usr/bin/env python3
"""Quickstart: compare the paper's three protocols on one workload.

Generates a mobile-computation trace (10 hosts, 5 cells, the paper's
Section 5.1 model), replays TP, BCS and QBC over the *same* trace, and
prints checkpoint counts, gains and each protocol's recovery line.

Run:  python examples/quickstart.py
"""

from repro import WorkloadConfig, gain_percent
from repro.core.consistency import (
    annotate_replay,
    build_recovery_line,
    is_consistent,
)
from repro.engine import RunSpec, execute
from repro.protocols import QBCProtocol


def main() -> None:
    config = WorkloadConfig(
        t_switch=1000.0,  # mean cell-residence time
        p_switch=0.8,  # 20% of moves are voluntary disconnections
        sim_time=10_000.0,
        seed=7,
    )
    print(f"simulating {config.sim_time:g} time units "
          f"({config.n_hosts} mobile hosts, {config.n_mss} cells)...")
    # One engine call: generate the trace and drive all three protocols
    # over the identical schedule in a single fused pass.
    run = execute(
        RunSpec(protocols=("TP", "BCS", "QBC"), workload=config)
    )
    trace = run.trace
    print(
        f"trace: {len(trace)} events -- {trace.n_sends} sends, "
        f"{trace.n_receives} receives, {trace.n_basic_triggers} "
        "cell switches/disconnections\n"
    )

    for outcome in run.outcomes:
        s = outcome.metrics.stats
        print(
            f"{outcome.name:>4}: N_tot={s.n_total:>6} "
            f"(basic={s.n_basic}, forced={s.n_forced}) "
            f"piggyback={outcome.protocol.piggyback_ints} ints/msg"
        )

    tp = run.outcome("TP").n_total
    bcs = run.outcome("BCS").n_total
    qbc = run.outcome("QBC").n_total
    print(
        f"\nindex-based gain over TP: {gain_percent(tp, bcs):.1f}% (BCS), "
        f"{gain_percent(tp, qbc):.1f}% (QBC)"
    )
    print(f"QBC gain over BCS: {gain_percent(bcs, qbc):.1f}%")

    # Every local checkpoint of BCS/QBC belongs to an on-the-fly
    # consistent global checkpoint -- verify the current one.
    protocol = QBCProtocol(config.n_hosts, config.n_mss)
    run = annotate_replay(trace, protocol)
    line = build_recovery_line(run, protocol)
    assert is_consistent(run, line)
    print(
        "\nQBC recovery line (host: checkpoint index): "
        + ", ".join(f"h{h}: {ck.record.index}" for h, ck in sorted(line.items()))
    )
    print("line verified consistent: no orphan messages")


if __name__ == "__main__":
    main()
