#!/usr/bin/env python3
"""Failure recovery: how much computation does a crash undo?

The paper defers this to future work ("evaluation of the recovery time
and of the amount of undone computation due to a failure"); this example
runs it.  A shared workload is checkpointed by four protocols; then we
crash each host in turn and measure:

* events rolled back across the system (undone computation),
* worst per-host rollback time,
* rollback-propagation passes (1 = the protocol's line was final; more
  passes = cascading, the domino effect).

Uncoordinated checkpointing has no on-the-fly line at all -- recovery
must search, and the staircase patterns in the traffic make it cascade.

Run:  python examples/failure_recovery.py
"""

from repro import WorkloadConfig, generate_trace
from repro.core.consistency import annotate_replay
from repro.core.recovery import minimal_rollback, protocol_line_rollback
from repro.protocols import (
    BCSProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)


def main() -> None:
    config = WorkloadConfig(
        t_switch=500.0, p_switch=0.8, sim_time=5_000.0, seed=3
    )
    trace = generate_trace(config)
    print(
        f"workload: {len(trace)} events over {config.sim_time:g} time units\n"
    )

    protocols = {
        "TP": TwoPhaseProtocol(config.n_hosts, config.n_mss),
        "BCS": BCSProtocol(config.n_hosts, config.n_mss),
        "QBC": QBCProtocol(config.n_hosts, config.n_mss),
        "UNC(500)": UncoordinatedProtocol(config.n_hosts, config.n_mss, period=500.0),
    }

    print(
        f"{'protocol':>9} {'ckpts':>6} {'mean undone':>12} "
        f"{'worst undone':>13} {'worst rollback t':>17} {'passes':>7}"
    )
    for name, protocol in protocols.items():
        run = annotate_replay(trace, protocol)
        undone, times, passes = [], [], []
        for failed_host in range(config.n_hosts):
            if name.startswith("UNC"):
                outcome = minimal_rollback(run, failed_host, trace.sim_time)
            else:
                outcome = protocol_line_rollback(
                    run, protocol, failed_host, trace.sim_time
                )
            undone.append(outcome.total_undone_events)
            times.append(outcome.max_rollback_time)
            passes.append(outcome.iterations)
        print(
            f"{name:>9} {protocol.n_total:>6} "
            f"{sum(undone) / len(undone):>12.1f} {max(undone):>13} "
            f"{max(times):>17.1f} {max(passes):>7}"
        )

    print(
        "\nReading: the CIC protocols pay checkpoints during failure-free"
        "\nexecution to bound the rollback; uncoordinated checkpointing"
        "\ntakes the fewest checkpoints but a single crash can undo orders"
        "\nof magnitude more work (and recovery needs a multi-pass search)."
    )


if __name__ == "__main__":
    main()
