#!/usr/bin/env python3
"""A long-running mobile service under crash failures.

Closes the loop the paper leaves as future work: checkpointing is an
*insurance premium* (N_tot transfers to the MSSs during failure-free
operation) against *claims* (work lost + recovery downtime when a host
crashes).  This example runs the same workload under TP, BCS and QBC
with Poisson crash failures injected (mean inter-arrival 1 500 time
units), executing the full rollback each time: protocol state restored
from the line checkpoints, stale in-flight messages dropped by the
transport, hosts paused for the recovery latency.

Run:  python examples/long_running_service.py
"""

from repro import WorkloadConfig
from repro.core.failures import run_with_failures
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol


def main() -> None:
    config = WorkloadConfig(
        t_switch=1000.0,
        p_switch=0.8,
        heterogeneity=0.3,
        sim_time=10_000.0,
        seed=21,
    )
    print(
        f"service horizon {config.sim_time:g} time units, Poisson crashes "
        "every ~1500 time units\n"
    )
    print(
        f"{'protocol':>9} {'ckpts':>6} {'fails':>6} {'lost work':>10} "
        f"{'recovery σt':>12} {'stale msgs':>11} {'availability':>13}"
    )
    for cls in (TwoPhaseProtocol, BCSProtocol, QBCProtocol):
        result = run_with_failures(
            config,
            cls(config.n_hosts, config.n_mss),
            failure_mean_interval=1500.0,
        )
        print(
            f"{result.protocol.name:>9} {result.protocol.n_total:>6} "
            f"{result.n_failures:>6} {result.total_lost_work:>10.1f} "
            f"{result.total_recovery_downtime:>12.3f} "
            f"{result.stale_messages_dropped:>11} "
            f"{100 * result.availability:>12.2f}%"
        )

    print(
        "\nReading: recovery execution itself is cheap for all three (a"
        "\nhandful of network legs, computed wired-side from the MSS-stored"
        "\nindices) -- but the insurance terms differ.  TP pays ~20x the"
        "\ncheckpoints, and each checkpoint anchors a fresh consistent line,"
        "\nso its rollback window is short.  BCS/QBC pay a tiny premium but"
        "\ntheir global line sits at min(sn): one slow (or long-disconnected)"
        "\nhost pins everyone's rollback point in the past, so a crash"
        "\nundoes more work.  Which contract wins depends on the failure"
        "\nrate -- exactly the trade-off this harness lets you measure"
        "\n(vary failure_mean_interval and compare lost work + N_tot)."
    )


if __name__ == "__main__":
    main()
