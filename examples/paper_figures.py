#!/usr/bin/env python3
"""Regenerate any figure of the paper from the command line.

Examples
--------
Fast look at Figure 2 (homogeneous hosts with disconnections)::

    python examples/paper_figures.py 2

Closer to paper scale (slower)::

    python examples/paper_figures.py 6 --sim-time 100000 --seeds 0 1 2

The absolute counts scale with ``--sim-time``; the paper's conclusions
are ordinal (who wins, by how much, where the gaps grow) and are
asserted by the validation block printed at the end.
"""

import argparse

from repro.experiments import figure_report, run_figure, validate_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", type=int, choices=range(1, 7))
    parser.add_argument(
        "--sim-time",
        type=float,
        default=20_000.0,
        help="simulated time units per run (paper: ~1e5)",
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    parser.add_argument(
        "--t-switch",
        type=float,
        nargs="+",
        default=[100.0, 500.0, 1000.0, 5000.0, 10000.0],
        help="T_switch sweep (x-axis)",
    )
    args = parser.parse_args()

    result = run_figure(
        args.figure,
        sim_time=args.sim_time,
        seeds=tuple(args.seeds),
        t_switch_values=tuple(args.t_switch),
    )
    print(figure_report(result, figure=args.figure))
    print()
    print("shape validation against the paper's claims:")
    print(validate_figure(result, spread_tolerance=0.5))


if __name__ == "__main__":
    main()
