#!/usr/bin/env python3
"""Extending the library: plug in your own checkpointing protocol.

Implements a "lazy BCS" variant as a user would: identical to BCS
except a host defers the forced checkpoint until the *second* message
arriving with a higher index (trading consistency guarantees away --
which the consistency checker then demonstrates!).

The point of the example:

1. subclassing :class:`repro.protocols.base.CheckpointingProtocol`
   (five hooks, ``take()`` to record checkpoints),
2. evaluating the new protocol on the same traces as the built-ins
   through :mod:`repro.engine` (a factory override -- no registration
   needed),
3. letting ``repro.core.consistency`` judge the design -- lazy-BCS
   produces recovery lines with orphan messages, so its "savings" are
   bogus.  Protocol design needs the checker, not just the counter.

Run:  python examples/custom_protocol.py
"""

from repro import WorkloadConfig, generate_trace
from repro.core.consistency import annotate_replay, find_orphans
from repro.engine import RunSpec, execute
from repro.protocols.base import CheckpointingProtocol


class LazyBCSProtocol(CheckpointingProtocol):
    """BCS that ignores the first index-raising message (UNSOUND -- for
    demonstration)."""

    name = "LazyBCS"

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        self.sn = [0] * n_hosts
        self._pending = [False] * n_hosts  # saw one higher-index message
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    @property
    def piggyback_ints(self) -> int:
        return 1

    def on_send(self, host, dst, now):
        return self.sn[host]

    def on_receive(self, host, piggyback, src, now):
        if piggyback > self.sn[host]:
            if self._pending[host]:  # second strike: checkpoint
                self.sn[host] = piggyback
                self._pending[host] = False
                self.take(host, piggyback, "forced", now)
            else:
                self._pending[host] = True  # defer (this loses consistency!)

    def _basic(self, host, now):
        self.sn[host] += 1
        self._pending[host] = False
        self.take(host, self.sn[host], "basic", now)

    def on_cell_switch(self, host, now, new_cell):
        self._basic(host, now)

    def on_disconnect(self, host, now):
        self._basic(host, now)

    def recovery_line_indices(self):
        line_index = min(self.sn)
        out = {}
        for host in range(self.n_hosts):
            candidates = [
                c.index for c in self.checkpoints_of(host) if c.index >= line_index
            ]
            out[host] = min(candidates)
        return out


def main() -> None:
    config = WorkloadConfig(t_switch=500.0, p_switch=0.8, sim_time=5_000.0, seed=5)
    trace = generate_trace(config)

    print("checkpoint counts on a shared trace:")
    # An unregistered protocol plugs into the engine as a factory
    # override; it rides the same fused pass as the built-ins.
    run = execute(
        RunSpec(
            protocols=("BCS", "QBC", "LazyBCS"),
            trace=trace,
            factories={"LazyBCS": LazyBCSProtocol},
        )
    )
    for outcome in run.outcomes:
        print(f"  {outcome.name:>8}: N_tot={outcome.n_total}")

    # Now let the consistency checker judge the lazy variant.
    lazy = LazyBCSProtocol(config.n_hosts, config.n_mss)
    run = annotate_replay(trace, lazy)
    # same-index line, as BCS would build it:
    line_index = min(lazy.sn)
    line = {}
    for host in range(config.n_hosts):
        exact = run.latest_with_index(host, line_index)
        line[host] = exact or run.first_with_index_at_least(host, line_index)
    orphans = find_orphans(run, line)
    print(
        f"\nLazyBCS same-index line at index {line_index}: "
        f"{len(orphans)} orphan message(s) -> NOT a recovery line."
    )
    if orphans:
        m = orphans[0]
        print(
            f"  e.g. message {m.msg_id} (h{m.src} -> h{m.dst}) is received "
            "before the line but sent after it: after a rollback the "
            "receiver remembers a message nobody sent."
        )
    print(
        "\nMoral: fewer forced checkpoints only count when the consistency "
        "checker stays green (as it does for BCS/QBC, see the test suite)."
    )


if __name__ == "__main__":
    main()
