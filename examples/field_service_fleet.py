#!/usr/bin/env python3
"""Scenario: a field-service fleet with heterogeneous mobility.

A dispatch application runs on 10 handhelds: 3 couriers ride between
cells constantly (fast hosts), 7 technicians stay put for long stretches
(slow hosts), and everyone disconnects now and then (garages, elevators,
battery saving).  The fleet coordinator needs checkpointing so a crashed
handheld can resume its work order queue without replaying the day.

This is exactly the heterogeneous environment of the paper's Figures
5-6 (H = 30%, P_switch = 0.8): BCS lets the couriers' frequent basic
checkpoints drag *everyone's* sequence numbers up, forcing checkpoints
on the technicians; QBC's equivalence rule keeps the couriers from
advancing their indices while nobody depends on them.

Also reports the operational proxies the paper motivates: wireless
transmissions per host (battery) and checkpoint bytes written at the
support stations.

Run:  python examples/field_service_fleet.py
"""

from repro import WorkloadConfig, gain_percent
from repro.analysis.overhead import CostModel, estimate_overhead
from repro.engine import RunSpec, execute


def main() -> None:
    config = WorkloadConfig(
        n_hosts=10,
        n_mss=5,
        p_send=0.4,
        t_switch=2000.0,  # technicians: ~2000 time units per site
        heterogeneity=0.3,  # 30% couriers at t_switch / 10
        p_switch=0.8,  # 20% of moves are disconnections
        sim_time=10_000.0,
        seed=11,
    )

    print("field-service fleet: 3 couriers (fast), 7 technicians (slow)\n")
    # online mode: each protocol runs inside its own simulation, its
    # checkpoints land in MSS stable storage, with a non-negligible
    # 0.05 time-unit checkpoint latency.
    result = execute(
        RunSpec(
            protocols=("TP", "BCS", "QBC"),
            workload=config,
            engine="online",
            ckpt_latency=0.05,
        )
    )
    outcomes = {o.name: o for o in result.outcomes}
    for outcome in result.outcomes:
        stats = outcome.metrics.stats
        stations = outcome.online.system.stations
        stored = sum(len(s.storage) for s in stations)
        stored_bytes = sum(s.storage.bytes_written for s in stations)
        print(
            f"{outcome.name:>4}: N_tot={stats.n_total:>5} "
            f"(forced={stats.n_forced:>5}) | stored records={stored:>5} "
            f"({stored_bytes / 1024:.0f} KiB at the MSSs)"
        )

    bcs = outcomes["BCS"].metrics.n_total
    qbc = outcomes["QBC"].metrics.n_total
    print(
        f"\nQBC saves the fleet {bcs - qbc} checkpoint transfers "
        f"({gain_percent(bcs, qbc):.1f}%) vs BCS -- battery and wireless "
        "bandwidth the couriers keep."
    )

    # per-host wireless activity (battery proxy) under QBC
    system = outcomes["QBC"].online.system
    print("\nwireless transmissions per handheld (QBC):")
    for host in system.hosts:
        kind = "courier" if host.host_id < 3 else "technician"
        print(
            f"  h{host.host_id} ({kind:>10}): {host.wireless_sends:>5} sends, "
            f"{host.handoff_count:>3} handoffs, "
            f"{host.disconnect_count:>2} disconnections"
        )

    per_cell = {
        ch.name: ch.stats.messages for ch in system.wireless
    }
    print("\nmessages per wireless cell (contention proxy):")
    for name, count in per_cell.items():
        print(f"  {name}: {count}")

    # battery/bandwidth projection under the explicit cost model
    # (incremental checkpointing, ~10% dirty state per interval)
    model = CostModel(checkpoint_bytes=256 * 1024, dirty_fraction=0.1)
    print("\nprojected fleet-wide cost (incremental checkpointing):")
    print(f"{'protocol':>9} {'wireless KiB':>13} {'ckpt KiB':>9} "
          f"{'piggyback KiB':>14} {'energy':>8}")
    for name, outcome in outcomes.items():
        row = estimate_overhead(outcome.metrics, model).as_row()
        print(
            f"{row['protocol']:>9} {row['wireless_KiB']:>13} "
            f"{row['checkpoint_KiB']:>9} {row['piggyback_KiB']:>14} "
            f"{row['energy']:>8}"
        )


if __name__ == "__main__":
    main()
