#!/usr/bin/env python3
"""Incremental checkpointing and MSS stable storage (paper Section 2.2).

Walks the storage substrate end to end without the workload layer:

1. a mobile host dirties pages as it computes,
2. checkpoints ship only the dirty pages (deltas) to the current MSS,
3. a cell switch makes the next delta's base live on another MSS, so
   the new MSS fetches it over the wired network,
4. the MSS reconstructs any checkpointed state by replaying the chain,
5. once the recovery line advances, obsolete records are garbage
   collected.

Run:  python examples/incremental_storage.py
"""

import numpy as np

from repro.core.consistency import max_consistent_index
from repro.des import Environment, RandomStreams
from repro.net import MobileSystem, NetworkParams
from repro.storage import (
    HostStateModel,
    IncrementalCheckpointer,
    collect_garbage,
)


def main() -> None:
    env = Environment()
    system = MobileSystem(
        env, NetworkParams(n_hosts=2, n_mss=3, initial_placement=[0, 1]),
        RandomStreams(1),
    )
    rng = np.random.default_rng(42)

    # The host's volatile state: 64 pages of 4 KiB.
    state = HostStateModel(host_id=0, n_pages=64, page_bytes=4096)
    ckpt = IncrementalCheckpointer(state)

    print("running 6 checkpoint intervals with ~6 dirty pages each...\n")
    full_bytes_equivalent = 0
    for index in range(6):
        if index:
            state.touch_random(rng, 6)
        shipped = ckpt.cut(index)
        pages = len(shipped) if isinstance(shipped, dict) else shipped.size_pages
        kind = "full" if isinstance(shipped, dict) else "delta"
        system.store_checkpoint(
            host_id=0,
            index=index,
            reason="basic",
            size_bytes=pages * state.page_bytes,
            incremental=(kind == "delta"),
            base_index=index - 1 if kind == "delta" else None,
        )
        full_bytes_equivalent += state.n_pages * state.page_bytes
        print(
            f"  checkpoint {index}: {kind}, {pages} pages "
            f"({pages * state.page_bytes / 1024:.0f} KiB over the air)"
        )
        if index == 2:
            system.switch_cell(0, 2)
            print("  -- host 0 switched to cell 2 (next delta fetches its base)")

    print(
        f"\nincremental shipping: {ckpt.bytes_shipped / 1024:.0f} KiB vs "
        f"{full_bytes_equivalent / 1024:.0f} KiB for full checkpoints "
        f"({100 * (1 - ckpt.bytes_shipped / full_bytes_equivalent):.0f}% saved)"
    )
    print(f"cross-MSS base fetches after handoff: {system.checkpoint_fetches}")

    # The MSS can materialise any checkpointed state.
    reconstructed = ckpt.reconstruct(4)
    print(
        f"reconstructed checkpoint 4: {len(reconstructed)} pages, "
        f"delta-chain length {ckpt.chain_length(4)}"
    )

    # Suppose the recovery line advanced to index 4 for every host:
    cutoff = max_consistent_index([4, 5])
    reclaimed = collect_garbage([s.storage for s in system.stations], cutoff)
    remaining = sum(len(s.storage) for s in system.stations)
    print(
        f"\nGC at line index {cutoff}: reclaimed {reclaimed / 1024:.0f} KiB, "
        f"{remaining} records remain"
    )


if __name__ == "__main__":
    main()
