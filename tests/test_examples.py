"""Smoke tests for the example scripts.

Full runs are slow (they use realistic horizons), so each example is
executed in-process with its workload shrunk via monkeypatching where
that is possible, and at minimum compiled + argument-parsed.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "paper_figures.py",
        "field_service_fleet.py",
        "failure_recovery.py",
        "custom_protocol.py",
        "incremental_storage.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_has_main(path):
    tree = ast.parse(path.read_text())
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names, f"{path.name} has no main()"
    compile(path.read_text(), str(path), "exec")


def test_paper_figures_cli_help():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "paper_figures.py"), "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0
    assert "figure" in proc.stdout


def test_incremental_storage_example_runs():
    """The fastest example end to end (no workload simulation)."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "incremental_storage.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "incremental shipping" in proc.stdout
    assert "GC at line index" in proc.stdout
