"""Shared pytest plumbing.

Provides a minimal fallback for the ``timeout`` marker when the
``pytest-timeout`` plugin is not installed: a ``SIGALRM``-based
per-test deadline (POSIX main thread only) so a hung sweep test fails
fast instead of stalling the whole run.  With ``pytest-timeout``
present (CI installs it) the real plugin takes over and this fallback
stays out of the way.
"""

import signal
import threading

import pytest

try:  # the real plugin wins when available
    import pytest_timeout  # noqa: F401

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False


def _fallback_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


if not HAVE_PYTEST_TIMEOUT:

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than "
            "SECONDS (fallback implementation; install pytest-timeout "
            "for the real one)",
        )

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        seconds = float(marker.args[0]) if marker and marker.args else 0.0
        if seconds <= 0 or not _fallback_usable():
            return (yield)

        def _expired(signum, frame):
            pytest.fail(
                f"test exceeded its {seconds:g}s timeout", pytrace=False
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
