"""Unit tests for MSS stable storage (repro.storage.stable)."""

import pytest

from repro.storage import CheckpointRecord, StableStorage


def rec(host, index, t=0.0, mss=0, **kw):
    return CheckpointRecord(host_id=host, index=index, taken_at=t, mss_id=mss, **kw)


def test_store_and_get():
    st = StableStorage(0)
    r = rec(1, 0, t=5.0, size_bytes=100)
    st.store(r)
    assert st.get(1, 0) is r
    assert (1, 0) in st
    assert len(st) == 1
    assert st.bytes_written == 100


def test_store_wrong_mss_rejected():
    st = StableStorage(0)
    with pytest.raises(ValueError):
        st.store(rec(1, 0, mss=3))


def test_latest_tracks_most_recent_by_time():
    st = StableStorage(0)
    st.store(rec(1, 0, t=1.0))
    st.store(rec(1, 1, t=9.0))
    st.store(rec(2, 0, t=5.0))
    assert st.latest(1).index == 1
    assert st.latest(2).index == 0
    assert st.latest(3) is None


def test_overwrite_same_key_replaces():
    """QBC replaces a checkpoint with an equivalent one at the same index."""
    st = StableStorage(0)
    st.store(rec(1, 2, t=1.0, reason="basic"))
    st.store(rec(1, 2, t=4.0, reason="basic"))
    assert len(st) == 1
    assert st.get(1, 2).taken_at == 4.0


def test_records_for_sorted_by_index():
    st = StableStorage(0)
    for idx, t in [(3, 30.0), (1, 10.0), (2, 20.0)]:
        st.store(rec(1, idx, t=t))
    assert [r.index for r in st.records_for(1)] == [1, 2, 3]


def test_remove_updates_latest():
    st = StableStorage(0)
    st.store(rec(1, 0, t=1.0))
    st.store(rec(1, 1, t=2.0))
    removed = st.remove(1, 1)
    assert removed.index == 1
    assert st.latest(1).index == 0
    assert st.remove(1, 99) is None


def test_remove_last_record_clears_latest():
    st = StableStorage(0)
    st.store(rec(1, 0))
    st.remove(1, 0)
    assert st.latest(1) is None


def test_serve_fetch_counts():
    st = StableStorage(0)
    st.store(rec(1, 0))
    assert st.serve_fetch(1, 0) is not None
    assert st.serve_fetch(1, 5) is None
    assert st.fetches_served == 1


def test_all_records_ordering():
    st = StableStorage(0)
    st.store(rec(2, 0))
    st.store(rec(1, 1))
    st.store(rec(1, 0))
    assert [(r.host_id, r.index) for r in st.all_records()] == [
        (1, 0),
        (1, 1),
        (2, 0),
    ]
