"""Unit tests for incremental checkpointing (repro.storage.incremental)."""

import numpy as np
import pytest

from repro.storage import HostStateModel, IncrementalCheckpointer


def test_state_touch_and_dirty_tracking():
    st = HostStateModel(0, n_pages=8)
    st.cut_delta(0, None)  # clears the initial all-dirty set
    assert st.dirty_pages == set()
    st.touch(3)
    st.touch(3)
    st.touch(5)
    assert st.dirty_pages == {3, 5}


def test_touch_out_of_range():
    st = HostStateModel(0, n_pages=4)
    with pytest.raises(IndexError):
        st.touch(4)


def test_touch_random_uses_rng():
    st = HostStateModel(0, n_pages=16)
    st.cut_delta(0, None)
    st.touch_random(np.random.default_rng(0), count=10)
    assert 1 <= len(st.dirty_pages) <= 10


def test_first_cut_is_full_snapshot():
    st = HostStateModel(0, n_pages=4)
    ck = IncrementalCheckpointer(st)
    shipped = ck.cut(0)
    assert isinstance(shipped, dict) and len(shipped) == 4
    assert ck.bytes_shipped == 4 * st.page_bytes


def test_subsequent_cuts_ship_only_dirty_pages():
    st = HostStateModel(0, n_pages=8)
    ck = IncrementalCheckpointer(st)
    ck.cut(0)
    st.touch(2)
    st.touch(6)
    delta = ck.cut(1)
    assert delta.size_pages == 2
    assert set(delta.pages) == {2, 6}


def test_reconstruct_walks_delta_chain():
    st = HostStateModel(0, n_pages=4)
    ck = IncrementalCheckpointer(st)
    ck.cut(0)
    st.touch(1)
    ck.cut(1)
    st.touch(1)
    st.touch(2)
    ck.cut(2)
    state2 = ck.reconstruct(2)
    assert state2[1] == 2  # touched twice
    assert state2[2] == 1
    assert state2[0] == 0
    # earlier checkpoints unaffected by later writes
    assert ck.reconstruct(1)[2] == 0


def test_reconstruct_unknown_index():
    ck = IncrementalCheckpointer(HostStateModel(0, n_pages=2))
    ck.cut(0)
    with pytest.raises(KeyError):
        ck.reconstruct(42)


def test_chain_length_and_periodic_full():
    st = HostStateModel(0, n_pages=4)
    ck = IncrementalCheckpointer(st, full_every=3)
    for i in range(6):
        st.touch(0)
        ck.cut(i)
    assert ck.chain_length(0) == 0  # full
    assert ck.chain_length(2) == 2
    assert ck.chain_length(3) == 0  # periodic full
    assert ck.chain_length(5) == 2


def test_cut_indices_must_increase():
    ck = IncrementalCheckpointer(HostStateModel(0, n_pages=2))
    ck.cut(5)
    with pytest.raises(ValueError):
        ck.cut(5)
    with pytest.raises(ValueError):
        ck.cut(3)


def test_incremental_saves_bytes_vs_full():
    """The point of Section 2.2: deltas ship less than full snapshots."""
    st_inc = HostStateModel(0, n_pages=100)
    inc = IncrementalCheckpointer(st_inc)
    st_full = HostStateModel(1, n_pages=100)
    rng = np.random.default_rng(7)
    full_bytes = 0
    inc.cut(0)
    full_bytes += 100 * st_full.page_bytes
    for i in range(1, 10):
        st_inc.touch_random(rng, 5)
        inc.cut(i)
        full_bytes += 100 * st_full.page_bytes
    assert inc.bytes_shipped < full_bytes / 3
