"""Unit tests for checkpoint garbage collection (repro.storage.gc)."""

from repro.storage import (
    CheckpointRecord,
    StableStorage,
    collect_garbage,
    obsolete_records,
)


def rec(host, index, mss=0, size=10):
    return CheckpointRecord(
        host_id=host, index=index, taken_at=float(index), mss_id=mss, size_bytes=size
    )


def test_obsolete_keeps_newest_at_or_below_cutoff():
    records = [rec(0, i) for i in range(5)]
    victims = obsolete_records(records, cutoff_index=3)
    assert sorted(v.index for v in victims) == [0, 1, 2]  # keep 3 (line) and 4


def test_obsolete_nothing_when_single_eligible():
    records = [rec(0, 2), rec(0, 5)]
    assert obsolete_records(records, cutoff_index=3) == []


def test_obsolete_per_host_independent():
    records = [rec(0, 0), rec(0, 1), rec(1, 1)]
    victims = obsolete_records(records, cutoff_index=1)
    assert [(v.host_id, v.index) for v in victims] == [(0, 0)]


def test_collect_garbage_reclaims_bytes():
    st = StableStorage(0)
    for i in range(4):
        st.store(rec(0, i, size=100))
    reclaimed = collect_garbage([st], cutoff_index=3)
    assert reclaimed == 300
    assert st.get(0, 3) is not None
    assert st.get(0, 0) is None


def test_collect_garbage_across_storages():
    """A host's records spread over MSSs must be GC'd globally: storage A
    holds index 2, storage B index 3; with cutoff 5 only index 3 stays."""
    a, b = StableStorage(0), StableStorage(1)
    a.store(rec(0, 2, mss=0, size=50))
    b.store(rec(0, 3, mss=1, size=50))
    reclaimed = collect_garbage([a, b], cutoff_index=5)
    assert reclaimed == 50
    assert a.get(0, 2) is None
    assert b.get(0, 3) is not None


def test_collect_garbage_no_victims():
    st = StableStorage(0)
    st.store(rec(0, 7))
    assert collect_garbage([st], cutoff_index=3) == 0
    assert st.get(0, 7) is not None
