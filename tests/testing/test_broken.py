"""Negative tests: each deliberately broken protocol is caught by the
battery that targets its defect class.

This is the kit's mutation coverage -- proof the batteries check what
they claim to check, not just that correct protocols pass them.
"""

import pytest

from repro.testing import ConformanceFailure, check_conformance, run_battery
from repro.testing.broken import (
    BROKEN_FACTORIES,
    LyingCounterProtocol,
    NonMonotoneIndexProtocol,
    OrphanLineProtocol,
)


def test_orphan_line_is_caught_by_the_consistency_oracle():
    with pytest.raises(ConformanceFailure) as exc:
        run_battery(
            "consistency-oracle",
            "BROKEN-ORPHAN",
            factories={"BROKEN-ORPHAN": OrphanLineProtocol},
        )
    assert exc.value.battery == "consistency-oracle"
    assert "orphan" in exc.value.detail


def test_non_monotone_index_is_caught_by_the_audit():
    with pytest.raises(ConformanceFailure) as exc:
        run_battery(
            "audit-cleanliness",
            "BROKEN-MONOTONE",
            factories={"BROKEN-MONOTONE": NonMonotoneIndexProtocol},
        )
    assert exc.value.battery == "audit-cleanliness"
    assert "index-monotonicity" in exc.value.detail


def test_bogus_recovery_line_cannot_be_materialised():
    with pytest.raises(ConformanceFailure) as exc:
        run_battery(
            "recovery-line",
            "BROKEN-LINE",
            factories=BROKEN_FACTORIES,
        )
    assert exc.value.battery == "recovery-line"
    assert "materialised" in exc.value.detail


def test_lying_counters_break_signature_stability():
    with pytest.raises(ConformanceFailure) as exc:
        run_battery(
            "signature-stability",
            "BROKEN-COUNTERS",
            factories={"BROKEN-COUNTERS": LyingCounterProtocol},
        )
    assert exc.value.battery == "signature-stability"
    assert "disagree" in exc.value.detail


def test_every_broken_fixture_fails_overall_conformance():
    for name in BROKEN_FACTORIES:
        report = check_conformance(name, factories=BROKEN_FACTORIES)
        assert not report.ok, f"{name} slipped through:\n{report.summary()}"


def test_broken_fixtures_are_not_registered():
    from repro.engine import known_names

    assert not set(BROKEN_FACTORIES) & set(known_names())
