"""Every registered protocol passes the conformance kit.

This is the acceptance gate of the plugin mechanism: whatever the
registry holds when this module is collected -- builtins, the two
extension protocols (FDAS, TK), and any plugin distribution installed
in the environment (CI installs examples/repro-plugin-example) -- goes
through the full battery set.
"""

from repro.testing import conformance_suite

TestAllRegisteredProtocols = conformance_suite(max_examples=8)
