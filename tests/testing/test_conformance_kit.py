"""The conformance kit itself: battery mechanics, report shape, the
pytest front end, and capability-aware skipping."""

import pathlib
import sys

import pytest

from repro.testing import (
    BATTERIES,
    BatterySkipped,
    ConformanceFailure,
    check_conformance,
    conformance_suite,
    run_battery,
)

EXAMPLE_PLUGIN_SRC = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "repro-plugin-example"
    / "src"
)


def test_battery_names_are_the_documented_six():
    assert BATTERIES == (
        "registration",
        "signature-stability",
        "engine-equivalence",
        "recovery-line",
        "consistency-oracle",
        "audit-cleanliness",
    )


def test_unknown_battery_is_a_keyerror():
    with pytest.raises(KeyError, match="unknown battery"):
        run_battery("no-such-battery", "BCS")


def test_unknown_protocol_fails_registration_with_suggestions():
    with pytest.raises(ConformanceFailure) as exc:
        run_battery("registration", "BSC")
    assert exc.value.battery == "registration"
    assert "did you mean" in exc.value.detail


def test_every_battery_passes_for_bcs():
    for battery in BATTERIES:
        detail = run_battery(battery, "BCS")
        assert isinstance(detail, str) and detail


def test_coordinated_baseline_skips_replay_batteries():
    assert "coordinated" in run_battery("registration", "KT")
    run_battery("signature-stability", "KT")  # online determinism
    for battery in (
        "engine-equivalence",
        "recovery-line",
        "consistency-oracle",
        "audit-cleanliness",
    ):
        with pytest.raises(BatterySkipped):
            run_battery(battery, "KT")


def test_rdt_protocol_skips_line_batteries_but_audits_clean():
    # FDAS promises no on-the-fly line (RDT family) -- the line
    # batteries skip; everything else must hold.
    for battery in ("recovery-line", "consistency-oracle"):
        with pytest.raises(BatterySkipped, match="no on-the-fly"):
            run_battery(battery, "FDAS")
    run_battery("engine-equivalence", "FDAS")
    run_battery("audit-cleanliness", "FDAS")


def test_check_conformance_report_shape():
    report = check_conformance("QBC")
    assert report.protocol == "QBC"
    assert report.ok
    assert not report.failures
    assert tuple(r.battery for r in report.results) == BATTERIES
    assert all(r.status in ("passed", "skipped") for r in report.results)
    summary = report.summary()
    assert "QBC" in summary and "passed" in summary


def test_check_conformance_collects_failures_without_raising():
    from repro.testing.broken import BROKEN_FACTORIES

    report = check_conformance("BROKEN-LINE", factories=BROKEN_FACTORIES)
    assert not report.ok
    assert any(r.battery == "recovery-line" for r in report.failures)


def test_conformance_suite_builds_a_collectable_class():
    suite = conformance_suite("BCS", "KT")
    assert suite.PROTOCOLS == ("BCS", "KT")
    test_names = [n for n in vars(suite) if n.startswith("test_")]
    # one test per battery + the hypothesis property test
    assert len(test_names) == len(BATTERIES) + 1
    assert "test_property_random_traces_stay_sound" in test_names


def test_conformance_suite_defaults_to_every_registered_protocol():
    from repro.engine import known_names

    suite = conformance_suite()
    assert suite.PROTOCOLS == tuple(known_names())


def test_example_plugin_class_passes_via_factory_injection():
    """The example distribution's protocol, before any packaging."""
    sys.path.insert(0, str(EXAMPLE_PLUGIN_SRC))
    try:
        from repro_plugin_example.protocol import StrideBCSProtocol
    finally:
        sys.path.remove(str(EXAMPLE_PLUGIN_SRC))
    report = check_conformance(
        "XBCS", factories={"XBCS": StrideBCSProtocol}
    )
    assert report.ok, report.summary()
    passed = {r.battery for r in report.results if r.status == "passed"}
    # stride-2 BCS keeps the equal-index line sound: the line batteries
    # must actually run (not skip)
    assert {"recovery-line", "consistency-oracle"} <= passed


def test_non_fusable_protocol_gets_the_structural_audit():
    from repro.protocols.bcs import BCSProtocol

    class UnfusedBCS(BCSProtocol):
        fusable = False
        vectorizable = False

    with pytest.raises(BatterySkipped, match="not fusable"):
        run_battery(
            "engine-equivalence", "UNFUSED", factories={"UNFUSED": UnfusedBCS}
        )
    detail = run_battery(
        "audit-cleanliness", "UNFUSED", factories={"UNFUSED": UnfusedBCS}
    )
    assert "structural audit" in detail


def test_conformance_suite_merges_factory_names():
    from repro.testing.broken import OrphanLineProtocol

    suite = conformance_suite(
        "BCS", factories={"BROKEN-ORPHAN": OrphanLineProtocol}
    )
    assert suite.PROTOCOLS == ("BCS", "BROKEN-ORPHAN")
