"""Plugin discovery: entry points, namespace packages, and the loader
rules (coherence, collision, atomicity, fault isolation).

Entry-point discovery is tested without installing anything: a fake
``.dist-info`` (METADATA + entry_points.txt) written into a tmp dir on
``sys.path`` is all ``importlib.metadata`` needs.  Namespace discovery
uses a tmp ``repro_protocols/`` directory (no ``__init__.py``).
"""

import sys
import textwrap

import pytest

from repro.engine import (
    PluginCollisionError,
    PluginError,
    PluginProtocolError,
    discover_plugins,
    known_names,
    plugin_errors,
    protocol_origin,
    resolve_protocols,
)
from repro.engine.plugins import reset_plugins
from repro.protocols.base import registry as class_registry


@pytest.fixture
def plugin_path(tmp_path, monkeypatch):
    """A tmp dir on sys.path, with full plugin-state cleanup after."""
    monkeypatch.syspath_prepend(str(tmp_path))
    # Both metadata and module-import caches must forget the tmp dir.
    import importlib

    importlib.invalidate_caches()
    yield tmp_path
    # Drop the tmp dir *before* resetting, so the lazy re-discovery the
    # next registry use triggers cannot resurrect the fake plugins.
    sys.path.remove(str(tmp_path))
    reset_plugins()
    for name in [m for m in sys.modules if m.startswith("repro_protocols")]:
        del sys.modules[name]
    importlib.invalidate_caches()


def _write_dist(tmp_path, dist: str, entry_points: str, module_code: dict):
    """Fake an installed distribution: dist-info + importable modules."""
    info = tmp_path / f"{dist}-1.0.dist-info"
    info.mkdir()
    (info / "METADATA").write_text(
        f"Metadata-Version: 2.1\nName: {dist}\nVersion: 1.0\n"
    )
    (info / "entry_points.txt").write_text(entry_points)
    for module, code in module_code.items():
        (tmp_path / f"{module}.py").write_text(textwrap.dedent(code))


GOOD_PLUGIN = """
    from repro.protocols.bcs import BCSProtocol

    class PluginBCS(BCSProtocol):
        vectorizable = False
"""


def test_entry_point_class_is_registered_under_entry_name(plugin_path):
    _write_dist(
        plugin_path,
        "demo-plugin",
        "[repro.protocols]\nDEMO = demo_mod:PluginBCS\n",
        {"demo_mod": GOOD_PLUGIN},
    )
    assert discover_plugins(force=True, strict=True) >= 1
    assert "DEMO" in known_names()
    origin = protocol_origin("DEMO")
    assert origin.kind == "plugin"
    assert "demo" in str(origin)
    # and it resolves like any builtin
    (entry,) = resolve_protocols(["DEMO"], require="fusable")
    assert entry.capabilities.replayable


def test_namespace_module_registers_via_decorator(plugin_path):
    ns = plugin_path / "repro_protocols"
    ns.mkdir()
    (ns / "dropin.py").write_text(
        textwrap.dedent(
            """
            from repro.protocols.base import register
            from repro.protocols.bcs import BCSProtocol

            @register("DROPIN")
            class DropinProtocol(BCSProtocol):
                vectorizable = False
            """
        )
    )
    (ns / "_helper.py").write_text("raise AssertionError('must be skipped')")
    discover_plugins(force=True, strict=True)
    assert "DROPIN" in known_names()
    origin = protocol_origin("DROPIN")
    assert origin.kind == "namespace"
    assert origin.source == "repro_protocols.dropin"


def test_shadowing_builtin_is_a_collision(plugin_path):
    _write_dist(
        plugin_path,
        "shady",
        "[repro.protocols]\nBCS = shady_mod:PluginBCS\n",
        {"shady_mod": GOOD_PLUGIN},
    )
    with pytest.raises(PluginCollisionError) as exc:
        discover_plugins(force=True, strict=True)
    assert exc.value.name == "BCS"
    assert "must not shadow" in str(exc.value)
    # atomicity: the builtin is untouched
    from repro.protocols.bcs import BCSProtocol

    assert class_registry["BCS"] is BCSProtocol


def test_non_protocol_entry_point_is_rejected(plugin_path):
    _write_dist(
        plugin_path,
        "junk",
        "[repro.protocols]\nJUNK = junk_mod:NotAProtocol\n",
        {"junk_mod": "class NotAProtocol:\n    pass\n"},
    )
    with pytest.raises(PluginProtocolError):
        discover_plugins(force=True, strict=True)
    assert "JUNK" not in known_names()


def test_broken_plugin_is_fault_isolated_by_default(plugin_path):
    _write_dist(
        plugin_path,
        "mixed",
        "[repro.protocols]\n"
        "GOOD = good_mod:PluginBCS\n"
        "BAD = does_not_exist:Nope\n",
        {"good_mod": GOOD_PLUGIN},
    )
    with pytest.warns(UserWarning, match="failed to load"):
        discover_plugins(force=True)
    # the broken one is reported, the good one still landed
    assert any(isinstance(e, PluginError) for e in plugin_errors())
    assert "GOOD" in known_names()
    assert "BAD" not in known_names()


def test_module_registering_nothing_is_an_error(plugin_path):
    ns = plugin_path / "repro_protocols"
    ns.mkdir()
    (ns / "empty.py").write_text("x = 1\n")
    with pytest.raises(PluginProtocolError, match="registered no protocols"):
        discover_plugins(force=True, strict=True)


def test_reset_plugins_unregisters_only_plugins(plugin_path):
    _write_dist(
        plugin_path,
        "demo-plugin",
        "[repro.protocols]\nDEMO = demo_mod:PluginBCS\n",
        {"demo_mod": GOOD_PLUGIN},
    )
    discover_plugins(force=True, strict=True)
    assert "DEMO" in known_names()
    reset_plugins()
    # Check the registry dict directly: known_names() would lazily
    # re-discover the fake dist (still on sys.path inside this test).
    assert "DEMO" not in class_registry
    assert "BCS" in class_registry


def test_origin_of_runtime_registration():
    from repro.engine.plugins import ensure_discovered
    from repro.protocols.base import register
    from repro.protocols.bcs import BCSProtocol

    ensure_discovered()

    @register("RUNTIME-TMP")
    class RuntimeProtocol(BCSProtocol):
        vectorizable = False

    try:
        assert protocol_origin("RUNTIME-TMP").kind == "runtime"
        assert protocol_origin("TP").kind == "builtin"
    finally:
        del class_registry["RUNTIME-TMP"]


def test_origin_of_unregistered_name_raises():
    with pytest.raises(KeyError):
        protocol_origin("NO-SUCH-PROTOCOL")
