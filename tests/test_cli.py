"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_compare_runs(capsys):
    rc = main(
        [
            "compare",
            "--sim-time",
            "400",
            "--protocols",
            "TP",
            "BCS",
            "QBC",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "TP" in out and "BCS" in out and "QBC" in out
    assert "N_tot" in out


def test_compare_unknown_protocol(capsys):
    rc = main(["compare", "--sim-time", "200", "--protocols", "NOPE"])
    assert rc == 2
    assert "unknown protocol" in capsys.readouterr().out


def test_trace_and_replay_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "t.npz")
    rc = main(["trace", "--sim-time", "400", "--seed", "3", "--out", path])
    assert rc == 0
    rc = main(["replay", "--trace", path, "--protocols", "BCS", "QBC"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "BCS" in out and "QBC" in out


def test_replay_unknown_protocol(tmp_path, capsys):
    path = str(tmp_path / "t.npz")
    main(["trace", "--sim-time", "200", "--out", path])
    rc = main(["replay", "--trace", path, "--protocols", "XX"])
    assert rc == 2


def test_recovery_protocol_line(capsys):
    rc = main(
        ["recovery", "--sim-time", "400", "--protocol", "QBC", "--failed-host", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "undone events total" in out
    assert "protocol recovery line" in out


def test_recovery_uncoordinated_falls_back_to_search(capsys):
    rc = main(
        ["recovery", "--sim-time", "400", "--protocol", "UNC", "--failed-host", "0"]
    )
    assert rc == 0
    assert "rollback-propagation search" in capsys.readouterr().out


def test_figure_subcommand_validates(capsys):
    rc = main(
        [
            "figure",
            "1",
            "--sim-time",
            "800",
            "--seeds",
            "0",
            "--sweep",
            "100",
            "1000",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "[PASS]" in out


def test_failures_subcommand(capsys):
    rc = main(
        [
            "failures",
            "--sim-time",
            "800",
            "--protocol",
            "BCS",
            "--mean-interval",
            "200",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "failures" in out and "availability" in out


def test_figure_requires_valid_number():
    with pytest.raises(SystemExit):
        main(["figure", "9"])


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])
