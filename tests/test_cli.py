"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_compare_runs(capsys):
    rc = main(
        [
            "compare",
            "--sim-time",
            "400",
            "--protocols",
            "TP",
            "BCS",
            "QBC",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "TP" in out and "BCS" in out and "QBC" in out
    assert "N_tot" in out


def test_compare_unknown_protocol(capsys):
    rc = main(["compare", "--sim-time", "200", "--protocols", "NOPE"])
    assert rc == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_trace_and_replay_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "t.npz")
    rc = main(["trace", "--sim-time", "400", "--seed", "3", "--out", path])
    assert rc == 0
    rc = main(["replay", "--trace", path, "--protocols", "BCS", "QBC"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "BCS" in out and "QBC" in out


def test_replay_unknown_protocol(tmp_path, capsys):
    path = str(tmp_path / "t.npz")
    main(["trace", "--sim-time", "200", "--out", path])
    rc = main(["replay", "--trace", path, "--protocols", "XX"])
    assert rc == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_recovery_unknown_protocol_exits_2(capsys):
    rc = main(["recovery", "--sim-time", "200", "--protocol", "NOPE"])
    assert rc == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_failures_unknown_protocol_exits_2(capsys):
    rc = main(["failures", "--sim-time", "200", "--protocol", "NOPE"])
    assert rc == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_coordinated_protocol_on_replay_subcommands_exits_2(capsys):
    # The coordinated baselines resolve (they are registered) but lack
    # the replayable capability; every replay-backed subcommand reports
    # the same typed CapabilityError as a usage error.
    for argv in (
        ["compare", "--sim-time", "200", "--protocols", "CL"],
        ["recovery", "--sim-time", "200", "--protocol", "KT"],
        ["failures", "--sim-time", "200", "--protocol", "PS"],
    ):
        rc = main(argv)
        assert rc == 2, argv
        err = capsys.readouterr().err
        assert "does not support 'replayable'" in err, argv


def test_recovery_protocol_line(capsys):
    rc = main(
        ["recovery", "--sim-time", "400", "--protocol", "QBC", "--failed-host", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "undone events total" in out
    assert "protocol recovery line" in out


def test_recovery_uncoordinated_falls_back_to_search(capsys):
    rc = main(
        ["recovery", "--sim-time", "400", "--protocol", "UNC", "--failed-host", "0"]
    )
    assert rc == 0
    assert "rollback-propagation search" in capsys.readouterr().out


def test_figure_subcommand_validates(capsys):
    rc = main(
        [
            "figure",
            "1",
            "--sim-time",
            "800",
            "--seeds",
            "0",
            "--sweep",
            "100",
            "1000",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "[PASS]" in out


def test_failures_subcommand(capsys):
    rc = main(
        [
            "failures",
            "--sim-time",
            "800",
            "--protocol",
            "BCS",
            "--mean-interval",
            "200",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "failures" in out and "availability" in out


def test_figure_requires_valid_number():
    with pytest.raises(SystemExit):
        main(["figure", "9"])


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# standardized exit codes: 0 ok, 1 failure, 2 usage, 130 interrupted
# ----------------------------------------------------------------------
def _fail_one_cell(monkeypatch, t_switch, seed):
    """Patch the task body so exactly one (point, seed) cell errors."""
    from repro.experiments import runner as runner_mod

    real = runner_mod._evaluate_task

    def sabotaged(*args):
        if (args[1], args[2]) == (t_switch, seed):
            raise RuntimeError("injected task failure")
        return real(*args)

    monkeypatch.setattr(runner_mod, "_evaluate_task", sabotaged)


def test_figure_exit_code_1_on_quarantined_hole(monkeypatch, capsys):
    _fail_one_cell(monkeypatch, 500.0, 1)
    rc = main(
        [
            "figure", "1",
            "--sim-time", "400",
            "--seeds", "0", "1",
            "--sweep", "100", "500",
            "--retries", "0",
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert "protocol-error" in out


def test_figure_exit_code_130_on_interrupt(monkeypatch, capsys):
    import repro.cli as cli

    def interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_figure", interrupted)
    rc = main(["figure", "1"])
    assert rc == 130
    assert "interrupted" in capsys.readouterr().err


def test_figure_usage_errors_exit_2():
    with pytest.raises(SystemExit) as exc:
        main(["figure", "9"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_figure_journal_and_resume_roundtrip(tmp_path, capsys):
    journal = str(tmp_path / "sweep.jsonl")
    args = [
        "figure", "1",
        "--sim-time", "400",
        "--seeds", "0",
        "--sweep", "100", "1000",
    ]
    assert main(args + ["--journal", journal]) == 0
    # Resume against the complete journal: nothing re-executes, the
    # figure is rebuilt from the ledger, and the exit code stays 0.
    assert main(args + ["--resume", journal]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "[PASS]" in out


def test_audit_exit_code_0_when_clean(capsys):
    rc = main(
        [
            "audit",
            "--sim-time", "400",
            "--seeds", "0",
            "--sweep", "100", "1000",
            "--protocols", "BCS",
        ]
    )
    assert rc == 0
    assert "audit" in capsys.readouterr().out.lower()


def test_audit_exit_code_1_on_quarantined_hole(monkeypatch, capsys):
    _fail_one_cell(monkeypatch, 1000.0, 0)
    rc = main(
        [
            "audit",
            "--sim-time", "400",
            "--seeds", "0",
            "--sweep", "100", "1000",
            "--protocols", "BCS",
        ]
    )
    assert rc == 1


def test_audit_unknown_protocol_exits_2(capsys):
    rc = main(["audit", "--protocols", "NOPE", "--sim-time", "200"])
    assert rc == 2
    assert "unknown protocols" in capsys.readouterr().err


def test_figure_observability_artifacts(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    stream = tmp_path / "stream.jsonl"
    heartbeat = tmp_path / "hb.jsonl"
    rc = main([
        "figure", "1", "--sim-time", "300", "--seeds", "0",
        "--sweep", "100", "800", "--no-cache", "--progress",
        "--trace", str(trace), "--metrics", str(metrics),
        "--stream", str(stream), "--heartbeat", str(heartbeat),
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "tasks/s" in captured.err  # live progress line on stderr
    for label, path in (
        ("trace-event JSON", trace), ("metrics", metrics),
        ("outcome stream", stream), ("heartbeats", heartbeat),
    ):
        assert f"{label} written to {path}" in captured.out
        assert path.exists()
    import json

    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]  # Perfetto-loadable trace
    assert "# TYPE repro_engine_runs_total counter" in metrics.read_text()
    outcomes = [json.loads(l) for l in stream.read_text().splitlines()]
    assert any(l.get("kind") == "outcome" for l in outcomes)


def test_figure_no_progress_flag_silences_stderr(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    rc = main([
        "figure", "1", "--sim-time", "300", "--seeds", "0",
        "--sweep", "100", "800", "--no-cache", "--no-progress",
    ])
    assert rc == 0
    assert "tasks/s" not in capsys.readouterr().err


def test_tail_once_summarizes_stream(tmp_path, capsys):
    path = tmp_path / "tel.jsonl"
    path.write_text(
        '{"kind": "heartbeat", "done": 1, "total": 2, '
        '"rate_per_s": 0.5, "eta_s": 2.0}\n'
        '{"kind": "outcome", "protocol": "TP", "n_total": 5}\n'
        '{"torn line\n'
    )
    rc = main(["tail", str(path), "--once"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 outcome(s), 1 heartbeat(s)" in out
    assert "last heartbeat: 1/2 tasks" in out


def test_tail_once_missing_file_exits_2(tmp_path, capsys):
    rc = main(["tail", str(tmp_path / "absent.jsonl"), "--once"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_protocols_lists_every_registered_protocol(capsys):
    rc = main(["protocols"])
    assert rc == 0
    out = capsys.readouterr().out
    from repro.engine import known_names

    for name in known_names():
        assert name in out
    assert "builtin" in out
    assert "coordinated" in out and "vectorizable" in out


def test_protocols_json_output(capsys):
    import json

    rc = main(["protocols", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    names = {p["name"] for p in payload["protocols"]}
    assert {"BCS", "FDAS", "TK"} <= names
    assert payload["plugin_errors"] == []
    (bcs,) = [p for p in payload["protocols"] if p["name"] == "BCS"]
    assert bcs["origin"] == "builtin"
    assert "replayable" in bcs["capabilities"]


def test_unknown_protocol_suggests_correction(capsys):
    rc = main(["compare", "--sim-time", "200", "--protocols", "BSC"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "'BCS'" in err


# ----------------------------------------------------------------------
# conformance
# ----------------------------------------------------------------------
def test_conformance_passing_protocol_exits_0(capsys):
    rc = main(["conformance", "TP"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "conformance TP:" in out
    assert "passed" in out
    assert "0 failure(s)" in out


def test_conformance_json_output(capsys):
    import json

    rc = main(["conformance", "TP", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    (report,) = payload["reports"]
    assert report["protocol"] == "TP"
    assert {r["status"] for r in report["results"]} <= {
        "passed",
        "skipped",
        "failed",
    }


def test_conformance_unknown_protocol_suggests_and_exits_2(capsys):
    rc = main(["conformance", "TQ"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown protocol 'TQ'" in err
    assert "did you mean" in err and "TP" in err
    assert "known protocols:" in err


# ----------------------------------------------------------------------
# sharded dispatch
# ----------------------------------------------------------------------
def test_shard_worker_requires_authkey(capsys, monkeypatch):
    from repro.experiments.sharded import AUTHKEY_ENV

    monkeypatch.delenv(AUTHKEY_ENV, raising=False)
    rc = main(["shard-worker", "--connect", "127.0.0.1:9000"])
    assert rc == 2
    assert AUTHKEY_ENV in capsys.readouterr().err


def test_shard_worker_bad_address_exits_2(capsys, monkeypatch):
    from repro.experiments.sharded import AUTHKEY_ENV

    monkeypatch.setenv(AUTHKEY_ENV, "00" * 16)
    rc = main(["shard-worker", "--connect", "not-an-address"])
    assert rc == 2
    assert "host:port" in capsys.readouterr().err


def test_shard_worker_unreachable_coordinator_exits_1(capsys, monkeypatch):
    from repro.experiments.sharded import AUTHKEY_ENV

    monkeypatch.setenv(AUTHKEY_ENV, "00" * 16)
    rc = main(
        ["shard-worker", "--connect", "127.0.0.1:1", "--connect-timeout",
         "0.2"]
    )
    assert rc == 1
    assert "could not reach coordinator" in capsys.readouterr().err


def test_figure_shards_flag_runs_sharded_sweep(capsys):
    rc = main(
        [
            "figure", "2",
            "--sim-time", "300",
            "--seeds", "0", "1",
            "--sweep", "100", "800",
            "--shards", "2",
            "--no-progress",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_dash_once_renders_frame(tmp_path, capsys):
    path = tmp_path / "stream.jsonl"
    path.write_text(
        '{"kind": "heartbeat", "done": 1, "total": 4, "rate_per_s": 2.0}\n'
        '{"kind": "outcome", "protocol": "TP", "n_forced": 3, '
        '"n_total": 10}\n'
    )
    rc = main(["dash", str(path), "--once"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "repro sweep dashboard" in out
    assert "1/4 cells" in out
    assert "forced-checkpoint rate" in out


def test_dash_once_missing_file_exits_2(tmp_path, capsys):
    rc = main(["dash", str(tmp_path / "absent.jsonl"), "--once"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_figure_fleet_flags_write_exporter_artifacts(tmp_path, capsys):
    import json

    prom = tmp_path / "fleet.prom"
    otlp = tmp_path / "fleet-otlp.json"
    rc = main([
        "figure", "1", "--sim-time", "300", "--seeds", "0",
        "--sweep", "100", "800", "--no-cache", "--no-progress",
        "--shards", "2",
        "--prom", str(prom), "--otlp", str(otlp),
        "--run-id", "cli-fleet",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fleet metrics (prometheus)" in out
    assert "fleet OTLP-JSON" in out
    text = prom.read_text()
    assert 'run_id="cli-fleet"' in text
    payload = json.loads(otlp.read_text())
    assert "resourceMetrics" in payload
