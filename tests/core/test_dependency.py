"""Tests for Z-path/Z-cycle analysis (repro.core.dependency)."""

from hypothesis import given, settings

from repro.core.consistency import annotate_replay
from repro.core.dependency import ZPathAnalysis
from repro.core.trace import EventType, build_trace
from repro.protocols import BCSProtocol, QBCProtocol, UncoordinatedProtocol
from tests.core.test_properties import traces

S, R, C = EventType.SEND, EventType.RECEIVE, EventType.CELL_SWITCH


def test_interval_of_maps_positions():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, C, 0, -1, 0, 1),
            (3.0, S, 0, 2, 1),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    z = ZPathAnalysis(run)
    # host 0: pos0=initial ckpt, pos1=send, pos2=basic ckpt, pos3=send
    assert z.interval_of(0, 1) == 0
    assert z.interval_of(0, 3) == 1


def test_causal_z_path_exists():
    trace = build_trace(
        3,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, R, 1, 1, 0),
            (3.0, S, 1, 2, 2),
            (4.0, R, 2, 2, 1),
            (5.0, C, 2, -1, 0, 1),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(3))
    z = ZPathAnalysis(run)
    a = run.checkpoints[0][0]  # h0 initial
    b = run.checkpoints[2][-1]  # h2 after receiving
    assert z.has_z_path(a, b)
    assert not z.has_z_path(b, a)


def test_non_causal_z_step():
    """m2 sent BEFORE m1 arrives, in the interval where m1 is received:
    a Z-path exists although no causal path does."""
    trace = build_trace(
        3,
        2,
        [
            (1.0, S, 1, 2, 2),  # m2 leaves h1 first...
            (2.0, S, 0, 1, 1),
            (3.0, R, 1, 1, 0),  # ...and m1 arrives in the same interval
            (4.0, R, 2, 2, 1),
            (5.0, C, 2, -1, 0, 1),
        ],
    )
    run = annotate_replay(trace, UncoordinatedProtocol(3, period=1e9))
    z = ZPathAnalysis(run)
    a = run.checkpoints[0][0]
    b = run.checkpoints[2][-1]
    assert z.has_z_path(a, b)


def test_staircase_checkpoints_are_useless():
    """The domino staircase puts every intermediate checkpoint on a
    Z-cycle (that is exactly why rollback cascades)."""
    events = [
        (1.0, S, 0, 100, 1),
        (2.0, R, 1, 100, 0),
        (2.5, C, 1, -1, 1, 0),
        (3.0, S, 1, 101, 0),
        (4.0, R, 0, 101, 1),
        (4.5, C, 0, -1, 0, 1),
        (5.0, S, 0, 102, 1),
        (6.0, R, 1, 102, 0),
    ]
    trace = build_trace(2, 2, events)
    run = annotate_replay(trace, UncoordinatedProtocol(2, period=1e9))
    z = ZPathAnalysis(run)
    useless = z.useless_checkpoints()
    assert run.checkpoints[1][1] in useless  # the 2.5 checkpoint
    assert run.checkpoints[0][1] in useless  # the 4.5 checkpoint


def test_bcs_prevents_useless_checkpoints_on_staircase():
    """Same schedule under BCS: forced checkpoints break every Z-cycle."""
    events = [
        (1.0, S, 0, 100, 1),
        (2.0, R, 1, 100, 0),
        (2.5, C, 1, -1, 1, 0),
        (3.0, S, 1, 101, 0),
        (4.0, R, 0, 101, 1),
        (4.5, C, 0, -1, 0, 1),
        (5.0, S, 0, 102, 1),
        (6.0, R, 1, 102, 0),
    ]
    trace = build_trace(2, 2, events)
    run = annotate_replay(trace, BCSProtocol(2))
    assert ZPathAnalysis(run).useless_checkpoints() == []


@settings(max_examples=60, deadline=None)
@given(trace=traces(max_ops=25))
def test_index_protocols_are_z_cycle_free(trace):
    """The classic CIC guarantee: BCS/QBC admit no Z-cycle, so every
    checkpoint they take is useful (Netzer-Xu)."""
    for cls in (BCSProtocol, QBCProtocol):
        run = annotate_replay(trace, cls(trace.n_hosts, trace.n_mss))
        assert ZPathAnalysis(run).useless_checkpoints() == []


def test_interval_graph_structure():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, R, 1, 1, 0),
            (3.0, C, 1, -1, 1, 0),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    g = ZPathAnalysis(run).interval_graph()
    assert (0, 0) in g and (1, 0) in g and (1, 1) in g
    assert g.has_edge((1, 0), (1, 1))  # program order
    assert g.has_edge((0, 0), (1, 0))  # the message
