"""Tests for run metrics (repro.core.metrics)."""

from repro.core.metrics import (
    CheckpointStats,
    ProtocolRunMetrics,
    gain_percent,
)
from repro.protocols import BCSProtocol


def test_gain_percent():
    assert gain_percent(100.0, 10.0) == 90.0
    assert gain_percent(100.0, 100.0) == 0.0
    assert gain_percent(0.0, 5.0) == 0.0
    assert gain_percent(50.0, 75.0) == -50.0  # regression shows as negative


def test_stats_from_protocol_separates_initial():
    p = BCSProtocol(3)
    p.on_cell_switch(0, 1.0, 1)
    p.on_receive(1, 1, src=0, now=2.0)
    stats = CheckpointStats.from_protocol(p)
    assert stats.n_initial == 3
    assert stats.n_basic == 1
    assert stats.n_forced == 1
    assert stats.n_total == 2
    assert stats.per_host_total == {0: 1, 1: 1, 2: 0}


def test_metrics_row_and_rates():
    p = BCSProtocol(2)
    p.on_cell_switch(0, 1.0, 1)
    m = ProtocolRunMetrics(
        protocol="BCS",
        stats=CheckpointStats.from_protocol(p),
        n_sends=10,
        n_receives=8,
        piggyback_ints_total=10,
        sim_time=100.0,
        seed=1,
    )
    row = m.as_row()
    assert row["protocol"] == "BCS"
    assert row["n_total"] == 1
    assert m.forced_per_send == 0.0
    m.stats.n_forced = 5
    assert m.forced_per_send == 0.5


def test_forced_per_send_zero_sends():
    p = BCSProtocol(2)
    m = ProtocolRunMetrics(
        protocol="BCS", stats=CheckpointStats.from_protocol(p), n_sends=0
    )
    assert m.forced_per_send == 0.0
