"""Tests for recovery execution planning (repro.core.recovery_online)."""

import pytest

from repro.core.online import run_online
from repro.core.recovery_online import plan_recovery
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig


def online(cls, **kw):
    defaults = dict(sim_time=1500.0, seed=9, t_switch=200.0, p_switch=0.9)
    defaults.update(kw)
    cfg = WorkloadConfig(**defaults)
    return cfg, run_online(cfg, cls(cfg.n_hosts, cfg.n_mss))


def test_plan_covers_every_host():
    cfg, result = online(BCSProtocol)
    plan = plan_recovery(result.system, result.protocol, failed_host=0)
    assert sorted(s.host for s in plan.steps) == list(range(cfg.n_hosts))
    assert plan.failed_host == 0


def test_restart_indices_match_protocol_line():
    cfg, result = online(QBCProtocol)
    plan = plan_recovery(result.system, result.protocol, failed_host=3)
    line = result.protocol.recovery_line_indices()
    for step in plan.steps:
        assert step.restart_index == line[step.host]


def test_tp_plan_uses_anchored_requirements():
    cfg, result = online(TwoPhaseProtocol, sim_time=600.0)
    plan = plan_recovery(result.system, result.protocol, failed_host=2)
    required = result.protocol.required_indices(2)
    for step in plan.steps:
        if step.host != 2:
            assert step.restart_index == required[step.host]


def test_recovery_time_is_small_multiple_of_leg_latency():
    """The index-based selling point: recovery is a handful of control
    legs, not a computation-scale cost."""
    cfg, result = online(BCSProtocol)
    plan = plan_recovery(result.system, result.protocol, failed_host=1)
    # worst case per host: line (2) + wired notify (1) + wireless (1)
    # + fetch round trip (2) + wireless download (1) = 7 legs
    assert plan.recovery_time <= 7 * cfg.leg_latency + 1e-12
    assert plan.recovery_time >= 2 * cfg.leg_latency


def test_control_messages_bounded_by_connected_hosts():
    cfg, result = online(BCSProtocol, p_switch=0.5, sim_time=2500.0)
    plan = plan_recovery(result.system, result.protocol, failed_host=0)
    connected = len(result.system.connected_hosts())
    reachable_steps = [s for s in plan.steps if not s.deferred]
    assert plan.control_messages == len(reachable_steps)
    assert len(reachable_steps) <= cfg.n_hosts
    assert plan.line_computation_messages == cfg.n_mss - 1
    # connectivity at plan time matches the step classification
    assert connected == len(reachable_steps)


def test_disconnected_hosts_deferred_but_recovery_completes():
    cfg, result = online(BCSProtocol, p_switch=0.2, sim_time=3000.0)
    # with p_switch=0.2 and long aways, somebody is disconnected
    system = result.system
    disconnected = [h.host_id for h in system.hosts if not h.is_connected]
    if not disconnected:
        pytest.skip("no host disconnected at horizon for this seed")
    plan = plan_recovery(system, result.protocol, failed_host=0)
    assert set(plan.deferred_hosts) == set(disconnected) - {0} | (
        {0} if 0 in disconnected else set()
    )
    assert plan.recovery_time < float("inf")


def test_fetches_counted_for_stranded_records():
    cfg, result = online(BCSProtocol, t_switch=50.0, sim_time=2000.0)
    plan = plan_recovery(result.system, result.protocol, failed_host=4)
    # hosts switched ~40 times each: some line records are stranded
    assert plan.checkpoint_fetches == sum(1 for s in plan.steps if s.needs_fetch)


def test_failed_disconnected_host_recovers_via_buffering_mss():
    cfg, result = online(BCSProtocol, p_switch=0.2, sim_time=3000.0)
    system = result.system
    disconnected = [h.host_id for h in system.hosts if not h.is_connected]
    if not disconnected:
        pytest.skip("no host disconnected at horizon for this seed")
    failed = disconnected[0]
    plan = plan_recovery(system, result.protocol, failed_host=failed)
    assert plan.initiator_mss == system.directory.buffering_mss(failed)
