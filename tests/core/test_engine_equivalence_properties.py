"""Property-based differential tests of the replay engines.

Random *bounded* workload configurations (hypothesis) drive the whole
pipeline -- generation, compilation, both replay engines -- and assert
the refactoring theorems the sweep engine rests on:

* compiling a trace loses nothing: every column of
  :class:`~repro.core.compiled.CompiledTrace` round-trips the event
  list, send slots are dense and receives resolve to their matching
  send's slot, and ``argv`` packs exactly the hook arguments;
* the fused engine is bit-identical to the reference engine: for every
  paper protocol, :func:`replay` and :func:`replay_fused` produce equal
  :meth:`counter_signature` dicts -- including in the counters-only
  mode the sweep runner actually uses;
* the vectorized engine closes the triangle: for every registered
  protocol that ships batch kernels, reference, fused and vectorized
  replay agree bit for bit on counters, checkpoint trails and recovery
  lines.
"""

from hypothesis import given, settings

from repro.core.compiled import RECEIVE, SEND
from repro.core.replay import replay, replay_fused, replay_vectorized
from repro.protocols.base import registry
from repro.workload import generate_trace

# The workload strategy and figure corners are shared with the
# conformance kit -- see repro.testing.strategies.
from repro.testing.strategies import FIGURE_CORNERS, workload_configs

PAPER_PROTOCOLS = ("TP", "BCS", "QBC")

#: Every registered protocol the vectorized engine may drive.
VECTORIZABLE = sorted(
    name
    for name, cls in registry.items()
    if getattr(cls, "vectorizable", False) and cls.fusable
)


@settings(max_examples=30, deadline=None)
@given(cfg=workload_configs())
def test_compiled_trace_round_trips_the_event_list(cfg):
    trace = generate_trace(cfg)
    c = trace.compiled()
    assert len(c) == len(trace)
    assert (c.n_hosts, c.n_mss, c.sim_time) == (
        trace.n_hosts, trace.n_mss, trace.sim_time
    )

    send_slots = []
    slot_of_msg = {}
    n_receives = 0
    for i, ev in enumerate(trace.events):
        et = int(ev.etype)
        assert c.etype[i] == et
        assert c.time[i] == ev.time
        assert c.host[i] == ev.host
        assert c.msg_id[i] == ev.msg_id
        assert c.peer[i] == ev.peer
        assert c.cell[i] == ev.cell
        if et == SEND:
            slot_of_msg[ev.msg_id] = c.slot[i]
            send_slots.append(c.slot[i])
            assert c.argv[i] == (ev.host, ev.peer, ev.time)
        elif et == RECEIVE:
            n_receives += 1
            assert c.slot[i] == slot_of_msg[ev.msg_id]
            assert c.argv[i] == (ev.host, ev.peer, ev.time)
        else:
            assert c.slot[i] == -1
    # Send slots are the dense ordinals 0..n_sends-1 in send order.
    assert send_slots == list(range(c.n_sends))
    assert n_receives == c.n_receives


@settings(max_examples=30, deadline=None)
@given(cfg=workload_configs())
def test_fused_replay_counters_match_reference_bitwise(cfg):
    trace = generate_trace(cfg)
    reference = {}
    for name in PAPER_PROTOCOLS:
        result = replay(trace, registry[name](cfg.n_hosts, cfg.n_mss))
        reference[name] = result.protocol.counter_signature()

    # Fused pass in the sweep engine's counters-only configuration.
    instances = []
    for name in PAPER_PROTOCOLS:
        protocol = registry[name](cfg.n_hosts, cfg.n_mss)
        protocol.log_checkpoints = False
        instances.append(protocol)
    replay_fused(trace, instances)
    for name, protocol in zip(PAPER_PROTOCOLS, instances):
        assert protocol.counter_signature() == reference[name], name


def _trail(protocol):
    return [
        (ck.host, ck.index, ck.reason, ck.time, ck.replaced, ck.metadata)
        for ck in protocol.checkpoints
    ]


def _recovery_line(protocol):
    try:
        return protocol.recovery_line_indices()
    except NotImplementedError:
        return None


@settings(max_examples=25, deadline=None)
@given(cfg=workload_configs())
def test_vectorized_replay_three_way_bit_identity(cfg):
    """reference ≡ fused ≡ vectorized, for every protocol with kernels:
    counters, full checkpoint trails (metadata included) and recovery
    lines all match bit for bit."""
    trace = generate_trace(cfg)
    for name in VECTORIZABLE:
        ref = replay(trace, registry[name](cfg.n_hosts, cfg.n_mss)).protocol

        fused = registry[name](cfg.n_hosts, cfg.n_mss)
        replay_fused(trace, [fused])

        vec = registry[name](cfg.n_hosts, cfg.n_mss)
        replay_vectorized(trace, [vec])

        for other in (fused, vec):
            assert other.counter_signature() == ref.counter_signature(), name
            assert _trail(other) == _trail(ref), name
            assert _recovery_line(other) == _recovery_line(ref), name


def test_vectorized_counters_only_at_figure_corners():
    """Counters-only mode -- the configuration the sweep runner uses --
    agrees three ways at the parameter corners of the paper figures."""
    for cfg in FIGURE_CORNERS:
        trace = generate_trace(cfg)
        for name in VECTORIZABLE:
            ref = replay(
                trace, registry[name](cfg.n_hosts, cfg.n_mss)
            ).protocol.counter_signature()

            fused = registry[name](cfg.n_hosts, cfg.n_mss)
            fused.log_checkpoints = False
            replay_fused(trace, [fused])

            vec = registry[name](cfg.n_hosts, cfg.n_mss)
            vec.log_checkpoints = False
            replay_vectorized(trace, [vec])

            assert fused.counter_signature() == ref, (name, cfg.t_switch)
            assert vec.counter_signature() == ref, (name, cfg.t_switch)
