"""Property-based differential tests of the replay engines.

Random *bounded* workload configurations (hypothesis) drive the whole
pipeline -- generation, compilation, both replay engines -- and assert
the refactoring theorems the sweep engine rests on:

* compiling a trace loses nothing: every column of
  :class:`~repro.core.compiled.CompiledTrace` round-trips the event
  list, send slots are dense and receives resolve to their matching
  send's slot, and ``argv`` packs exactly the hook arguments;
* the fused engine is bit-identical to the reference engine: for every
  paper protocol, :func:`replay` and :func:`replay_fused` produce equal
  :meth:`counter_signature` dicts -- including in the counters-only
  mode the sweep runner actually uses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import RECEIVE, SEND
from repro.core.replay import replay, replay_fused
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace

PAPER_PROTOCOLS = ("TP", "BCS", "QBC")


@st.composite
def workload_configs(draw):
    """Small but varied valid workload configurations."""
    return WorkloadConfig(
        n_hosts=draw(st.integers(2, 4)),
        n_mss=draw(st.integers(2, 3)),
        p_send=draw(st.sampled_from([0.1, 0.4, 0.9])),
        t_switch=draw(st.sampled_from([20.0, 60.0, 200.0])),
        p_switch=draw(st.sampled_from([0.8, 1.0])),
        heterogeneity=draw(st.sampled_from([0.0, 0.3, 0.5])),
        sim_time=draw(st.sampled_from([30.0, 80.0, 150.0])),
        seed=draw(st.integers(0, 2**16)),
    ).validate()


@settings(max_examples=30, deadline=None)
@given(cfg=workload_configs())
def test_compiled_trace_round_trips_the_event_list(cfg):
    trace = generate_trace(cfg)
    c = trace.compiled()
    assert len(c) == len(trace)
    assert (c.n_hosts, c.n_mss, c.sim_time) == (
        trace.n_hosts, trace.n_mss, trace.sim_time
    )

    send_slots = []
    slot_of_msg = {}
    n_receives = 0
    for i, ev in enumerate(trace.events):
        et = int(ev.etype)
        assert c.etype[i] == et
        assert c.time[i] == ev.time
        assert c.host[i] == ev.host
        assert c.msg_id[i] == ev.msg_id
        assert c.peer[i] == ev.peer
        assert c.cell[i] == ev.cell
        if et == SEND:
            slot_of_msg[ev.msg_id] = c.slot[i]
            send_slots.append(c.slot[i])
            assert c.argv[i] == (ev.host, ev.peer, ev.time)
        elif et == RECEIVE:
            n_receives += 1
            assert c.slot[i] == slot_of_msg[ev.msg_id]
            assert c.argv[i] == (ev.host, ev.peer, ev.time)
        else:
            assert c.slot[i] == -1
    # Send slots are the dense ordinals 0..n_sends-1 in send order.
    assert send_slots == list(range(c.n_sends))
    assert n_receives == c.n_receives


@settings(max_examples=30, deadline=None)
@given(cfg=workload_configs())
def test_fused_replay_counters_match_reference_bitwise(cfg):
    trace = generate_trace(cfg)
    reference = {}
    for name in PAPER_PROTOCOLS:
        result = replay(trace, registry[name](cfg.n_hosts, cfg.n_mss))
        reference[name] = result.protocol.counter_signature()

    # Fused pass in the sweep engine's counters-only configuration.
    instances = []
    for name in PAPER_PROTOCOLS:
        protocol = registry[name](cfg.n_hosts, cfg.n_mss)
        protocol.log_checkpoints = False
        instances.append(protocol)
    replay_fused(trace, instances)
    for name, protocol in zip(PAPER_PROTOCOLS, instances):
        assert protocol.counter_signature() == reference[name], name
