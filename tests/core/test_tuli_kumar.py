"""Tests for the Tuli-Kumar min-process coordinated baseline (TK)."""

from repro.core.online import CoordinatedScheme, run_coordinated
from repro.workload import WorkloadConfig


def cfg(**kw):
    defaults = dict(sim_time=1000.0, seed=5, t_switch=300.0, p_switch=0.9)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def _run(scheme, **kw):
    return run_coordinated(cfg(**kw), scheme, snapshot_interval=100.0)


def test_tuli_kumar_is_non_blocking():
    r = _run(CoordinatedScheme.TULI_KUMAR)
    assert r.scheme is CoordinatedScheme.TULI_KUMAR
    assert r.blocked_time == 0.0
    assert r.rounds == 10


def test_min_process_participant_set_matches_koo_toueg():
    """TK coordinates exactly KT's participant set (direct dependents),
    so on a shared schedule the snapshot counts are identical -- the
    difference is blocking and message count, not who checkpoints."""
    tk = _run(CoordinatedScheme.TULI_KUMAR, seed=2)
    kt = _run(CoordinatedScheme.KOO_TOUEG, seed=2)
    assert tk.n_snapshot == kt.n_snapshot
    assert tk.blocked_time == 0.0 and kt.blocked_time > 0.0


def test_two_control_messages_per_participant():
    """Request/reply: two-thirds of KT's three-message exchange."""
    tk = _run(CoordinatedScheme.TULI_KUMAR, seed=2)
    kt = _run(CoordinatedScheme.KOO_TOUEG, seed=2)
    assert tk.control_messages * 3 == kt.control_messages * 2


def test_registered_as_tk_with_coordinated_capabilities():
    from repro.engine import resolve_protocols

    (entry,) = resolve_protocols(["TK"])
    assert entry.capabilities.coordinated
    assert not entry.capabilities.replayable
    assert entry.scheme is CoordinatedScheme.TULI_KUMAR


def test_deterministic_across_runs():
    a = _run(CoordinatedScheme.TULI_KUMAR, seed=3)
    b = _run(CoordinatedScheme.TULI_KUMAR, seed=3)
    assert (a.n_total, a.control_messages) == (b.n_total, b.control_messages)
