"""Equivalence suite: the fused engine vs the reference engine.

``replay_fused`` must be observationally identical to ``replay`` -- not
just the headline counters but the full checkpoint sequence -- for
every registered replayable protocol over several generated workloads.
"""

import pytest

from repro.core.replay import replay, replay_fused, replay_many
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace

SEEDS = (0, 1, 2)
REPLAYABLE = sorted(
    name for name, cls in registry.items() if cls.replayable
)


def _trace(seed: int):
    return generate_trace(
        WorkloadConfig(sim_time=800.0, p_switch=0.8, seed=seed)
    )


def _fresh(name: str, trace, lean: bool = False):
    protocol = registry[name](trace.n_hosts, trace.n_mss)
    if lean:
        protocol.log_checkpoints = False
    return protocol


def _checkpoint_trail(protocol):
    return [
        (ck.host, ck.index, ck.reason, ck.time, ck.replaced)
        for ck in protocol.checkpoints
    ]


@pytest.mark.parametrize("name", REPLAYABLE)
@pytest.mark.parametrize("seed", SEEDS)
def test_fused_matches_reference_bitwise(name, seed):
    trace = _trace(seed)
    ref = replay(trace, _fresh(name, trace))
    (fused,) = replay_fused(trace, [_fresh(name, trace)])
    assert fused.metrics == ref.metrics
    assert _checkpoint_trail(fused.protocol) == _checkpoint_trail(ref.protocol)


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_multi_protocol_matches_isolated_runs(seed):
    """Driving all protocols in one pass changes nothing: instances
    share no state, so each must match its isolated reference run."""
    trace = _trace(seed)
    fused = replay_fused(trace, [_fresh(n, trace) for n in REPLAYABLE])
    for name, result in zip(REPLAYABLE, fused):
        ref = replay(trace, _fresh(name, trace))
        assert result.metrics == ref.metrics
        assert _checkpoint_trail(result.protocol) == _checkpoint_trail(
            ref.protocol
        )


@pytest.mark.parametrize("name", REPLAYABLE)
def test_counters_only_mode_preserves_counts(name):
    """log_checkpoints=False must not change any counter -- only the
    log and metadata are skipped."""
    trace = _trace(0)
    ref = replay(trace, _fresh(name, trace))
    (lean,) = replay_fused(trace, [_fresh(name, trace, lean=True)])
    assert lean.metrics.stats == ref.metrics.stats
    # The flag is flipped after construction, so only the constructor's
    # initial checkpoints may be on the log -- nothing from the run.
    assert all(ck.reason == "initial" for ck in lean.protocol.checkpoints)


def test_replay_many_threads_seed_into_metrics():
    trace = _trace(0)
    factories = [
        (lambda n=n: registry[n](trace.n_hosts, trace.n_mss))
        for n in ("TP", "BCS")
    ]
    explicit = replay_many(trace, factories, seed=7)
    assert [r.metrics.seed for r in explicit] == [7, 7]
    # Without an explicit seed, fall back to the trace's own (replay's
    # long-standing behaviour, previously dropped by replay_many).
    default = replay_many(trace, factories)
    assert [r.metrics.seed for r in default] == [trace.meta["seed"]] * 2


def test_fused_rejects_non_replayable_protocol():
    trace = _trace(0)

    class Coordinated(registry["BCS"]):
        replayable = False

    with pytest.raises(ValueError, match="not replayable"):
        replay_fused(trace, [Coordinated(trace.n_hosts, trace.n_mss)])


def test_fused_rejects_host_count_mismatch():
    trace = _trace(0)
    with pytest.raises(ValueError, match="hosts"):
        replay_fused(trace, [registry["BCS"](trace.n_hosts + 1, trace.n_mss)])
