"""Tests for pessimistic MSS message logging and in-transit replay."""

from repro.core.consistency import annotate_replay, build_recovery_line
from repro.core.online import run_online
from repro.core.recovery import recoverable_in_transit
from repro.protocols import BCSProtocol
from repro.workload import WorkloadConfig, generate_trace


def test_logging_disabled_by_default():
    cfg = WorkloadConfig(sim_time=300.0, seed=1, t_switch=100.0)
    result = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss))
    assert all(not s.message_log for s in result.system.stations)


def test_logging_records_every_application_message():
    cfg = WorkloadConfig(
        sim_time=300.0, seed=1, t_switch=100.0, log_messages_at_mss=True
    )
    result = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss))
    logged = set()
    for s in result.system.stations:
        logged |= s.message_log
    sent_ids = {
        ev.msg_id for ev in result.trace.events if ev.etype.name == "SEND"
    }
    # every sent message that reached its first MSS is logged; at most
    # the in-flight tail at the horizon is missing
    assert len(sent_ids - logged) <= 5
    assert logged <= sent_ids | logged  # no phantom ids beyond control


def test_in_transit_messages_replayable_with_logging():
    cfg = WorkloadConfig(
        sim_time=1500.0,
        seed=3,
        t_switch=150.0,
        p_switch=0.9,
        log_messages_at_mss=True,
    )
    result = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss))
    protocol = BCSProtocol(cfg.n_hosts, cfg.n_mss)
    run = annotate_replay(result.trace, protocol)
    line = build_recovery_line(run, protocol)
    replayable, total = recoverable_in_transit(run, line, result.system)
    assert replayable == total  # pessimistic logging covers everything


def test_without_logging_nothing_replayable():
    cfg = WorkloadConfig(sim_time=1500.0, seed=3, t_switch=150.0, p_switch=0.9)
    result = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss))
    protocol = BCSProtocol(cfg.n_hosts, cfg.n_mss)
    run = annotate_replay(result.trace, protocol)
    line = build_recovery_line(run, protocol)
    replayable, _total = recoverable_in_transit(run, line, result.system)
    assert replayable == 0
