"""Unit tests for trace replay (repro.core.replay)."""

import pytest

from repro.core.replay import replay, replay_many
from repro.core.trace import EventType, build_trace
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig, generate_trace, run_online

S, R, C, D, RC = (
    EventType.SEND,
    EventType.RECEIVE,
    EventType.CELL_SWITCH,
    EventType.DISCONNECT,
    EventType.RECONNECT,
)


def small_trace():
    # h0 switches (sn->1), sends to h1 (forces under BCS), h1 disconnects.
    return build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),
            (2.0, S, 0, 10, 1),
            (3.0, R, 1, 10, 0),
            (4.0, D, 1),
            (5.0, RC, 1, -1, -1, 0),
        ],
    )


def test_replay_bcs_counts():
    res = replay(small_trace(), BCSProtocol(2))
    assert res.metrics.stats.n_basic == 2  # switch + disconnect
    assert res.metrics.stats.n_forced == 1
    assert res.n_total == 3
    assert res.metrics.n_sends == 1
    assert res.metrics.n_receives == 1


def test_replay_piggyback_total_scales_with_protocol():
    bcs = replay(small_trace(), BCSProtocol(2))
    tp = replay(small_trace(), TwoPhaseProtocol(2))
    assert bcs.metrics.piggyback_ints_total == 1
    assert tp.metrics.piggyback_ints_total == 4  # 2 vectors x 2 hosts


def test_replay_host_count_mismatch_rejected():
    with pytest.raises(ValueError, match="sized for"):
        replay(small_trace(), BCSProtocol(5))


def test_replay_unreplayable_protocol_rejected():
    p = BCSProtocol(2)
    p.replayable = False
    with pytest.raises(ValueError, match="not replayable"):
        replay(small_trace(), p)


def test_replay_unsent_message_raises():
    from repro.core.trace import Trace, TraceEvent

    bad = Trace(
        2,
        2,
        events=[TraceEvent(time=1.0, etype=R, host=1, msg_id=99, peer=0)],
    )
    with pytest.raises(ValueError, match="never sent"):
        replay(bad, BCSProtocol(2))


def test_replay_many_gives_pointwise_comparison():
    trace = small_trace()
    results = replay_many(
        trace, [lambda: TwoPhaseProtocol(2), lambda: BCSProtocol(2), lambda: QBCProtocol(2)]
    )
    names = [r.metrics.protocol for r in results]
    assert names == ["TP", "BCS", "QBC"]
    # basics identical across protocols: they are trace-mandated
    assert len({r.metrics.stats.n_basic for r in results}) == 1


def test_replay_deterministic():
    cfg = WorkloadConfig(sim_time=500.0, seed=3, t_switch=100.0, p_switch=0.8)
    t1, t2 = generate_trace(cfg), generate_trace(cfg)
    r1 = replay(t1, QBCProtocol(cfg.n_hosts))
    r2 = replay(t2, QBCProtocol(cfg.n_hosts))
    assert r1.n_total == r2.n_total
    assert [c.index for c in r1.protocol.checkpoints] == [
        c.index for c in r2.protocol.checkpoints
    ]


def test_replay_matches_online_execution():
    """The core design claim: replaying a generated trace produces the
    same checkpoints as running the protocol inside the simulation."""
    cfg = WorkloadConfig(sim_time=800.0, seed=11, t_switch=150.0, p_switch=0.8)
    trace = generate_trace(cfg)
    replayed = replay(trace, BCSProtocol(cfg.n_hosts))
    online = run_online(cfg, BCSProtocol(cfg.n_hosts))
    assert replayed.metrics.stats.n_basic == online.metrics.stats.n_basic
    assert replayed.metrics.stats.n_forced == online.metrics.stats.n_forced
    assert [
        (c.host, c.index, c.reason) for c in replayed.protocol.checkpoints
    ] == [(c.host, c.index, c.reason) for c in online.protocol.checkpoints]


def test_basic_count_equals_trace_triggers():
    cfg = WorkloadConfig(sim_time=600.0, seed=5, t_switch=100.0, p_switch=0.7)
    trace = generate_trace(cfg)
    res = replay(trace, BCSProtocol(cfg.n_hosts))
    assert res.metrics.stats.n_basic == trace.n_basic_triggers
