"""Tests for trace serialization (repro.core.trace_io)."""

import numpy as np
import pytest

from repro.core.replay import replay
from repro.core.trace import EventType, build_trace
from repro.core.trace_io import load_trace, save_trace
from repro.protocols import QBCProtocol
from repro.workload import WorkloadConfig, generate_trace


def test_roundtrip_preserves_everything(tmp_path):
    cfg = WorkloadConfig(sim_time=500.0, seed=4, t_switch=100.0, p_switch=0.8)
    trace = generate_trace(cfg)
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.n_hosts == trace.n_hosts
    assert loaded.n_mss == trace.n_mss
    assert loaded.sim_time == trace.sim_time
    assert loaded.meta == trace.meta
    assert len(loaded) == len(trace)
    for a, b in zip(trace.events, loaded.events):
        assert (a.time, a.etype, a.host, a.msg_id, a.peer, a.cell) == (
            b.time,
            b.etype,
            b.host,
            b.msg_id,
            b.peer,
            b.cell,
        )


def test_replay_identical_after_roundtrip(tmp_path):
    cfg = WorkloadConfig(sim_time=500.0, seed=2, t_switch=100.0)
    trace = generate_trace(cfg)
    save_trace(trace, tmp_path / "t.npz")
    loaded = load_trace(tmp_path / "t.npz")
    a = replay(trace, QBCProtocol(cfg.n_hosts, cfg.n_mss))
    b = replay(loaded, QBCProtocol(cfg.n_hosts, cfg.n_mss))
    assert a.n_total == b.n_total
    assert [
        (c.host, c.index, c.reason) for c in a.protocol.checkpoints
    ] == [(c.host, c.index, c.reason) for c in b.protocol.checkpoints]


def test_empty_trace_roundtrip(tmp_path):
    trace = build_trace(2, 2, [])
    save_trace(trace, tmp_path / "empty.npz")
    loaded = load_trace(tmp_path / "empty.npz")
    assert len(loaded) == 0


def test_extension_appended_when_missing(tmp_path):
    trace = build_trace(2, 2, [(1.0, EventType.DISCONNECT, 0)])
    save_trace(trace, tmp_path / "t")  # numpy appends .npz
    loaded = load_trace(tmp_path / "t")
    assert len(loaded) == 1


def test_unknown_format_version_rejected(tmp_path):
    import json

    trace = build_trace(2, 2, [])
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    header = json.loads(bytes(arrays["header"]).decode())
    header["format_version"] = 99
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)
    with pytest.raises(ValueError, match="format version"):
        load_trace(path)


def test_missing_digest_raises_digest_missing_on_verify(tmp_path):
    from repro.core.trace_io import TraceDigestMissing, TraceIntegrityError

    cfg = WorkloadConfig(sim_time=200.0, seed=1)
    trace = generate_trace(cfg)
    path = tmp_path / "legacy.npz"
    save_trace(trace, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files if k != "digest"}
    np.savez(path, **arrays)  # a file from before checksums existed
    with pytest.raises(TraceDigestMissing):
        load_trace(path, verify=True)
    assert issubclass(TraceDigestMissing, TraceIntegrityError)
    # Without verification the legacy file still loads fine.
    loaded = load_trace(path)
    assert len(loaded) == len(trace)


def test_load_validates_by_default(tmp_path):
    import json

    # hand-craft a structurally invalid trace file
    bad = build_trace(2, 2, [])
    path = tmp_path / "bad.npz"
    save_trace(bad, path)
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["time"] = np.array([1.0])
    arrays["etype"] = np.array([int(EventType.RECEIVE)], dtype=np.int8)
    arrays["host"] = np.array([0], dtype=np.int32)
    arrays["msg_id"] = np.array([5], dtype=np.int64)
    arrays["peer"] = np.array([1], dtype=np.int32)
    arrays["cell"] = np.array([-1], dtype=np.int32)
    np.savez(path, **arrays)
    with pytest.raises(Exception):
        load_trace(path)
    loaded = load_trace(path, validate=False)
    assert len(loaded) == 1
