"""Unit tests for consistency machinery (repro.core.consistency)."""

import pytest

from repro.core.consistency import (
    CausalOrder,
    annotate_replay,
    build_recovery_line,
    find_orphans,
    in_transit_messages,
    is_consistent,
    max_consistent_index,
    maximal_consistent_line,
)
from repro.core.trace import EventType, build_trace
from repro.protocols import (
    BCSProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)

S, R, C, D = (
    EventType.SEND,
    EventType.RECEIVE,
    EventType.CELL_SWITCH,
    EventType.DISCONNECT,
)


def test_annotate_positions_forced_before_receive():
    trace = build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),  # h0 basic -> sn 1
            (2.0, S, 0, 1, 1),
            (3.0, R, 1, 1, 0),  # h1 forced at sn 1, then receives
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    forced = run.checkpoints[1][-1]
    assert forced.record.reason == "forced"
    msg = run.messages[0]
    assert forced.position < msg.dst_pos  # checkpoint precedes delivery


def test_annotate_requires_fresh_protocol():
    trace = build_trace(2, 2, [])
    p = BCSProtocol(2)
    p.on_cell_switch(0, 1.0, 1)
    with pytest.raises(ValueError, match="fresh protocol"):
        annotate_replay(trace, p)


def test_orphan_detection_manual_line():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, R, 1, 1, 0),
            (3.0, C, 1, -1, 0, 1),  # h1 checkpoints after receiving
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    # Line: h0 initial checkpoint (before its send), h1 after receive.
    line = {0: run.checkpoints[0][0], 1: run.checkpoints[1][-1]}
    orphans = find_orphans(run, line)
    assert len(orphans) == 1 and orphans[0].msg_id == 1
    assert not is_consistent(run, line)


def test_in_transit_detection():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, C, 0, -1, 0, 1),  # h0 checkpoints after sending
            (3.0, R, 1, 1, 0),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    line = {0: run.checkpoints[0][-1], 1: run.checkpoints[1][0]}
    assert is_consistent(run, line)  # in-transit is fine, not orphan
    assert len(in_transit_messages(run, line)) == 1


def test_bcs_recovery_line_consistent_on_cascade():
    trace = build_trace(
        3,
        2,
        [
            (1.0, C, 0, -1, 0, 1),
            (2.0, S, 0, 1, 1),
            (3.0, R, 1, 1, 0),
            (4.0, S, 1, 2, 2),
            (5.0, R, 2, 2, 1),
            (6.0, S, 2, 3, 0),
            (7.0, R, 0, 3, 2),
        ],
    )
    protocol = BCSProtocol(3)
    run = annotate_replay(trace, protocol)
    line = build_recovery_line(run, protocol)
    assert is_consistent(run, line)
    assert CausalOrder(run).line_is_consistent(line)


def test_qbc_replaced_checkpoint_line_still_consistent():
    trace = build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),  # QBC: replaced ckpt at index 0
            (2.0, S, 0, 1, 1),
            (3.0, R, 1, 1, 0),
            (4.0, C, 0, -1, 1, 0),  # another replacement
        ],
    )
    protocol = QBCProtocol(2)
    run = annotate_replay(trace, protocol)
    line = build_recovery_line(run, protocol)
    assert is_consistent(run, line)


def test_tp_anchored_line_consistent():
    from repro.core.consistency import tp_anchored_line

    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, S, 1, 2, 0),
            (3.0, R, 1, 1, 0),  # h1 in SEND phase -> forced
            (4.0, R, 0, 2, 1),  # h0 in SEND phase -> forced
        ],
    )
    protocol = TwoPhaseProtocol(2)
    run = annotate_replay(trace, protocol)
    for anchor in (0, 1):
        line = tp_anchored_line(run, protocol, anchor)
        assert is_consistent(run, line)


def test_tp_naive_latest_cut_can_be_inconsistent():
    """The counterexample that motivates TP's dependency vectors: h1
    sends and never checkpoints again, so the all-latest cut orphans its
    message, while the anchored line (with a virtual on-demand
    checkpoint for h1) is consistent."""
    from repro.core.consistency import tp_anchored_line

    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 1, 1, 0),
            (2.0, R, 0, 1, 1),
            (3.0, C, 0, -1, 0, 1),  # h0 checkpoints after receiving
        ],
    )
    protocol = TwoPhaseProtocol(2)
    run = annotate_replay(trace, protocol)
    naive = {h: run.last_checkpoint(h) for h in range(2)}
    assert not is_consistent(run, naive)
    anchored = tp_anchored_line(run, protocol, anchor=0)
    assert is_consistent(run, anchored)
    assert anchored[1].record.reason == "virtual"


def test_max_consistent_index():
    assert max_consistent_index([3, 5, 4]) == 3
    with pytest.raises(ValueError):
        max_consistent_index([])


def test_maximal_consistent_line_converges_fast_for_cic():
    trace = build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),
            (2.0, S, 0, 1, 1),
            (3.0, R, 1, 1, 0),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    line, iterations = maximal_consistent_line(run)
    assert is_consistent(run, line)
    assert iterations <= 2


def test_maximal_consistent_line_domino_for_uncoordinated():
    """The classic domino staircase (Randell [15]): each host checkpoints
    between a receive and its next send, so rolling anyone back cascades
    all the way to the initial state."""
    events = [
        (1.0, S, 0, 100, 1),
        (2.0, R, 1, 100, 0),
        (2.5, C, 1, -1, 1, 0),  # h1 checkpoint (cell switch trigger)
        (3.0, S, 1, 101, 0),
        (4.0, R, 0, 101, 1),
        (4.5, C, 0, -1, 0, 1),  # h0 checkpoint
        (5.0, S, 0, 102, 1),
        (6.0, R, 1, 102, 0),
        (6.5, C, 1, -1, 0, 1),
        (7.0, S, 1, 103, 0),
        (8.0, R, 0, 103, 1),
        (8.5, C, 0, -1, 1, 0),
        (9.0, S, 0, 104, 1),
        (10.0, R, 1, 104, 0),
    ]
    trace = build_trace(2, 2, events)
    # No periodic checkpoints: only the staircase ones above + initial.
    protocol = UncoordinatedProtocol(2, period=1e9)
    run = annotate_replay(trace, protocol)
    line, iterations = maximal_consistent_line(run)
    assert is_consistent(run, line)
    assert iterations >= 2
    # the domino forced both hosts all the way back to the initial state
    assert line[0].ordinal == 0
    assert line[1].ordinal == 0


def test_causal_order_happens_before_via_message():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, R, 1, 1, 0),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    order = CausalOrder(run)
    m = run.messages[0]
    assert order.happens_before((m.src, m.src_pos), (m.dst, m.dst_pos))
    assert not order.happens_before((m.dst, m.dst_pos), (m.src, m.src_pos))


def test_causal_order_concurrent_events():
    trace = build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),
            (2.0, C, 1, -1, 1, 0),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    order = CausalOrder(run)
    a = (0, run.checkpoints[0][-1].position)
    b = (1, run.checkpoints[1][-1].position)
    assert order.concurrent(a, b)


def test_causal_order_program_order():
    trace = build_trace(
        2,
        2,
        [
            (1.0, S, 0, 1, 1),
            (2.0, S, 0, 2, 1),
        ],
    )
    run = annotate_replay(trace, BCSProtocol(2))
    order = CausalOrder(run)
    assert order.happens_before((0, 1), (0, 2))  # pos 0 is initial ckpt
