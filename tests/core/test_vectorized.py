"""Unit tests for the vectorized replay tier.

Covers the pieces the equivalence suites take for granted:

* compiled columns are lowered at pinned platform-independent dtypes
  (``int64`` / ``float64``) and cached per trace;
* the npz cache tier stores those columns natively -- a disk hit seeds
  the per-trace array cache, and a format-v1 entry is upgraded in place
  on first read;
* the batch entry points (``replay_vectorized_batch`` over raw traces,
  ``execute_batch`` over engine specs) match their sequential
  counterparts result for result;
* protocols without kernels are rejected with a typed error.
"""

import json

import numpy as np
import pytest

from repro.core import trace_io
from repro.core.compiled import FLOAT_DTYPE, INT_DTYPE, array_columns
from repro.core.replay import (
    replay,
    replay_vectorized,
    replay_vectorized_batch,
)
from repro.core.vectorized import VectorizationError, vectorized_trace
from repro.engine import RunSpec, execute, execute_batch
from repro.engine.errors import PlanError
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace
from repro.workload.cache import TraceCache, config_key

VECTORIZABLE = sorted(
    name
    for name, cls in registry.items()
    if getattr(cls, "vectorizable", False) and cls.fusable
)


def cfg(**kw):
    defaults = dict(sim_time=300.0, p_switch=0.8, seed=0)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def _signatures(trace, results):
    return [r.protocol.counter_signature() for r in results]


# -- dtype pinning (satellite: explicit column dtypes) ---------------------


def test_dtype_constants_are_pinned():
    assert INT_DTYPE == "int64"
    assert FLOAT_DTYPE == "float64"


def test_array_columns_use_pinned_dtypes():
    trace = generate_trace(cfg())
    cols = array_columns(trace)
    assert cols.time.dtype == np.dtype(FLOAT_DTYPE)
    for name in ("etype", "host", "msg_id", "peer", "cell", "slot"):
        arr = getattr(cols, name)
        assert arr.dtype == np.dtype(INT_DTYPE), name
    # The lowering is cached on the trace: same object back.
    assert array_columns(trace) is cols


# -- native array storage in the npz tier (satellite: cache format) --------


def test_saved_trace_stores_pinned_array_columns(tmp_path):
    trace = generate_trace(cfg())
    path = tmp_path / "t.npz"
    trace_io.save_trace(trace, path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        assert header["format_version"] == trace_io.FORMAT_VERSION
        assert header["n_sends"] == array_columns(trace).n_sends
        assert header["n_receives"] == array_columns(trace).n_receives
        assert data["time"].dtype == np.dtype(FLOAT_DTYPE)
        for name in ("etype", "host", "msg_id", "peer", "cell", "slot"):
            assert data[name].dtype == np.dtype(INT_DTYPE), name


def test_loaded_trace_feeds_vectorized_replay_without_relowering(tmp_path):
    trace = generate_trace(cfg())
    path = tmp_path / "t.npz"
    trace_io.save_trace(trace, path)

    loaded = trace_io.load_trace(path, verify=True)
    # The disk hit seeded the array cache -- no list -> array pass left.
    cached = getattr(loaded, "_array_columns_cache", None)
    assert cached is not None and cached[0] == len(loaded.events)
    fresh = array_columns(trace)
    cols = array_columns(loaded)
    assert cols is cached[1]
    for name in ("time", "etype", "host", "msg_id", "peer", "cell", "slot"):
        np.testing.assert_array_equal(
            getattr(cols, name), getattr(fresh, name), err_msg=name
        )
    assert (cols.n_sends, cols.n_receives) == (fresh.n_sends, fresh.n_receives)

    # And the loaded columns replay bit-identically to the reference.
    ref = replay(trace, registry["BCS"](trace.n_hosts, trace.n_mss))
    (vec,) = replay_vectorized(
        loaded, [registry["BCS"](loaded.n_hosts, loaded.n_mss)]
    )
    assert vec.protocol.counter_signature() == ref.protocol.counter_signature()


def _rewrite_as_v1(path):
    """Downgrade an npz entry to format v1 (list-era: no slot column,
    no send/receive counts) with a consistent digest."""
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    header = json.loads(bytes(arrays.pop("header")).decode("utf-8"))
    header["format_version"] = 1
    del header["n_sends"], header["n_receives"]
    del arrays["slot"], arrays["digest"]
    header_json = json.dumps(header)
    columns = tuple(arrays[name] for name in trace_io._V1_COLUMNS)
    digest = trace_io._column_digest(header_json, columns)
    np.savez_compressed(
        path,
        header=np.frombuffer(header_json.encode("utf-8"), dtype=np.uint8),
        digest=np.frombuffer(digest.encode("ascii"), dtype=np.uint8),
        **arrays,
    )


def test_v1_cache_entry_is_upgraded_in_place(tmp_path):
    writer = TraceCache(disk_dir=tmp_path)
    original = writer.get_or_generate(cfg())
    path = tmp_path / f"{config_key(cfg())}.npz"
    _rewrite_as_v1(path)

    reader = TraceCache(disk_dir=tmp_path)
    loaded = reader.get_or_generate(cfg())
    assert reader.stats()["disk_hits"] == 1
    assert reader.stats()["legacy_upgrades"] == 1
    assert [e.time for e in loaded.events] == [e.time for e in original.events]

    # The rewrite is at the current format: a later cache gets native
    # columns straight from disk with no further upgrade.
    third = TraceCache(disk_dir=tmp_path)
    again = third.get_or_generate(cfg())
    assert third.stats()["legacy_upgrades"] == 0
    assert getattr(again, "_array_columns_cache", None) is not None


# -- batch replay ----------------------------------------------------------


def test_replay_vectorized_batch_matches_sequential_passes():
    traces = [generate_trace(cfg(seed=s)) for s in (0, 1, 2)]
    factories = [
        (lambda name=name: registry[name](10, 3)) for name in VECTORIZABLE
    ]
    rows = replay_vectorized_batch(traces, factories)
    assert len(rows) == len(traces)
    for trace, row in zip(traces, rows):
        sequential = replay_vectorized(
            trace, [f() for f in factories]
        )
        assert _signatures(trace, row) == _signatures(trace, sequential)
        for got, want in zip(row, sequential):
            assert [
                (c.host, c.index, c.reason, c.time)
                for c in got.protocol.checkpoints
            ] == [
                (c.host, c.index, c.reason, c.time)
                for c in want.protocol.checkpoints
            ]


def test_replay_vectorized_rejects_protocol_without_kernels():
    trace = generate_trace(cfg())
    bqf = registry["BQF"](trace.n_hosts, trace.n_mss)
    with pytest.raises(VectorizationError):
        replay_vectorized(trace, [bqf])


def test_vectorized_trace_is_cached_per_trace():
    trace = generate_trace(cfg())
    assert vectorized_trace(trace) is vectorized_trace(trace)


# -- engine batch entry point ----------------------------------------------


def test_execute_batch_matches_per_spec_execute():
    specs = [
        RunSpec(
            protocols=("TP", "BCS", "QBC"),
            workload=cfg(seed=s),
            engine="vectorized",
        )
        for s in (0, 1, 2)
    ]
    batched = execute_batch(specs)
    for spec, got in zip(specs, batched):
        want = execute(spec)
        assert got.engine_kind == "vectorized"
        assert got.seed == want.seed
        for name in ("TP", "BCS", "QBC"):
            assert got.outcome(name).metrics == want.outcome(name).metrics


def test_execute_batch_rejects_non_vectorized_plans():
    with pytest.raises(PlanError, match="vectorized engine only"):
        execute_batch(
            [RunSpec(protocols=("BCS",), workload=cfg(), engine="fused")]
        )


def test_execute_batch_rejects_mixed_protocol_sets():
    with pytest.raises(PlanError, match="agree on protocols"):
        execute_batch(
            [
                RunSpec(protocols=("BCS",), workload=cfg(seed=0)),
                RunSpec(protocols=("TP",), workload=cfg(seed=1)),
            ]
        )
