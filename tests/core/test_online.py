"""Tests for online execution and coordinated baselines (repro.core.online)."""

import pytest

from repro.core.online import (
    CoordinatedScheme,
    run_coordinated,
)
from repro.protocols import (
    run_chandy_lamport,
    run_koo_toueg,
    run_prakash_singhal,
)
from repro.workload import WorkloadConfig


def cfg(**kw):
    defaults = dict(sim_time=1000.0, seed=5, t_switch=300.0, p_switch=0.9)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_chandy_lamport_snapshots_every_round():
    r = run_chandy_lamport(cfg(), snapshot_interval=100.0)
    assert r.rounds == 10
    # each completed round checkpoints the initiator + participants
    assert r.n_snapshot >= r.rounds
    assert r.scheme is CoordinatedScheme.CHANDY_LAMPORT


def test_chandy_lamport_control_messages_scale_with_hosts():
    small = run_chandy_lamport(cfg(n_hosts=4, n_mss=2), snapshot_interval=100.0)
    large = run_chandy_lamport(cfg(n_hosts=10), snapshot_interval=100.0)
    assert large.control_messages > small.control_messages


def test_koo_toueg_blocking_time_positive():
    r = run_koo_toueg(cfg(), snapshot_interval=100.0)
    assert r.blocked_time > 0.0
    # 3 control messages per participant vs CL's 1
    cl = run_chandy_lamport(cfg(), snapshot_interval=100.0)
    assert r.control_messages <= 3 * cl.control_messages


def test_prakash_singhal_non_blocking():
    r = run_prakash_singhal(cfg(), snapshot_interval=100.0)
    assert r.blocked_time == 0.0
    assert r.scheme is CoordinatedScheme.PRAKASH_SINGHAL


def test_dependency_subset_no_larger_than_flood():
    """KT coordinates only direct dependents: never more participants
    (hence snapshots) than the Chandy-Lamport flood."""
    kt = run_koo_toueg(cfg(seed=2), snapshot_interval=50.0)
    cl = run_chandy_lamport(cfg(seed=2), snapshot_interval=50.0)
    assert kt.n_snapshot <= cl.n_snapshot
    ps = run_prakash_singhal(cfg(seed=2), snapshot_interval=50.0)
    assert kt.n_snapshot <= ps.n_snapshot <= cl.n_snapshot


def test_basic_checkpoints_still_mandated():
    r = run_chandy_lamport(cfg(p_switch=0.8), snapshot_interval=200.0)
    assert r.n_basic > 0
    assert r.n_total == r.n_basic + r.n_snapshot


def test_location_lookups_counted():
    """The paper's point (d): coordination pays a location cost per
    mobile participant per round."""
    r = run_chandy_lamport(cfg(), snapshot_interval=100.0)
    assert r.location_lookups > 0


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        run_coordinated(cfg(), CoordinatedScheme.CHANDY_LAMPORT, 0.0)


def test_deterministic_across_runs():
    a = run_chandy_lamport(cfg(seed=3), snapshot_interval=100.0)
    b = run_chandy_lamport(cfg(seed=3), snapshot_interval=100.0)
    assert (a.n_total, a.control_messages) == (b.n_total, b.control_messages)
