"""Unit tests for traces (repro.core.trace)."""

import pytest

from repro.core.trace import EventType, Trace, TraceError, TraceEvent, build_trace


def ev(time, etype, host, **kw):
    return TraceEvent(time=time, etype=etype, host=host, **kw)


def test_build_trace_from_tuples_and_sorting():
    tr = build_trace(
        2,
        2,
        [
            (5.0, EventType.RECEIVE, 1, 7, 0),
            (1.0, EventType.SEND, 0, 7, 1),
        ],
    )
    assert [e.etype for e in tr] == [EventType.SEND, EventType.RECEIVE]
    assert tr.sim_time == 5.0


def test_validate_rejects_out_of_order():
    tr = Trace(
        2,
        2,
        events=[
            ev(5.0, EventType.SEND, 0, msg_id=1, peer=1),
            ev(1.0, EventType.RECEIVE, 1, msg_id=1, peer=0),
        ],
    )
    with pytest.raises(TraceError, match="out of order"):
        tr.validate()


def test_validate_rejects_receive_without_send():
    with pytest.raises(TraceError, match="never-sent"):
        build_trace(2, 2, [(1.0, EventType.RECEIVE, 1, 9, 0)])


def test_validate_rejects_double_consume():
    with pytest.raises(TraceError, match="consumed twice"):
        build_trace(
            2,
            2,
            [
                (1.0, EventType.SEND, 0, 3, 1),
                (2.0, EventType.RECEIVE, 1, 3, 0),
                (3.0, EventType.RECEIVE, 1, 3, 0),
            ],
        )


def test_validate_rejects_wrong_recipient():
    with pytest.raises(TraceError, match="received by"):
        build_trace(
            3,
            2,
            [
                (1.0, EventType.SEND, 0, 3, 1),
                (2.0, EventType.RECEIVE, 2, 3, 0),
            ],
        )


def test_validate_rejects_duplicate_send():
    with pytest.raises(TraceError, match="duplicate send"):
        build_trace(
            2,
            2,
            [(1.0, EventType.SEND, 0, 3, 1), (2.0, EventType.SEND, 0, 3, 1)],
        )


def test_validate_rejects_unknown_host_and_cell():
    with pytest.raises(TraceError, match="unknown host"):
        build_trace(2, 2, [(1.0, EventType.DISCONNECT, 5)])
    with pytest.raises(TraceError, match="unknown cell"):
        build_trace(2, 2, [(1.0, EventType.CELL_SWITCH, 0, -1, 0, 7)])


def test_validate_rejects_disconnected_activity():
    with pytest.raises(TraceError, match="disconnected host sends"):
        build_trace(
            2,
            2,
            [
                (1.0, EventType.DISCONNECT, 0),
                (2.0, EventType.SEND, 0, 3, 1),
            ],
        )
    with pytest.raises(TraceError, match="double disconnect"):
        build_trace(
            2,
            2,
            [(1.0, EventType.DISCONNECT, 0), (2.0, EventType.DISCONNECT, 0)],
        )
    with pytest.raises(TraceError, match="reconnect while connected"):
        build_trace(2, 2, [(1.0, EventType.RECONNECT, 0)])


def test_counts_and_helpers():
    tr = build_trace(
        2,
        2,
        [
            (1.0, EventType.SEND, 0, 1, 1),
            (2.0, EventType.RECEIVE, 1, 1, 0),
            (3.0, EventType.CELL_SWITCH, 0, -1, 0, 1),
            (4.0, EventType.DISCONNECT, 1),
            (5.0, EventType.SEND, 0, 2, 1),
        ],
    )
    assert tr.n_sends == 2
    assert tr.n_receives == 1
    assert tr.n_basic_triggers == 2
    assert tr.undelivered_messages() == 1
    assert len(tr.events_for(0)) == 3


def test_merged_with_shifts_times():
    a = build_trace(2, 2, [(1.0, EventType.SEND, 0, 1, 1)], sim_time=10.0)
    b = build_trace(2, 2, [(2.0, EventType.SEND, 0, 2, 1)], sim_time=10.0)
    merged = a.merged_with(b)
    assert merged.sim_time == 20.0
    assert merged.events[1].time == 12.0
    merged.validate()


def test_merged_with_rejects_different_systems():
    a = build_trace(2, 2, [])
    b = build_trace(3, 2, [])
    with pytest.raises(TraceError):
        a.merged_with(b)
