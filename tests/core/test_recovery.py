"""Tests for failure recovery (repro.core.recovery)."""

from repro.core.consistency import annotate_replay, is_consistent
from repro.core.recovery import minimal_rollback, protocol_line_rollback
from repro.core.trace import EventType, build_trace
from repro.protocols import (
    BCSProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)
from repro.workload import WorkloadConfig, generate_trace

S, R, C = EventType.SEND, EventType.RECEIVE, EventType.CELL_SWITCH


def staircase_trace():
    """The domino staircase from the consistency tests."""
    events = [
        (1.0, S, 0, 100, 1),
        (2.0, R, 1, 100, 0),
        (2.5, C, 1, -1, 1, 0),
        (3.0, S, 1, 101, 0),
        (4.0, R, 0, 101, 1),
        (4.5, C, 0, -1, 0, 1),
        (5.0, S, 0, 102, 1),
        (6.0, R, 1, 102, 0),
        (6.5, C, 1, -1, 0, 1),
        (7.0, S, 1, 103, 0),
        (8.0, R, 0, 103, 1),
        (8.5, C, 0, -1, 1, 0),
        (9.0, S, 0, 104, 1),
        (10.0, R, 1, 104, 0),
    ]
    return build_trace(2, 2, events)


def test_minimal_rollback_line_is_consistent():
    trace = staircase_trace()
    run = annotate_replay(trace, BCSProtocol(2))
    outcome = minimal_rollback(run, failed_host=0, end_time=trace.sim_time)
    assert is_consistent(run, outcome.line)
    assert outcome.failed_host == 0
    assert outcome.undone_events[0] >= 1  # at least the lost tail of h0


def test_domino_under_uncoordinated_vs_bounded_under_bcs():
    """The headline recovery claim: on the same schedule, uncoordinated
    checkpointing dominos back to the start while BCS's forced
    checkpoints keep the rollback bounded."""
    trace = staircase_trace()

    unc_run = annotate_replay(trace, UncoordinatedProtocol(2, period=1e9))
    unc = minimal_rollback(unc_run, failed_host=1, end_time=trace.sim_time)
    # the staircase checkpoints are all useless: both hosts land on the
    # initial checkpoints
    assert unc.line[0].ordinal == 0
    assert unc.line[1].ordinal == 0

    bcs_run = annotate_replay(trace, BCSProtocol(2))
    bcs = minimal_rollback(bcs_run, failed_host=1, end_time=trace.sim_time)
    assert bcs.total_undone_events < unc.total_undone_events
    assert bcs.line[0].ordinal > 0  # h0 did NOT roll back to the start


def test_protocol_line_rollback_index_based():
    trace = staircase_trace()
    for cls in (BCSProtocol, QBCProtocol):
        protocol = cls(2)
        run = annotate_replay(trace, protocol)
        outcome = protocol_line_rollback(run, protocol, failed_host=0,
                                         end_time=trace.sim_time)
        assert is_consistent(run, outcome.line)
        assert outcome.iterations == 1  # no search needed: on-the-fly line


def test_protocol_line_rollback_tp_anchored():
    trace = staircase_trace()
    protocol = TwoPhaseProtocol(2)
    run = annotate_replay(trace, protocol)
    outcome = protocol_line_rollback(
        run, protocol, failed_host=1, end_time=trace.sim_time
    )
    assert is_consistent(run, outcome.line)
    # the anchor keeps its latest checkpoint
    assert outcome.line[1] == run.last_checkpoint(1)


def test_rollback_time_and_in_transit_reported():
    trace = staircase_trace()
    protocol = BCSProtocol(2)
    run = annotate_replay(trace, protocol)
    outcome = protocol_line_rollback(
        run, protocol, failed_host=0, end_time=trace.sim_time
    )
    assert outcome.max_rollback_time >= 0.0
    assert outcome.in_transit >= 0


def test_recovery_on_generated_workload():
    cfg = WorkloadConfig(sim_time=1000.0, seed=13, t_switch=100.0, p_switch=0.8)
    trace = generate_trace(cfg)
    for cls in (BCSProtocol, QBCProtocol):
        protocol = cls(cfg.n_hosts, cfg.n_mss)
        run = annotate_replay(trace, protocol)
        for failed in (0, 5, 9):
            outcome = protocol_line_rollback(
                run, protocol, failed, end_time=trace.sim_time
            )
            assert is_consistent(run, outcome.line)
            minimal = minimal_rollback(run, failed, end_time=trace.sim_time)
            assert is_consistent(run, minimal.line)
            # minimal rollback never undoes more than the protocol line
            assert minimal.total_undone_events <= outcome.total_undone_events
