"""Tests for wired-side global checkpoint collection (repro.core.collection)."""

import pytest

from repro.core.collection import collect_global_checkpoint
from repro.core.online import run_online
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig


def online(cls, **kw):
    defaults = dict(sim_time=1200.0, seed=8, t_switch=150.0, p_switch=0.9)
    defaults.update(kw)
    cfg = WorkloadConfig(**defaults)
    return cfg, run_online(cfg, cls(cfg.n_hosts, cfg.n_mss))


def test_index_collection_complete_and_matches_line():
    cfg, result = online(BCSProtocol)
    coll = collect_global_checkpoint(result.system, result.protocol)
    assert coll.complete
    line = result.protocol.recovery_line_indices()
    assert len(coll.components) == cfg.n_hosts
    for comp in coll.components:
        assert comp.index >= line[comp.host]


def test_index_collection_pays_scan_queries():
    cfg, result = online(QBCProtocol)
    coll = collect_global_checkpoint(result.system, result.protocol)
    assert coll.scan_queries == cfg.n_mss - 1
    assert coll.total_round_trips >= coll.scan_queries
    assert coll.latency_legs >= 2


def test_tp_collection_uses_loc_vector():
    cfg, result = online(TwoPhaseProtocol, sim_time=800.0)
    coll = collect_global_checkpoint(
        result.system, result.protocol, anchor=0
    )
    assert coll.complete
    assert coll.scan_queries == 0  # LOC replaces the broadcast scan
    direct = [c for c in coll.components if c.located_directly]
    assert direct, "LOC vector never used"


def test_tp_collection_cheaper_queries_than_index_scan():
    """The paper's point of LOC: retrieval without a wired broadcast."""
    cfg, tp_result = online(TwoPhaseProtocol, sim_time=800.0)
    _, bcs_result = online(BCSProtocol, sim_time=800.0)
    tp = collect_global_checkpoint(tp_result.system, tp_result.protocol, anchor=2)
    bcs = collect_global_checkpoint(bcs_result.system, bcs_result.protocol)
    assert tp.scan_queries < bcs.scan_queries


def test_collection_completes_with_disconnected_hosts():
    """Section 2.2: the disconnect checkpoint stands in, so collection
    never waits for an unreachable host."""
    cfg, result = online(BCSProtocol, p_switch=0.3, sim_time=2500.0)
    disconnected = [
        h.host_id for h in result.system.hosts if not h.is_connected
    ]
    if not disconnected:
        pytest.skip("no host disconnected at the horizon for this seed")
    coll = collect_global_checkpoint(result.system, result.protocol)
    assert coll.complete


def test_collector_mss_validation():
    cfg, result = online(BCSProtocol, sim_time=300.0)
    with pytest.raises(ValueError):
        collect_global_checkpoint(result.system, result.protocol, collector_mss=99)


def test_local_components_cost_no_fetch():
    cfg, result = online(BCSProtocol, sim_time=600.0)
    coll = collect_global_checkpoint(result.system, result.protocol)
    for comp in coll.components:
        if comp.found_at_mss == coll.collector_mss:
            assert comp.wired_round_trips == 0
