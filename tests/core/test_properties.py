"""Property-based tests (hypothesis) for the core invariants.

These check the theorems the protocols rely on, against independently
implemented machinery:

* every protocol's on-the-fly recovery line is orphan-free on random
  traces (the CIC guarantee);
* the orphan criterion and the vector-clock criterion agree on complete
  lines (two independent definitions of consistency);
* QBC dominates BCS pointwise on any shared trace (sn and forced
  counts), with identical basic counts;
* the maximal-consistent-line search returns a consistent line.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    CausalOrder,
    annotate_replay,
    build_recovery_line,
    is_consistent,
    maximal_consistent_line,
)
from repro.core.replay import replay
from repro.protocols import (
    BCSProtocol,
    BQFProtocol,
    NoSendBCSProtocol,
    NoSendQBCProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)

# The trace strategy is shared with the conformance kit (and with
# third-party plugin suites) -- see repro.testing.strategies.
from repro.testing.strategies import traces

INDEX_PROTOCOLS = [
    lambda n, m: BCSProtocol(n, m),
    lambda n, m: QBCProtocol(n, m),
    lambda n, m: BQFProtocol(n, m),
    # the no-send skip rule renames checkpoints instead of forcing;
    # including these here machine-checks the renaming soundness
    # argument against the independent orphan checker
    lambda n, m: NoSendBCSProtocol(n, m),
    lambda n, m: NoSendQBCProtocol(n, m),
]


@settings(max_examples=120, deadline=None)
@given(trace=traces(), proto_idx=st.integers(0, len(INDEX_PROTOCOLS) - 1))
def test_recovery_line_is_always_consistent(trace, proto_idx):
    """The CIC guarantee: the protocol's on-the-fly line has no orphans."""
    protocol = INDEX_PROTOCOLS[proto_idx](trace.n_hosts, trace.n_mss)
    run = annotate_replay(trace, protocol)
    line = build_recovery_line(run, protocol)
    assert is_consistent(run, line)
    assert CausalOrder(run).line_is_consistent(line)


@settings(max_examples=120, deadline=None)
@given(trace=traces())
def test_qbc_sn_dominates_bcs_pointwise(trace):
    """On the same trace sn(QBC) <= sn(BCS) per host and basic counts
    are identical (trace-mandated).  Forced counts are NOT pointwise
    comparable -- QBC can be forced where BCS's index already advanced
    via a basic checkpoint -- so the forced/N_tot reduction is asserted
    statistically by the integration suite instead."""
    bcs = replay(trace, BCSProtocol(trace.n_hosts, trace.n_mss)).protocol
    qbc = replay(trace, QBCProtocol(trace.n_hosts, trace.n_mss)).protocol
    assert all(q <= b for q, b in zip(qbc.sn, bcs.sn))
    assert qbc.n_basic == bcs.n_basic


@settings(max_examples=120, deadline=None)
@given(trace=traces())
def test_qbc_invariant_rn_le_sn(trace):
    qbc = replay(trace, QBCProtocol(trace.n_hosts, trace.n_mss)).protocol
    assert all(r <= s for r, s in zip(qbc.rn, qbc.sn))


@settings(max_examples=100, deadline=None)
@given(trace=traces(), data=st.data())
def test_orphan_and_vector_clock_criteria_agree(trace, data):
    """For a random *complete* line, the direct orphan check and the
    happened-before (vector-clock) check must give the same verdict."""
    protocol = BCSProtocol(trace.n_hosts, trace.n_mss)
    run = annotate_replay(trace, protocol)
    line = {}
    for host in range(run.n_hosts):
        line[host] = data.draw(
            st.sampled_from(run.checkpoints[host]), label=f"ckpt host {host}"
        )
    order = CausalOrder(run)
    assert is_consistent(run, line) == order.line_is_consistent(line)


@settings(max_examples=100, deadline=None)
@given(trace=traces())
def test_maximal_consistent_line_search_terminates_consistent(trace):
    protocol = UncoordinatedProtocol(trace.n_hosts, trace.n_mss, period=3.0)
    run = annotate_replay(trace, protocol)
    line, _iterations = maximal_consistent_line(run)
    assert is_consistent(run, line)


@settings(max_examples=100, deadline=None)
@given(trace=traces())
def test_bcs_same_index_checkpoints_are_consistent(trace):
    """The BCS theorem [7]: checkpoints with equal sequence number, one
    per host (with the first-after-jump completion), form a consistent
    global checkpoint -- checked for EVERY index up to min(sn)."""
    protocol = BCSProtocol(trace.n_hosts, trace.n_mss)
    run = annotate_replay(trace, protocol)
    for target in range(min(protocol.sn) + 1):
        line = {}
        for host in range(run.n_hosts):
            exact = run.latest_with_index(host, target)
            line[host] = (
                exact
                if exact is not None
                else run.first_with_index_at_least(host, target)
            )
        assert all(ck is not None for ck in line.values())
        assert is_consistent(run, line), f"index {target} line has orphans"


@settings(max_examples=120, deadline=None)
@given(trace=traces(), data=st.data())
def test_tp_anchored_line_is_consistent(trace, data):
    """TP's actual guarantee: for ANY anchor host, its latest checkpoint
    plus the checkpoints pinned by its dependency vectors (virtual
    on-demand ones where missing) form a consistent global checkpoint.
    Note the naive "everybody's latest checkpoint" cut is NOT consistent
    in general -- a host that sent but never checkpointed since leaves
    orphans -- which is why TP needs the O(n) vectors at all."""
    from repro.core.consistency import tp_anchored_line

    protocol = TwoPhaseProtocol(trace.n_hosts, trace.n_mss)
    run = annotate_replay(trace, protocol)
    anchor = data.draw(st.integers(0, trace.n_hosts - 1), label="anchor")
    line = tp_anchored_line(run, protocol, anchor)
    assert is_consistent(run, line)
    # and the anchor's latest checkpoint really is in the line
    assert line[anchor] == run.last_checkpoint(anchor)


@settings(max_examples=60, deadline=None)
@given(trace=traces())
def test_replay_is_deterministic(trace):
    a = replay(trace, QBCProtocol(trace.n_hosts, trace.n_mss))
    b = replay(trace, QBCProtocol(trace.n_hosts, trace.n_mss))
    assert [
        (c.host, c.index, c.reason, c.replaced) for c in a.protocol.checkpoints
    ] == [(c.host, c.index, c.reason, c.replaced) for c in b.protocol.checkpoints]
