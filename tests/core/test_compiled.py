"""Unit tests for trace compilation (repro.core.compiled)."""

import pytest

from repro.core.compiled import (
    CELL_SWITCH,
    DISCONNECT,
    RECEIVE,
    RECONNECT,
    SEND,
    CompiledTrace,
    compile_trace,
)
from repro.core.trace import Trace, TraceError, TraceEvent, EventType, build_trace
from repro.workload import WorkloadConfig, generate_trace

S, R, C, D, RC = (
    EventType.SEND,
    EventType.RECEIVE,
    EventType.CELL_SWITCH,
    EventType.DISCONNECT,
    EventType.RECONNECT,
)


def sample_trace():
    return build_trace(
        2,
        2,
        [
            (1.0, C, 0, -1, 0, 1),
            (2.0, S, 0, 10, 1),
            (3.0, R, 1, 10, 0),
            (4.0, D, 1),
            (5.0, RC, 1, -1, -1, 0),
        ],
    )


def test_columns_match_events():
    trace = sample_trace()
    ct = compile_trace(trace)
    assert isinstance(ct, CompiledTrace)
    assert len(ct) == len(trace.events) == ct.n_events
    assert ct.n_hosts == 2 and ct.n_mss == 2
    assert ct.etype == [CELL_SWITCH, SEND, RECEIVE, DISCONNECT, RECONNECT]
    assert ct.time == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert ct.host == [0, 0, 1, 1, 1]
    assert all(isinstance(e, int) and not isinstance(e, EventType)
               for e in ct.etype)


def test_slot_mapping_links_send_and_receive():
    ct = compile_trace(sample_trace())
    assert ct.n_sends == 1 and ct.n_receives == 1
    assert ct.slot == [-1, 0, 0, -1, -1]  # receive carries its send's slot


def test_argv_packs_hook_arguments():
    ct = compile_trace(sample_trace())
    assert ct.argv[0] == (0, 1.0, 1)  # cell switch: (host, now, cell)
    assert ct.argv[1] == (0, 1, 2.0)  # send: (host, dst, now)
    assert ct.argv[2] == (1, 0, 3.0)  # receive: (host, src, now)
    assert ct.argv[3] == (1, 4.0)     # disconnect: (host, now)
    assert ct.argv[4] == (1, 5.0, 0)  # reconnect: (host, now, cell)


def _raw_trace(events):
    # Bypass build_trace's validation: compile_trace must catch these
    # on its own for traces loaded with validate=False.
    return Trace(
        n_hosts=2,
        n_mss=2,
        events=[
            TraceEvent(time=t, etype=e, host=h, msg_id=m, peer=p, cell=-1)
            for t, e, h, m, p in events
        ],
        sim_time=10.0,
    )


def test_receive_without_send_rejected():
    trace = _raw_trace([(1.0, R, 1, 99, 0)])
    with pytest.raises(TraceError, match="never sent"):
        compile_trace(trace)


def test_duplicate_send_rejected():
    trace = _raw_trace([(1.0, S, 0, 10, 1), (2.0, S, 0, 10, 1)])
    with pytest.raises(TraceError, match="duplicate send"):
        compile_trace(trace)


def test_compiled_accessor_caches_per_trace():
    trace = sample_trace()
    first = trace.compiled()
    assert trace.compiled() is first
    trace.events.append(trace.events[-1])
    assert trace.compiled() is not first  # event count changed: recompile


def test_generated_trace_compiles_consistently():
    trace = generate_trace(WorkloadConfig(sim_time=500.0, seed=3))
    ct = trace.compiled()
    assert ct.n_sends == trace.n_sends
    sends = [i for i, e in enumerate(ct.etype) if e == SEND]
    assert sorted(ct.slot[i] for i in sends) == list(range(ct.n_sends))
    for i, e in enumerate(ct.etype):
        if e == RECEIVE:
            slot = ct.slot[i]
            senders = [
                j for j in sends
                if ct.slot[j] == slot and ct.msg_id[j] == ct.msg_id[i]
            ]
            assert len(senders) == 1
