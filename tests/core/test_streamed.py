"""Streaming trace compilation: bit-identity with ``compile_trace``."""

import numpy as np
import pytest

from repro.core.compiled import (
    FLOAT_DTYPE,
    INT_DTYPE,
    SEND,
    compile_trace,
)
from repro.core.streamed import (
    DEFAULT_BLOCK_EVENTS,
    StreamingCompiler,
    StreamedTrace,
)
from repro.core.trace import EventType, TraceError
from repro.workload.config import WorkloadConfig
from repro.workload.driver import generate_streamed, generate_trace


def _assert_identical(streamed: StreamedTrace, compiled) -> None:
    rebuilt = streamed.to_compiled()
    assert rebuilt == compiled
    # Field-by-field, so a failure names the diverging column.
    for name in (
        "n_hosts", "n_mss", "sim_time", "n_events", "n_sends",
        "n_receives", "etype", "time", "host", "msg_id", "peer",
        "cell", "slot", "argv",
    ):
        assert getattr(rebuilt, name) == getattr(compiled, name), name


def _paper_cfgs():
    yield WorkloadConfig(sim_time=300.0)
    yield WorkloadConfig(sim_time=300.0, send_to_connected_only=False)
    yield WorkloadConfig(sim_time=300.0, p_switch=0.8, heterogeneity=0.3)


@pytest.mark.parametrize("cfg", list(_paper_cfgs()), ids=lambda c: "")
def test_streamed_equals_materialized_paper(cfg):
    cfg = cfg.validate()
    streamed = generate_streamed(cfg, block_events=257)
    compiled = compile_trace(generate_trace(cfg))
    _assert_identical(streamed, compiled)


@pytest.mark.parametrize(
    "workload, params",
    [
        ("zipf", {"alpha": 1.2}),
        ("hotspot", {"n_hot": 2}),
        ("bursty", {}),
        ("daynight", {"period": 50.0}),
    ],
)
def test_streamed_equals_materialized_models(workload, params):
    cfg = WorkloadConfig(
        sim_time=200.0, workload=workload, workload_params=params
    ).validate()
    streamed = generate_streamed(cfg, block_events=100)
    compiled = compile_trace(generate_trace(cfg))
    _assert_identical(streamed, compiled)


def test_block_boundaries_do_not_change_content():
    cfg = WorkloadConfig(sim_time=200.0).validate()
    reference = generate_streamed(cfg, block_events=10_000_000).to_compiled()
    for block_events in (1, 7, 64, 1000):
        assert (
            generate_streamed(cfg, block_events=block_events).to_compiled()
            == reference
        )


def test_blocks_respect_block_events():
    cfg = WorkloadConfig(sim_time=200.0).validate()
    streamed = generate_streamed(cfg, block_events=64)
    assert len(streamed.blocks) == -(-streamed.n_events // 64)  # ceil div
    assert all(len(b) == 64 for b in streamed.blocks[:-1])
    assert sum(len(b) for b in streamed.blocks) == streamed.n_events


def test_storage_dtypes_and_nbytes():
    cfg = WorkloadConfig(sim_time=150.0).validate()
    streamed = generate_streamed(cfg)
    block = streamed.blocks[0]
    # Narrow storage dtypes (the memory-bound claim of the module)...
    assert block.etype.dtype == np.dtype("int8")
    assert block.time.dtype == np.dtype(FLOAT_DTYPE)
    assert block.msg_id.dtype == np.dtype(INT_DTYPE)
    assert block.host.dtype == np.dtype("int32")
    assert block.slot.dtype == np.dtype("int32")
    # ... 1+8+4+8+4+4+4 = 33 bytes per event.
    assert streamed.nbytes == 33 * streamed.n_events
    # ... widened back to the engine's pinned lowering dtypes.
    cols = streamed.array_columns()
    assert cols.etype.dtype == np.dtype(INT_DTYPE)
    assert cols.time.dtype == np.dtype(FLOAT_DTYPE)
    assert cols.slot.dtype == np.dtype(INT_DTYPE)


def test_out_of_range_feed_raises_not_wraps():
    # int8/int32 storage must never silently wrap: numpy raises at the
    # block flush if a value exceeds its column's range.
    compiler = StreamingCompiler(
        n_hosts=2, n_mss=2, sim_time=10.0, block_events=1
    )
    with pytest.raises(OverflowError):
        compiler.feed(1.0, 300, 0)  # etype beyond int8


def test_array_columns_matches_compiled_lowering():
    cfg = WorkloadConfig(sim_time=200.0).validate()
    streamed = generate_streamed(cfg, block_events=128)
    direct = streamed.array_columns()
    from repro.core.compiled import ArrayColumns

    via_compiled = ArrayColumns.from_compiled(streamed.to_compiled())
    for name in ("etype", "time", "host", "msg_id", "peer", "cell", "slot"):
        np.testing.assert_array_equal(
            getattr(direct, name), getattr(via_compiled, name), err_msg=name
        )
    assert direct.n_sends == via_compiled.n_sends
    assert direct.n_events == streamed.n_events


def test_empty_stream():
    streamed = StreamingCompiler(n_hosts=2, n_mss=2, sim_time=1.0).finish()
    assert len(streamed) == 0
    assert streamed.blocks == ()
    assert streamed.array_columns().n_events == 0
    assert streamed.to_compiled().n_events == 0


def test_duplicate_send_raises_like_compile_trace():
    compiler = StreamingCompiler(n_hosts=2, n_mss=2, sim_time=10.0)
    compiler.feed(1.0, int(EventType.SEND), 0, msg_id=7, peer=1)
    with pytest.raises(TraceError, match="duplicate send of msg 7"):
        compiler.feed(2.0, int(EventType.SEND), 0, msg_id=7, peer=1)


def test_orphan_receive_raises_like_compile_trace():
    compiler = StreamingCompiler(n_hosts=2, n_mss=2, sim_time=10.0)
    with pytest.raises(TraceError, match="never sent or was already consumed"):
        compiler.feed(1.0, int(EventType.RECEIVE), 1, msg_id=3, peer=0)


def test_feed_after_finish_raises():
    compiler = StreamingCompiler(n_hosts=2, n_mss=2, sim_time=10.0)
    compiler.finish()
    with pytest.raises(TraceError, match="already finished"):
        compiler.feed(1.0, int(EventType.INTERNAL), 0)


def test_block_events_must_be_positive():
    with pytest.raises(ValueError, match="block_events"):
        StreamingCompiler(n_hosts=2, n_mss=2, sim_time=1.0, block_events=0)


def test_slot_assignment_matches_send_order():
    compiler = StreamingCompiler(n_hosts=3, n_mss=2, sim_time=10.0)
    compiler.feed(1.0, SEND, 0, msg_id=10, peer=1)
    compiler.feed(2.0, SEND, 1, msg_id=11, peer=2)
    compiler.feed(3.0, int(EventType.RECEIVE), 2, msg_id=11, peer=1)
    compiler.feed(4.0, int(EventType.RECEIVE), 1, msg_id=10, peer=0)
    streamed = compiler.finish()
    assert streamed.n_sends == 2 and streamed.n_receives == 2
    assert streamed.blocks[0].slot.tolist() == [0, 1, 1, 0]


def test_in_flight_sends_at_horizon_are_fine():
    compiler = StreamingCompiler(n_hosts=2, n_mss=2, sim_time=10.0)
    compiler.feed(1.0, SEND, 0, msg_id=1, peer=1)
    streamed = compiler.finish()
    assert streamed.n_sends == 1 and streamed.n_receives == 0


def test_default_block_events_is_sane():
    assert DEFAULT_BLOCK_EVENTS >= 1024
