"""Tests for failure injection with live rollback (repro.core.failures)."""

import pytest

from repro.core.failures import run_with_failures
from repro.protocols import (
    BCSProtocol,
    NoSendQBCProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
)
from repro.workload import WorkloadConfig


def cfg(**kw):
    defaults = dict(sim_time=2000.0, seed=6, t_switch=200.0, p_switch=0.9)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_failures_occur_and_are_recovered():
    c = cfg()
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=300.0
    )
    assert result.n_failures >= 2
    for f in result.failures:
        assert f.recovery_time > 0
        assert f.control_messages > 0
        assert f.lost_work_time >= 0
    assert 0.0 <= result.availability <= 1.0


def test_computation_continues_after_failures():
    c = cfg()
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=500.0
    )
    last_failure = max(f.time for f in result.failures)
    # sends recorded after the last failure prove the system resumed
    post = [
        ev for ev in result.protocol.checkpoints if ev.time > last_failure
    ]
    assert result.n_sends > 0
    assert post, "no checkpoints after the last failure: system stalled"


def test_stale_messages_are_dropped():
    c = cfg(p_send=0.5)
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=250.0
    )
    assert result.stale_messages_dropped > 0


@pytest.mark.parametrize(
    "cls", [BCSProtocol, QBCProtocol, TwoPhaseProtocol, NoSendQBCProtocol]
)
def test_protocol_invariants_survive_rollback(cls):
    c = cfg()
    result = run_with_failures(
        c, cls(c.n_hosts, c.n_mss), failure_mean_interval=400.0
    )
    protocol = result.protocol
    assert result.n_failures >= 1
    if hasattr(protocol, "rn"):
        assert all(r <= s for r, s in zip(protocol.rn, protocol.sn))
    if hasattr(protocol, "sn"):
        assert all(s >= 0 for s in protocol.sn)


def test_rollback_restores_bcs_sn_to_line():
    """Directly after a rollback the live sn equals the line indices."""
    c = cfg(sim_time=1200.0)
    protocol = BCSProtocol(c.n_hosts, c.n_mss)
    result = run_with_failures(c, protocol, failure_mean_interval=600.0)
    # can't observe mid-run state here, but the line rule must still
    # hold at the end: a full recovery line is constructible
    line = protocol.recovery_line_indices()
    assert set(line) == set(range(c.n_hosts))


def test_more_failures_more_lost_work():
    c = cfg(sim_time=3000.0)
    rare = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=1500.0
    )
    frequent = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=200.0
    )
    assert frequent.n_failures > rare.n_failures
    assert frequent.total_lost_work > rare.total_lost_work
    assert frequent.availability <= rare.availability


def test_interval_validation():
    c = cfg(sim_time=100.0)
    with pytest.raises(ValueError, match="failure_mean_interval"):
        run_with_failures(c, BCSProtocol(c.n_hosts, c.n_mss), 0.0)


def test_deterministic_across_runs():
    c = cfg()
    a = run_with_failures(
        c, QBCProtocol(c.n_hosts, c.n_mss), failure_mean_interval=400.0
    )
    b = run_with_failures(
        c, QBCProtocol(c.n_hosts, c.n_mss), failure_mean_interval=400.0
    )
    assert [(f.time, f.victim) for f in a.failures] == [
        (f.time, f.victim) for f in b.failures
    ]
    assert a.total_lost_work == b.total_lost_work


# ----------------------------------------------------------------------
# edge cases: empty failure schedules, overlapping recoveries, epoch
# accounting
# ----------------------------------------------------------------------
def test_zero_failure_run_has_no_cost():
    """A mean interval far past sim_time injects nothing: the result
    degenerates to a clean run with zero cost and full availability."""
    c = cfg()
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=1e9
    )
    assert result.n_failures == 0
    assert result.total_lost_work == 0.0
    assert result.total_recovery_downtime == 0.0
    assert result.availability == 1.0
    assert result.stale_messages_dropped == 0
    assert result.n_sends > 0  # the workload itself still ran


def test_empty_result_properties():
    """FailureRunResult with no recorded run reports perfect health
    (sim_time == 0 must not divide by zero)."""
    from repro.core.failures import FailureRunResult

    empty = FailureRunResult(protocol=None)
    assert empty.n_failures == 0
    assert empty.total_lost_work == 0.0
    assert empty.availability == 1.0


def test_crash_during_another_hosts_recovery_downtime():
    """A crash landing while hosts are still paused from the previous
    recovery must extend (never shorten) the downtime window, and the
    system must still make progress afterwards.  A large leg latency
    stretches each recovery to tens of time units so crashes at a mean
    interval of 60 routinely land inside one."""
    c = cfg(sim_time=4000.0, leg_latency=5.0)
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=60.0
    )
    assert result.n_failures >= 2
    ordered = sorted(result.failures, key=lambda f: f.time)
    overlaps = [
        later.time < earlier.time + earlier.recovery_time
        for earlier, later in zip(ordered, ordered[1:])
    ]
    assert any(overlaps), (
        "no crash landed inside a recovery window; lower the interval"
    )
    # every recovery is still individually well-formed...
    for f in result.failures:
        assert f.recovery_time > 0
        assert f.lost_work_time >= 0
    # ...and the computation resumed after the pile-up
    last = ordered[-1]
    post = [
        ck
        for ck in result.protocol.checkpoints
        if ck.time > last.time + last.recovery_time
    ]
    assert post, "system stalled after overlapping recoveries"


def test_epoch_counter_tracks_failures():
    """Each rollback opens a new epoch: the driver's epoch counter must
    equal the number of injected failures."""
    from repro.core.failures import _FailureDriver

    c = cfg()
    driver = _FailureDriver(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=400.0
    )
    result = driver.run_with_failures()
    assert result.n_failures >= 1
    assert driver._epoch == result.n_failures


def test_stale_drop_accounting_across_epochs():
    """Every application message is accepted at most once and dropped at
    most once, across all epochs: receives + drops never exceed sends,
    and drops keep accumulating over multiple rollbacks."""
    c = cfg(sim_time=3000.0, p_send=0.5)
    result = run_with_failures(
        c, BCSProtocol(c.n_hosts, c.n_mss), failure_mean_interval=250.0
    )
    assert result.n_failures >= 2  # multiple epochs exercised
    assert result.stale_messages_dropped > 0
    assert result.n_receives + result.stale_messages_dropped <= result.n_sends
    # fewer epochs => no more drops than the multi-epoch run at the
    # same traffic level (sanity: drops scale with failures, seeds equal)
    calm = run_with_failures(
        cfg(sim_time=3000.0, p_send=0.5),
        BCSProtocol(c.n_hosts, c.n_mss),
        failure_mean_interval=2500.0,
    )
    assert calm.n_failures < result.n_failures
    assert calm.stale_messages_dropped <= result.stale_messages_dropped
