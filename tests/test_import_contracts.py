"""Architecture contracts, enforced by AST inspection.

``import-linter`` is not a dependency of this repo, so the layering
rules the unified engine refactor established are checked here with
:mod:`ast` instead -- same contracts, stdlib only:

1. **Protocols stay driver-agnostic** -- nothing under
   ``repro.protocols`` imports ``repro.engine`` or
   ``repro.experiments`` (a protocol must be definable without knowing
   how it will be driven).
2. **One execution entry point** -- ``repro.engine`` is the only call
   site of the raw drivers (``replay`` / ``replay_fused`` /
   ``run_online`` / ``run_coordinated``) outside ``repro.core`` /
   ``repro.workload`` internals and their direct unit tests.  The CLI,
   the sweep runner, the audit, the benchmarks and the examples all go
   through ``Engine.run``.  ``benchmarks/bench_engine.py`` is the one
   documented exception: it calls ``replay_fused`` directly to measure
   the engine layer's overhead against the raw loop.
"""

import ast
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: The raw driver entry points consumers must not call directly.
RAW_DRIVERS = frozenset(
    {
        "replay",
        "replay_fused",
        "replay_vectorized",
        "replay_vectorized_batch",
        "replay_many",
        "run_online",
        "run_coordinated",
    }
)

#: Consumer surfaces bound by contract 2 (directories scanned
#: recursively, files taken as-is).
CONSUMER_PATHS = (
    SRC / "cli.py",
    SRC / "experiments",
    SRC / "obs",
    SRC / "analysis",
    SRC / "testing",
    REPO / "benchmarks",
    REPO / "examples",
)

#: The one sanctioned raw call site outside the engine: the
#: engine-overhead tripwire bench (see its module docstring).
RAW_CALL_ALLOWLIST = frozenset({REPO / "benchmarks" / "bench_engine.py"})


def _python_files(path: Path):
    if path.is_file():
        yield path
    else:
        yield from sorted(path.rglob("*.py"))


def _imported_modules(tree: ast.AST):
    """Every module named by an import statement, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            yield node.module


def _called_names(tree: ast.AST):
    """(name, line) of every call target, by Name or trailing attribute."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            yield func.id, node.lineno
        elif isinstance(func, ast.Attribute):
            yield func.attr, node.lineno


def test_protocols_never_import_engine_or_experiments():
    offenders = []
    for path in _python_files(SRC / "protocols"):
        tree = ast.parse(path.read_text(), filename=str(path))
        for module in _imported_modules(tree):
            if module.startswith(("repro.engine", "repro.experiments")):
                offenders.append(f"{path.relative_to(REPO)}: imports {module}")
    assert not offenders, "\n".join(offenders)


def test_consumers_never_call_raw_drivers():
    offenders = []
    for root in CONSUMER_PATHS:
        for path in _python_files(root):
            if path in RAW_CALL_ALLOWLIST:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for name, lineno in _called_names(tree):
                if name in RAW_DRIVERS:
                    offenders.append(
                        f"{path.relative_to(REPO)}:{lineno}: calls {name}()"
                    )
    assert not offenders, (
        "raw driver calls outside repro.engine (route these through "
        "Engine.run / repro.engine.execute):\n" + "\n".join(offenders)
    )


def test_consumers_do_not_even_import_raw_drivers():
    """Importing the raw entry points is the first step to calling
    them; consumers should not hold a reference at all (the allowlisted
    overhead bench aside)."""
    offenders = []
    for root in CONSUMER_PATHS:
        for path in _python_files(root):
            if path in RAW_CALL_ALLOWLIST:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module in (
                    "repro",
                    "repro.core.replay",
                    "repro.workload.driver",
                    "repro.core.online",
                ):
                    for alias in node.names:
                        if alias.name in RAW_DRIVERS:
                            offenders.append(
                                f"{path.relative_to(REPO)}:{node.lineno}: "
                                f"imports {alias.name} from {node.module}"
                            )
    assert not offenders, "\n".join(offenders)


def test_engine_is_importable_without_experiments():
    """repro.engine must not depend on repro.experiments (the sweep
    layer sits above the engine, never the other way around)."""
    offenders = []
    for path in _python_files(SRC / "engine"):
        tree = ast.parse(path.read_text(), filename=str(path))
        for module in _imported_modules(tree):
            if module.startswith("repro.experiments"):
                offenders.append(f"{path.relative_to(REPO)}: imports {module}")
    assert not offenders, "\n".join(offenders)


def test_contract_allowlist_is_current():
    """The allowlisted file must still exist and still call the raw
    driver it is allowlisted for -- otherwise the allowlist is stale."""
    (path,) = RAW_CALL_ALLOWLIST
    assert path.exists()
    tree = ast.parse(path.read_text(), filename=str(path))
    assert any(name == "replay_fused" for name, _ in _called_names(tree))
