"""Smoke: every registered workload runs end to end on both replay
engines with identical counters, and streams bit-identically.

This is the local twin of the CI ``workload-smoke`` step: a model that
registers but cannot actually drive a run (or diverges between the
fused and vectorized engines, or between the streaming and materialized
compilers) fails here before any figure uses it.
"""

import json

import pytest

from repro.core.compiled import compile_trace
from repro.engine import RunSpec, execute
from repro.workload.config import WorkloadConfig
from repro.workload.driver import generate_streamed, generate_trace
from repro.workload.registry import workload_names

PROTOCOLS = ("TP", "BCS", "QBC")


@pytest.fixture
def smoke_params(tmp_path):
    """Minimal valid params per model (only 'trace' needs any)."""
    schedule = tmp_path / "schedule.jsonl"
    schedule.write_text(
        "\n".join(
            json.dumps({"host": h % 10, "delay": 0.5 + (h % 3)})
            for h in range(60)
        )
        + "\n",
        encoding="utf-8",
    )
    return {"trace": {"path": str(schedule)}}


def _smoke_config(name, smoke_params) -> WorkloadConfig:
    return WorkloadConfig(
        sim_time=200.0,
        workload=name,
        workload_params=smoke_params.get(name, {}),
    ).validate()


@pytest.mark.parametrize("name", workload_names())
def test_workload_runs_on_both_engines(name, smoke_params):
    cfg = _smoke_config(name, smoke_params)
    fused = execute(
        RunSpec(protocols=PROTOCOLS, workload=cfg, engine="fused")
    )
    vectorized = execute(
        RunSpec(protocols=PROTOCOLS, workload=cfg, engine="vectorized")
    )
    assert fused.engine_kind == "fused"
    assert vectorized.engine_kind == "vectorized"
    for proto in PROTOCOLS:
        f = fused.outcome(proto).metrics
        v = vectorized.outcome(proto).metrics
        assert f.n_total == v.n_total, proto
        assert f.n_total >= 0
    # A model that silences the application entirely is a broken smoke.
    assert len(fused.trace.events) > 0


@pytest.mark.parametrize("name", workload_names())
def test_workload_streams_bit_identically(name, smoke_params):
    cfg = _smoke_config(name, smoke_params)
    streamed = generate_streamed(cfg, block_events=128)
    compiled = compile_trace(generate_trace(cfg))
    assert streamed.to_compiled() == compiled
