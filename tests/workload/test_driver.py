"""Tests for the workload driver (repro.workload.driver)."""

import pytest

from repro.core.trace import EventType
from repro.protocols import BCSProtocol, QBCProtocol
from repro.workload import WorkloadConfig, generate_trace, run_online
from repro.workload.scenarios import figure_config, paper_scenarios


def test_generated_trace_validates():
    cfg = WorkloadConfig(sim_time=500.0, seed=1, t_switch=100.0, p_switch=0.8)
    generate_trace(cfg).validate()


def test_trace_determinism_same_seed():
    cfg = WorkloadConfig(sim_time=400.0, seed=9, t_switch=100.0)
    a, b = generate_trace(cfg), generate_trace(cfg)
    assert len(a) == len(b)
    assert all(
        (x.time, x.etype, x.host, x.msg_id) == (y.time, y.etype, y.host, y.msg_id)
        for x, y in zip(a.events, b.events)
    )


def test_trace_differs_across_seeds():
    base = WorkloadConfig(sim_time=400.0, t_switch=100.0)
    a = generate_trace(base.with_(seed=1))
    b = generate_trace(base.with_(seed=2))
    assert [e.time for e in a.events[:50]] != [e.time for e in b.events[:50]]


def test_event_rate_matches_model():
    """~1 op per time unit per host; P_s of them are sends."""
    cfg = WorkloadConfig(sim_time=2000.0, seed=4, t_switch=1e6, p_send=0.4)
    trace = generate_trace(cfg)
    expected_ops = cfg.sim_time * cfg.n_hosts
    sends = trace.n_sends
    assert 0.4 * expected_ops * 0.85 < sends < 0.4 * expected_ops * 1.15


def test_switch_rate_scales_with_t_switch():
    base = WorkloadConfig(sim_time=3000.0, seed=2, p_switch=1.0)
    fast = generate_trace(base.with_(t_switch=100.0))
    slow = generate_trace(base.with_(t_switch=1000.0))
    assert fast.count(EventType.CELL_SWITCH) > 3 * slow.count(EventType.CELL_SWITCH)


def test_pswitch_one_never_disconnects():
    cfg = WorkloadConfig(sim_time=2000.0, seed=3, t_switch=100.0, p_switch=1.0)
    trace = generate_trace(cfg)
    assert trace.count(EventType.DISCONNECT) == 0


def test_disconnections_present_at_pswitch_below_one():
    cfg = WorkloadConfig(sim_time=3000.0, seed=3, t_switch=100.0, p_switch=0.5)
    trace = generate_trace(cfg)
    assert trace.count(EventType.DISCONNECT) > 0
    assert trace.count(EventType.RECONNECT) <= trace.count(EventType.DISCONNECT)


def test_heterogeneous_hosts_switch_more():
    cfg = WorkloadConfig(
        sim_time=4000.0, seed=5, t_switch=1000.0, p_switch=1.0, heterogeneity=0.5
    )
    trace = generate_trace(cfg)
    fast_switches = sum(
        1
        for e in trace.events
        if e.etype is EventType.CELL_SWITCH and e.host < 5
    )
    slow_switches = trace.count(EventType.CELL_SWITCH) - fast_switches
    assert fast_switches > 3 * slow_switches


def test_no_activity_while_disconnected():
    cfg = WorkloadConfig(sim_time=3000.0, seed=8, t_switch=100.0, p_switch=0.3)
    trace = generate_trace(cfg)
    trace.validate()  # validation covers disconnected sends/receives
    connected = [True] * cfg.n_hosts
    for ev in trace.events:
        if ev.etype is EventType.DISCONNECT:
            connected[ev.host] = False
        elif ev.etype is EventType.RECONNECT:
            connected[ev.host] = True
        elif ev.etype in (EventType.SEND, EventType.RECEIVE, EventType.CELL_SWITCH):
            assert connected[ev.host]


def test_blocking_receive_mode_runs():
    cfg = WorkloadConfig(
        sim_time=500.0,
        seed=1,
        t_switch=100.0,
        p_send=0.6,  # sends dominate: blocking cannot starve everyone
        block_on_empty_receive=True,
    )
    trace = generate_trace(cfg)
    trace.validate()
    assert trace.n_receives > 0


def test_online_with_checkpoint_latency_still_counts_similarly():
    """Paper: non-negligible checkpoint time has no remarkable impact on
    the number of checkpoints."""
    cfg = WorkloadConfig(sim_time=1500.0, seed=6, t_switch=200.0, p_switch=0.8)
    instant = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss), ckpt_latency=0.0)
    slow = run_online(cfg, BCSProtocol(cfg.n_hosts, cfg.n_mss), ckpt_latency=0.1)
    assert slow.metrics.n_total == pytest.approx(instant.metrics.n_total, rel=0.25)


def test_online_protocol_host_mismatch():
    cfg = WorkloadConfig(sim_time=100.0)
    with pytest.raises(ValueError, match="sized for"):
        run_online(cfg, QBCProtocol(3))


def test_online_negative_latency_rejected():
    cfg = WorkloadConfig(sim_time=100.0)
    with pytest.raises(ValueError, match="ckpt_latency"):
        run_online(cfg, QBCProtocol(cfg.n_hosts), ckpt_latency=-1.0)


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(n_hosts=1).validate()
    with pytest.raises(ValueError):
        WorkloadConfig(p_send=1.2).validate()
    with pytest.raises(ValueError):
        WorkloadConfig(t_switch=0.0).validate()
    with pytest.raises(ValueError):
        WorkloadConfig(sim_time=-5.0).validate()


def test_config_with_does_not_mutate():
    a = WorkloadConfig(t_switch=100.0)
    b = a.with_(t_switch=200.0)
    assert a.t_switch == 100.0 and b.t_switch == 200.0


def test_connected_only_never_targets_disconnected_hosts():
    """Default destination sampling: every send goes to a host that is
    connected at send time."""
    cfg = WorkloadConfig(sim_time=3000.0, seed=7, t_switch=100.0, p_switch=0.5)
    trace = generate_trace(cfg)
    connected = [True] * cfg.n_hosts
    for ev in trace.events:
        if ev.etype is EventType.DISCONNECT:
            connected[ev.host] = False
        elif ev.etype is EventType.RECONNECT:
            connected[ev.host] = True
        elif ev.etype is EventType.SEND:
            assert connected[ev.peer], f"send to disconnected host: {ev}"


def test_any_destination_mode_buffers_for_disconnected():
    cfg = WorkloadConfig(
        sim_time=3000.0,
        seed=7,
        t_switch=100.0,
        p_switch=0.5,
        send_to_connected_only=False,
    )
    trace = generate_trace(cfg)
    trace.validate()
    connected = [True] * cfg.n_hosts
    to_disconnected = 0
    for ev in trace.events:
        if ev.etype is EventType.DISCONNECT:
            connected[ev.host] = False
        elif ev.etype is EventType.RECONNECT:
            connected[ev.host] = True
        elif ev.etype is EventType.SEND and not connected[ev.peer]:
            to_disconnected += 1
    assert to_disconnected > 0  # the ablation really exercises buffering


def test_graph_mobility_workload_runs():
    cfg = WorkloadConfig(
        sim_time=500.0, seed=2, t_switch=50.0, cell_chooser="graph"
    )
    trace = generate_trace(cfg)
    trace.validate()
    assert trace.count(EventType.CELL_SWITCH) > 0


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def test_figure_config_parameters():
    cfg = figure_config(4, t_switch=500.0, seed=3)
    assert cfg.p_switch == 0.8
    assert cfg.heterogeneity == 0.5
    assert cfg.p_send == 0.4
    assert cfg.seed == 3


def test_figure_config_unknown_figure():
    with pytest.raises(ValueError):
        figure_config(7, t_switch=100.0)


def test_paper_scenarios_cover_six_figures():
    scenarios = paper_scenarios()
    assert sorted(scenarios) == [1, 2, 3, 4, 5, 6]
    assert scenarios[1]["p_switch"] == 1.0
    assert scenarios[6]["heterogeneity"] == 0.3
