"""Error paths and parameter threading of the figure scenarios."""

import pytest

from repro.workload.config import SIM_TIME_PAPER
from repro.workload.scenarios import (
    T_SWITCH_SWEEP,
    figure_config,
    paper_scenarios,
)


@pytest.mark.parametrize("bad_figure", [0, 7, -1, 99])
def test_invalid_figure_number(bad_figure):
    with pytest.raises(
        ValueError, match=f"the paper has figures 1..6, got {bad_figure}"
    ):
        figure_config(bad_figure, t_switch=1000.0)


@pytest.mark.parametrize("bad_t_switch", [0.0, -100.0])
def test_non_positive_t_switch(bad_t_switch):
    with pytest.raises(ValueError, match="t_switch must be positive"):
        figure_config(1, t_switch=bad_t_switch)


def test_non_positive_sim_time_override():
    with pytest.raises(ValueError, match="sim_time must be positive"):
        figure_config(1, t_switch=1000.0, sim_time=0.0)


def test_seed_threads_through():
    assert figure_config(1, t_switch=500.0).seed == 0
    assert figure_config(1, t_switch=500.0, seed=17).seed == 17


def test_seed_changes_only_the_seed():
    a = figure_config(3, t_switch=500.0, seed=0)
    b = figure_config(3, t_switch=500.0, seed=1)
    assert a.with_(seed=1) == b


def test_sim_time_default_and_override():
    assert figure_config(2, t_switch=500.0).sim_time == SIM_TIME_PAPER
    assert figure_config(2, t_switch=500.0, sim_time=250.0).sim_time == 250.0


@pytest.mark.parametrize(
    "figure, p_switch, heterogeneity",
    [
        (1, 1.0, 0.0),
        (2, 0.8, 0.0),
        (3, 1.0, 0.5),
        (4, 0.8, 0.5),
        (5, 1.0, 0.3),
        (6, 0.8, 0.3),
    ],
)
def test_figure_parameters_match_the_paper(figure, p_switch, heterogeneity):
    cfg = figure_config(figure, t_switch=1000.0)
    assert cfg.p_send == 0.4
    assert cfg.p_switch == p_switch
    assert cfg.heterogeneity == heterogeneity
    # Figures use the paper's uniform workload model.
    assert cfg.workload == "paper" and cfg.workload_params == {}


def test_t_switch_sweep_is_the_figure_x_axis():
    assert T_SWITCH_SWEEP[0] == 100.0 and T_SWITCH_SWEEP[-1] == 10000.0
    assert list(T_SWITCH_SWEEP) == sorted(T_SWITCH_SWEEP)


def test_paper_scenarios_cover_all_figures():
    scenarios = paper_scenarios()
    assert sorted(scenarios) == [1, 2, 3, 4, 5, 6]
    assert all(s["p_send"] == 0.4 for s in scenarios.values())
