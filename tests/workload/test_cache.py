"""Unit tests for the content-addressed trace cache
(repro.workload.cache)."""

import dataclasses

import pytest

from repro.workload import WorkloadConfig
from repro.workload.cache import (
    CACHE_DIR_ENV,
    TraceCache,
    config_key,
    shared_cache,
)


def cfg(**overrides):
    return WorkloadConfig(**{"sim_time": 200.0, **overrides})


# ----------------------------------------------------------------------
# key derivation
# ----------------------------------------------------------------------
def test_key_is_stable_across_instances():
    assert config_key(cfg()) == config_key(cfg())
    assert len(config_key(cfg())) == 64  # hex sha256


@pytest.mark.parametrize(
    "change",
    [
        {"seed": 1},
        {"t_switch": 999.0},
        {"sim_time": 201.0},
        {"n_hosts": 11},
        {"p_send": 0.5},
        {"heterogeneity": 0.3},
        {"extra": {"note": "x"}},
    ],
)
def test_any_field_change_invalidates_key(change):
    assert config_key(cfg(**change)) != config_key(cfg())


def test_extra_dict_ordering_is_canonical():
    a = cfg(extra={"x": 1, "y": 2})
    b = cfg(extra={"y": 2, "x": 1})
    assert config_key(a) == config_key(b)


def test_non_finite_floats_are_hashable():
    # wireless_bandwidth defaults to inf; plain json would reject it.
    assert config_key(cfg()) != config_key(cfg(wireless_bandwidth=1e6))


def test_key_covers_every_config_field():
    # A new WorkloadConfig field must not silently alias cache entries:
    # the key is built from dataclasses.fields, so this documents the
    # expectation that all fields participate.
    base, other = cfg(), cfg()
    for f in dataclasses.fields(WorkloadConfig):
        assert hasattr(base, f.name)
    assert config_key(base) == config_key(other)


# ----------------------------------------------------------------------
# memory tier
# ----------------------------------------------------------------------
def test_memory_hit_returns_same_object():
    cache = TraceCache()
    first = cache.get_or_generate(cfg())
    second = cache.get_or_generate(cfg())
    assert second is first
    assert cache.stats() == {
        "hits": 1, "disk_hits": 0, "misses": 1,
        "corrupt_evictions": 0, "legacy_upgrades": 0, "entries": 1,
    }


def test_different_seeds_are_different_entries():
    cache = TraceCache()
    t0 = cache.get_or_generate(cfg(seed=0))
    t1 = cache.get_or_generate(cfg(seed=1))
    assert t0 is not t1
    assert cache.misses == 2 and cache.hits == 0


def test_lru_eviction_bounds_memory():
    cache = TraceCache(max_entries=2)
    a, b, c = cfg(seed=0), cfg(seed=1), cfg(seed=2)
    cache.get_or_generate(a)
    cache.get_or_generate(b)
    cache.get_or_generate(c)  # evicts a (least recently used)
    assert len(cache) == 2
    cache.get_or_generate(a)  # regenerates
    assert cache.misses == 4 and cache.hits == 0


def test_lru_recency_updated_on_hit():
    cache = TraceCache(max_entries=2)
    a, b, c = cfg(seed=0), cfg(seed=1), cfg(seed=2)
    cache.get_or_generate(a)
    cache.get_or_generate(b)
    cache.get_or_generate(a)  # a becomes most recent
    cache.get_or_generate(c)  # evicts b, not a
    assert cache.get_or_generate(a) is not None
    assert cache.stats()["misses"] == 3  # a, b, c only


def test_clear_resets_counters_and_entries():
    cache = TraceCache()
    cache.get_or_generate(cfg())
    cache.clear()
    assert cache.stats() == {
        "hits": 0, "disk_hits": 0, "misses": 0,
        "corrupt_evictions": 0, "legacy_upgrades": 0, "entries": 0,
    }


# ----------------------------------------------------------------------
# disk tier
# ----------------------------------------------------------------------
def test_disk_tier_shared_between_instances(tmp_path):
    writer = TraceCache(disk_dir=tmp_path)
    trace = writer.get_or_generate(cfg())
    assert len(list(tmp_path.glob("*.npz"))) == 1

    reader = TraceCache(disk_dir=tmp_path)
    loaded = reader.get_or_generate(cfg())
    assert reader.stats()["disk_hits"] == 1
    assert reader.stats()["misses"] == 0
    assert len(loaded.events) == len(trace.events)
    assert [
        (e.time, e.etype, e.host, e.msg_id, e.peer, e.cell)
        for e in loaded.events
    ] == [
        (e.time, e.etype, e.host, e.msg_id, e.peer, e.cell)
        for e in trace.events
    ]


def test_disk_miss_counts_generation(tmp_path, monkeypatch):
    calls = []
    from repro.workload import driver
    real = driver.generate_trace
    monkeypatch.setattr(
        driver, "generate_trace",
        lambda config: calls.append(config) or real(config),
    )
    cache = TraceCache(max_entries=0, disk_dir=tmp_path)
    cache.get_or_generate(cfg())  # cold: generates and stores
    cache.get_or_generate(cfg())  # served from disk
    assert len(calls) == 1
    assert cache.stats() == {
        "hits": 0, "disk_hits": 1, "misses": 1,
        "corrupt_evictions": 0, "legacy_upgrades": 0, "entries": 0,
    }


def test_no_tmp_litter_after_store(tmp_path):
    cache = TraceCache(disk_dir=tmp_path)
    cache.get_or_generate(cfg())
    assert not list(tmp_path.glob("*.tmp.npz"))


# ----------------------------------------------------------------------
# shared registry
# ----------------------------------------------------------------------
def test_shared_cache_is_memoized_per_directory(tmp_path):
    a = shared_cache(tmp_path)
    b = shared_cache(tmp_path)
    assert a is b
    assert shared_cache(tmp_path / "other") is not a


def test_shared_cache_honours_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cache = shared_cache()
    assert cache.disk_dir == tmp_path.resolve()
    cache.get_or_generate(cfg())
    assert len(list(tmp_path.glob("*.npz"))) == 1


# ----------------------------------------------------------------------
# corruption tolerance
# ----------------------------------------------------------------------
def _trace_values(trace):
    return [
        (e.time, e.etype, e.host, e.msg_id, e.peer, e.cell)
        for e in trace.events
    ]


def test_truncated_disk_entry_is_a_miss_and_regenerates(tmp_path):
    writer = TraceCache(disk_dir=tmp_path)
    original = writer.get_or_generate(cfg())
    (entry,) = tmp_path.glob("*.npz")
    # Truncate the file in place (a crash mid-write / torn disk).
    data = entry.read_bytes()
    entry.write_bytes(data[: len(data) // 2])

    reader = TraceCache(disk_dir=tmp_path)
    regenerated = reader.get_or_generate(cfg())
    assert reader.stats()["corrupt_evictions"] == 1
    assert reader.stats()["disk_hits"] == 0
    assert reader.stats()["misses"] == 1
    assert _trace_values(regenerated) == _trace_values(original)
    # The bad entry was replaced by a fresh, loadable one.
    third = TraceCache(disk_dir=tmp_path)
    assert _trace_values(third.get_or_generate(cfg())) == _trace_values(
        original
    )
    assert third.stats()["disk_hits"] == 1


def test_bitflipped_disk_entry_fails_checksum(tmp_path):
    writer = TraceCache(disk_dir=tmp_path)
    original = writer.get_or_generate(cfg())
    (entry,) = tmp_path.glob("*.npz")
    data = bytearray(entry.read_bytes())
    # Flip bits in the middle of the payload but keep the zip readable
    # often enough that only the checksum catches it; either failure
    # mode must land in the corrupt-eviction path, never raise.
    data[len(data) // 2] ^= 0xFF
    entry.write_bytes(bytes(data))

    reader = TraceCache(disk_dir=tmp_path)
    regenerated = reader.get_or_generate(cfg())
    assert reader.stats()["corrupt_evictions"] == 1
    assert _trace_values(regenerated) == _trace_values(original)


def test_legacy_entry_without_digest_is_upgraded_not_evicted(tmp_path):
    """A cache entry written before the digest field existed must be
    accepted (structural validation) and upgraded in place -- not
    silently regenerated as 'corrupt' on every upgrade."""
    import numpy as np

    writer = TraceCache(disk_dir=tmp_path)
    original = writer.get_or_generate(cfg())
    (entry,) = tmp_path.glob("*.npz")
    with np.load(entry) as data:
        arrays = {k: data[k] for k in data.files if k != "digest"}
    np.savez_compressed(entry, **arrays)  # a pre-checksum legacy file

    reader = TraceCache(disk_dir=tmp_path)
    loaded = reader.get_or_generate(cfg())
    assert reader.stats()["disk_hits"] == 1
    assert reader.stats()["misses"] == 0
    assert reader.stats()["legacy_upgrades"] == 1
    assert reader.stats()["corrupt_evictions"] == 0
    assert _trace_values(loaded) == _trace_values(original)
    # The entry was rewritten with a digest: a later cache verifies it
    # as a plain (non-legacy) disk hit.
    third = TraceCache(disk_dir=tmp_path)
    third.get_or_generate(cfg())
    assert third.stats()["disk_hits"] == 1
    assert third.stats()["legacy_upgrades"] == 0


def test_garbage_disk_entry_is_unlinked(tmp_path):
    from repro.workload.cache import config_key

    key = config_key(cfg())
    bad = tmp_path / f"{key}.npz"
    bad.write_bytes(b"this is not an npz file")
    cache = TraceCache(disk_dir=tmp_path)
    trace = cache.get_or_generate(cfg())
    assert trace is not None
    assert cache.stats()["corrupt_evictions"] == 1
    # The replacement entry on disk is now valid.
    fresh = TraceCache(disk_dir=tmp_path)
    fresh.get_or_generate(cfg())
    assert fresh.stats()["disk_hits"] == 1
