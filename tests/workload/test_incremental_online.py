"""End-to-end incremental checkpointing + bandwidth in the workload."""

import pytest

from repro.core.online import run_online
from repro.protocols import BCSProtocol, NoSendBCSProtocol
from repro.workload import WorkloadConfig


def cfg(**kw):
    defaults = dict(sim_time=1200.0, seed=5, t_switch=150.0, p_switch=0.9)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_incremental_ships_fewer_bytes_than_full():
    c_full = cfg()
    c_inc = cfg(incremental_checkpointing=True)
    full = run_online(c_full, BCSProtocol(10, 5))
    inc = run_online(c_inc, BCSProtocol(10, 5))
    assert inc.bytes_shipped > 0
    assert inc.bytes_shipped < full.bytes_shipped


def test_incremental_records_carry_real_sizes():
    c = cfg(incremental_checkpointing=True, state_pages=32, page_bytes=1024)
    result = run_online(c, BCSProtocol(10, 5))
    records = [
        r for s in result.system.stations for r in s.storage.all_records()
    ]
    sizes = {r.size_bytes for r in records}
    assert max(sizes) <= 32 * 1024
    # some deltas are smaller than the full snapshot
    deltas = [r for r in records if r.incremental]
    assert deltas
    assert min(r.size_bytes for r in deltas) < 32 * 1024


def test_handoff_triggers_base_fetches():
    c = cfg(incremental_checkpointing=True, t_switch=60.0)
    result = run_online(c, BCSProtocol(10, 5))
    assert result.system.checkpoint_fetches > 0


def test_finite_bandwidth_slows_hosts_down():
    """With a slow wireless link, checkpoint transfers consume host time
    and fewer application operations fit in the horizon."""
    fast = run_online(cfg(), BCSProtocol(10, 5))
    slow = run_online(
        cfg(wireless_bandwidth=50_000.0),  # 256 KiB ckpt ~ 5 time units
        BCSProtocol(10, 5),
    )
    assert slow.metrics.n_sends < fast.metrics.n_sends


def test_bandwidth_with_incremental_cheaper_than_full():
    inc = run_online(
        cfg(incremental_checkpointing=True, wireless_bandwidth=50_000.0),
        BCSProtocol(10, 5),
    )
    full = run_online(
        cfg(wireless_bandwidth=50_000.0),
        BCSProtocol(10, 5),
    )
    # smaller transfers -> less pause -> more application progress
    assert inc.metrics.n_sends >= full.metrics.n_sends


def test_rename_ships_zero_bytes():
    c = cfg(incremental_checkpointing=True)
    result = run_online(c, NoSendBCSProtocol(10, 5))
    renames = [
        r
        for s in result.system.stations
        for r in s.storage.all_records()
        if r.reason == "rename"
    ]
    if result.protocol.n_renamed:
        assert renames
        assert all(r.size_bytes == 0 for r in renames)


def test_config_validation():
    with pytest.raises(ValueError):
        cfg(wireless_bandwidth=0.0).validate()
    with pytest.raises(ValueError):
        cfg(state_pages=0).validate()
    with pytest.raises(ValueError):
        cfg(dirty_pages_per_op=-1).validate()
