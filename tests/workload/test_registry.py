"""Workload registry: registration, resolution, spec parsing, errors."""

import pytest

from repro.engine.spec import RunSpec, plan
from repro.experiments.config import SweepConfig
from repro.workload.config import WorkloadConfig
from repro.workload.registry import (
    Param,
    UnknownWorkloadError,
    WorkloadError,
    WorkloadModel,
    WorkloadParamError,
    cast_bool,
    check_workload,
    get_workload,
    make_workload,
    parse_workload_spec,
    register_workload,
    resolve_workload_spec,
    workload_names,
)


def test_builtin_models_registered():
    names = workload_names()
    for expected in ("paper", "zipf", "hotspot", "bursty", "trace", "daynight"):
        assert expected in names
    assert names == sorted(names)


def test_get_workload_unknown_suggests():
    with pytest.raises(UnknownWorkloadError) as exc_info:
        get_workload("zipff")
    msg = str(exc_info.value)
    assert "unknown workload 'zipff'" in msg
    assert "'zipf'" in msg
    assert "known:" in msg
    assert exc_info.value.suggestions == ("zipf",)


def test_unknown_workload_is_value_error():
    # Consumers catching the engine's ValueError-based errors keep
    # working when a workload name is bad instead.
    with pytest.raises(ValueError):
        get_workload("nope")


def test_reregistering_same_class_is_noop():
    cls = get_workload("paper")
    assert register_workload("paper")(cls) is cls


def test_shadowing_existing_name_raises():
    class Impostor(WorkloadModel):
        pass

    with pytest.raises(WorkloadError, match="already registered"):
        register_workload("paper")(Impostor)


def test_register_rejects_non_model():
    with pytest.raises(TypeError):
        register_workload("not-a-model")(object)


def test_coerce_params_defaults_and_casting():
    zipf = get_workload("zipf")
    assert zipf.coerce_params({}) == {"alpha": 1.0}
    assert zipf.coerce_params({"alpha": "1.5"}) == {"alpha": 1.5}


def test_coerce_params_unknown_key_suggests():
    zipf = get_workload("zipf")
    with pytest.raises(WorkloadParamError, match="did you mean 'alpha'"):
        zipf.coerce_params({"alfa": 1.0})


def test_coerce_params_uninterpretable_value():
    zipf = get_workload("zipf")
    with pytest.raises(WorkloadParamError, match="cannot interpret"):
        zipf.coerce_params({"alpha": "spicy"})


def test_required_param_missing():
    with pytest.raises(WorkloadParamError, match="requires parameter 'path'"):
        check_workload("trace", {})


def test_cast_bool_spellings():
    for truthy in (True, 1, "1", "true", "YES", " on "):
        assert cast_bool(truthy) is True
    for falsy in (False, 0, "0", "False", "no", "off"):
        assert cast_bool(falsy) is False
    with pytest.raises(ValueError):
        cast_bool("maybe")
    with pytest.raises(ValueError):
        cast_bool(2)


def test_parse_workload_spec():
    assert parse_workload_spec("paper") == ("paper", {})
    assert parse_workload_spec("zipf:alpha=1.1") == ("zipf", {"alpha": "1.1"})
    assert parse_workload_spec("hotspot:n_hot=2,bias=0.9") == (
        "hotspot",
        {"n_hot": "2", "bias": "0.9"},
    )


@pytest.mark.parametrize("bad", ["", ":alpha=1", "zipf:alpha", "zipf:=1"])
def test_parse_workload_spec_malformed(bad):
    with pytest.raises(WorkloadParamError):
        parse_workload_spec(bad)


def test_resolve_workload_spec_coerces():
    name, params = resolve_workload_spec("zipf:alpha=2")
    assert name == "zipf"
    assert params == {"alpha": 2.0}
    assert isinstance(params["alpha"], float)


def test_make_workload_from_config():
    cfg = WorkloadConfig(workload="zipf", workload_params={"alpha": 1.3})
    model = make_workload(cfg)
    assert model.name == "zipf"
    assert model.params == {"alpha": 1.3}
    assert model.config is cfg


def test_describe_lists_params():
    info = get_workload("hotspot").describe()
    assert info["name"] == "hotspot"
    assert set(info["params"]) == {"n_hot", "bias"}
    assert info["doc"]


def test_param_spec_defaults():
    p = Param()
    assert p.default is None and p.cast is float and not p.required


# -- the three consumer-facing validation gates ------------------------

def test_workload_config_validate_rejects_unknown():
    cfg = WorkloadConfig(workload="zpif")
    with pytest.raises(UnknownWorkloadError, match="did you mean 'zipf'"):
        cfg.validate()


def test_workload_config_validate_rejects_bad_param():
    cfg = WorkloadConfig(workload="zipf", workload_params={"alfa": 1.0})
    with pytest.raises(WorkloadParamError, match="did you mean 'alpha'"):
        cfg.validate()


def test_plan_rejects_unknown_workload():
    spec = RunSpec(
        protocols=("TP",), workload=WorkloadConfig(workload="hotspit")
    )
    with pytest.raises(UnknownWorkloadError, match="did you mean 'hotspot'"):
        plan(spec)


def test_sweep_config_rejects_unknown_workload():
    with pytest.raises(UnknownWorkloadError, match="did you mean 'bursty'"):
        SweepConfig(workload="burstyy").validate()


def test_sweep_config_folds_spec_into_base():
    cfg = SweepConfig(workload="zipf:alpha=1.1").validate()
    assert cfg.base.workload == "zipf"
    assert cfg.base.workload_params == {"alpha": 1.1}
    # Idempotent: re-validation leaves the fold in place.
    base = cfg.base
    cfg.validate()
    assert cfg.base == base


def test_sweep_config_default_leaves_base_alone():
    cfg = SweepConfig().validate()
    assert cfg.base.workload == "paper"
    assert cfg.base.workload_params == {}
