"""Online runs persist checkpoints at the MSSs and can GC them."""

import pytest

from repro.core.online import run_online
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig


def cfg(**kw):
    defaults = dict(sim_time=800.0, seed=4, t_switch=100.0, p_switch=0.9)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_checkpoints_land_in_mss_storage():
    c = cfg()
    result = run_online(c, BCSProtocol(c.n_hosts, c.n_mss))
    stored = sum(len(s.storage) for s in result.system.stations)
    # every taken checkpoint is stored (initial + basic + forced)
    assert stored == len(result.protocol.checkpoints)


def test_qbc_replacements_overwrite_storage_records():
    c = cfg()
    result = run_online(c, QBCProtocol(c.n_hosts, c.n_mss))
    stored = sum(len(s.storage) for s in result.system.stations)
    # replaced checkpoints share (host, index) keys with their
    # predecessors, so the stored count is smaller by the number of
    # replacements... unless a replaced record landed on a different
    # MSS after a handoff, in which case both copies exist.
    assert stored <= len(result.protocol.checkpoints)
    assert stored >= len(result.protocol.checkpoints) - result.protocol.n_replaced


def test_tp_metadata_vectors_stored():
    c = cfg(sim_time=300.0)
    result = run_online(c, TwoPhaseProtocol(c.n_hosts, c.n_mss))
    records = [
        r
        for s in result.system.stations
        for r in s.storage.all_records()
        if r.reason != "initial"
    ]
    assert records
    assert all("ckpt_vec" in r.metadata for r in records)


def test_online_gc_reclaims_old_records():
    c = cfg(sim_time=2000.0, p_switch=1.0)
    with_gc = run_online(c, BCSProtocol(c.n_hosts, c.n_mss), gc_interval=200.0)
    without = run_online(c, BCSProtocol(c.n_hosts, c.n_mss))
    stored_gc = sum(len(s.storage) for s in with_gc.system.stations)
    stored_plain = sum(len(s.storage) for s in without.system.stations)
    assert with_gc.gc_bytes_reclaimed > 0
    assert stored_gc < stored_plain
    # GC must not change protocol behaviour
    assert with_gc.metrics.n_total == without.metrics.n_total


def test_gc_requires_index_protocol():
    c = cfg(sim_time=200.0)
    with pytest.raises(ValueError, match="index-based"):
        run_online(c, TwoPhaseProtocol(c.n_hosts, c.n_mss), gc_interval=100.0)


def test_gc_interval_validation():
    c = cfg(sim_time=200.0)
    with pytest.raises(ValueError, match="gc_interval"):
        run_online(c, BCSProtocol(c.n_hosts, c.n_mss), gc_interval=-1.0)
