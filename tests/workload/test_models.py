"""Builtin workload models: behavior, determinism and the bit-identity
of the ``paper`` entry with the pre-registry driver."""

import json
from collections import Counter

import pytest

from repro.des.rng import RandomStreams
from repro.workload.cache import config_key
from repro.workload.config import WorkloadConfig
from repro.workload.driver import generate_trace
from repro.workload.registry import (
    WorkloadParamError,
    get_workload,
    make_workload,
)

# Trace cache keys captured on the pre-registry driver (PR 8 tree).
# The registry refactor must not move them: the paper model makes
# exactly the old draws and `config_key` drops the registry fields at
# their defaults, so cached traces stay addressable.
PINNED_KEYS = {
    (): "8ec8b91e82f74df5fdfeb3a0c798f4e4c1f33436ec89603ed61226ec2f8929c5",
    (("sim_time", 200.0),):
        "47a66e390fc5115bd3e7731b73a8c67d18730278def17c4862b106aa75299e10",
}


@pytest.mark.parametrize("overrides", list(PINNED_KEYS), ids=repr)
def test_paper_cache_keys_unmoved(overrides):
    cfg = WorkloadConfig(**dict(overrides))
    assert config_key(cfg) == PINNED_KEYS[overrides]


def test_nonpaper_workload_changes_cache_key():
    base = WorkloadConfig(sim_time=200.0)
    zipf = base.with_(workload="zipf", workload_params={"alpha": 1.1})
    assert config_key(zipf) != config_key(base)
    # And the params matter, not just the name.
    assert config_key(zipf) != config_key(
        base.with_(workload="zipf", workload_params={"alpha": 2.0})
    )


def _cfg(**kw) -> WorkloadConfig:
    kw.setdefault("sim_time", 300.0)
    return WorkloadConfig(**kw).validate()


def _send_destinations(trace):
    from repro.core.trace import EventType

    return Counter(
        e.peer for e in trace.events if e.etype == EventType.SEND
    )


def test_generation_is_deterministic_per_model():
    cfg = _cfg(workload="zipf", workload_params={"alpha": 1.2})
    a = generate_trace(cfg)
    b = generate_trace(cfg)
    assert a.events == b.events


def test_zipf_skews_destinations_low():
    uniform = _send_destinations(generate_trace(_cfg(sim_time=600.0)))
    skewed = _send_destinations(
        generate_trace(
            _cfg(
                sim_time=600.0,
                workload="zipf",
                workload_params={"alpha": 1.5},
            )
        )
    )
    # Host 0's share of received sends must grow markedly under skew.
    share = lambda c: c[0] / max(1, sum(c.values()))  # noqa: E731
    assert share(skewed) > 2 * share(uniform)


def test_zipf_alpha_zero_matches_weights_uniform():
    model = make_workload(_cfg(workload="zipf", workload_params={"alpha": 0}))
    assert set(model._weight) == {1.0}


def test_zipf_negative_alpha_rejected():
    with pytest.raises(WorkloadParamError, match="alpha.*>= 0"):
        make_workload(_cfg(workload="zipf", workload_params={"alpha": -1}))


def test_hotspot_concentrates_on_hot_set():
    plain = _send_destinations(generate_trace(_cfg(sim_time=600.0)))
    hot = _send_destinations(
        generate_trace(
            _cfg(
                sim_time=600.0,
                workload="hotspot",
                workload_params={"n_hot": 2, "bias": 0.95},
            )
        )
    )
    hot_share = (hot[0] + hot[1]) / max(1, sum(hot.values()))
    plain_share = (plain[0] + plain[1]) / max(1, sum(plain.values()))
    assert hot_share > 0.6 > plain_share


@pytest.mark.parametrize(
    "params, match",
    [
        ({"n_hot": 0}, "n_hot"),
        ({"bias": 1.5}, "bias"),
    ],
)
def test_hotspot_param_ranges(params, match):
    with pytest.raises(WorkloadParamError, match=match):
        make_workload(_cfg(workload="hotspot", workload_params=params))


def test_bursty_rates_differ_by_phase():
    cfg = _cfg(
        workload="bursty",
        workload_params={
            "on_mean": 1e9,  # pin host 0 in its initial ON phase
            "off_mean": 1.0,
            "burst_factor": 4.0,
        },
    )
    model = make_workload(cfg)
    rng = RandomStreams(seed=cfg.seed)
    on_delays = [model.arrival_delay(0, rng, 1.0) for _ in range(400)]
    # A fresh model whose first phase ends immediately is OFF afterward.
    model2 = make_workload(
        cfg.with_(workload_params={**cfg.workload_params, "on_mean": 1e-12})
    )
    rng2 = RandomStreams(seed=cfg.seed)
    off_delays = [model2.arrival_delay(0, rng2, 1.0) for _ in range(400)]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # ON mean ~ internal_mean/4, OFF mean ~ internal_mean*4.
    assert mean(off_delays) > 4 * mean(on_delays)


def test_bursty_param_validation():
    with pytest.raises(WorkloadParamError, match="on_mean"):
        make_workload(
            _cfg(workload="bursty", workload_params={"on_mean": 0})
        )
    with pytest.raises(WorkloadParamError, match="burst_factor"):
        make_workload(
            _cfg(workload="bursty", workload_params={"burst_factor": 0.5})
        )


def test_daynight_scale_schedule():
    model = make_workload(
        _cfg(
            workload="daynight",
            workload_params={
                "period": 100.0,
                "day_fraction": 0.5,
                "night_factor": 3.0,
            },
        )
    )
    assert model.residence_scale(0, 10.0) == 1.0
    assert model.residence_scale(0, 49.9) == 1.0
    assert model.residence_scale(0, 50.0) == 3.0
    assert model.residence_scale(0, 99.0) == 3.0
    assert model.residence_scale(0, 110.0) == 1.0  # next period's day


def test_daynight_param_validation():
    with pytest.raises(WorkloadParamError, match="period"):
        make_workload(
            _cfg(workload="daynight", workload_params={"period": 0})
        )
    with pytest.raises(WorkloadParamError, match="day_fraction"):
        make_workload(
            _cfg(workload="daynight", workload_params={"day_fraction": 2})
        )


# -- trace-driven model ------------------------------------------------

def _schedule(tmp_path, records):
    path = tmp_path / "schedule.jsonl"
    path.write_text(
        "\n".join(json.dumps(r) if r else "" for r in records) + "\n",
        encoding="utf-8",
    )
    return str(path)


def test_trace_model_replays_delays(tmp_path):
    path = _schedule(
        tmp_path,
        [
            {"host": 0, "delay": 1.5},
            {},  # blank line is skipped
            {"host": 0, "delay": 2.5},
            {"host": 1, "delay": 7.0},
        ],
    )
    model = make_workload(
        _cfg(workload="trace", workload_params={"path": path})
    )
    rng = RandomStreams(seed=0)
    assert model.arrival_delay(0, rng, 0.0) == 1.5
    assert model.arrival_delay(0, rng, 0.0) == 2.5
    # Host 1's record was buffered while scanning for host 0's.
    assert model.arrival_delay(1, rng, 0.0) == 7.0
    # wrap=True (default): the file restarts.
    assert model.arrival_delay(0, rng, 0.0) == 1.5


def test_trace_model_no_wrap_falls_back(tmp_path):
    path = _schedule(tmp_path, [{"host": 0, "delay": 3.0}])
    model = make_workload(
        _cfg(
            workload="trace",
            workload_params={"path": path, "wrap": "false"},
        )
    )
    rng = RandomStreams(seed=0)
    assert model.arrival_delay(0, rng, 0.0) == 3.0
    fallback = model.arrival_delay(0, rng, 0.0)
    assert fallback > 0 and fallback != 3.0  # Exp(internal_mean) draw
    assert 0 in model._absent


def test_trace_model_absent_host_uses_exponential(tmp_path):
    path = _schedule(tmp_path, [{"host": 5, "delay": 1.0}])
    model = make_workload(
        _cfg(workload="trace", workload_params={"path": path})
    )
    rng = RandomStreams(seed=0)
    # Host 2 never appears: one full scan (with wrap) marks it absent.
    delay = model.arrival_delay(2, rng, 0.0)
    assert delay > 0 and 2 in model._absent


def test_trace_model_missing_file():
    with pytest.raises(WorkloadParamError, match="not found"):
        make_workload(
            _cfg(workload="trace", workload_params={"path": "/no/such.jsonl"})
        )


@pytest.mark.parametrize(
    "line, match",
    [
        ("{\"host\": 0}", "bad schedule line"),
        ("not json", "bad schedule line"),
        ("{\"host\": 0, \"delay\": -1}", "negative delay"),
    ],
)
def test_trace_model_malformed_lines(tmp_path, line, match):
    path = tmp_path / "schedule.jsonl"
    path.write_text(line + "\n", encoding="utf-8")
    model = make_workload(
        _cfg(workload="trace", workload_params={"path": str(path)})
    )
    rng = RandomStreams(seed=0)
    with pytest.raises(WorkloadParamError, match=match):
        model.arrival_delay(0, rng, 0.0)


def test_end_to_end_trace_generation_with_model(tmp_path):
    path = _schedule(
        tmp_path,
        [{"host": h, "delay": 0.5 + h} for h in range(10)],
    )
    cfg = _cfg(
        sim_time=100.0,
        workload="trace",
        workload_params={"path": path},
    )
    trace = generate_trace(cfg)
    assert len(trace.events) > 0
    assert trace.meta["workload"] == "trace"
    assert trace.meta["workload_params"]["path"] == path


# -- meta() round-trip (cache-key fidelity) ----------------------------

def test_meta_roundtrips_cache_key():
    cfg = WorkloadConfig(
        sim_time=200.0,
        workload="hotspot",
        workload_params={"n_hot": 2, "bias": 0.9},
        extra={"note": "x"},
    )
    clone = WorkloadConfig(**cfg.meta())
    assert clone == cfg
    assert config_key(clone) == config_key(cfg)


def test_meta_carries_every_field():
    from dataclasses import fields

    cfg = WorkloadConfig()
    meta = cfg.meta()
    assert set(meta) == {f.name for f in fields(WorkloadConfig)}
    # Dicts are copies, not aliases: mutating the meta cannot corrupt
    # the config (or the cache key of a trace holding it).
    meta["workload_params"]["alpha"] = 9.9
    meta["extra"]["x"] = 1
    assert cfg.workload_params == {} and cfg.extra == {}


def test_distinct_keys_imply_distinct_meta():
    a = WorkloadConfig()
    b = WorkloadConfig(workload="zipf", workload_params={"alpha": 1.1})
    assert config_key(a) != config_key(b)
    assert a.meta() != b.meta()
