"""Unit tests for the DES event loop (repro.des.core)."""

import pytest

from repro.des import Environment, StopSimulation
from repro.des.core import PRIORITY_URGENT


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=7.5).now == 7.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_run_until_stops_clock_exactly_at_until():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0
    # the pending timeout is still on the agenda
    assert env.peek() == 10.0


def test_run_until_in_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-1.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (5.0, 1.0, 3.0):
        env.call_later(delay, lambda d=delay: order.append(d))
    env.run()
    assert order == [1.0, 3.0, 5.0]


def test_same_time_events_fire_in_insertion_order():
    env = Environment()
    order = []
    for tag in "abcd":
        env.call_later(2.0, lambda t=tag: order.append(t))
    env.run()
    assert order == list("abcd")


def test_priority_breaks_same_time_ties():
    env = Environment()
    order = []
    env.call_later(1.0, lambda: order.append("normal"))
    env.call_later(1.0, lambda: order.append("urgent"), priority=PRIORITY_URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_call_at_absolute_time():
    env = Environment(initial_time=10.0)
    seen = []
    env.call_at(12.5, lambda: seen.append(env.now))
    env.run()
    assert seen == [12.5]


def test_call_at_in_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.call_at(9.0, lambda: None)


def test_stop_simulation_returns_value_and_preserves_agenda():
    env = Environment()
    env.call_later(1.0, lambda: (_ for _ in ()).throw(StopSimulation("halt")))
    env.call_later(2.0, lambda: None)
    result = env.run()
    assert result == "halt"
    assert env.peek() == 2.0


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.timeout(4.0, value="payload")
    assert env.run_until_event(ev) == "payload"
    assert env.now == 4.0


def test_run_until_event_raises_on_starved_agenda():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(RuntimeError, match="agenda exhausted"):
        env.run_until_event(ev)


def test_event_count_tracks_processed_events():
    env = Environment()
    for _ in range(5):
        env.timeout(1.0)
    env.run()
    assert env.event_count == 5


def test_peek_empty_agenda_is_inf():
    assert Environment().peek() == float("inf")


def test_nested_scheduling_from_callback():
    env = Environment()
    times = []

    def first():
        times.append(env.now)
        env.call_later(2.0, second)

    def second():
        times.append(env.now)

    env.call_later(1.0, first)
    env.run()
    assert times == [1.0, 3.0]


def test_drain_runs_multiple_events():
    env = Environment()
    evs = [env.timeout(d, value=d) for d in (3.0, 1.0)]
    assert env.drain(evs) == [3.0, 1.0]
