"""Unit tests for Resource and Store (repro.des.resources)."""

import pytest

from repro.des import Environment, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2


def test_release_grants_next_waiter_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered and not third.triggered
    res.release(second)
    assert third.triggered


def test_release_of_queued_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    res.release(queued)  # cancel while still waiting
    res.release(held)
    assert not queued.triggered  # cancelled, never granted
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_with_processes_serialises_critical_section():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, name):
        req = res.request()
        yield req
        log.append((name, "in", env.now))
        yield env.timeout(2.0)
        log.append((name, "out", env.now))
        res.release(req)

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 4.0),
    ]


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(user(env))
    env.run()
    assert res.count == 0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    g1, g2 = store.get(), store.get()
    env.run()
    assert (g1.value, g2.value) == ("x", "y")


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    getter = store.get()
    assert not getter.triggered
    env.call_later(3.0, lambda: store.put("late"))
    env.run_until_event(getter)
    assert getter.value == "late"
    assert env.now == 3.0


def test_store_filter_selects_matching_item():
    env = Environment()
    store = Store(env)
    store.put({"kind": "data", "v": 1})
    store.put({"kind": "ctrl", "v": 2})
    getter = store.get(filter=lambda item: item["kind"] == "ctrl")
    env.run()
    assert getter.value["v"] == 2
    assert len(store) == 1  # the data item is still buffered


def test_store_filtered_getter_waits_for_match():
    env = Environment()
    store = Store(env)
    getter = store.get(filter=lambda item: item > 10)
    store.put(5)
    assert not getter.triggered
    store.put(50)
    env.run()
    assert getter.value == 50
    assert store.items[0] == 5


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() == (False, None)
    store.put("a")
    assert store.try_get() == (True, "a")
    assert len(store) == 0


def test_store_capacity_overflow_raises():
    env = Environment()
    store = Store(env, capacity=1)
    store.put(1)
    with pytest.raises(OverflowError):
        store.put(2)


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_two_getters_one_filtered_dispatch_is_fair():
    env = Environment()
    store = Store(env)
    plain = store.get()
    filtered = store.get(filter=lambda x: x == "special")
    store.put("ordinary")
    store.put("special")
    env.run()
    assert plain.value == "ordinary"
    assert filtered.value == "special"
