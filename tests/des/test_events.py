"""Unit tests for event primitives (repro.des.events)."""

import pytest

from repro.des import (
    Environment,
    Event,
    EventAlreadyTriggered,
    Timeout,
    all_of,
    any_of,
)


def test_event_lifecycle_states():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(123)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == 123


def test_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(AttributeError):
        _ = env.event().value


def test_double_succeed_raises():
    env = Environment()
    ev = env.event().succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_succeed_after_fail_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defused = True
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_flags():
    env = Environment()
    exc = ValueError("x")
    ev = env.event().fail(exc)
    ev.defused = True
    env.run()
    assert ev.failed and not ev.ok
    assert ev.value is exc


def test_undefused_failure_propagates_out_of_run():
    env = Environment()
    env.event().fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_callback_after_processed_runs_immediately():
    env = Environment()
    ev = env.timeout(1.0, value="v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_callbacks_run_once_in_order():
    env = Environment()
    ev = env.timeout(0.0)
    order = []
    ev.add_callback(lambda e: order.append(1))
    ev.add_callback(lambda e: order.append(2))
    env.run()
    assert order == [1, 2]


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Timeout(env, -0.5)


def test_trigger_copies_state():
    env = Environment()
    src = env.timeout(0.0, value="orig")
    env.run()
    dst = env.event()
    dst.trigger(src)
    env.run()
    assert dst.value == "orig"


# ---------------------------------------------------------------------------
# condition events
# ---------------------------------------------------------------------------


def test_all_of_waits_for_every_event():
    env = Environment()
    a, b = env.timeout(1.0, "a"), env.timeout(5.0, "b")
    cond = all_of(env, [a, b])
    env.run_until_event(cond)
    assert env.now == 5.0
    assert cond.value == {a: "a", b: "b"}


def test_any_of_fires_on_first_event():
    env = Environment()
    a, b = env.timeout(1.0, "a"), env.timeout(5.0, "b")
    cond = any_of(env, [a, b])
    env.run_until_event(cond)
    assert env.now == 1.0
    assert cond.value == {a: "a"}


def test_all_of_empty_triggers_immediately():
    env = Environment()
    cond = all_of(env, [])
    env.run()
    assert cond.processed and cond.value == {}


def test_any_of_empty_triggers_immediately():
    env = Environment()
    cond = any_of(env, [])
    env.run()
    assert cond.processed


def test_all_of_with_already_processed_events():
    env = Environment()
    a = env.timeout(1.0, "a")
    env.run()
    b = env.timeout(2.0, "b")
    cond = all_of(env, [a, b])
    env.run_until_event(cond)
    assert cond.value == {a: "a", b: "b"}


def test_all_of_fails_when_child_fails():
    env = Environment()
    good = env.timeout(10.0)
    bad = env.event()
    cond = all_of(env, [good, bad])
    bad.fail(RuntimeError("child"))
    with pytest.raises(RuntimeError, match="child"):
        env.run_until_event(cond)
    assert cond.failed


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        all_of(env1, [env1.event(), env2.event()])


def test_condition_with_pre_failed_child_fails_immediately():
    env = Environment()
    bad = env.event().fail(RuntimeError("pre"))
    bad.defused = True
    env.run()
    cond = any_of(env, [bad, env.timeout(1.0)])
    with pytest.raises(RuntimeError, match="pre"):
        env.run_until_event(cond)
