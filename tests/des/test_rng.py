"""Unit tests for reproducible random streams (repro.des.rng)."""

import numpy as np
import pytest

from repro.des import RandomStreams
from repro.des.rng import check_distinct, seed_sequence


def test_same_seed_same_draws():
    a = RandomStreams(7).stream("x")
    b = RandomStreams(7).stream("x")
    assert np.allclose(a.random(16), b.random(16))


def test_different_names_give_independent_streams():
    rs = RandomStreams(7)
    xs = rs.stream("alpha").random(8)
    ys = rs.stream("beta").random(8)
    assert not np.allclose(xs, ys)


def test_stream_memoised_per_name():
    rs = RandomStreams(1)
    assert rs.stream("s") is rs.stream("s")


def test_new_stream_does_not_perturb_existing_one():
    """Key reproducibility property: consuming a new named stream must not
    change the sequence of an already-created stream."""
    rs1 = RandomStreams(5)
    first = rs1.stream("main").random(4)

    rs2 = RandomStreams(5)
    rs2.stream("extra").random(100)  # a consumer that rs1 never had
    second = rs2.stream("main").random(4)
    assert np.allclose(first, second)


def test_seed_type_checked():
    with pytest.raises(TypeError):
        RandomStreams("not-an-int")  # type: ignore[arg-type]


def test_exponential_mean_validation_and_sign():
    rs = RandomStreams(3)
    with pytest.raises(ValueError):
        rs.exponential("t", mean=0.0)
    draws = [rs.exponential("t", mean=2.0) for _ in range(100)]
    assert all(d > 0 for d in draws)
    assert 1.0 < np.mean(draws) < 3.5  # loose sanity band around mean 2


def test_bernoulli_validation_and_extremes():
    rs = RandomStreams(3)
    with pytest.raises(ValueError):
        rs.bernoulli("b", 1.5)
    assert all(rs.bernoulli("one", 1.0) for _ in range(20))
    assert not any(rs.bernoulli("zero", 0.0) for _ in range(20))


def test_choice_other_never_returns_excluded():
    rs = RandomStreams(11)
    n = 5
    for exclude in range(n):
        draws = {rs.choice_other("c", n, exclude) for _ in range(200)}
        assert exclude not in draws
        assert draws <= set(range(n))
        assert len(draws) == n - 1  # all alternatives reachable


def test_choice_other_validation():
    rs = RandomStreams(11)
    with pytest.raises(ValueError):
        rs.choice_other("c", 1, 0)
    with pytest.raises(ValueError):
        rs.choice_other("c", 4, 9)


def test_choice_other_uniformity():
    rs = RandomStreams(123)
    counts = np.zeros(4)
    for _ in range(4000):
        counts[rs.choice_other("u", 4, 2)] += 1
    assert counts[2] == 0
    rest = counts[[0, 1, 3]]
    assert rest.min() > 0.8 * rest.max()  # roughly uniform


def test_spawn_seeds_deterministic_and_distinct():
    a = RandomStreams(9).spawn_seeds("workers", 8)
    b = RandomStreams(9).spawn_seeds("workers", 8)
    assert a == b
    assert len(set(a)) == 8


def test_seed_sequence_helper():
    seeds = list(seed_sequence(42, 5))
    assert len(seeds) == 5 and len(set(seeds)) == 5


def test_check_distinct_diagnostic():
    rs = RandomStreams(2)
    assert check_distinct(rs, ["a", "b", "c"])
