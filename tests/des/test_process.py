"""Unit tests for generator-coroutine processes (repro.des.process)."""

import pytest

from repro.des import Environment, Interrupt


def test_process_runs_and_returns_value():
    env = Environment()

    def worker(env):
        yield env.timeout(2.0)
        yield env.timeout(3.0)
        return "finished"

    proc = env.process(worker(env))
    assert env.run_until_event(proc) == "finished"
    assert env.now == 5.0
    assert not proc.is_alive


def test_yield_value_is_event_payload():
    env = Environment()
    got = []

    def worker(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(worker(env))
    env.run()
    assert got == ["payload"]


def test_process_composition_waits_for_child():
    env = Environment()

    def child(env):
        yield env.timeout(4.0)
        return 21

    def parent(env):
        value = yield env.process(child(env))
        return value * 2

    proc = env.process(parent(env))
    assert env.run_until_event(proc) == 42


def test_two_processes_interleave():
    env = Environment()
    log = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((name, env.now))

    env.process(ticker(env, "fast", 1.0))
    env.process(ticker(env, "slow", 2.0))
    env.run()
    # At t=2.0 both tickers fire; slow's timeout was inserted earlier
    # (at t=0 vs t=1), so insertion order puts it first.
    assert log == [
        ("fast", 1.0),
        ("slow", 2.0),
        ("fast", 2.0),
        ("fast", 3.0),
        ("slow", 4.0),
        ("slow", 6.0),
    ]


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError, match="expected an Event"):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("inside process")

    def waiter(env, proc):
        with pytest.raises(ValueError, match="inside process"):
            yield proc
        return "handled"

    proc = env.process(failing(env))
    outer = env.process(waiter(env, proc))
    assert env.run_until_event(outer) == "handled"


def test_unwaited_process_failure_surfaces_in_run():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled process error")

    env.process(failing(env))
    with pytest.raises(ValueError, match="unhandled process error"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            causes.append(exc.cause)

    proc = env.process(sleeper(env))
    env.call_later(5.0, lambda: proc.interrupt("wake up"))
    env.run_until_event(proc)
    assert causes == ["wake up"]
    assert env.now == 5.0


def test_interrupted_process_can_rewait():
    env = Environment()
    log = []

    def sleeper(env):
        nap = env.timeout(10.0)
        try:
            yield nap
        except Interrupt:
            log.append(("interrupted", env.now))
            yield nap  # resume waiting on the same timeout
        log.append(("woke", env.now))

    proc = env.process(sleeper(env))
    env.call_later(3.0, lambda: proc.interrupt())
    env.run_until_event(proc)
    assert log == [("interrupted", 3.0), ("woke", 10.0)]


def test_unhandled_interrupt_kills_process():
    env = Environment()

    def sleeper(env):
        yield env.timeout(100.0)

    proc = env.process(sleeper(env))
    env.call_later(1.0, lambda: proc.interrupt("die"))
    with pytest.raises(Interrupt):
        env.run()
    assert proc.failed


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError, match="dead process"):
        proc.interrupt()


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def worker(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    proc = env.process(worker(env))
    env.run()
    assert seen == [proc]
    assert env.active_process is None


def test_immediate_return_process():
    env = Environment()

    def instant(env):
        return "now"
        yield  # pragma: no cover - makes it a generator

    proc = env.process(instant(env))
    assert env.run_until_event(proc) == "now"
    assert env.now == 0.0
