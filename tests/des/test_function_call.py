"""Tests for the call_later fast path (FunctionCall events)."""

import pytest

from repro.des import Environment
from repro.des.events import FunctionCall


def test_function_call_fires_once():
    env = Environment()
    hits = []
    env.call_later(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_function_call_ordering_with_timeouts():
    env = Environment()
    order = []
    env.timeout(1.0).add_callback(lambda e: order.append("timeout"))
    env.call_later(1.0, lambda: order.append("call"))
    env.run()
    assert order == ["timeout", "call"]  # insertion order at equal times


def test_function_call_is_event():
    env = Environment()
    ev = env.call_later(1.0, lambda: None)
    assert isinstance(ev, FunctionCall)
    env.run()
    assert ev.processed


def test_nested_function_calls():
    env = Environment()
    times = []

    def outer():
        times.append(env.now)
        env.call_later(1.0, lambda: times.append(env.now))

    env.call_later(1.0, outer)
    env.run()
    assert times == [1.0, 2.0]


def test_exception_in_function_call_propagates():
    env = Environment()

    def boom():
        raise RuntimeError("inside callback")

    env.call_later(1.0, boom)
    with pytest.raises(RuntimeError, match="inside callback"):
        env.run()
