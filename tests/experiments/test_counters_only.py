"""Counters-only mode regression: ``log_checkpoints = False`` (the
sweep engine's fast path) must produce exactly the counters of the
logging reference at the figure grid's corner points.

Corners: figure 1 (P_switch=1.0, H=0) and figure 4 (P_switch=0.8,
H=0.5) -- the homogeneous always-checkpointing extreme and the
heterogeneous disconnecting one -- each at both ends of the T_switch
sweep."""

import pytest

from repro.core.replay import replay, replay_fused
from repro.experiments.figures import FIGURE_PARAMS
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace

PAPER_PROTOCOLS = ("TP", "BCS", "QBC")


@pytest.mark.parametrize("figure", [1, 4])
@pytest.mark.parametrize("t_switch", [100.0, 10_000.0])
def test_counters_only_mode_matches_logging_counters(figure, t_switch):
    p_switch, heterogeneity = FIGURE_PARAMS[figure]
    cfg = WorkloadConfig(
        p_send=0.4,
        p_switch=p_switch,
        heterogeneity=heterogeneity,
        t_switch=t_switch,
        sim_time=500.0,
        seed=0,
    )
    trace = generate_trace(cfg)

    logged = {}
    for name in PAPER_PROTOCOLS:
        protocol = registry[name](cfg.n_hosts, cfg.n_mss)
        replay(trace, protocol)
        assert protocol.checkpoints  # the reference really logged
        logged[name] = protocol.counter_signature()

    counters_only = []
    for name in PAPER_PROTOCOLS:
        protocol = registry[name](cfg.n_hosts, cfg.n_mss)
        protocol.log_checkpoints = False
        counters_only.append(protocol)
    replay_fused(trace, counters_only)
    for name, protocol in zip(PAPER_PROTOCOLS, counters_only):
        # Only the constructor-time initial checkpoints were logged
        # (the flag flips after construction, as in the sweep runner).
        assert all(c.reason == "initial" for c in protocol.checkpoints)
        assert protocol.counter_signature() == logged[name], name
