"""The workload sweep axis: folding, wire transport, end-to-end runs."""

import pytest

from repro.engine.errors import PlanError
from repro.engine.spec import SPEC_WIRE_VERSION, RunSpec
from repro.experiments.config import SweepConfig
from repro.experiments.figures import figure_sweep_config, run_figure
from repro.experiments.runner import run_sweep
from repro.workload.config import WorkloadConfig


def test_wire_version_is_2():
    # v2 added the workload registry fields to the workload dict; a v1
    # peer silently dropping them would run the wrong model.
    assert SPEC_WIRE_VERSION == 2


def test_wire_roundtrip_carries_workload_fields():
    cfg = WorkloadConfig(
        sim_time=100.0, workload="zipf", workload_params={"alpha": 1.1}
    )
    spec = RunSpec(protocols=("TP",), workload=cfg, seed=3)
    wire = spec.to_wire()
    assert wire["version"] == SPEC_WIRE_VERSION
    assert wire["workload"]["workload"] == "zipf"
    assert wire["workload"]["workload_params"] == {"alpha": 1.1}
    back = RunSpec.from_wire(wire)
    assert back.workload == cfg
    assert back == spec


def test_wire_refuses_other_versions():
    cfg = WorkloadConfig(sim_time=100.0)
    wire = RunSpec(protocols=("TP",), workload=cfg).to_wire()
    wire["version"] = 1
    with pytest.raises(PlanError, match="wire version 1"):
        RunSpec.from_wire(wire)


def test_wire_survives_json():
    import json

    cfg = WorkloadConfig(
        sim_time=100.0, workload="hotspot", workload_params={"n_hot": 2}
    )
    wire = json.loads(json.dumps(RunSpec(protocols=("TP",), workload=cfg).to_wire()))
    assert RunSpec.from_wire(wire).workload == cfg


def test_figure_sweep_config_threads_workload():
    cfg = figure_sweep_config(
        1, sim_time=100.0, workload="zipf:alpha=1.1", use_cache=False
    )
    assert cfg.base.workload == "zipf"
    assert cfg.base.workload_params == {"alpha": 1.1}
    # Figure parameters are preserved alongside the model swap.
    assert cfg.base.p_send == 0.4 and cfg.base.p_switch == 1.0


def _small_sweep(**kw) -> SweepConfig:
    return SweepConfig(
        base=WorkloadConfig(sim_time=150.0),
        t_switch_values=(100.0, 1000.0),
        seeds=(0, 1),
        use_cache=False,
        progress=False,
        **kw,
    )


def test_sweep_runs_with_workload_axis():
    result = run_sweep(_small_sweep(workload="zipf:alpha=1.2"))
    assert not result.errors and result.complete
    assert result.config.base.workload == "zipf"
    for proto in ("TP", "BCS", "QBC"):
        curve = result.curve(proto)
        assert len(curve) == 2
        assert all(n >= 0 for _, n in curve)


def test_workload_axis_changes_results():
    paper = run_sweep(_small_sweep())
    skewed = run_sweep(_small_sweep(workload="hotspot:bias=0.95,n_hot=1"))
    assert any(
        paper.curve(p) != skewed.curve(p) for p in ("TP", "BCS", "QBC")
    )


def test_run_figure_accepts_workload(tmp_path):
    result = run_figure(
        1,
        sim_time=120.0,
        seeds=(0,),
        t_switch_values=(500.0,),
        workload="daynight:period=60",
        use_cache=False,
        progress=False,
    )
    assert not result.errors
    assert result.config.base.workload == "daynight"
