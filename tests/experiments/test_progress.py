"""ProgressReporter: ETA math, rendering, heartbeats and sweep wiring."""

import io
import json

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.progress import (
    PROGRESS_ENV,
    ProgressReporter,
    progress_enabled,
)
from repro.experiments.runner import run_sweep
from repro.obs.telemetry import TaskTelemetry
from repro.workload.config import WorkloadConfig


def record(wall=0.1, cache_hit=False, **kw):
    defaults = dict(
        t_switch=100.0,
        seed=0,
        wall_time_s=wall,
        trace_source="memory" if cache_hit else "generated",
        cache_hit=cache_hit,
        n_events=10,
        n_sends=5,
        pid=1,
    )
    defaults.update(kw)
    return TaskTelemetry(**defaults)


def sweep_config(**kw):
    defaults = dict(
        base=WorkloadConfig(n_hosts=4, n_mss=2, sim_time=300.0),
        t_switch_values=(80.0, 200.0),
        seeds=(0, 1),
        protocols=("TP", "BCS"),
        use_cache=False,
        progress=False,
    )
    defaults.update(kw)
    return SweepConfig(**defaults)


# ----------------------------------------------------------------------
# enablement precedence: flag > env > TTY
# ----------------------------------------------------------------------
def test_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv(PROGRESS_ENV, "1")
    assert progress_enabled(False, io.StringIO()) is False
    monkeypatch.setenv(PROGRESS_ENV, "0")
    assert progress_enabled(True, io.StringIO()) is True


def test_env_wins_over_tty(monkeypatch):
    stream = io.StringIO()  # not a TTY
    monkeypatch.setenv(PROGRESS_ENV, "1")
    assert progress_enabled(None, stream) is True
    for falsy in ("0", "false", "no", "off", ""):
        monkeypatch.setenv(PROGRESS_ENV, falsy)
        assert progress_enabled(None, stream) is False


def test_tty_detection_is_the_fallback(monkeypatch):
    monkeypatch.delenv(PROGRESS_ENV, raising=False)

    class Tty(io.StringIO):
        def isatty(self):
            return True

    assert progress_enabled(None, Tty()) is True
    assert progress_enabled(None, io.StringIO()) is False


# ----------------------------------------------------------------------
# rate / ETA arithmetic (against a fake clock)
# ----------------------------------------------------------------------
def test_rate_and_eta_math(monkeypatch):
    now = [100.0]
    monkeypatch.setattr(
        "repro.experiments.progress.time.monotonic", lambda: now[0]
    )
    reporter = ProgressReporter(total=10, enabled=False)
    now[0] += 5.0
    for _ in range(4):
        reporter.task_done(record())
    assert reporter.rate_per_s() == pytest.approx(0.8)  # 4 tasks / 5 s
    assert reporter.eta_s() == pytest.approx(6 / 0.8)  # 6 left


def test_resumed_tasks_do_not_inflate_the_rate(monkeypatch):
    now = [0.0]
    monkeypatch.setattr(
        "repro.experiments.progress.time.monotonic", lambda: now[0]
    )
    reporter = ProgressReporter(total=4, enabled=False)
    reporter.task_done(resumed=True)
    reporter.task_done(resumed=True)
    now[0] = 2.0
    reporter.task_done(record())
    # Only the executed task counts: 1 task / 2 s, one cell remains.
    assert reporter.rate_per_s() == pytest.approx(0.5)
    assert reporter.eta_s() == pytest.approx(2.0)
    assert reporter.done == 3 and reporter.resumed == 2


def test_eta_none_before_any_execution():
    reporter = ProgressReporter(total=5, enabled=False)
    assert reporter.eta_s() is None
    reporter.task_done(record())
    assert reporter.eta_s() is not None


def test_status_line_contents():
    reporter = ProgressReporter(total=4, enabled=False, label="sweep")
    reporter.task_done(record(cache_hit=True))
    reporter.task_done(record())
    reporter.task_retry()
    reporter.task_quarantined()
    line = reporter.status_line()
    assert "sweep 3/4" in line
    assert "tasks/s" in line
    assert "cache 1/2" in line
    assert "retries 1" in line
    assert "quarantined 1" in line


def test_plain_line_rendering_on_non_tty():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream, enabled=True)
    reporter.task_done(record())
    reporter.task_done(record())  # total reached -> forced render
    reporter.close()
    out = stream.getvalue()
    assert "2/2" in out
    assert "\r" not in out  # non-TTY: plain lines, no carriage returns


def test_heartbeat_records(tmp_path, monkeypatch):
    now = [0.0]
    monkeypatch.setattr(
        "repro.experiments.progress.time.monotonic", lambda: now[0]
    )
    path = tmp_path / "hb.jsonl"
    reporter = ProgressReporter(
        total=3, enabled=False, heartbeat_path=path, heartbeat_every_s=1.0
    )
    reporter.task_done(record())
    now[0] = 1.5  # past the cadence
    reporter.task_done(record())
    reporter.close()  # final heartbeat
    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(records) == 2
    assert all(r["kind"] == "heartbeat" for r in records)
    last = records[-1]
    assert last["done"] == 2 and last["total"] == 3
    assert last["rate_per_s"] > 0
    assert last["eta_s"] is not None


def test_close_is_idempotent(tmp_path):
    reporter = ProgressReporter(
        total=1, enabled=False, heartbeat_path=tmp_path / "hb.jsonl"
    )
    reporter.task_done(record())
    reporter.close()
    reporter.close()
    lines = (tmp_path / "hb.jsonl").read_text().splitlines()
    assert len(lines) == 1


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
def test_sweep_emits_progress_lines_to_stderr(capsys):
    result = run_sweep(sweep_config(progress=True))
    assert result.complete
    err = capsys.readouterr().err
    assert "4/4" in err and "tasks/s" in err


def test_sweep_respects_progress_env(monkeypatch, capsys):
    monkeypatch.setenv(PROGRESS_ENV, "1")
    run_sweep(sweep_config(progress=None))
    assert "tasks/s" in capsys.readouterr().err
    monkeypatch.setenv(PROGRESS_ENV, "0")
    run_sweep(sweep_config(progress=None))
    assert capsys.readouterr().err == ""


def test_sweep_writes_heartbeats(tmp_path):
    path = tmp_path / "hb.jsonl"
    run_sweep(sweep_config(heartbeat_path=str(path)))
    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert records and records[-1]["done"] == 4 and records[-1]["total"] == 4


def test_sweep_trace_path_writes_merged_chrome_trace(tmp_path):
    path = tmp_path / "trace.json"
    result = run_sweep(sweep_config(trace_path=str(path)))
    # trace_path implies span recording on every task...
    assert all(rec.spans for rec in result.telemetry)
    names = {s["name"] for rec in result.telemetry for s in rec.spans}
    assert names >= {"run", "trace-acquire", "fused-pass"}
    # ...and the merged timeline lands as trace-event JSON.
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == sum(
        len(rec.spans) for rec in result.telemetry
    )


def test_sweep_stream_path_feeds_outcome_lines(tmp_path):
    path = tmp_path / "stream.jsonl"
    result = run_sweep(sweep_config(stream_path=str(path)))
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    outcomes = [l for l in lines if l["kind"] == "outcome"]
    # 4 tasks x 2 protocols, each labelled with its grid cell.
    assert len(outcomes) == 8
    assert {(l["t_switch"], l["seed"]) for l in outcomes} == {
        (t, s) for t in (80.0, 200.0) for s in (0, 1)
    }
    # The streamed counts match the assembled result exactly.
    by_cell = {
        (l["t_switch"], l["seed"], l["protocol"]): l["n_total"]
        for l in outcomes
    }
    for point in result.points:
        for run in point.runs:
            assert by_cell[(point.t_switch, run.seed, run.protocol)] == (
                run.n_total
            )


def test_observability_does_not_change_results(tmp_path):
    plain = run_sweep(sweep_config())
    observed = run_sweep(
        sweep_config(
            trace_path=str(tmp_path / "t.json"),
            stream_path=str(tmp_path / "s.jsonl"),
            heartbeat_path=str(tmp_path / "h.jsonl"),
        )
    )

    def rows(result):
        return [
            (p.t_switch, r.seed, r.protocol, r.n_total, r.n_basic,
             r.n_forced, r.n_replaced, r.n_sends, r.piggyback_ints)
            for p in result.points
            for r in p.runs
        ]

    assert rows(plain) == rows(observed)
