"""Whole-worker chaos for the sharded sweep service.

These kill a real shard worker process mid-sweep, sever a live
connection, and stall heartbeats past the lease deadline, then assert
the final ``SweepResult`` is value-identical to a fault-free serial
run, the journal holds exactly one entry per cell, and the loss is
visible as ``worker-lost`` retries in the shard metrics -- the
acceptance bar for the sharded dispatch service.

Fault injection uses the same ``REPRO_CHAOS_DIR`` flag-file hook as
test_chaos.py, with the sharded-path flags consumed by the worker loop
(:func:`repro.experiments.sharded._worker_chaos`): ``kill-worker-*``,
``drop-conn-*`` and ``stall-heartbeat-*``.  Each flag strikes exactly
one attempt.
"""

import json

import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.experiments.resilience import CHAOS_DIR_ENV
from repro.obs.metrics import registry
from repro.workload import WorkloadConfig

pytestmark = pytest.mark.timeout(300)

GRID = dict(t_switch_values=(100.0, 800.0), seeds=(0, 1))

N_CELLS = len(GRID["t_switch_values"]) * len(GRID["seeds"])


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        shards=2,
        retry_backoff_s=0.01,
        shard_size=1,  # one cell per lease: a lost worker loses little
        shard_heartbeat_s=0.1,
        shard_lease_timeout_s=1.0,
        **GRID,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _values(result):
    return [[r for r in p.runs] for p in result.points]


@pytest.fixture()
def clean_registry():
    registry().reset()
    yield
    registry().reset()


def _assert_exactly_once_journal(path):
    with open(path) as fh:
        lines = [json.loads(l) for l in fh if l.strip()]
    cells = [
        (l["t_switch"], l["seed"]) for l in lines if l["kind"] == "task"
    ]
    assert sorted(cells) == sorted(
        (t, s) for t in GRID["t_switch_values"] for s in GRID["seeds"]
    )
    assert len(cells) == len(set(cells))


def test_killed_worker_mid_sweep_converges(
    tmp_path, monkeypatch, clean_registry
):
    """A whole worker process dying hard mid-shard is healed: its cell
    is reassigned as a worker-lost retry, a replacement is respawned,
    and the sweep converges value-identical with no duplicate journal
    entries."""
    baseline = run_sweep(sweep_config(shards=0, workers=0))

    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    (chaos_dir / "kill-worker-100-0").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    journal = str(tmp_path / "sweep.jsonl")

    result = run_sweep(sweep_config(journal_path=journal))
    assert _values(result) == _values(baseline)
    assert result.complete
    assert result.errors == []
    assert result.task_retries >= 1
    assert not list(chaos_dir.iterdir())  # the flag really fired
    _assert_exactly_once_journal(journal)
    # The loss is visible in the shard metrics.
    assert (
        registry()
        .counter("repro_shard_leases_revoked_total", reason="conn-lost")
        .value
        >= 1
    )
    assert registry().counter("repro_shard_cells_reassigned_total").value >= 1
    assert registry().counter("repro_shard_worker_respawns_total").value >= 1


def test_severed_connection_mid_sweep_converges(
    tmp_path, monkeypatch, clean_registry
):
    """A worker whose connection is severed (the worker itself stays
    alive for a moment) is treated as lost: lease revoked, cell
    reassigned, sweep value-identical."""
    baseline = run_sweep(sweep_config(shards=0, workers=0))

    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    (chaos_dir / "drop-conn-800-1").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    journal = str(tmp_path / "sweep.jsonl")

    result = run_sweep(sweep_config(journal_path=journal))
    assert _values(result) == _values(baseline)
    assert result.complete
    assert result.errors == []
    assert not list(chaos_dir.iterdir())
    _assert_exactly_once_journal(journal)
    assert (
        registry()
        .counter("repro_shard_leases_revoked_total", reason="conn-lost")
        .value
        >= 1
    )


def test_stalled_heartbeat_revokes_lease_and_fences_late_results(
    tmp_path, monkeypatch, clean_registry
):
    """A worker frozen past the lease deadline (GC pause / partition
    shape) has its lease revoked and the cell reassigned; when it wakes
    up and reports anyway, the late result is fenced -- accepted at most
    once, never journaled twice."""
    baseline = run_sweep(sweep_config(shards=0, workers=0))

    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    (chaos_dir / "stall-heartbeat-100-1").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    journal = str(tmp_path / "sweep.jsonl")

    result = run_sweep(sweep_config(journal_path=journal))
    assert _values(result) == _values(baseline)
    assert result.complete
    assert result.errors == []
    assert not list(chaos_dir.iterdir())
    _assert_exactly_once_journal(journal)
    assert (
        registry()
        .counter(
            "repro_shard_leases_revoked_total", reason="heartbeat-timeout"
        )
        .value
        >= 1
    )
    # The revoked cell was reassigned and charged a worker-lost retry.
    assert registry().counter("repro_shard_cells_reassigned_total").value >= 1
    assert result.task_retries >= 1
    # (Whether the stalled worker wakes before the sweep finishes is a
    # race; the deterministic fencing proof -- late results accepted at
    # most once -- is test_sharded.py's coordinator-level fence test,
    # and the exactly-once journal assertion above covers this run.)


def test_repeated_worker_loss_exhausts_budget_into_explicit_holes(
    tmp_path, monkeypatch, clean_registry
):
    """When every attempt at a cell dies with the worker, the cell is
    quarantined as a worker-lost hole instead of looping forever."""
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))

    def rearm(*args):
        (chaos_dir / "kill-worker-100-0").touch()

    rearm()
    # Re-arm the kill flag every time it is consumed so every retry of
    # the cell dies too: monkeypatch the consume hook on the *parent*
    # side is useless (workers consume it), so pre-arm enough copies by
    # watching the journal-free sweep retry budget: attempts = 1 + max
    # retries.
    cfg = sweep_config(max_task_retries=1, shards=1)
    import threading

    stop = threading.Event()

    def rearmer():
        while not stop.is_set():
            if not (chaos_dir / "kill-worker-100-0").exists():
                rearm()
            stop.wait(0.02)

    t = threading.Thread(target=rearmer, daemon=True)
    t.start()
    try:
        result = run_sweep(cfg)
    finally:
        stop.set()
        t.join()
    assert result.n_holes == 1
    assert [e.kind for e in result.errors] == ["worker-lost"]
    # The surviving cells are intact: graceful degradation, not abort.
    done = {
        (p.t_switch, r.seed) for p in result.points for r in p.runs
    }
    assert (100.0, 1) in done and (800.0, 0) in done
