"""Tests for report formatting (repro.experiments.report)."""

from repro.experiments import SweepConfig, gains_table, points_table, run_sweep
from repro.experiments.report import overhead_table
from repro.workload import WorkloadConfig


def tiny_sweep():
    return run_sweep(
        SweepConfig(
            base=WorkloadConfig(sim_time=600.0, p_switch=0.9),
            t_switch_values=(200.0,),
            seeds=(0,),
        )
    )


def test_points_table_has_all_protocols_and_points():
    result = tiny_sweep()
    table = points_table(result)
    assert "200" in table
    for name in ("TP", "BCS", "QBC"):
        assert name in table


def test_gains_table_columns():
    table = gains_table(tiny_sweep())
    assert "BCS vs TP" in table
    assert "QBC vs BCS" in table
    assert "%" in table


def test_gains_table_without_tp():
    result = run_sweep(
        SweepConfig(
            base=WorkloadConfig(sim_time=400.0),
            t_switch_values=(200.0,),
            seeds=(0,),
            protocols=("BCS", "QBC"),
        )
    )
    table = gains_table(result)
    assert "nan" in table  # TP columns degrade gracefully


def test_overhead_table_formats_rows():
    rows = [
        dict(protocol="TP", n_total=100, piggyback_per_msg=20,
             piggyback_ints=2000, control_messages=0),
        dict(protocol="cl", n_total=50, control_messages=40),
    ]
    out = overhead_table(rows)
    assert "TP" in out and "cl" in out
    assert "2000" in out and "40" in out
