"""End-to-end fleet observability plane over the sharded service.

Exercises the ISSUE acceptance path: a two-worker sweep with the plane
enabled produces a merged Prometheus exposition whose cell counts match
the journal, an OTLP-JSON artifact with spans from both worker
processes, a merged trace -- and bit-identical sweep values versus the
plane disabled.  The coordinator's shutdown must also reset the
liveness gauge (no phantom live workers in the final exposition).
"""

import json

import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.obs.metrics import registry
from repro.workload import WorkloadConfig

pytestmark = pytest.mark.timeout(300)

GRID = dict(t_switch_values=(100.0, 800.0), seeds=(0, 1))


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        shards=2,
        retry_backoff_s=0.01,
        shard_heartbeat_s=0.2,
        shard_lease_timeout_s=2.0,
        **GRID,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _values(result):
    return [[r for r in p.runs] for p in result.points]


def test_fleet_plane_artifacts_and_bit_identity(tmp_path):
    prom = tmp_path / "fleet.prom"
    otlp = tmp_path / "fleet-otlp.json"
    trace = tmp_path / "trace.json"
    journal = tmp_path / "journal.jsonl"

    registry().reset()
    plain = run_sweep(sweep_config())
    registry().reset()
    observed = run_sweep(sweep_config(
        run_id="fleet-test",
        prom_path=str(prom),
        otlp_path=str(otlp),
        trace_spans=True,
        trace_path=str(trace),
        journal_path=str(journal),
    ))

    # (c) the plane is purely observational: values are bit-identical.
    assert _values(observed) == _values(plain)
    assert observed.complete and observed.errors == []

    # (b) Prometheus exposition: parses, carries worker-labelled series
    # merged with the coordinator's, and its done-cell count equals the
    # journal's completed-cell count.
    text = prom.read_text()
    worker_series = [
        ln for ln in text.splitlines()
        if 'worker_id="0"' in ln or 'worker_id="1"' in ln
    ]
    assert worker_series, text
    assert 'run_id="fleet-test"' in text
    with open(journal) as fh:
        cells = [
            json.loads(ln) for ln in fh
            if ln.strip() and json.loads(ln).get("kind") == "task"
        ]
    done_lines = [
        ln for ln in text.splitlines()
        if ln.startswith("repro_sweep_tasks_total") and 'status="done"' in ln
    ]
    prom_done = sum(float(ln.rsplit(" ", 1)[1]) for ln in done_lines)
    assert prom_done == len(cells) == 4

    # Satellite: the shutdown resets the liveness gauge -- the final
    # exposition must not advertise phantom live workers.
    alive = [
        ln for ln in text.splitlines()
        if ln.startswith("repro_shard_workers_alive")
    ]
    assert alive and all(ln.rsplit(" ", 1)[1] == "0" for ln in alive)

    # (b) OTLP-JSON: parses, has both sections, spans from >= 2 worker
    # processes, tagged with worker/run identity.
    payload = json.loads(otlp.read_text())
    assert "resourceMetrics" in payload
    spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
    attrs = [
        {a["key"]: a["value"]["stringValue"] for a in s["attributes"]}
        for s in spans
    ]
    assert len({a["pid"] for a in attrs}) >= 2
    assert all(a.get("run_id") == "fleet-test" for a in attrs)

    # (a) one merged Perfetto-loadable trace with both workers' spans.
    events = json.loads(trace.read_text())["traceEvents"]
    assert len({e.get("pid") for e in events}) >= 2


def test_fleet_plane_off_writes_no_artifacts(tmp_path):
    # No fleet knob set: no exporter files appear, nothing changes.
    registry().reset()
    result = run_sweep(sweep_config())
    assert result.complete
    assert list(tmp_path.iterdir()) == []


def test_run_id_defaults_to_config_hash(tmp_path):
    from repro.experiments.resilience import sweep_config_hash

    prom = tmp_path / "fleet.prom"
    registry().reset()
    cfg = sweep_config(prom_path=str(prom))
    run_sweep(cfg)
    expected = "sweep-" + sweep_config_hash(cfg)[:12]
    assert f'run_id="{expected}"' in prom.read_text()


def test_adaptive_shard_size_keeps_values_identical():
    registry().reset()
    plain = run_sweep(sweep_config())
    registry().reset()
    adaptive = run_sweep(sweep_config(adaptive_shard_size=True))
    assert _values(adaptive) == _values(plain)
    assert adaptive.complete and adaptive.errors == []
