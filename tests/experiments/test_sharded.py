"""Tests for the sharded sweep service (repro.experiments.sharded):
frame layer, address parsing, config validation, and fault-free
end-to-end dispatch (value identity, journaling, resume, metrics).

Whole-worker fault injection lives in test_sharded_chaos.py.
"""

import json
import multiprocessing

import pytest

from repro.experiments import SweepConfig, SweepJournal, run_sweep
from repro.experiments.resilience import sweep_config_hash
from repro.experiments.sharded import (
    PROTOCOL_VERSION,
    FrameError,
    VersionMismatch,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.obs.metrics import registry
from repro.workload import WorkloadConfig

pytestmark = pytest.mark.timeout(300)

GRID = dict(t_switch_values=(100.0, 800.0), seeds=(0, 1))


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        shards=2,
        retry_backoff_s=0.01,
        shard_heartbeat_s=0.2,
        shard_lease_timeout_s=2.0,
        **GRID,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _values(result):
    return [[r for r in p.runs] for p in result.points]


# ----------------------------------------------------------------------
# the frame layer
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    a, b = multiprocessing.Pipe()
    try:
        send_frame(a, {"kind": "heartbeat", "shard_id": 7})
        msg = recv_frame(b)
        assert msg == {"kind": "heartbeat", "shard_id": 7}
    finally:
        a.close()
        b.close()


def test_frame_rejects_version_skew():
    import struct

    a, b = multiprocessing.Pipe()
    try:
        import pickle

        payload = pickle.dumps({"kind": "hello"})
        a.send_bytes(
            struct.pack("!II", PROTOCOL_VERSION + 1, len(payload)) + payload
        )
        with pytest.raises(
            VersionMismatch, match=f"protocol v{PROTOCOL_VERSION + 1}"
        ):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_rejects_torn_payload():
    import pickle
    import struct

    a, b = multiprocessing.Pipe()
    try:
        payload = pickle.dumps({"kind": "hello"})
        # Header promises more bytes than the frame carries.
        a.send_bytes(
            struct.pack("!II", PROTOCOL_VERSION, len(payload) + 10) + payload
        )
        with pytest.raises(FrameError, match="torn frame"):
            recv_frame(b)
        a.send_bytes(b"\x00")
        with pytest.raises(FrameError, match="short frame"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_rejects_untagged_payload():
    a, b = multiprocessing.Pipe()
    try:
        send_frame(a, {"no-kind": True})
        with pytest.raises(FrameError, match="tagged message"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# addresses and config validation
# ----------------------------------------------------------------------
def test_parse_address():
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address("host.example:0") == ("host.example", 0)


@pytest.mark.parametrize(
    "bad", ["no-port", ":9000", "h:notaport", "h:99999", "h:-1"]
)
def test_parse_address_rejects(bad):
    with pytest.raises(ValueError):
        parse_address(bad)


@pytest.mark.parametrize(
    "bad",
    [
        {"shards": -1},
        {"shard_listen": "no-port"},
        {"shard_size": 0},
        {"shard_heartbeat_s": 0.0},
        {"shard_heartbeat_s": 2.0, "shard_lease_timeout_s": 1.0},
    ],
)
def test_shard_knobs_are_validated(bad):
    with pytest.raises(ValueError):
        sweep_config(**bad).validate()


# ----------------------------------------------------------------------
# fault-free end-to-end dispatch
# ----------------------------------------------------------------------
def test_sharded_sweep_is_value_identical_to_serial():
    serial = run_sweep(sweep_config(shards=0, workers=0))
    registry().reset()
    # A fast pump so even this short grid observes heartbeat traffic.
    sharded = run_sweep(sweep_config(shard_heartbeat_s=0.02))
    assert _values(sharded) == _values(serial)
    assert sharded.complete
    assert sharded.errors == []
    # The grid went out as leases, and workers pumped liveness.
    assert registry().counter("repro_shard_leases_granted_total").value >= 1
    assert registry().counter("repro_shard_heartbeats_total").value >= 1


def test_sharded_sweep_journals_each_cell_exactly_once(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path)
    result = run_sweep(cfg)
    assert result.complete
    with open(path) as fh:
        lines = [json.loads(l) for l in fh if l.strip()]
    tasks = [l for l in lines if l["kind"] == "task"]
    cells = [(l["t_switch"], l["seed"]) for l in tasks]
    assert sorted(cells) == sorted(
        (t, s) for t in GRID["t_switch_values"] for s in GRID["seeds"]
    )
    assert len(cells) == len(set(cells))  # exactly once


def test_sharded_resume_runs_only_missing_cells(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path)
    run_sweep(cfg)
    # Drop one cell from the ledger; the resumed sharded run must
    # re-execute just that one.
    with open(path) as fh:
        lines = fh.readlines()
    kept = [
        l
        for l in lines
        if '"kind": "header"' in l or '"t_switch": 100.0' in l
    ]
    with open(path, "w") as fh:
        fh.writelines(kept)
    resumed = run_sweep(
        sweep_config(journal_path=path, resume_from=path)
    )
    assert resumed.complete
    assert resumed.resumed_tasks == 2  # the two t=100 cells survived
    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    assert len(entries) == 4  # ledger healed, no duplicates


def test_late_results_from_revoked_lease_are_fenced():
    """Coordinator-level lease fencing, deterministically: a result
    arriving after its lease was revoked is accepted at most once
    (first-wins) and any further copy is dropped as a duplicate."""
    import random
    from types import SimpleNamespace

    from repro.experiments.progress import ProgressReporter
    from repro.experiments.resilience import ExecutionReport, _TaskSpec
    from repro.experiments.sharded import _Coordinator, _WorkerState

    registry().reset()
    cfg = sweep_config(shard_size=1)
    specs = [_TaskSpec(0, 100.0, 0, ()), _TaskSpec(1, 800.0, 0, ())]
    report = ExecutionReport(outcomes=[None, None])
    coord = _Coordinator(
        cfg,
        specs,
        report,
        None,  # no journal
        SimpleNamespace(triggered=False),
        random.Random(0),
        ProgressReporter(total=2, enabled=False),
    )
    a, b = multiprocessing.Pipe()
    try:
        worker = _WorkerState(worker_id=0, conn=a)
        coord.workers[0] = worker
        assert coord._grant(worker)  # leases cell (100.0, 0)
        lease = worker.lease
        assert [s.index for s in lease.specs] == [0]
        coord._revoke(lease, "heartbeat-timeout")

        telemetry = SimpleNamespace(attempts=0, cache_hit=False)
        late = {
            "kind": "outcome",
            "shard_id": lease.shard_id,
            "cell": (100.0, 0),
            "outcome": (100.0, 0, [], telemetry, []),
        }
        coord._handle(worker, dict(late), now=0.0)
        # First-wins: the late result still lands (stale, not lost) ...
        assert report.outcomes[0] is not None
        assert registry().counter("repro_shard_stale_results_total").value == 1
        # ... and a second copy is dropped, never recorded twice.
        coord._handle(worker, dict(late), now=0.0)
        assert (
            registry().counter("repro_shard_duplicates_dropped_total").value
            == 1
        )
        assert coord.open_cells == 1  # decremented exactly once
    finally:
        a.close()
        b.close()


def test_sharded_external_only_with_no_worker_quarantines(monkeypatch):
    """A listen-only service (shards=0) that never sees a worker must
    degrade to explicit worker-lost holes, not hang."""
    cfg = sweep_config(
        shards=0,
        shard_listen="127.0.0.1:0",
        shard_lease_timeout_s=0.5,
        shard_heartbeat_s=0.1,
    )
    result = run_sweep(cfg)
    assert result.n_holes == 4
    assert all(e.kind == "worker-lost" for e in result.errors)
