"""Chaos tests: the sweep engine under injected faults.

These kill real worker processes mid-sweep, hang tasks past their
deadline and corrupt on-disk cache entries, then assert the final
``SweepResult`` is value-identical to a fault-free run -- the
acceptance bar for the resilience layer.  Fault injection uses the
``REPRO_CHAOS_DIR`` flag-file hook consumed by the worker entry
(:func:`repro.experiments.resilience._maybe_chaos`); each flag strikes
exactly one attempt, so the retry path must heal the sweep.
"""

import json
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.experiments import runner as runner_mod
from repro.experiments.resilience import (
    CHAOS_DIR_ENV,
    SweepJournal,
    sweep_config_hash,
)
from repro.experiments.runner import _get_pool, shutdown_pool
from repro.workload import WorkloadConfig

pytestmark = pytest.mark.timeout(300)

GRID = dict(t_switch_values=(100.0, 800.0), seeds=(0, 1))


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        workers=2,
        retry_backoff_s=0.01,
        **GRID,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _values(result):
    return [[r for r in p.runs] for p in result.points]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Chaos flags ride on os.environ, which workers inherit at spawn:
    every test must start (and leave behind) a clean pool."""
    shutdown_pool()
    yield
    shutdown_pool()


# ----------------------------------------------------------------------
# picklable helpers for pool-level tests (spawn imports this module)
# ----------------------------------------------------------------------
def _die_hard():  # pragma: no cover - dies before returning
    os._exit(1)


def _ping(x):  # pragma: no cover - runs in a worker
    return x + 1


# ----------------------------------------------------------------------
# the acceptance chaos test
# ----------------------------------------------------------------------
def test_killed_workers_and_corrupt_cache_still_converge(
    tmp_path, monkeypatch
):
    """Workers killed mid-sweep + one corrupted cache entry: the sweep
    completes with results value-identical to a fault-free run."""
    cache_dir = tmp_path / "cache"
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()

    # Fault-free baseline (serial) -- also populates the disk cache.
    baseline = run_sweep(sweep_config(workers=0, cache_dir=str(cache_dir)))
    assert baseline.complete

    # Corrupt one cache entry in place (truncation).
    entries = sorted(cache_dir.glob("*.npz"))
    assert entries
    data = entries[0].read_bytes()
    entries[0].write_bytes(data[: len(data) // 2])

    # Arm worker kills for two different cells.
    (chaos_dir / "kill-100-0").touch()
    (chaos_dir / "kill-800-1").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))

    result = run_sweep(sweep_config(
        cache_dir=str(cache_dir), max_task_retries=3
    ))
    assert result.complete
    assert not result.errors
    assert result.task_retries >= 2  # both killed cells were re-dispatched
    assert _values(result) == _values(baseline)
    # All flags were consumed: the faults really fired.
    assert not list(chaos_dir.iterdir())


def test_journal_resume_reexecutes_only_missing_cells(tmp_path, monkeypatch):
    """A journaled sweep with a quarantined cell resumes by running
    exactly the missing (point, seed) tasks."""
    journal = str(tmp_path / "sweep.jsonl")
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    cache_dir = str(tmp_path / "cache")

    baseline = run_sweep(sweep_config(workers=0, cache_dir=cache_dir))

    # First run: zero retries, so one task-local fault on cell (800, 0)
    # quarantines it and leaves exactly one hole.  (A kill- flag would
    # break the whole pool and take the other in-flight cells down with
    # it -- worker-crash blast radius is covered by the test above.)
    (chaos_dir / "fail-800-0").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    first = run_sweep(sweep_config(
        cache_dir=cache_dir, journal_path=journal, max_task_retries=0
    ))
    assert first.n_holes == 1
    (error,) = first.errors
    assert error.kind == "protocol-error"
    assert (error.t_switch, error.seed) == (800.0, 0)

    cfg = sweep_config(cache_dir=cache_dir)
    journaled = SweepJournal.load(journal, sweep_config_hash(cfg))
    assert (800.0, 0) not in journaled
    assert len(journaled) == 3

    # Resume: only the missing cell may execute.  The chaos flag was
    # consumed, so its retry-free re-run now succeeds.
    monkeypatch.delenv(CHAOS_DIR_ENV)
    resumed = run_sweep(sweep_config(
        cache_dir=cache_dir, journal_path=journal, resume_from=journal
    ))
    assert resumed.complete
    assert resumed.resumed_tasks == 3
    assert _values(resumed) == _values(baseline)
    # The journal's new entries are exactly the previously missing cell.
    with open(journal) as fh:
        tasks = [
            obj
            for obj in (json.loads(line) for line in fh)
            if obj.get("kind") == "task"
        ]
    appended = tasks[len(journaled):]
    assert [(t["t_switch"], t["seed"]) for t in appended] == [(800.0, 0)]


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX alarms in workers"
)
def test_hung_worker_times_out_and_recovers(tmp_path, monkeypatch):
    """A task hanging past its deadline is aborted by the worker-side
    alarm, retried, and the sweep still converges."""
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    cache_dir = str(tmp_path / "cache")
    baseline = run_sweep(sweep_config(workers=0, cache_dir=cache_dir))

    (chaos_dir / "hang-100-1").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    started = time.perf_counter()
    result = run_sweep(sweep_config(
        cache_dir=cache_dir, task_timeout_s=1.0, max_task_retries=2
    ))
    assert time.perf_counter() - started < 120.0
    assert result.complete
    assert result.task_retries >= 1
    assert _values(result) == _values(baseline)
    (record,) = [
        r for r in result.telemetry if (r.t_switch, r.seed) == (100.0, 1)
    ]
    assert record.attempts >= 2


def test_backlog_deeper_than_watchdog_budget_is_not_killed(
    tmp_path, monkeypatch
):
    """Regression: the watchdog clock must start when a task begins
    executing, not at submission.  With deadlines armed at submit time,
    any backlog deeper than the watchdog budget read as a pool full of
    hung workers -- every worker was killed repeatedly and healthy
    tasks burned their retries into quarantine."""
    from repro.experiments import resilience

    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    cache_dir = str(tmp_path / "cache")
    grid = dict(t_switch_values=(100.0,), seeds=tuple(range(8)))
    baseline = run_sweep(sweep_config(workers=0, cache_dir=cache_dir, **grid))

    # Every task dawdles 1s inside a 2s deadline; with two workers and
    # a zeroed grace the per-worker backlog (~4s+) far exceeds the 3s
    # watchdog budget, so submission-time deadlines would all blow.
    for seed in grid["seeds"]:
        (chaos_dir / f"slow-100-{seed}").touch()
    monkeypatch.setenv(CHAOS_DIR_ENV, str(chaos_dir))
    monkeypatch.setattr(resilience, "_WATCHDOG_GRACE_S", 0.0)
    # Warm the pool first so worker spawn/import time is not on any
    # task's watchdog clock.
    pool = _get_pool(2)
    assert pool.submit(_ping, 1).result(timeout=60) == 2

    result = run_sweep(sweep_config(
        cache_dir=cache_dir, task_timeout_s=2.0, **grid
    ))
    assert result.complete
    assert not result.errors
    assert result.task_retries == 0  # no spurious watchdog kills
    assert _values(result) == _values(baseline)
    assert not list(chaos_dir.iterdir())  # every slow- flag really fired


# ----------------------------------------------------------------------
# broken-pool regression (satellite): _get_pool must not hand back a
# poisoned executor
# ----------------------------------------------------------------------
def test_get_pool_detects_and_replaces_broken_executor():
    pool = _get_pool(2)
    future = pool.submit(_die_hard)
    with pytest.raises(BrokenProcessPool):
        future.result(timeout=60)
    # The executor is now permanently broken...
    with pytest.raises(BrokenProcessPool):
        pool.submit(_ping, 1)
    # ...but _get_pool notices and hands back a working replacement.
    healed = _get_pool(2)
    assert healed is not pool
    assert healed.submit(_ping, 41).result(timeout=60) == 42


def test_get_pool_reuses_healthy_executor():
    pool = _get_pool(2)
    assert pool.submit(_ping, 1).result(timeout=60) == 2
    assert _get_pool(2) is pool
    assert _get_pool(3) is not pool  # width change still recreates


def test_sweep_completes_after_externally_broken_pool(tmp_path):
    """A sweep right after some earlier code broke the shared pool must
    transparently rebuild it (the old bug: cached forever-broken pool)."""
    pool = _get_pool(2)
    with pytest.raises(BrokenProcessPool):
        pool.submit(_die_hard).result(timeout=60)
    result = run_sweep(sweep_config(cache_dir=str(tmp_path / "cache")))
    assert result.complete
