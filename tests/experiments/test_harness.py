"""Tests for the experiment harness (repro.experiments)."""

import pytest

from repro.experiments import (
    FIGURE_PARAMS,
    SweepConfig,
    figure_report,
    gains_table,
    points_table,
    run_figure,
    run_point,
    run_sweep,
    validate_figure,
    validate_paper_claims,
)
from repro.experiments.figures import figure_sweep_config
from repro.workload import WorkloadConfig

#: Small, fast sweep shared by the tests below.
FAST = dict(sim_time=1200.0, seeds=(0, 1), t_switch_values=(100.0, 2000.0))


def small_sweep_config(**overrides):
    base = WorkloadConfig(
        p_send=0.4, p_switch=0.8, sim_time=FAST["sim_time"]
    )
    kw = dict(
        base=base,
        t_switch_values=FAST["t_switch_values"],
        seeds=FAST["seeds"],
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def test_sweep_config_validation():
    with pytest.raises(ValueError, match="unknown protocols"):
        small_sweep_config(protocols=("NOPE",)).validate()
    with pytest.raises(ValueError, match="t_switch"):
        small_sweep_config(t_switch_values=()).validate()
    with pytest.raises(ValueError, match="seed"):
        small_sweep_config(seeds=()).validate()


def test_run_point_covers_all_protocols_and_seeds():
    cfg = small_sweep_config()
    point = run_point(cfg, 100.0)
    assert len(point.runs) == len(cfg.protocols) * len(cfg.seeds)
    for name in cfg.protocols:
        assert len(point.totals(name)) == len(cfg.seeds)
        assert point.mean_total(name) > 0


def test_point_basic_counts_identical_across_protocols():
    """All protocols replay the same trace: the trace-mandated basic
    checkpoints must agree exactly per seed."""
    point = run_point(small_sweep_config(), 200.0)
    by_seed = {}
    for run in point.runs:
        by_seed.setdefault(run.seed, set()).add(run.n_basic)
    for seed, basics in by_seed.items():
        assert len(basics) == 1, f"seed {seed} basics differ: {basics}"


def test_run_sweep_serial():
    result = run_sweep(small_sweep_config())
    assert [p.t_switch for p in result.points] == list(FAST["t_switch_values"])
    curve = result.curve("BCS")
    assert len(curve) == 2


def test_sweep_shape_tp_worst():
    result = run_sweep(small_sweep_config())
    for point in result.points:
        assert point.mean_total("TP") > point.mean_total("BCS")
        assert point.mean_total("QBC") <= point.mean_total("BCS")


def test_figure_params_cover_paper():
    assert FIGURE_PARAMS == {
        1: (1.0, 0.0),
        2: (0.8, 0.0),
        3: (1.0, 0.5),
        4: (0.8, 0.5),
        5: (1.0, 0.3),
        6: (0.8, 0.3),
    }


def test_figure_sweep_config_rejects_unknown_figure():
    with pytest.raises(ValueError):
        figure_sweep_config(9, sim_time=100.0)


def test_run_figure_and_reports():
    result = run_figure(1, sim_time=800.0, seeds=(0,), t_switch_values=(100.0, 1000.0))
    table = points_table(result)
    assert "T_switch" in table and "TP" in table
    gains = gains_table(result)
    assert "QBC vs BCS" in gains
    report = figure_report(result, figure=1)
    assert "Figure 1" in report and "N_tot vs T_switch" in report


def test_validation_passes_on_reasonable_sweep():
    result = run_figure(
        2, sim_time=2500.0, seeds=(0, 1), t_switch_values=(100.0, 1000.0, 5000.0)
    )
    # At this short horizon, heavy disconnection phases (away ~1000 time
    # units out of 2500) make seed variance genuinely large; the
    # paper-scale bench checks the paper's 4% agreement at sim_time 1e5.
    report = validate_figure(result, spread_tolerance=0.5)
    assert report.ok, f"unexpected failures:\n{report}"


def test_validate_paper_claims_cross_figure():
    no_disc = run_figure(1, sim_time=2000.0, seeds=(0, 1), t_switch_values=(2000.0,))
    with_disc = run_figure(2, sim_time=2000.0, seeds=(0, 1), t_switch_values=(2000.0,))
    report = validate_paper_claims(no_disc, with_disc)
    # gains are noisy at this horizon; the report must at least execute
    # and contain exactly one cross-figure check
    assert len(report.passed) + len(report.failed) == 1


def test_run_sweep_with_process_pool_matches_serial():
    cfg_serial = small_sweep_config(
        base=WorkloadConfig(p_send=0.4, p_switch=0.9, sim_time=400.0),
        t_switch_values=(100.0, 500.0),
        seeds=(0,),
    )
    cfg_pool = small_sweep_config(
        base=WorkloadConfig(p_send=0.4, p_switch=0.9, sim_time=400.0),
        t_switch_values=(100.0, 500.0),
        seeds=(0,),
        workers=2,
    )
    serial = run_sweep(cfg_serial)
    pooled = run_sweep(cfg_pool)
    for name in ("TP", "BCS", "QBC"):
        assert serial.curve(name) == pooled.curve(name)


def test_validation_reports_failures_when_protocols_missing():
    cfg = small_sweep_config(protocols=("BCS",))
    result = run_sweep(cfg)
    report = validate_figure(result)
    assert not report.ok
