"""Tests for the fault-tolerant sweep execution layer
(repro.experiments.resilience): supervision, retry/quarantine, the
sweep journal, resumption and graceful draining.

Everything here exercises the serial supervisor (deterministic,
in-process, monkeypatchable); the pooled paths -- worker kills, pool
healing, hung-worker watchdog -- live in test_chaos.py.
"""

import json
import os
import signal
import time

import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.experiments import runner as runner_mod
from repro.experiments.resilience import (
    JournalConfigMismatch,
    SweepJournal,
    TaskError,
    sweep_config_hash,
)
from repro.workload import WorkloadConfig


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        t_switch_values=(100.0, 800.0),
        seeds=(0, 1),
        workers=0,
        retry_backoff_s=0.001,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _values(result):
    return [[r for r in p.runs] for p in result.points]


# ----------------------------------------------------------------------
# config hashing
# ----------------------------------------------------------------------
def test_config_hash_is_stable():
    assert sweep_config_hash(sweep_config()) == sweep_config_hash(
        sweep_config()
    )


@pytest.mark.parametrize(
    "change",
    [
        {"seeds": (0, 1, 2)},
        {"t_switch_values": (100.0, 900.0)},
        {"protocols": ("TP", "BCS")},
        {"audit": True},
        {"base": WorkloadConfig(p_switch=0.8, sim_time=201.0)},
    ],
)
def test_result_determining_fields_change_hash(change):
    assert sweep_config_hash(sweep_config(**change)) != sweep_config_hash(
        sweep_config()
    )


@pytest.mark.parametrize(
    "change",
    [
        {"workers": 4},
        {"use_cache": False},
        {"cache_dir": "/tmp/elsewhere"},
        {"task_timeout_s": 5.0},
        {"max_task_retries": 9},
        {"journal_path": "/tmp/j.jsonl"},
        {"telemetry_path": "/tmp/t.jsonl"},
    ],
)
def test_execution_knobs_do_not_change_hash(change):
    """A journal stays resumable across pool width, cache and retry
    policy changes -- only result-determining fields key it."""
    assert sweep_config_hash(sweep_config(**change)) == sweep_config_hash(
        sweep_config()
    )


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
def test_journal_roundtrip(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path)
    result = run_sweep(cfg)
    assert result.complete

    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    assert set(entries) == {
        (t, s) for t in cfg.t_switch_values for s in cfg.seeds
    }
    # Journal entries reconstruct the exact run outcomes.
    for point in result.points:
        for seed in cfg.seeds:
            t, s, runs, telemetry, violations = entries[
                (point.t_switch, seed)
            ]
            expected = [r for r in point.runs if r.seed == seed]
            assert runs == expected
            assert violations == []


def test_journal_header_mismatch_refuses(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    run_sweep(sweep_config(journal_path=path))
    other = sweep_config(seeds=(5, 6))
    with pytest.raises(JournalConfigMismatch):
        SweepJournal.load(path, sweep_config_hash(other))
    with pytest.raises(JournalConfigMismatch):
        SweepJournal(path, sweep_config_hash(other)).open()


def test_journal_rejects_non_journal_file(tmp_path):
    path = tmp_path / "not-a-journal.jsonl"
    path.write_text('{"some": "line"}\n')
    with pytest.raises(JournalConfigMismatch, match="missing header"):
        SweepJournal.load(str(path), "whatever")


def test_torn_trailing_line_is_ignored(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path)
    run_sweep(cfg)
    with open(path) as fh:
        lines = fh.readlines()
    # Simulate a crash mid-append: tear the last entry in half.
    with open(path, "w") as fh:
        fh.writelines(lines[:-1])
        fh.write(lines[-1][: len(lines[-1]) // 2])
    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    assert len(entries) == len(lines) - 2  # header + torn line excluded


def test_journal_lines_are_json_with_kinds(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    run_sweep(sweep_config(journal_path=path))
    with open(path) as fh:
        objs = [json.loads(line) for line in fh]
    assert objs[0]["kind"] == "header"
    assert objs[0]["version"] == 1
    assert all(o["kind"] == "task" for o in objs[1:])
    assert {"t_switch", "seed", "runs", "telemetry", "attempts"} <= set(
        objs[1]
    )


# ----------------------------------------------------------------------
# resumption
# ----------------------------------------------------------------------
def test_resume_skips_completed_tasks(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path, use_cache=False)
    full = run_sweep(cfg)

    calls = []
    monkeypatch.setattr(
        runner_mod,
        "_evaluate_task",
        lambda *a, **k: calls.append(a) or (_ for _ in ()).throw(
            AssertionError("no task should execute on a full resume")
        ),
    )
    resumed = run_sweep(sweep_config(
        journal_path=path, resume_from=path, use_cache=False
    ))
    assert calls == []
    assert resumed.resumed_tasks == len(cfg.t_switch_values) * len(cfg.seeds)
    assert _values(resumed) == _values(full)
    assert resumed.telemetry_summary().n_resumed == resumed.resumed_tasks


def test_resume_runs_only_missing_cells(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(journal_path=path, use_cache=False)
    full = run_sweep(cfg)

    # Drop one cell from the journal to simulate a crash before it.
    with open(path) as fh:
        lines = fh.readlines()
    dropped = json.loads(lines[-1])
    with open(path, "w") as fh:
        fh.writelines(lines[:-1])

    real = runner_mod._evaluate_task
    executed = []

    def tracking(*args):
        executed.append((args[1], args[2]))
        return real(*args)

    monkeypatch.setattr(runner_mod, "_evaluate_task", tracking)
    resumed = run_sweep(sweep_config(
        journal_path=path, resume_from=path, use_cache=False
    ))
    assert executed == [(dropped["t_switch"], dropped["seed"])]
    assert resumed.complete
    assert _values(resumed) == _values(full)
    # The journal is whole again after the resume appended the cell.
    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    assert len(entries) == len(cfg.t_switch_values) * len(cfg.seeds)


def test_resume_from_missing_file_runs_everything(tmp_path):
    cfg = sweep_config(resume_from=str(tmp_path / "absent.jsonl"))
    result = run_sweep(cfg)
    assert result.complete and result.resumed_tasks == 0


def test_resume_with_wrong_config_raises(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    run_sweep(sweep_config(journal_path=path))
    with pytest.raises(JournalConfigMismatch):
        run_sweep(sweep_config(seeds=(0, 1, 2), resume_from=path))


# ----------------------------------------------------------------------
# retry and quarantine
# ----------------------------------------------------------------------
class _FlakyTask:
    """Fail the first *n* attempts of one (t_switch, seed) cell."""

    def __init__(self, real, cell, n, exc=RuntimeError("injected")):
        self.real, self.cell, self.remaining, self.exc = real, cell, n, exc
        self.calls = []

    def __call__(self, *args):
        key = (args[1], args[2])
        self.calls.append(key)
        if key == self.cell and self.remaining > 0:
            self.remaining -= 1
            raise self.exc
        return self.real(*args)


def test_transient_failure_is_retried(monkeypatch):
    cfg = sweep_config(use_cache=False, max_task_retries=2)
    baseline = run_sweep(cfg)
    flaky = _FlakyTask(runner_mod._evaluate_task, (800.0, 1), n=2)
    monkeypatch.setattr(runner_mod, "_evaluate_task", flaky)
    result = run_sweep(cfg)
    assert result.complete
    assert result.task_retries == 2
    assert _values(result) == _values(baseline)
    (record,) = [
        r for r in result.telemetry if (r.t_switch, r.seed) == (800.0, 1)
    ]
    assert record.attempts == 3
    assert result.telemetry_summary().n_retries == 2


def test_poisoned_task_is_quarantined_not_fatal(monkeypatch):
    cfg = sweep_config(use_cache=False, max_task_retries=1)
    flaky = _FlakyTask(
        runner_mod._evaluate_task, (100.0, 0), n=99,
        exc=ValueError("always broken"),
    )
    monkeypatch.setattr(runner_mod, "_evaluate_task", flaky)
    result = run_sweep(cfg)
    # The rest of the grid survives; the poisoned cell is a hole.
    assert result.n_holes == 1
    assert not result.complete
    (error,) = result.errors
    assert error.kind == "protocol-error"
    assert (error.t_switch, error.seed) == (100.0, 0)
    assert error.attempts == 2  # first try + one retry
    assert "always broken" in error.detail
    # Point 100.0 still aggregates its surviving seed.
    point = result.points[0]
    assert [r.seed for r in point.runs] == [1] * len(cfg.protocols)
    assert result.telemetry_summary().n_quarantined == 1


def test_quarantined_cell_absent_from_journal(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    cfg = sweep_config(
        journal_path=path, use_cache=False, max_task_retries=0
    )
    flaky = _FlakyTask(runner_mod._evaluate_task, (100.0, 0), n=99)
    monkeypatch.setattr(runner_mod, "_evaluate_task", flaky)
    run_sweep(cfg)
    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    assert (100.0, 0) not in entries
    assert len(entries) == 3
    # ...so a later resume re-runs exactly the quarantined cell.
    monkeypatch.setattr(runner_mod, "_evaluate_task", flaky.real)
    healed = run_sweep(sweep_config(
        journal_path=path, resume_from=path, use_cache=False
    ))
    assert healed.complete and healed.resumed_tasks == 3


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX alarms"
)
def test_serial_task_timeout_quarantines_hung_task(monkeypatch):
    real = runner_mod._evaluate_task

    def sluggish(*args):
        if (args[1], args[2]) == (800.0, 1):
            time.sleep(5.0)
        return real(*args)

    monkeypatch.setattr(runner_mod, "_evaluate_task", sluggish)
    cfg = sweep_config(
        use_cache=False, task_timeout_s=0.2, max_task_retries=0
    )
    started = time.perf_counter()
    result = run_sweep(cfg)
    assert time.perf_counter() - started < 4.0  # the sleep was cut short
    (error,) = result.errors
    assert error.kind == "timeout"
    assert (error.t_switch, error.seed) == (800.0, 1)


def test_system_exit_in_task_is_quarantined_not_fatal(monkeypatch):
    """A task raising SystemExit must be classified (worker-crash) and
    quarantined like any failure, never exit the supervisor."""
    cfg = sweep_config(use_cache=False, max_task_retries=0)
    flaky = _FlakyTask(
        runner_mod._evaluate_task, (100.0, 0), n=99, exc=SystemExit(3)
    )
    monkeypatch.setattr(runner_mod, "_evaluate_task", flaky)
    result = run_sweep(cfg)
    assert result.n_holes == 1
    (error,) = result.errors
    assert error.kind == "worker-crash"
    assert (error.t_switch, error.seed) == (100.0, 0)


def test_supervised_entry_survives_system_exit(monkeypatch):
    """The worker entry point converts SystemExit into a TaskError so
    the pool worker's serve loop is never aborted by a failed task."""
    from repro.experiments.resilience import _supervised_entry

    def exiting(*args):
        raise SystemExit(2)

    monkeypatch.setattr(runner_mod, "_evaluate_task", exiting)
    index, outcome, error = _supervised_entry(
        7, (None, 100.0, 3, (), False, None, False), None
    )
    assert index == 7 and outcome is None
    assert error.kind == "worker-crash"
    assert (error.t_switch, error.seed) == (100.0, 3)


def test_task_error_serialization():
    error = TaskError(
        kind="timeout", t_switch=100.0, seed=3, attempts=2, detail="boom"
    )
    assert error.as_json_dict() == {
        "kind": "timeout", "t_switch": 100.0, "seed": 3,
        "attempts": 2, "detail": "boom",
    }
    text = str(error)
    assert "timeout" in text and "seed=3" in text and "boom" in text


# ----------------------------------------------------------------------
# graceful draining
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX signals"
)
def test_sigint_drains_to_partial_result(tmp_path, monkeypatch):
    path = str(tmp_path / "sweep.jsonl")
    real = runner_mod._evaluate_task
    fired = []

    def interrupting(*args):
        outcome = real(*args)
        if len(fired) == 1:  # after the second task completes
            os.kill(os.getpid(), signal.SIGINT)
        fired.append(args)
        return outcome

    monkeypatch.setattr(runner_mod, "_evaluate_task", interrupting)
    cfg = sweep_config(journal_path=path, use_cache=False)
    result = run_sweep(cfg)
    assert result.interrupted
    assert not result.complete
    done = sum(len(p.telemetry) for p in result.points)
    assert done == 2  # the two finished tasks survived the drain
    # The journal kept them, so a resume finishes the job.
    monkeypatch.setattr(runner_mod, "_evaluate_task", real)
    finished = run_sweep(sweep_config(
        journal_path=path, resume_from=path, use_cache=False
    ))
    assert finished.complete
    assert finished.resumed_tasks == 2


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX signals"
)
def test_drained_failure_with_retries_left_is_a_hole_not_an_error(
    monkeypatch,
):
    """A task that fails while a drain is in progress (and still has
    retries left) must stay a plain resumable hole, matching the pooled
    path -- not be misreported as a quarantined error."""
    real = runner_mod._evaluate_task

    def interrupt_then_fail(*args):
        if (args[1], args[2]) == (100.0, 1):
            os.kill(os.getpid(), signal.SIGINT)
            raise RuntimeError("transient failure during the drain")
        return real(*args)

    monkeypatch.setattr(runner_mod, "_evaluate_task", interrupt_then_fail)
    cfg = sweep_config(use_cache=False, max_task_retries=5)
    result = run_sweep(cfg)
    assert result.interrupted
    assert result.errors == []  # not quarantined: retries were left
    assert sum(len(p.telemetry) for p in result.points) == 1
    assert result.n_holes == 3


# ----------------------------------------------------------------------
# validation of the new knobs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    [
        {"task_timeout_s": 0.0},
        {"task_timeout_s": -1.0},
        {"max_task_retries": -1},
        {"retry_backoff_s": -0.1},
        {"retry_jitter": 1.5},
    ],
)
def test_resilience_knobs_are_validated(bad):
    with pytest.raises(ValueError):
        sweep_config(**bad).validate()


# ----------------------------------------------------------------------
# the journal's advisory lock (single-writer contract)
# ----------------------------------------------------------------------
def test_journal_lock_refuses_second_opener(tmp_path):
    """Two simultaneous openers of one journal would interleave appends
    and corrupt exactly-once resume; the second must be refused with a
    typed, actionable error."""
    from repro.experiments.resilience import JournalLocked

    path = str(tmp_path / "sweep.jsonl")
    h = sweep_config_hash(sweep_config())
    first = SweepJournal(path, h).open()
    try:
        with pytest.raises(JournalLocked) as exc:
            SweepJournal(path, h).open()
        # The remediation is in the message, not just the type.
        assert "another live sweep" in str(exc.value)
        assert "--journal" in str(exc.value)
        # The first opener keeps working after the refused attempt.
        assert first._fh is not None
    finally:
        first.close()
    # The lock releases on close: a fresh opener succeeds.
    SweepJournal(path, h).open().close()


def test_journal_lock_is_exported():
    import repro.experiments as experiments

    from repro.experiments.resilience import JournalLocked

    assert experiments.JournalLocked is JournalLocked
