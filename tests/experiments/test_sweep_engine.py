"""Tests for the (point, seed)-granular sweep engine and its trace
cache integration (repro.experiments.runner)."""

from repro.experiments import SweepConfig, run_sweep
from repro.experiments.runner import CSV_FIELDS, RunOutcome
from repro.workload import WorkloadConfig
from repro.workload import driver


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=250.0),
        t_switch_values=(100.0, 800.0),
        seeds=(0, 1),
        workers=0,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


def _counting(monkeypatch):
    """Monkeypatch generate_trace with a call counter."""
    calls = []
    real = driver.generate_trace

    def counted(config):
        calls.append(config)
        return real(config)

    monkeypatch.setattr(driver, "generate_trace", counted)
    return calls


def test_cold_sweep_generates_once_per_point_seed(monkeypatch, tmp_path):
    calls = _counting(monkeypatch)
    cfg = sweep_config(cache_dir=str(tmp_path))
    run_sweep(cfg)
    assert len(calls) == len(cfg.t_switch_values) * len(cfg.seeds)


def test_warm_cache_sweep_generates_nothing(monkeypatch, tmp_path):
    cfg = sweep_config(cache_dir=str(tmp_path))
    cold = run_sweep(cfg)  # populates memory + disk tiers
    calls = _counting(monkeypatch)
    warm = run_sweep(cfg)
    assert calls == []  # every trace served from the cache
    assert [p.runs for p in warm.points] == [p.runs for p in cold.points]


def test_disk_tier_survives_fresh_process_state(monkeypatch, tmp_path):
    """A second run with only the disk tier (fresh in-memory cache)
    still regenerates nothing."""
    from repro.workload import cache as cache_mod

    cfg = sweep_config(cache_dir=str(tmp_path))
    cold = run_sweep(cfg)
    # Simulate a new process: drop the per-process shared cache registry.
    monkeypatch.setattr(cache_mod, "_shared", {})
    calls = _counting(monkeypatch)
    warm = run_sweep(cfg)
    assert calls == []
    assert [p.runs for p in warm.points] == [p.runs for p in cold.points]


def test_no_cache_regenerates_every_run(monkeypatch):
    cfg = sweep_config(use_cache=False, base=WorkloadConfig(sim_time=240.0))
    calls = _counting(monkeypatch)
    run_sweep(cfg)
    run_sweep(cfg)
    assert len(calls) == 2 * len(cfg.t_switch_values) * len(cfg.seeds)


def test_reassembly_is_deterministic():
    """Points follow config order; runs are seed-major then protocol."""
    cfg = sweep_config(use_cache=False)
    result = run_sweep(cfg)
    assert [p.t_switch for p in result.points] == list(cfg.t_switch_values)
    expected = [
        (seed, name) for seed in cfg.seeds for name in cfg.protocols
    ]
    for point in result.points:
        assert [(r.seed, r.protocol) for r in point.runs] == expected


def test_parallel_point_seed_tasks_match_serial(tmp_path):
    base = WorkloadConfig(p_switch=0.9, sim_time=300.0)
    serial = run_sweep(
        sweep_config(base=base, cache_dir=str(tmp_path), workers=0)
    )
    pooled = run_sweep(
        sweep_config(base=base, cache_dir=str(tmp_path), workers=2)
    )
    assert [p.runs for p in pooled.points] == [p.runs for p in serial.points]


def test_run_outcome_as_row_matches_csv_fields():
    outcome = RunOutcome(
        seed=3, protocol="BCS", n_total=10, n_basic=4, n_forced=6,
        n_replaced=0, n_sends=20, piggyback_ints=20,
    )
    row = outcome.as_row(t_switch=500.0)
    assert tuple(row) == CSV_FIELDS
    assert row["t_switch"] == 500.0 and row["protocol"] == "BCS"
