"""Tests for sweep CSV export."""

import csv

from repro.experiments import SweepConfig, run_sweep
from repro.workload import WorkloadConfig


def test_to_csv_one_row_per_run(tmp_path):
    cfg = SweepConfig(
        base=WorkloadConfig(sim_time=400.0, p_switch=0.9),
        t_switch_values=(100.0, 300.0),
        seeds=(0, 1),
        protocols=("BCS", "QBC"),
    )
    result = run_sweep(cfg)
    path = tmp_path / "sweep.csv"
    result.to_csv(path)
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2 * 2 * 2  # points x seeds x protocols
    assert {r["protocol"] for r in rows} == {"BCS", "QBC"}
    assert all(int(r["n_total"]) >= 0 for r in rows)
    assert {float(r["t_switch"]) for r in rows} == {100.0, 300.0}
