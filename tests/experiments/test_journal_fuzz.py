"""Property fuzz of the sweep journal's torn-line tolerance.

A crash can truncate the journal at *any byte* -- including in the
middle of a multi-byte UTF-8 sequence -- and resume must still load
exactly the set of cells whose lines survived intact: never raise out
of the read loop, never drop a completed cell whose line is whole,
never conjure a duplicate.  This pins the ``errors="replace"`` +
per-line-skip contract of :meth:`SweepJournal.load` under arbitrary
byte truncation.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import SweepConfig, run_sweep
from repro.experiments.resilience import SweepJournal, sweep_config_hash
from repro.workload import WorkloadConfig

pytestmark = pytest.mark.timeout(300)


def _config(journal_path=None):
    return SweepConfig(
        base=WorkloadConfig(p_switch=0.8, sim_time=200.0),
        t_switch_values=(100.0, 800.0),
        seeds=(0, 1),
        journal_path=journal_path,
    )


_CACHE: dict[str, object] = {}


def _journal_bytes(tmp_path_factory) -> tuple[bytes, str, int]:
    """One real journal (built once), salted with multi-byte UTF-8:
    a foreign unicode note line between entries, and a final task line
    re-encoded with raw (non-escaped) unicode riding an ignored key.
    Returns (bytes, config_hash, end-of-header offset)."""
    if "data" not in _CACHE:
        path = str(tmp_path_factory.mktemp("journal") / "sweep.jsonl")
        cfg = _config(journal_path=path)
        run_sweep(cfg)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        # Foreign line with multi-byte characters: loaders skip unknown
        # kinds, and truncating inside "π≈λ…" tears a UTF-8 sequence.
        note = (
            json.dumps(
                {"kind": "note", "msg": "π ≈ 3.14159… λ→∞ 🚀"},
                ensure_ascii=False,
            )
            + "\n"
        )
        last = json.loads(lines[-1])
        last["comment"] = "schließende Zeile — última célula ✓"
        lines = (
            lines[:2]
            + [note]
            + lines[2:-1]
            + [json.dumps(last, sort_keys=True, ensure_ascii=False) + "\n"]
        )
        data = "".join(lines).encode("utf-8")
        _CACHE["data"] = data
        _CACHE["hash"] = sweep_config_hash(cfg)
        _CACHE["header_end"] = len(lines[0].encode("utf-8"))
        # Per complete line: (end byte offset, cell key or None).
        offsets, pos = [], 0
        for line in lines:
            raw = line.encode("utf-8")
            pos += len(raw)
            try:
                obj = json.loads(line)
                key = (
                    (float(obj["t_switch"]), int(obj["seed"]))
                    if obj.get("kind") == "task"
                    else None
                )
            except (ValueError, KeyError):
                key = None
            offsets.append((pos, key))
        _CACHE["offsets"] = offsets
    return _CACHE["data"], _CACHE["hash"], _CACHE["header_end"]


@settings(max_examples=120, deadline=None)
@given(cut=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_any_byte_truncation_loads_exactly_the_intact_cells(
    cut, data, tmp_path_factory
):
    blob, config_hash, header_end = _journal_bytes(tmp_path_factory)
    # Map the drawn cut into [header_end, len(blob)]: header integrity
    # is a separate (non-truncation) contract tested elsewhere.
    cut = header_end + cut % (len(blob) - header_end + 1)
    expected = {
        key
        for end, key in _CACHE["offsets"]
        if key is not None and end <= cut
    }
    path = str(tmp_path_factory.mktemp("cut") / "sweep.jsonl")
    with open(path, "wb") as fh:
        fh.write(blob[:cut])
    entries = SweepJournal.load(path, config_hash)
    # Exactly the intact cells: none dropped, none duplicated, and a
    # torn trailing line (possibly mid multi-byte sequence) never
    # raises.
    assert set(entries) == expected


def test_truncated_journal_resumes_without_duplicates(tmp_path):
    """End-to-end exactly-once: resume over a journal torn mid-entry
    re-executes only the torn/missing cells and heals the ledger to one
    entry per cell."""
    path = str(tmp_path / "sweep.jsonl")
    cfg = _config(journal_path=path)
    run_sweep(cfg)
    with open(path, "rb") as fh:
        blob = fh.read()
    # Tear the last entry in the middle of its bytes.
    lines = blob.splitlines(keepends=True)
    torn = b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
    with open(path, "wb") as fh:
        fh.write(torn)
    resume_cfg = _config(journal_path=path)
    resume_cfg.resume_from = path
    resumed = run_sweep(resume_cfg)
    assert resumed.complete
    assert resumed.resumed_tasks == 3  # intact cells served from disk
    entries = SweepJournal.load(path, sweep_config_hash(cfg))
    cells = sorted(entries)
    assert cells == sorted(
        (t, s) for t in (100.0, 800.0) for s in (0, 1)
    )
