"""End-to-end integration tests: the paper's statistical claims on
realistic (generated) workloads, across the whole stack.

These complement the hypothesis property tests: properties that are
theorems are checked adversarially there; the claims below are
*statistical* (they hold in expectation under the paper's workload
model) and are checked here on seeded paper-style runs.
"""

import pytest

from repro.analysis.overhead import estimate_overhead
from repro.core.replay import replay, replay_many
from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig, generate_trace


def totals(trace, n_hosts, n_mss):
    res = replay_many(
        trace,
        [
            lambda: TwoPhaseProtocol(n_hosts, n_mss),
            lambda: BCSProtocol(n_hosts, n_mss),
            lambda: QBCProtocol(n_hosts, n_mss),
        ],
    )
    return {r.metrics.protocol: r for r in res}


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("p_switch", [1.0, 0.8])
def test_protocol_ordering_on_paper_workloads(seed, p_switch):
    """TP > BCS >= QBC in N_tot on every paper-style run."""
    cfg = WorkloadConfig(
        t_switch=1000.0, p_switch=p_switch, sim_time=4000.0, seed=seed
    )
    by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
    assert by_name["TP"].n_total > by_name["BCS"].n_total
    assert by_name["QBC"].n_total <= by_name["BCS"].n_total


def test_qbc_strictly_wins_in_heterogeneous_disconnecting_env():
    """The paper's best case for QBC: H=30%, P_switch=0.8.  Averaged
    over seeds, QBC must beat BCS strictly."""
    bcs_total = qbc_total = 0
    for seed in range(3):
        cfg = WorkloadConfig(
            t_switch=2000.0,
            p_switch=0.8,
            heterogeneity=0.3,
            sim_time=6000.0,
            seed=seed,
        )
        by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
        bcs_total += by_name["BCS"].n_total
        qbc_total += by_name["QBC"].n_total
    assert qbc_total < bcs_total


def test_index_gain_grows_with_t_switch():
    gains = []
    for t_switch in (100.0, 1000.0, 10000.0):
        cfg = WorkloadConfig(
            t_switch=t_switch, p_switch=1.0, sim_time=4000.0, seed=1
        )
        by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
        gains.append(1 - by_name["BCS"].n_total / by_name["TP"].n_total)
    assert gains[0] < gains[1] < gains[2]
    assert gains[2] > 0.9  # the paper's ~90% at the top of the sweep


def test_qbc_replacements_happen_in_disconnect_scenarios():
    cfg = WorkloadConfig(t_switch=300.0, p_switch=0.6, sim_time=4000.0, seed=2)
    by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
    assert by_name["QBC"].metrics.stats.n_replaced > 0
    assert by_name["BCS"].metrics.stats.n_replaced == 0


def test_tp_forced_rate_tracks_communication_not_mobility():
    """TP's forced checkpoints are communication-driven: they barely
    change when mobility slows 100x, unlike the index protocols."""
    fast = WorkloadConfig(t_switch=100.0, p_switch=1.0, sim_time=3000.0, seed=3)
    slow = fast.with_(t_switch=10000.0)
    tp_fast = totals(generate_trace(fast), 10, 5)["TP"]
    tp_slow = totals(generate_trace(slow), 10, 5)["TP"]
    assert tp_slow.metrics.stats.n_forced == pytest.approx(
        tp_fast.metrics.stats.n_forced, rel=0.5
    )
    bcs_fast = totals(generate_trace(fast), 10, 5)["BCS"]
    bcs_slow = totals(generate_trace(slow), 10, 5)["BCS"]
    assert bcs_slow.n_total < bcs_fast.n_total / 5


def test_overhead_model_ranks_protocols_like_the_paper():
    cfg = WorkloadConfig(t_switch=1000.0, p_switch=0.8, sim_time=4000.0, seed=0)
    by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
    reports = {
        name: estimate_overhead(r.metrics) for name, r in by_name.items()
    }
    assert reports["TP"].energy > reports["BCS"].energy >= reports["QBC"].energy
    assert reports["TP"].piggyback_bytes == 20 * reports["BCS"].piggyback_bytes


def test_piggyback_totals_match_scalability_argument():
    cfg = WorkloadConfig(t_switch=1000.0, sim_time=2000.0, seed=5)
    by_name = totals(generate_trace(cfg), cfg.n_hosts, cfg.n_mss)
    tp = by_name["TP"].metrics
    bcs = by_name["BCS"].metrics
    assert tp.piggyback_ints_total == 2 * cfg.n_hosts * bcs.piggyback_ints_total
