"""Unit tests for the capability-aware registry (repro.engine.registry)."""

import pytest

from repro.engine.errors import CapabilityError, UnknownProtocolError
from repro.engine.registry import (
    Capabilities,
    register_coordinated,
    known_names,
    known_protocols,
    resolve_protocols,
)
from repro.protocols import BCSProtocol
from repro.protocols.base import registry as class_registry


def test_every_base_registry_protocol_is_resolvable():
    known = known_protocols()
    for name in class_registry:
        assert name in known
        assert known[name].capabilities.replayable


def test_coordinated_baselines_are_registered():
    known = known_protocols()
    for name in ("CL", "KT", "PS"):
        caps = known[name].capabilities
        assert caps.coordinated
        assert not caps.replayable
        assert not caps.fusable
        assert not caps.counters_only
        assert known[name].scheme is not None
        assert known[name].factory is None


def test_known_names_sorted_and_complete():
    names = known_names()
    assert names == sorted(names)
    assert set(class_registry) | {"CL", "KT", "PS"} <= set(names)


def test_unknown_name_lists_known_names():
    with pytest.raises(UnknownProtocolError) as exc:
        resolve_protocols(["BCS", "NOPE", "ALSO-NOPE"])
    assert exc.value.unknown == ("NOPE", "ALSO-NOPE")
    assert "unknown protocols ['NOPE', 'ALSO-NOPE']" in str(exc.value)
    assert "'BCS'" in str(exc.value)  # the known list is in the message


def test_resolution_preserves_request_order():
    entries = resolve_protocols(["QBC", "TP", "BCS"])
    assert [e.name for e in entries] == ["QBC", "TP", "BCS"]


def test_none_selects_all_matching_the_gate():
    replayable = resolve_protocols(None, require="replayable")
    assert all(e.capabilities.replayable for e in replayable)
    assert not any(e.name in ("CL", "KT", "PS") for e in replayable)
    everything = resolve_protocols(None)
    assert {"CL", "KT", "PS"} <= {e.name for e in everything}


def test_require_gate_raises_capability_error():
    with pytest.raises(CapabilityError) as exc:
        resolve_protocols(["CL"], require="replayable")
    assert exc.value.protocol == "CL"
    assert exc.value.capability == "replayable"
    with pytest.raises(ValueError, match="unknown capability requirement"):
        resolve_protocols(["BCS"], require="turbo")


def test_factory_override_trumps_registry_and_adds_names():
    sentinel = object()

    def factory(n_hosts, n_mss):
        return sentinel

    entries = resolve_protocols(
        ["BCS", "Custom"], factories={"BCS": factory, "Custom": factory}
    )
    assert entries[0].make(2, 1) is sentinel
    assert entries[1].name == "Custom"
    assert entries[1].capabilities.replayable  # defaults read off factory


def test_factory_capabilities_read_off_override():
    class NotFusable(BCSProtocol):
        fusable = False

    (entry,) = resolve_protocols(["X"], factories={"X": NotFusable})
    assert entry.capabilities.replayable
    assert not entry.capabilities.fusable
    with pytest.raises(CapabilityError):
        resolve_protocols(["X"], factories={"X": NotFusable}, require="fusable")


def test_incoherent_capability_declaration_rejected():
    class Impossible(BCSProtocol):
        coordinated = True  # but replayable/fusable stay True

    with pytest.raises(ValueError, match="coordinated"):
        resolve_protocols(["Bad"], factories={"Bad": Impossible})


def test_coordinated_entry_cannot_be_instantiated():
    (entry,) = resolve_protocols(["CL"])
    with pytest.raises(CapabilityError, match="online DES"):
        entry.make(10, 5)


def test_register_coordinated_rejects_collisions():
    with pytest.raises(ValueError, match="already registered"):
        register_coordinated("BCS", known_protocols()["CL"].scheme)
    with pytest.raises(ValueError, match="non-empty string"):
        register_coordinated("", known_protocols()["CL"].scheme)


def test_late_registration_is_visible(monkeypatch):
    class LateProtocol(BCSProtocol):
        name = "Late"

    monkeypatch.setitem(class_registry, "Late", LateProtocol)
    assert "Late" in known_protocols()
    (entry,) = resolve_protocols(["Late"])
    assert entry.capabilities == Capabilities.of(LateProtocol)


def test_unknown_name_carries_did_you_mean_suggestions():
    """Typos resolve to closest-match hints, in the message and as
    structured data on the exception."""
    with pytest.raises(UnknownProtocolError) as exc:
        resolve_protocols(["BSC"])
    assert "did you mean" in str(exc.value)
    assert "'BCS'" in str(exc.value)
    assert "BCS" in exc.value.suggestions["BSC"]


def test_suggestions_are_case_insensitive():
    with pytest.raises(UnknownProtocolError) as exc:
        resolve_protocols(["qbc"])
    assert exc.value.suggestions["qbc"][0] == "QBC"


def test_hopeless_names_get_no_suggestion():
    with pytest.raises(UnknownProtocolError) as exc:
        resolve_protocols(["ZZZZZZZZ"])
    assert exc.value.suggestions["ZZZZZZZZ"] == ()
    assert "did you mean" not in str(exc.value)
