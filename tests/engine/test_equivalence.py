"""Equivalence through the engine layer: reference ≡ fused ≡ vectorized.

The pre-engine suite (tests/core/test_replay_fused.py) proves the raw
``replay_fused`` loop matches ``replay``; this one proves the property
*survives the refactor* -- running the engines through ``Engine.run``
yields bit-identical checkpoint sequences for every registered
replayable protocol, and the vectorized engine joins the agreement for
every protocol that ships batch kernels.
"""

import pytest

from repro.engine import RunSpec, execute
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace

SEEDS = (0, 1)
REPLAYABLE = sorted(
    name for name, cls in registry.items() if cls.replayable
)
VECTORIZABLE = sorted(
    name
    for name, cls in registry.items()
    if getattr(cls, "vectorizable", False) and cls.fusable
)


def _trace(seed: int):
    return generate_trace(
        WorkloadConfig(sim_time=800.0, p_switch=0.8, seed=seed)
    )


def _checkpoint_trail(protocol):
    return [
        (ck.host, ck.index, ck.reason, ck.time, ck.replaced)
        for ck in protocol.checkpoints
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_bitwise_per_protocol(seed):
    trace = _trace(seed)
    ref = execute(
        RunSpec(protocols=tuple(REPLAYABLE), trace=trace, engine="reference")
    )
    fused = execute(
        RunSpec(protocols=tuple(REPLAYABLE), trace=trace, engine="fused")
    )
    for name in REPLAYABLE:
        r, f = ref.outcome(name), fused.outcome(name)
        assert f.metrics == r.metrics, name
        assert _checkpoint_trail(f.protocol) == _checkpoint_trail(
            r.protocol
        ), name


@pytest.mark.parametrize("seed", SEEDS)
def test_vectorized_engine_agrees_bitwise_per_protocol(seed):
    trace = _trace(seed)
    ref = execute(
        RunSpec(
            protocols=tuple(VECTORIZABLE), trace=trace, engine="reference"
        )
    )
    vec = execute(
        RunSpec(
            protocols=tuple(VECTORIZABLE), trace=trace, engine="vectorized"
        )
    )
    for name in VECTORIZABLE:
        r, v = ref.outcome(name), vec.outcome(name)
        assert v.metrics == r.metrics, name
        assert _checkpoint_trail(v.protocol) == _checkpoint_trail(
            r.protocol
        ), name


@pytest.mark.parametrize("name", REPLAYABLE)
def test_engine_matches_raw_replay(name):
    """The engine adds dispatch only: its reference run must equal a
    direct repro.core.replay.replay call, protocol by protocol."""
    from repro.core.replay import replay

    trace = _trace(0)
    raw = replay(trace, registry[name](trace.n_hosts, trace.n_mss))
    eng = execute(
        RunSpec(protocols=(name,), trace=trace, engine="reference")
    ).outcome(name)
    assert eng.metrics == raw.metrics
    assert _checkpoint_trail(eng.protocol) == _checkpoint_trail(raw.protocol)


def test_audited_engine_run_reports_no_violations():
    """The audit battery stays green through the engine for the real
    protocols (it would flag a lying stub; see tests/obs/test_audit.py)."""
    result = execute(
        RunSpec(protocols=("TP", "BCS", "QBC"), trace=_trace(2), audit=True)
    )
    assert result.violations == []


def test_audited_vectorized_run_reports_no_violations():
    """The same invariant battery holds when the batch kernels drive
    the replay."""
    result = execute(
        RunSpec(
            protocols=("TP", "BCS", "QBC"),
            trace=_trace(2),
            engine="vectorized",
            audit=True,
        )
    )
    assert result.violations == []
