"""Observer lifecycle and built-in observer behaviour."""

import json

import pytest

from repro.engine import (
    AuditObserver,
    MetricsObserver,
    ObserverReuseError,
    RunObserver,
    RunSpec,
    StreamObserver,
    TelemetryObserver,
    TimingObserver,
    execute,
)
from repro.workload import WorkloadConfig, generate_trace


def cfg(**kw):
    defaults = dict(sim_time=500.0, p_switch=0.8, seed=0)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class Recorder(RunObserver):
    def __init__(self):
        self.calls = []

    def on_run_start(self, plan):
        self.calls.append(("start", plan.engine_kind))

    def on_trace(self, plan, trace, source):
        self.calls.append(("trace", source))

    def on_outcome(self, plan, outcome):
        self.calls.append(("outcome", outcome.name))

    def on_run_end(self, plan, result):
        self.calls.append(("end", result.engine_kind))


def test_lifecycle_order_replay_engines():
    rec = Recorder()
    execute(
        RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(rec,))
    )
    assert rec.calls == [
        ("start", "vectorized"),
        ("trace", "uncached"),
        ("outcome", "TP"),
        ("outcome", "BCS"),
        ("end", "vectorized"),
    ]


def test_lifecycle_online_engine_emits_trace_once():
    rec = Recorder()
    execute(
        RunSpec(
            protocols=("BCS", "QBC", "CL"),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(rec,),
        )
    )
    assert rec.calls[0] == ("start", "online")
    assert rec.calls.count(("trace", "online")) == 1
    assert [c for c in rec.calls if c[0] == "outcome"] == [
        ("outcome", "BCS"),
        ("outcome", "QBC"),
        ("outcome", "CL"),
    ]
    assert rec.calls[-1] == ("end", "online")


def test_metrics_observer_collects_counters():
    obs = MetricsObserver()
    result = execute(
        RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(obs,))
    )
    assert set(obs.metrics) == {"TP", "BCS"}
    for name in ("TP", "BCS"):
        c = obs.counters[name]
        assert set(c) == {"n_total", "n_basic", "n_forced", "n_replaced"}
        assert c["n_total"] == result.outcome(name).n_total


def test_metrics_observer_skips_coordinated_outcomes():
    obs = MetricsObserver()
    execute(
        RunSpec(
            protocols=("CL",),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(obs,),
        )
    )
    assert obs.metrics == {} and obs.counters == {}


def test_telemetry_observer_builds_task_record(tmp_path):
    obs = TelemetryObserver(t_switch=321.0, seed=5)
    execute(
        RunSpec(
            protocols=("BCS",),
            workload=cfg(seed=5),
            counters_only=True,
            observers=(obs,),
            use_cache=True,
            cache_dir=str(tmp_path),
        )
    )
    rec = obs.record
    assert rec is not None
    assert rec.t_switch == 321.0 and rec.seed == 5
    assert rec.trace_source == "generated" and rec.cache_hit is False
    assert rec.n_events > 0 and rec.n_sends > 0
    assert rec.wall_time_s > 0.0
    assert rec.counters["BCS"]["n_total"] > 0
    assert rec.n_violations == 0

    from repro.workload import cache as cache_mod
    from pathlib import Path

    cache_mod._shared.pop(str(Path(str(tmp_path)).resolve()), None)


def test_telemetry_observer_on_provided_trace():
    trace = generate_trace(cfg())
    obs = TelemetryObserver()
    execute(RunSpec(protocols=("BCS",), trace=trace, observers=(obs,)))
    assert obs.record.trace_source == "provided"
    assert obs.record.n_events == len(trace)


def test_audit_observer_lands_violations_on_result():
    from repro.protocols import BCSProtocol

    class LyingBCS(BCSProtocol):
        """Counters diverge from the checkpoint log -> audit must fire."""

        name = "LyingBCS"

        def take(self, host, index, reason, now):
            super().take(host, index, reason, now)
            self.n_forced += 1  # double-count

    audit = AuditObserver(t_switch=42.0)
    result = execute(
        RunSpec(
            protocols=("Lying",),
            workload=cfg(),
            factories={"Lying": LyingBCS},
            observers=(audit,),
        )
    )
    assert audit.violations
    assert result.violations == audit.violations
    assert all(v.t_switch == 42.0 for v in audit.violations)


def test_online_trace_fires_after_simulation_with_online_source():
    """The online engine emits the trace its first replayable run
    produced -- so on_trace necessarily fires after that simulation,
    with source="online", and the coordinated-only entries before it
    never emit one."""
    rec = Recorder()
    execute(
        RunSpec(
            protocols=("CL", "BCS"),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(rec,),
        )
    )
    trace_at = rec.calls.index(("trace", "online"))
    # CL (coordinated) completed before the trace existed; BCS's
    # outcome lands after its own simulation emitted the trace.
    assert rec.calls.index(("outcome", "CL")) < trace_at
    assert trace_at < rec.calls.index(("outcome", "BCS"))


class Exploding(RunObserver):
    """Raises from every mid/post-run callback."""

    def on_trace(self, plan, trace, source):
        raise RuntimeError("trace tap broke")

    def on_outcome(self, plan, outcome):
        raise RuntimeError("outcome tap broke")

    def on_run_end(self, plan, result):
        raise RuntimeError("end tap broke")


def test_raising_observer_does_not_corrupt_counters_only_fused_run():
    exploding = Exploding()
    healthy = MetricsObserver()
    result = execute(
        RunSpec(
            protocols=("TP", "BCS"),
            workload=cfg(),
            counters_only=True,
            observers=(exploding, healthy),
        )
    )
    # The run's outcomes are complete and correct...
    assert [o.name for o in result.outcomes] == ["TP", "BCS"]
    assert all(o.n_total >= 0 for o in result.outcomes)
    # ...the healthy observer downstream still saw everything...
    assert set(healthy.counters) == {"TP", "BCS"}
    # ...and every absorbed failure is on the record: one on_trace, one
    # on_outcome per protocol, one on_run_end.
    callbacks = sorted(e.callback for e in result.observer_errors)
    assert callbacks == [
        "on_outcome", "on_outcome", "on_run_end", "on_trace",
    ]
    assert all(e.observer == "Exploding" for e in result.observer_errors)
    assert "on_run_end" in str(result.observer_errors[-1])


def test_raising_on_run_start_propagates():
    class BadStart(RunObserver):
        def on_run_start(self, plan):
            raise RuntimeError("fail fast")

    with pytest.raises(RuntimeError, match="fail fast"):
        execute(
            RunSpec(
                protocols=("TP",), workload=cfg(), observers=(BadStart(),)
            )
        )


def test_telemetry_observer_refuses_reuse():
    obs = TelemetryObserver(t_switch=100.0, seed=0)
    spec = RunSpec(protocols=("TP",), workload=cfg(), observers=(obs,))
    execute(spec)
    with pytest.raises(ObserverReuseError):
        execute(spec)


def test_metrics_observer_resets_per_run():
    obs = MetricsObserver()
    execute(RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(obs,)))
    assert set(obs.counters) == {"TP", "BCS"}
    execute(RunSpec(protocols=("QBC",), workload=cfg(), observers=(obs,)))
    # The latest run only -- never a union of both runs' protocol sets.
    assert set(obs.counters) == {"QBC"}


def test_timing_observer_records_fused_phases():
    timing = TimingObserver()
    execute(
        RunSpec(
            protocols=("TP", "BCS"),
            workload=cfg(),
            engine="fused",
            observers=(timing,),
        )
    )
    by_name = {}
    for sp in timing.spans:
        by_name.setdefault(sp.name, []).append(sp)
    assert set(by_name) >= {"run", "trace-acquire", "fused-pass"}
    assert by_name["trace-acquire"][0].tags["source"] == "uncached"
    assert by_name["trace-acquire"][0].path == "run/trace-acquire"
    # Observer on_run_end work is itself timed.
    assert "observer:TimingObserver" in {sp.name for sp in timing.spans}
    assert "run" in timing.phase_table()


def test_timing_observer_records_reference_replay_per_protocol():
    timing = TimingObserver()
    execute(
        RunSpec(
            protocols=("TP", "BCS"),
            workload=cfg(),
            engine="reference",
            observers=(timing,),
        )
    )
    replays = [sp for sp in timing.spans if sp.name == "replay"]
    assert [sp.tags["protocol"] for sp in replays] == ["TP", "BCS"]


def test_timing_observer_records_online_and_coordinated_runs():
    timing = TimingObserver()
    execute(
        RunSpec(
            protocols=("CL", "BCS"),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(timing,),
        )
    )
    names = {sp.name: sp for sp in timing.spans}
    assert names["coordinated-run"].tags["protocol"] == "CL"
    assert names["online-run"].tags["protocol"] == "BCS"


def test_timing_observer_accumulates_across_runs(tmp_path):
    timing = TimingObserver()
    for seed in (0, 1):
        execute(
            RunSpec(
                protocols=("TP",), workload=cfg(seed=seed), observers=(timing,)
            )
        )
    assert sum(1 for sp in timing.spans if sp.name == "run") == 2
    out = tmp_path / "trace.json"
    timing.write_chrome_trace(out)
    assert json.loads(out.read_text())["traceEvents"]


def test_untraced_runs_record_no_spans():
    result = execute(RunSpec(protocols=("TP",), workload=cfg()))
    assert result.observer_errors == []  # engine ran span-free and clean


def test_stream_observer_writes_outcome_and_run_lines(tmp_path):
    path = tmp_path / "stream.jsonl"
    stream = StreamObserver(path, labels={"t_switch": 500.0})
    execute(
        RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(stream,))
    )
    stream.close()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["kind"] for l in lines] == ["outcome", "outcome", "run"]
    assert [l.get("protocol") for l in lines[:2]] == ["TP", "BCS"]
    assert all(l["t_switch"] == 500.0 for l in lines)  # labels merged
    assert all("ts" in l for l in lines)
    assert lines[0]["n_total"] >= 0 and lines[0]["engine"] == "vectorized"
    assert lines[-1]["n_outcomes"] == 2
    assert stream.lines_written == 3


def test_stream_observer_file_like_target_not_closed():
    import io

    buf = io.StringIO()
    stream = StreamObserver(buf)
    execute(
        RunSpec(
            protocols=("CL",),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(stream,),
        )
    )
    stream.close()
    assert not buf.closed  # caller-owned sink stays open
    lines = [json.loads(l) for l in buf.getvalue().splitlines()]
    # Coordinated outcomes still report their N_tot.
    assert lines[0]["kind"] == "outcome" and "n_total" in lines[0]


def test_stream_observer_append_safe_across_runs(tmp_path):
    path = tmp_path / "stream.jsonl"
    for seed in (0, 1):
        stream = StreamObserver(path, labels={"seed_label": seed})
        execute(
            RunSpec(
                protocols=("TP",), workload=cfg(seed=seed), observers=(stream,)
            )
        )
        stream.close()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(lines) == 4  # (outcome + run) x 2, appended not clobbered
    assert {l["seed_label"] for l in lines} == {0, 1}


def test_audit_before_telemetry_counts_violations():
    """The sweep convention: AuditObserver first, so the telemetry
    record sees the final violation tally."""
    from repro.protocols import BCSProtocol

    class LyingBCS(BCSProtocol):
        name = "LyingBCS"

        def take(self, host, index, reason, now):
            super().take(host, index, reason, now)
            self.n_forced += 1

    telemetry = TelemetryObserver()
    execute(
        RunSpec(
            protocols=("Lying",),
            workload=cfg(),
            factories={"Lying": LyingBCS},
            observers=(AuditObserver(), telemetry),
        )
    )
    assert telemetry.record.n_violations > 0
