"""Observer lifecycle and built-in observer behaviour."""

from repro.engine import (
    AuditObserver,
    MetricsObserver,
    RunObserver,
    RunSpec,
    TelemetryObserver,
    execute,
)
from repro.workload import WorkloadConfig, generate_trace


def cfg(**kw):
    defaults = dict(sim_time=500.0, p_switch=0.8, seed=0)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class Recorder(RunObserver):
    def __init__(self):
        self.calls = []

    def on_run_start(self, plan):
        self.calls.append(("start", plan.engine_kind))

    def on_trace(self, plan, trace, source):
        self.calls.append(("trace", source))

    def on_outcome(self, plan, outcome):
        self.calls.append(("outcome", outcome.name))

    def on_run_end(self, plan, result):
        self.calls.append(("end", result.engine_kind))


def test_lifecycle_order_replay_engines():
    rec = Recorder()
    execute(
        RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(rec,))
    )
    assert rec.calls == [
        ("start", "fused"),
        ("trace", "uncached"),
        ("outcome", "TP"),
        ("outcome", "BCS"),
        ("end", "fused"),
    ]


def test_lifecycle_online_engine_emits_trace_once():
    rec = Recorder()
    execute(
        RunSpec(
            protocols=("BCS", "QBC", "CL"),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(rec,),
        )
    )
    assert rec.calls[0] == ("start", "online")
    assert rec.calls.count(("trace", "online")) == 1
    assert [c for c in rec.calls if c[0] == "outcome"] == [
        ("outcome", "BCS"),
        ("outcome", "QBC"),
        ("outcome", "CL"),
    ]
    assert rec.calls[-1] == ("end", "online")


def test_metrics_observer_collects_counters():
    obs = MetricsObserver()
    result = execute(
        RunSpec(protocols=("TP", "BCS"), workload=cfg(), observers=(obs,))
    )
    assert set(obs.metrics) == {"TP", "BCS"}
    for name in ("TP", "BCS"):
        c = obs.counters[name]
        assert set(c) == {"n_total", "n_basic", "n_forced", "n_replaced"}
        assert c["n_total"] == result.outcome(name).n_total


def test_metrics_observer_skips_coordinated_outcomes():
    obs = MetricsObserver()
    execute(
        RunSpec(
            protocols=("CL",),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
            observers=(obs,),
        )
    )
    assert obs.metrics == {} and obs.counters == {}


def test_telemetry_observer_builds_task_record(tmp_path):
    obs = TelemetryObserver(t_switch=321.0, seed=5)
    execute(
        RunSpec(
            protocols=("BCS",),
            workload=cfg(seed=5),
            counters_only=True,
            observers=(obs,),
            use_cache=True,
            cache_dir=str(tmp_path),
        )
    )
    rec = obs.record
    assert rec is not None
    assert rec.t_switch == 321.0 and rec.seed == 5
    assert rec.trace_source == "generated" and rec.cache_hit is False
    assert rec.n_events > 0 and rec.n_sends > 0
    assert rec.wall_time_s > 0.0
    assert rec.counters["BCS"]["n_total"] > 0
    assert rec.n_violations == 0

    from repro.workload import cache as cache_mod
    from pathlib import Path

    cache_mod._shared.pop(str(Path(str(tmp_path)).resolve()), None)


def test_telemetry_observer_on_provided_trace():
    trace = generate_trace(cfg())
    obs = TelemetryObserver()
    execute(RunSpec(protocols=("BCS",), trace=trace, observers=(obs,)))
    assert obs.record.trace_source == "provided"
    assert obs.record.n_events == len(trace)


def test_audit_observer_lands_violations_on_result():
    from repro.protocols import BCSProtocol

    class LyingBCS(BCSProtocol):
        """Counters diverge from the checkpoint log -> audit must fire."""

        name = "LyingBCS"

        def take(self, host, index, reason, now):
            super().take(host, index, reason, now)
            self.n_forced += 1  # double-count

    audit = AuditObserver(t_switch=42.0)
    result = execute(
        RunSpec(
            protocols=("Lying",),
            workload=cfg(),
            factories={"Lying": LyingBCS},
            observers=(audit,),
        )
    )
    assert audit.violations
    assert result.violations == audit.violations
    assert all(v.t_switch == 42.0 for v in audit.violations)


def test_audit_before_telemetry_counts_violations():
    """The sweep convention: AuditObserver first, so the telemetry
    record sees the final violation tally."""
    from repro.protocols import BCSProtocol

    class LyingBCS(BCSProtocol):
        name = "LyingBCS"

        def take(self, host, index, reason, now):
            super().take(host, index, reason, now)
            self.n_forced += 1

    telemetry = TelemetryObserver()
    execute(
        RunSpec(
            protocols=("Lying",),
            workload=cfg(),
            factories={"Lying": LyingBCS},
            observers=(AuditObserver(), telemetry),
        )
    )
    assert telemetry.record.n_violations > 0
