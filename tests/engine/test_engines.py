"""Engine execution tests: the three engines behind one interface."""

import pytest

from repro.engine import (
    FusedReplayEngine,
    ReferenceReplayEngine,
    RunSpec,
    engine_for,
    execute,
    plan,
)
from repro.engine.errors import PlanError
from repro.workload import WorkloadConfig, generate_trace


def cfg(**kw):
    defaults = dict(sim_time=500.0, p_switch=0.8, seed=0)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_execute_returns_uniform_result_shape():
    result = execute(RunSpec(protocols=("TP", "BCS"), workload=cfg()))
    assert result.engine_kind == "vectorized"
    assert [o.name for o in result.outcomes] == ["TP", "BCS"]
    assert result.trace is not None
    assert result.trace_source == "uncached"
    assert result.seed == 0
    assert result.wall_time_s > 0.0
    assert result.outcome("BCS").n_total > 0
    with pytest.raises(KeyError):
        result.outcome("QBC")
    assert set(result.metrics) == {"TP", "BCS"}


def test_prebuilt_trace_is_reported_as_provided():
    trace = generate_trace(cfg())
    result = execute(RunSpec(protocols=("BCS",), trace=trace))
    assert result.trace is trace
    assert result.trace_source == "provided"
    assert result.seed == trace.meta.get("seed")


def test_spec_seed_overrides_workload_seed():
    result = execute(RunSpec(protocols=("BCS",), workload=cfg(seed=3), seed=9))
    assert result.seed == 9


def test_cache_tiers_are_detected(tmp_path):
    from pathlib import Path

    from repro.workload import cache as cache_mod

    spec = RunSpec(
        protocols=("BCS",),
        workload=cfg(),
        use_cache=True,
        cache_dir=str(tmp_path),
    )
    resolved = str(Path(str(tmp_path)).resolve())
    try:
        assert execute(spec).trace_source == "generated"
        assert execute(spec).trace_source == "memory"
        # Drop the in-memory instance: a fresh cache over the same disk
        # tier must serve the trace from disk.
        cache_mod._shared.pop(resolved, None)
        assert execute(spec).trace_source == "disk"
    finally:
        cache_mod._shared.pop(resolved, None)


def test_engine_kind_mismatch_is_a_plan_error():
    p = plan(RunSpec(protocols=("BCS",), workload=cfg(), engine="fused"))
    with pytest.raises(PlanError, match="'reference' engine"):
        ReferenceReplayEngine().run(p)


def test_engine_accepts_spec_directly():
    result = FusedReplayEngine().run(
        RunSpec(protocols=("BCS",), workload=cfg(), engine="fused")
    )
    assert result.engine_kind == "fused"


def test_engine_for_unknown_kind():
    with pytest.raises(PlanError, match="no engine of kind"):
        engine_for("warp")


def test_counters_only_skips_checkpoint_logs():
    full = execute(RunSpec(protocols=("BCS",), workload=cfg()))
    lean = execute(
        RunSpec(protocols=("BCS",), workload=cfg(), counters_only=True)
    )
    # only the constructor-time "initial" records remain: everything
    # taken during the run went counter-only
    full_log = full.outcome("BCS").protocol.checkpoints
    lean_log = lean.outcome("BCS").protocol.checkpoints
    assert any(ck.reason != "initial" for ck in full_log)
    assert all(ck.reason == "initial" for ck in lean_log)
    assert lean.outcome("BCS").n_total == full.outcome("BCS").n_total


def test_online_engine_drives_cic_and_coordinated_together():
    result = execute(
        RunSpec(
            protocols=("BCS", "CL"),
            workload=cfg(),
            engine="online",
            snapshot_interval=100.0,
        )
    )
    assert result.engine_kind == "online"
    assert result.trace_source == "online"
    bcs = result.outcome("BCS")
    assert bcs.online is not None
    assert bcs.metrics is not None
    assert bcs.n_total > 0
    cl = result.outcome("CL")
    assert cl.coordinated is not None
    assert cl.protocol is None and cl.metrics is None
    assert cl.n_total > 0
    # the emitted trace comes from the first online (non-coordinated) run
    assert result.trace is bcs.online.trace


def test_online_engine_propagates_driver_knobs():
    # invalid knobs surface the driver's own validation errors
    with pytest.raises(ValueError, match="ckpt_latency"):
        execute(
            RunSpec(
                protocols=("BCS",),
                workload=cfg(),
                engine="online",
                ckpt_latency=-1.0,
            )
        )
    with pytest.raises(ValueError, match="gc_interval"):
        execute(
            RunSpec(
                protocols=("BCS",),
                workload=cfg(),
                engine="online",
                gc_interval=-5.0,
            )
        )


def test_auto_execution_matches_pinned_engines():
    """execute() on auto must give the same counts as the pinned kinds."""
    trace = generate_trace(cfg())
    auto = execute(RunSpec(protocols=("TP", "QBC"), trace=trace))
    ref = execute(
        RunSpec(protocols=("TP", "QBC"), trace=trace, engine="reference")
    )
    assert auto.engine_kind == "vectorized"
    assert ref.engine_kind == "reference"
    for name in ("TP", "QBC"):
        assert auto.outcome(name).n_total == ref.outcome(name).n_total
