"""Planning tests: RunSpec -> ExecutionPlan validation and engine choice."""

import pytest

from repro.engine import RunSpec, plan
from repro.engine.errors import CapabilityError, PlanError
from repro.engine.observers import AuditObserver, RunObserver
from repro.protocols import BCSProtocol
from repro.workload import WorkloadConfig, generate_trace


def cfg(**kw):
    defaults = dict(sim_time=500.0, p_switch=0.8, seed=0)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


# -- engine selection ------------------------------------------------------


def test_auto_prefers_vectorized_when_all_have_kernels():
    p = plan(RunSpec(protocols=("TP", "BCS", "QBC"), workload=cfg()))
    assert p.engine_kind == "vectorized"
    assert p.protocol_names == ("TP", "BCS", "QBC")


def test_auto_falls_back_to_fused_without_kernels():
    # BQF is fusable but ships no vectorized kernels, so its presence
    # drops the whole set to the fused engine.
    p = plan(RunSpec(protocols=("TP", "BCS", "BQF"), workload=cfg()))
    assert p.engine_kind == "fused"


def test_auto_routes_coordinated_to_online():
    p = plan(RunSpec(protocols=("BCS", "CL"), workload=cfg()))
    assert p.engine_kind == "online"


def test_auto_falls_back_to_reference_for_non_fusable():
    class NotFusable(BCSProtocol):
        fusable = False

    p = plan(
        RunSpec(
            protocols=("BCS", "NF"),
            workload=cfg(),
            factories={"NF": NotFusable},
        )
    )
    assert p.engine_kind == "reference"


def test_auto_with_trace_never_selects_online():
    trace = generate_trace(cfg())
    with pytest.raises(CapabilityError) as exc:
        plan(RunSpec(protocols=("CL",), trace=trace))
    assert exc.value.capability == "replayable"


def test_default_protocols_depend_on_engine():
    fused = plan(RunSpec(workload=cfg(), engine="fused"))
    assert "CL" not in fused.protocol_names
    auto = plan(RunSpec(workload=cfg()))
    assert "CL" not in auto.protocol_names
    online = plan(RunSpec(workload=cfg(), engine="online"))
    assert {"CL", "KT", "PS"} <= set(online.protocol_names)


# -- spec validation -------------------------------------------------------


def test_unknown_engine_kind_rejected_at_spec_time():
    with pytest.raises(PlanError, match="unknown engine"):
        RunSpec(protocols=("BCS",), workload=cfg(), engine="warp")


def test_exactly_one_schedule_source():
    with pytest.raises(PlanError, match="workload or a pre-built trace"):
        plan(RunSpec(protocols=("BCS",)))
    with pytest.raises(PlanError, match="pick one"):
        plan(
            RunSpec(
                protocols=("BCS",), workload=cfg(), trace=generate_trace(cfg())
            )
        )


def test_online_engine_rejects_prebuilt_trace():
    with pytest.raises(PlanError, match="emits its own trace"):
        plan(
            RunSpec(
                protocols=("BCS",), trace=generate_trace(cfg()), engine="online"
            )
        )


def test_online_engine_rejects_counters_only():
    with pytest.raises(CapabilityError, match="counters_only"):
        plan(
            RunSpec(
                protocols=("BCS",),
                workload=cfg(),
                engine="online",
                counters_only=True,
            )
        )


def test_online_engine_rejects_audit_flag():
    with pytest.raises(PlanError, match="AuditObserver"):
        plan(
            RunSpec(
                protocols=("BCS",), workload=cfg(), engine="online", audit=True
            )
        )


def test_counters_only_rejected_at_plan_time_without_support():
    class NeedsLog(BCSProtocol):
        supports_counters_only = False

    with pytest.raises(CapabilityError) as exc:
        plan(
            RunSpec(
                protocols=("NL",),
                workload=cfg(),
                counters_only=True,
                factories={"NL": NeedsLog},
            )
        )
    assert exc.value.capability == "counters_only"
    assert exc.value.protocol == "NL"


def test_empty_resolution_is_a_plan_error():
    with pytest.raises(PlanError, match="zero protocols"):
        plan(RunSpec(protocols=(), workload=cfg()))


# -- observers -------------------------------------------------------------


def test_audit_flag_attaches_audit_observer_once():
    p = plan(RunSpec(protocols=("BCS",), workload=cfg(), audit=True))
    audits = [o for o in p.observers if isinstance(o, AuditObserver)]
    assert len(audits) == 1

    mine = AuditObserver(t_switch=123.0)
    p = plan(
        RunSpec(
            protocols=("BCS",), workload=cfg(), audit=True, observers=(mine,)
        )
    )
    audits = [o for o in p.observers if isinstance(o, AuditObserver)]
    assert audits == [mine]  # the explicit one is kept, none added


def test_observer_order_preserved():
    a, b = RunObserver(), RunObserver()
    p = plan(RunSpec(protocols=("BCS",), workload=cfg(), observers=(a, b)))
    assert p.observers == (a, b)


# -- wire serialization (sharded dispatch) ---------------------------------


def test_spec_wire_roundtrip():
    from repro.engine import SPEC_WIRE_VERSION

    spec = RunSpec(
        protocols=("TP", "BCS"),
        workload=cfg(),
        engine="fused",
        counters_only=True,
        audit=True,
        seed=7,
        use_cache=True,
        cache_dir="/tmp/cache",
        ckpt_latency=1.5,
        gc_interval=200.0,
        snapshot_interval=100.0,
    )
    wire = spec.to_wire()
    assert wire["version"] == SPEC_WIRE_VERSION
    back = RunSpec.from_wire(wire)
    assert back.protocols == spec.protocols
    assert back.workload == spec.workload
    assert back.engine == spec.engine
    assert back.counters_only == spec.counters_only
    assert back.audit == spec.audit
    assert back.seed == spec.seed
    assert back.use_cache == spec.use_cache
    assert back.cache_dir == spec.cache_dir
    assert back.ckpt_latency == spec.ckpt_latency
    assert back.gc_interval == spec.gc_interval
    assert back.snapshot_interval == spec.snapshot_interval
    # The wire form is plain JSON-able data (no pickled objects).
    import json

    json.dumps(wire)


def test_spec_wire_rejects_process_local_state():
    trace = generate_trace(cfg())
    with pytest.raises(PlanError, match="pre-built trace"):
        RunSpec(protocols=("TP",), trace=trace).to_wire()
    with pytest.raises(PlanError, match="observers"):
        RunSpec(
            protocols=("TP",), workload=cfg(), observers=(RunObserver(),)
        ).to_wire()
    with pytest.raises(PlanError, match="factory"):
        RunSpec(
            protocols=("TP",),
            workload=cfg(),
            factories={"TP": lambda h, m: BCSProtocol(h, m)},
        ).to_wire()


def test_spec_wire_rejects_version_skew():
    wire = RunSpec(protocols=("TP",), workload=cfg()).to_wire()
    wire["version"] = 999
    with pytest.raises(PlanError, match="wire version 999"):
        RunSpec.from_wire(wire)


def test_spec_wire_rejects_malformed_workload():
    wire = RunSpec(protocols=("TP",), workload=cfg()).to_wire()
    wire["workload"]["no_such_field"] = 1
    with pytest.raises(PlanError, match="malformed workload"):
        RunSpec.from_wire(wire)
