"""Satellite: capability violations raise the SAME typed error everywhere.

The engine layer, the CLI and the sweep config all resolve protocol
names through :func:`repro.engine.resolve_protocols`, so a coordinated
baseline requested from a replay path must produce one
:class:`~repro.engine.errors.CapabilityError` with one message -- not
three divergent strings.
"""

import pytest

from repro.cli import main
from repro.engine import RunSpec, plan, resolve_protocols
from repro.engine.errors import (
    CapabilityError,
    EngineError,
    UnknownProtocolError,
)
from repro.experiments.config import SweepConfig
from repro.workload import WorkloadConfig


def _capability_message(name: str) -> str:
    with pytest.raises(CapabilityError) as exc:
        resolve_protocols([name], require="replayable")
    return str(exc.value)


def test_engine_layer_and_plan_agree_on_coordinated_error():
    registry_msg = _capability_message("CL")
    with pytest.raises(CapabilityError) as exc:
        plan(
            RunSpec(
                protocols=("CL",),
                workload=WorkloadConfig(sim_time=200.0),
                engine="reference",
            )
        )
    # same error type, same protocol/capability; the plan variant only
    # appends the engine name
    assert exc.value.protocol == "CL"
    assert exc.value.capability == "replayable"
    assert registry_msg.split(":")[-1] in str(exc.value)


def test_cli_emits_the_registry_error_text(capsys):
    registry_msg = _capability_message("CL")
    rc = main(["compare", "--sim-time", "200", "--protocols", "CL"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "does not support 'replayable'" in err
    assert "online engine" in err  # the actionable detail survives
    assert registry_msg.split(": ", 1)[1] in err


def test_sweep_config_emits_the_registry_error_text():
    cfg = SweepConfig(protocols=("BCS", "KT"))
    with pytest.raises(CapabilityError) as exc:
        cfg.validate()
    assert exc.value.protocol == "KT"
    assert "does not support 'replayable'" in str(exc.value)


def test_unknown_name_is_one_error_text_everywhere(capsys):
    with pytest.raises(UnknownProtocolError) as engine_exc:
        resolve_protocols(["NOPE"])
    engine_msg = str(engine_exc.value)

    rc = main(["compare", "--sim-time", "200", "--protocols", "NOPE"])
    assert rc == 2
    assert engine_msg in capsys.readouterr().err

    with pytest.raises(UnknownProtocolError) as cfg_exc:
        SweepConfig(protocols=("NOPE",)).validate()
    assert str(cfg_exc.value) == engine_msg


def test_all_engine_errors_are_value_errors():
    # pre-engine callers caught ValueError; the typed hierarchy must
    # keep that contract
    assert issubclass(EngineError, ValueError)
    with pytest.raises(ValueError):
        resolve_protocols(["NOPE"])
    with pytest.raises(ValueError):
        SweepConfig(protocols=("CL",)).validate()


def test_sweep_config_accepts_the_fusable_set():
    cfg = SweepConfig(protocols=("TP", "BCS", "QBC"))
    assert cfg.validate() is cfg
