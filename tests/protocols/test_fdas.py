"""Scripted-scenario tests for FDAS (fixed-dependency-after-send)."""

import pytest

from repro.protocols import BCSProtocol, FDASProtocol


def test_initial_state():
    p = FDASProtocol(3)
    assert p.lc == [0, 0, 0]
    assert p.sent_since_ckpt == [False, False, False]
    assert p.piggyback_ints == 1
    assert all(c.reason == "initial" for c in p.checkpoints)


def test_receive_only_interval_absorbs_clock_without_checkpoint():
    """The FDAS relaxation: no send since the last checkpoint means a
    higher piggybacked clock is adopted silently."""
    p = FDASProtocol(2)
    p.lc[0] = 3
    pg = p.on_send(0, 1, now=1.0)
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.lc[1] == 3
    assert p.n_forced == 0  # where BCS would have forced


def test_higher_clock_after_send_forces_checkpoint():
    p = FDASProtocol(2)
    p.lc[0] = 3
    pg = p.on_send(0, 1, now=1.0)
    p.on_send(1, 0, now=1.5)  # host 1's interval now has a fixed dependency
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.lc[1] == 3
    assert p.n_forced == 1
    forced = p.checkpoints[-1]
    assert forced.host == 1 and forced.index == 3 and forced.reason == "forced"
    # the forced checkpoint opens a fresh (not-yet-sent) interval
    assert p.sent_since_ckpt[1] is False


def test_checkpoint_resets_the_send_flag():
    p = FDASProtocol(2)
    p.on_send(0, 1, now=1.0)
    assert p.sent_since_ckpt[0] is True
    p.on_cell_switch(0, now=2.0, new_cell=1)
    assert p.sent_since_ckpt[0] is False
    assert p.lc[0] == 1 and p.n_basic == 1


def test_equal_or_lower_clock_never_checkpoints():
    p = FDASProtocol(2)
    p.on_send(1, 0, now=0.5)
    p.on_receive(1, 0, src=0, now=1.0)  # equal
    p.lc[1] = 5
    p.on_receive(1, 2, src=0, now=2.0)  # lower
    assert p.n_forced == 0 and p.lc[1] == 5


def test_forced_count_never_exceeds_bcs_on_shared_workloads():
    """FDAS only ever *skips* checkpoints BCS would take; on a shared
    schedule its forced count is bounded by BCS's."""
    from repro.engine import RunSpec, execute
    from repro.workload import WorkloadConfig

    for seed in (1, 7, 42):
        cfg = WorkloadConfig(
            n_hosts=8, n_mss=3, sim_time=2000.0, seed=seed
        ).validate()
        result = execute(RunSpec(protocols=("BCS", "FDAS"), workload=cfg))
        forced = {
            o.name: o.protocol.counter_signature()["n_forced"]
            for o in result.outcomes
        }
        assert forced["FDAS"] <= forced["BCS"], seed


def test_no_recovery_line_is_promised():
    """FDAS is RDT-only: adopting a clock without checkpointing breaks
    the equal-index line rule, so no on-the-fly line is exposed."""
    p = FDASProtocol(2)
    with pytest.raises(NotImplementedError):
        p.recovery_line_indices()


def test_clock_invariant_flags_regression():
    p = FDASProtocol(2)
    p.on_cell_switch(0, now=1.0, new_cell=1)
    assert p.invariant_violations() == []
    p.lc[0] = 0  # behind the latest checkpoint index: a protocol bug
    assert any("lc 0 <" in v for v in p.invariant_violations())


def test_rollback_restores_clock_and_send_flag():
    p = FDASProtocol(2)
    p.on_send(0, 1, now=1.0)
    p.on_cell_switch(0, now=2.0, new_cell=1)
    p.on_send(0, 1, now=3.0)
    p.lc[0] = 4
    p.rollback_to({0: 1}, now=5.0)
    assert p.lc[0] == 1
    assert p.sent_since_ckpt[0] is False


def test_registered_and_fusable_but_not_vectorizable():
    from repro.engine import resolve_protocols

    (entry,) = resolve_protocols(["FDAS"], require="fusable")
    assert entry.capabilities.replayable
    assert not entry.capabilities.vectorizable
