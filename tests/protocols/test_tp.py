"""Scripted-scenario tests transcribing the TP pseudocode (paper 4.1)."""

import pytest

from repro.protocols import TwoPhaseProtocol
from repro.protocols.tp import _RECV, _SEND


def test_initial_state_phase_recv():
    p = TwoPhaseProtocol(3, n_mss=2)
    assert p.phase == [_RECV] * 3
    assert p.count == [1, 1, 1]  # initial checkpoint consumed index 0
    assert p.n_total == 0


def test_piggyback_two_vectors_of_n_ints():
    p = TwoPhaseProtocol(10)
    assert p.piggyback_ints == 20
    ckpt, loc = p.on_send(0, 1, 1.0)
    assert len(ckpt) == 10 and len(loc) == 10


def test_send_sets_phase_send():
    p = TwoPhaseProtocol(2)
    p.on_send(0, 1, 1.0)
    assert p.phase[0] == _SEND


def test_receive_in_recv_phase_no_checkpoint():
    p = TwoPhaseProtocol(2)
    pg = p.on_send(0, 1, 1.0)
    p.on_receive(1, pg, src=0, now=2.0)  # h1 never sent: phase RECV
    assert p.n_forced == 0
    assert p.phase[1] == _RECV


def test_receive_in_send_phase_forces_checkpoint():
    p = TwoPhaseProtocol(2)
    pg0 = p.on_send(0, 1, 1.0)
    p.on_send(1, 0, 1.5)  # h1 now in SEND phase
    p.on_receive(1, pg0, src=0, now=2.0)
    assert p.n_forced == 1
    assert p.phase[1] == _RECV  # reset after the forced checkpoint
    assert p.checkpoints[-1].host == 1


def test_alternating_send_receive_forces_every_time():
    p = TwoPhaseProtocol(2)
    t = 0.0
    for _ in range(5):
        t += 1.0
        pg = p.on_send(0, 1, t)
        p.on_send(1, 0, t + 0.1)
        p.on_receive(1, pg, src=0, now=t + 0.2)
    assert p.n_forced == 5


def test_basic_checkpoint_resets_phase():
    """Model decision documented in the module: a basic checkpoint sits
    between the send and the next receive, so no force is needed."""
    p = TwoPhaseProtocol(2)
    pg = p.on_send(0, 1, 1.0)
    p.on_send(1, 0, 1.5)
    p.on_cell_switch(1, 1.8, new_cell=0)  # basic checkpoint
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.n_basic == 1
    assert p.n_forced == 0


def test_dependency_vectors_merge_on_receive():
    p = TwoPhaseProtocol(3, n_mss=3)
    # host 0 checkpoints twice -> its own entry reaches 2
    p.on_cell_switch(0, 1.0, 2)
    p.on_cell_switch(0, 2.0, 1)
    pg = p.on_send(0, 1, 3.0)
    p.on_receive(1, pg, src=0, now=4.0)
    assert p.ckpt_vec[1][0] == 2  # learned host 0's latest checkpoint
    assert p.loc_vec[1][0] == 1  # ... and where it is stored (cell 1)
    # own entry untouched by merges
    assert p.ckpt_vec[1][1] == 0


def test_dependency_vectors_transitive():
    p = TwoPhaseProtocol(3, n_mss=2)
    p.on_cell_switch(0, 1.0, 1)
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    p.on_receive(2, p.on_send(1, 2, 4.0), src=1, now=5.0)
    # host 2 learned about host 0 through host 1
    assert p.ckpt_vec[2][0] == 1


def test_merge_keeps_maximum():
    p = TwoPhaseProtocol(2)
    pg_old = p.on_send(0, 1, 1.0)  # carries ckpt_vec[0][0] = 0
    p.on_cell_switch(0, 2.0, 1)
    pg_new = p.on_send(0, 1, 3.0)  # carries ckpt_vec[0][0] = 1
    p.on_receive(1, pg_new, src=0, now=4.0)
    p.on_receive(1, pg_old, src=0, now=5.0)  # stale info must not regress
    assert p.ckpt_vec[1][0] == 1


def test_locate_pairs_index_and_mss():
    p = TwoPhaseProtocol(2, n_mss=3, initial_cells=[2, 0])
    pg = p.on_send(0, 1, 1.0)
    p.on_receive(1, pg, src=0, now=2.0)
    index, mss = p.locate(observer=1, target=0)
    assert index == 0 and mss == 2


def test_checkpoint_metadata_records_vectors():
    p = TwoPhaseProtocol(2)
    p.on_cell_switch(0, 1.0, 0)
    # metadata flows through the storage hook
    seen = {}
    p.storage_hook = lambda host, index, reason, md: seen.update(md)
    p.on_cell_switch(0, 2.0, 1)
    assert "ckpt_vec" in seen and "loc_vec" in seen
    assert seen["ckpt_vec"][0] == 2


def test_no_global_index_rule():
    p = TwoPhaseProtocol(2)
    with pytest.raises(NotImplementedError):
        p.recovery_line_indices()


def test_required_indices_from_anchor_vectors():
    p = TwoPhaseProtocol(3, n_mss=2)
    p.on_cell_switch(0, 1.0, 1)  # h0 now at checkpoint index 1
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    p.on_cell_switch(1, 4.0, 0)  # h1 checkpoints, recording CKPT_1[0]=1
    # anchor h1's latest checkpoint depends on h0's interval 1: h0 must
    # contribute checkpoint index 2; h2 (no dependency, vec -1) index 0.
    assert p.required_indices(1) == {0: 2, 2: 0}


def test_required_indices_uses_checkpoint_time_vectors():
    """Receives AFTER the anchor's last checkpoint are not covered by it
    and must not raise the requirements."""
    p = TwoPhaseProtocol(2)
    p.on_cell_switch(1, 1.0, 1)  # h1's last checkpoint (index 1)
    p.on_cell_switch(0, 2.0, 1)
    p.on_receive(1, p.on_send(0, 1, 3.0), src=0, now=4.0)  # after C_{1,1}
    assert p.required_indices(1) == {0: 0}  # not 2: the receive is uncovered


def test_initial_cells_validation():
    with pytest.raises(ValueError):
        TwoPhaseProtocol(3, n_mss=2, initial_cells=[0, 1])


def test_reconnect_updates_cell_tracking():
    p = TwoPhaseProtocol(2, n_mss=3)
    p.on_reconnect(0, 1.0, cell=2)
    p.on_disconnect(0, 2.0)
    assert p.loc_vec[0][0] == 2
