"""Tests for the protocol base machinery (repro.protocols.base)."""

import pytest

from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol, registry
from repro.protocols.base import CheckpointingProtocol


def test_registry_contains_replayable_protocols():
    assert {"TP", "BCS", "QBC", "BQF", "UNC"} <= set(registry)
    assert registry["BCS"] is BCSProtocol
    assert registry["QBC"] is QBCProtocol


def test_registry_names_match_classes():
    for name, cls in registry.items():
        assert cls.name == name


def test_take_updates_counters_and_log():
    p = CheckpointingProtocol(2)
    p.take(0, 1, "basic", 5.0)
    p.take(1, 1, "forced", 6.0)
    p.take(0, 1, "basic", 7.0, replaced=True)
    assert p.n_basic == 2
    assert p.n_forced == 1
    assert p.n_replaced == 1
    assert p.n_total == 3
    assert len(p.checkpoints_of(0)) == 2


def test_storage_hook_receives_every_checkpoint():
    p = CheckpointingProtocol(2)
    calls = []
    p.storage_hook = lambda host, index, reason, md: calls.append(
        (host, index, reason)
    )
    p.take(0, 3, "forced", 1.0)
    assert calls == [(0, 3, "forced")]


def test_base_hooks_are_noops():
    p = CheckpointingProtocol(2)
    assert p.on_send(0, 1, 1.0) is None
    p.on_receive(0, None, 1, 1.0)
    p.on_cell_switch(0, 1.0, 1)
    p.on_disconnect(0, 1.0)
    p.on_reconnect(0, 1.0, 0)
    assert p.n_total == 0
    assert p.piggyback_ints == 0


def test_base_recovery_line_not_implemented():
    with pytest.raises(NotImplementedError):
        CheckpointingProtocol(2).recovery_line_indices()


def test_n_hosts_validation():
    with pytest.raises(ValueError):
        CheckpointingProtocol(0)


def test_checkpoint_metadata_stored_on_record():
    p = TwoPhaseProtocol(2)
    p.on_cell_switch(0, 1.0, 1)
    last = p.checkpoints[-1]
    assert last.metadata is not None
    assert last.metadata["ckpt_vec"][0] == last.index


def test_initial_checkpoints_not_in_n_total():
    for cls in (BCSProtocol, QBCProtocol, TwoPhaseProtocol):
        p = cls(4)
        assert len(p.checkpoints) == 4
        assert p.n_total == 0
