"""Direct unit tests for live protocol rollback (rollback_to)."""

import pytest

from repro.protocols import (
    BCSProtocol,
    NoSendQBCProtocol,
    QBCProtocol,
    TwoPhaseProtocol,
    UncoordinatedProtocol,
)


def test_bcs_rollback_restores_sn():
    p = BCSProtocol(2)
    p.on_cell_switch(0, 1.0, 1)
    p.on_cell_switch(0, 2.0, 0)
    p.on_receive(1, p.on_send(0, 1, 3.0), src=0, now=4.0)
    assert p.sn == [2, 2]
    p.rollback_to({0: 1, 1: 0}, now=5.0)
    assert p.sn == [1, 0]
    # the checkpoint log is history: it stays
    assert p.n_basic == 2 and p.n_forced == 1


def test_qbc_rollback_restores_rn_from_metadata():
    p = QBCProtocol(2)
    p.on_receive(0, 0, src=1, now=1.0)  # rn0 = 0
    p.on_cell_switch(0, 2.0, 1)  # rn == sn -> sn0 = 1
    p.on_receive(1, p.on_send(0, 1, 3.0), src=0, now=4.0)  # h1 forced at 1
    p.rollback_to({0: 1, 1: 1}, now=5.0)
    assert p.sn == [1, 1]
    # h0's index-1 checkpoint recorded rn=0; h1's forced one rn=1
    assert p.rn == [0, 1]
    assert all(r <= s for r, s in zip(p.rn, p.sn))


def test_qbc_rollback_to_initial():
    p = QBCProtocol(2)
    p.on_receive(0, 0, src=1, now=1.0)
    p.on_cell_switch(0, 2.0, 1)
    p.rollback_to({0: 0, 1: 0}, now=3.0)
    assert p.sn == [0, 0]
    assert p.rn == [-1, -1]


def test_tp_rollback_restores_vectors_and_phase():
    p = TwoPhaseProtocol(2, n_mss=2)
    p.on_cell_switch(0, 1.0, 1)  # C_{0,1}
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    p.on_cell_switch(1, 4.0, 0)  # C_{1,1} with CKPT_1[0] = 1
    p.on_send(0, 1, 5.0)  # phase[0] = SEND
    p.rollback_to({0: 1, 1: 1}, now=6.0)
    from repro.protocols.tp import _RECV

    assert p.phase == [_RECV, _RECV]
    assert p.count == [2, 2]  # next checkpoint reuses index 2... onward
    assert p.ckpt_vec[1][0] == 1  # restored from C_{1,1} metadata
    assert p.ckpt_vec[0][1] == -1  # C_{0,1} knew nothing of h1


def test_tp_rollback_missing_checkpoint_raises():
    p = TwoPhaseProtocol(2)
    with pytest.raises(ValueError, match="no checkpoint"):
        p.rollback_to({0: 7, 1: 0}, now=1.0)


def test_nosend_rollback_clears_sent_flag():
    p = NoSendQBCProtocol(2)
    p.on_send(0, 1, 1.0)
    assert p.sent_since_ckpt[0]
    p.rollback_to({0: 0, 1: 0}, now=2.0)
    assert not p.sent_since_ckpt[0]
    assert p.sn == [0, 0]
    assert all(r <= s for r, s in zip(p.rn, p.sn))


def test_nosend_rollback_to_renamed_checkpoint():
    p = NoSendQBCProtocol(2)
    p.sn[1] = 5
    p.on_receive(0, p.on_send(1, 0, 1.0), src=1, now=2.0)  # rename to 5
    assert p.n_renamed == 1
    p.rollback_to({0: 5, 1: 5}, now=3.0)
    assert p.sn[0] == 5
    assert p.rn[0] <= 5


def test_base_rollback_not_implemented():
    with pytest.raises(NotImplementedError):
        UncoordinatedProtocol(2).rollback_to({0: 0, 1: 0}, now=1.0)
