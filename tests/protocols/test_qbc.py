"""Scripted-scenario tests transcribing the QBC pseudocode (paper 4.2)."""

from repro.protocols import BCSProtocol, QBCProtocol


def test_initial_state():
    p = QBCProtocol(3)
    assert p.sn == [0, 0, 0]
    assert p.rn == [-1, -1, -1]
    assert p.n_total == 0


def test_piggyback_same_size_as_bcs():
    """The optimisation adds no control information (paper Section 6)."""
    assert QBCProtocol(10).piggyback_ints == BCSProtocol(10).piggyback_ints


def test_receive_updates_rn():
    p = QBCProtocol(2)
    p.on_receive(1, 0, src=0, now=1.0)
    assert p.rn[1] == 0
    assert p.sn[1] == 0
    assert p.n_forced == 0  # equal sn: no forced checkpoint


def test_receive_higher_sn_forces_and_syncs_rn():
    p = QBCProtocol(2)
    p.sn[0] = 2
    pg = p.on_send(0, 1, 1.0)
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.rn[1] == 2 and p.sn[1] == 2
    assert p.n_forced == 1


def test_basic_checkpoint_replaces_when_rn_below_sn():
    """The heart of QBC: a basic checkpoint with rn < sn keeps its index
    and replaces its predecessor in the recovery line."""
    p = QBCProtocol(2)
    p.on_cell_switch(0, 1.0, 1)  # rn=-1 < sn=0 -> replaced at index 0
    assert p.sn[0] == 0
    assert p.n_basic == 1
    assert p.checkpoints[-1].replaced
    assert p.checkpoints[-1].index == 0
    # again: still replaced, index still 0
    p.on_cell_switch(0, 2.0, 0)
    assert p.sn[0] == 0
    assert p.checkpoints[-1].replaced


def test_basic_checkpoint_increments_when_rn_equals_sn():
    p = QBCProtocol(2)
    p.on_receive(0, 0, src=1, now=1.0)  # rn -> 0 == sn
    p.on_cell_switch(0, 2.0, 1)
    assert p.sn[0] == 1
    assert not p.checkpoints[-1].replaced


def test_disconnect_uses_same_rule():
    p = QBCProtocol(2)
    p.on_disconnect(0, 1.0)
    assert p.sn[0] == 0 and p.checkpoints[-1].replaced
    p.on_receive(0, 0, src=1, now=2.0)
    p.on_disconnect(0, 3.0)
    assert p.sn[0] == 1 and not p.checkpoints[-1].replaced


def test_rn_never_exceeds_sn():
    p = QBCProtocol(3)
    p.sn[0] = 4
    p.on_receive(1, p.on_send(0, 1, 1.0), src=0, now=2.0)
    assert p.rn[1] == 4 and p.sn[1] == 4
    for host in range(3):
        assert p.rn[host] <= p.sn[host]


def test_sequence_numbers_grow_slower_than_bcs():
    """On the same scripted schedule QBC's sn stays <= BCS's sn."""
    script = [
        ("switch", 0),
        ("switch", 0),
        ("msg", 0, 1),
        ("switch", 1),
        ("switch", 0),
        ("msg", 1, 0),
        ("switch", 1),
        ("switch", 1),
    ]
    bcs, qbc = BCSProtocol(2), QBCProtocol(2)
    t = 0.0
    for proto in (bcs, qbc):
        t = 0.0
        for step in script:
            t += 1.0
            if step[0] == "switch":
                proto.on_cell_switch(step[1], t, 1)
            else:
                _, src, dst = step
                proto.on_receive(dst, proto.on_send(src, dst, t), src=src, now=t)
    assert all(q <= b for q, b in zip(qbc.sn, bcs.sn))
    assert qbc.n_forced <= bcs.n_forced
    assert qbc.n_basic == bcs.n_basic  # basics are mandated, identical


def test_forced_count_strictly_less_in_divergence_scenario():
    """One fast host switching repeatedly without receiving: BCS drags
    everyone upward, QBC does not (the paper's heterogeneity argument)."""
    bcs, qbc = BCSProtocol(2), QBCProtocol(2)
    for proto in (bcs, qbc):
        t = 0.0
        for _ in range(10):  # host 0 is fast: 10 switches
            t += 1.0
            proto.on_cell_switch(0, t, 1)
        # now host 0 sends to host 1
        proto.on_receive(1, proto.on_send(0, 1, t + 1), src=0, now=t + 2)
    assert bcs.n_forced == 1 and bcs.sn[1] == 10
    assert qbc.n_forced == 0 and qbc.sn[1] == 0  # host 0 never advanced


def test_recovery_line_replaced_checkpoint_stands_in():
    p = QBCProtocol(2)
    p.on_cell_switch(0, 1.0, 1)  # replaced checkpoint at index 0
    line = p.recovery_line_indices()
    assert line == {0: 0, 1: 0}
