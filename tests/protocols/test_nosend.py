"""Tests for the no-send skip-rule protocols (repro.protocols.nosend)."""

import pytest

from repro.core.replay import replay
from repro.protocols import (
    BCSProtocol,
    NoSendBCSProtocol,
    NoSendQBCProtocol,
    QBCProtocol,
)
from repro.workload import WorkloadConfig, generate_trace


def test_receive_without_prior_send_renames_instead_of_forcing():
    p = NoSendBCSProtocol(2)
    p.sn[0] = 3
    pg = p.on_send(0, 1, 1.0)
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.sn[1] == 3
    assert p.n_forced == 0
    assert p.n_renamed == 1
    # the initial checkpoint now carries index 3
    assert p.checkpoints_of(1)[-1].index == 3


def test_receive_after_send_still_forces():
    p = NoSendBCSProtocol(2)
    p.sn[0] = 3
    pg = p.on_send(0, 1, 1.0)
    p.on_send(1, 0, 1.5)  # host 1 sent: skip rule does not apply
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.n_forced == 1
    assert p.n_renamed == 0


def test_basic_checkpoint_resets_sent_flag():
    p = NoSendBCSProtocol(2)
    p.on_send(1, 0, 1.0)
    p.on_cell_switch(1, 2.0, 1)  # checkpoint; interval has no sends now
    p.sn[0] = 5
    p.on_receive(1, p.on_send(0, 1, 3.0), src=0, now=4.0)
    assert p.n_renamed == 1  # renamed, not forced


def test_multiple_renames_keep_raising_the_index():
    p = NoSendBCSProtocol(3)
    p.sn[0] = 2
    p.on_receive(2, p.on_send(0, 2, 1.0), src=0, now=2.0)
    p.sn[1] = 7
    p.on_receive(2, p.on_send(1, 2, 3.0), src=1, now=4.0)
    assert p.n_renamed == 2
    assert p.checkpoints_of(2)[-1].index == 7


def test_rename_validation():
    p = NoSendBCSProtocol(2)
    with pytest.raises(ValueError, match="increase"):
        p.rename_last(0, 0, 1.0)


def test_rename_reported_to_storage_hook():
    p = NoSendBCSProtocol(2)
    events = []
    p.storage_hook = lambda h, i, reason, md: events.append((h, i, reason))
    p.sn[0] = 4
    p.on_receive(1, p.on_send(0, 1, 1.0), src=0, now=2.0)
    assert (1, 4, "rename") in events


def test_qbc_ns_combines_both_rules():
    p = NoSendQBCProtocol(2)
    # basic with rn < sn: replacement (QBC side)
    p.on_cell_switch(0, 1.0, 1)
    assert p.checkpoints_of(0)[-1].replaced
    # receive without prior send: rename (no-send side)
    p.sn[1] = 6
    p.on_receive(0, p.on_send(1, 0, 2.0), src=1, now=3.0)
    assert p.n_renamed >= 1
    assert p.rn[0] == 6 and p.sn[0] == 6


def test_ns_variants_never_take_more_checkpoints_statistically():
    """On paper workloads the skip rule strictly reduces N_tot."""
    totals = {"BCS": 0, "BCS-NS": 0, "QBC": 0, "QBC-NS": 0}
    for seed in range(3):
        cfg = WorkloadConfig(
            t_switch=300.0, p_switch=0.9, sim_time=3000.0, seed=seed
        )
        trace = generate_trace(cfg)
        for cls in (BCSProtocol, NoSendBCSProtocol, QBCProtocol, NoSendQBCProtocol):
            totals[cls.name] += replay(
                trace, cls(cfg.n_hosts, cfg.n_mss)
            ).n_total
    assert totals["BCS-NS"] < totals["BCS"]
    assert totals["QBC-NS"] <= totals["QBC"]
    assert totals["QBC-NS"] <= totals["BCS-NS"]


def test_piggyback_still_one_integer():
    assert NoSendBCSProtocol(10).piggyback_ints == 1
    assert NoSendQBCProtocol(10).piggyback_ints == 1
