"""Tests for the uncoordinated baseline and the BQF extension."""

import pytest

from repro.protocols import BQFProtocol, QBCProtocol, UncoordinatedProtocol


# ---------------------------------------------------------------------------
# uncoordinated
# ---------------------------------------------------------------------------


def test_unc_periodic_checkpoint_at_activity():
    p = UncoordinatedProtocol(2, period=10.0)
    p.on_send(0, 1, now=5.0)
    assert p.n_total == 0  # period not elapsed
    p.on_send(0, 1, now=12.0)
    assert p.n_basic == 1  # periodic checkpoint before the send


def test_unc_receive_never_forces():
    p = UncoordinatedProtocol(2, period=1000.0)
    p.on_receive(1, None, src=0, now=1.0)
    assert p.n_forced == 0


def test_unc_mobility_checkpoints_still_mandatory():
    p = UncoordinatedProtocol(2, period=1e9)
    p.on_cell_switch(0, 1.0, 1)
    p.on_disconnect(1, 2.0)
    assert p.n_basic == 2


def test_unc_no_piggyback():
    p = UncoordinatedProtocol(2)
    assert p.piggyback_ints == 0
    assert p.on_send(0, 1, 1.0) is None


def test_unc_no_on_the_fly_recovery_line():
    with pytest.raises(NotImplementedError):
        UncoordinatedProtocol(2).recovery_line_indices()


def test_unc_period_validation():
    with pytest.raises(ValueError):
        UncoordinatedProtocol(2, period=0.0)


def test_unc_periodic_resets_timer():
    p = UncoordinatedProtocol(2, period=10.0)
    p.on_send(0, 1, now=12.0)   # ckpt, timer reset to 12
    p.on_send(0, 1, now=15.0)   # no ckpt
    p.on_send(0, 1, now=23.0)   # ckpt again
    assert p.n_basic == 2


# ---------------------------------------------------------------------------
# BQF
# ---------------------------------------------------------------------------


def test_bqf_with_infinite_period_equals_qbc():
    """BQF degenerates to QBC when autonomous checkpoints are disabled."""
    script = [
        ("switch", 0),
        ("msg", 0, 1),
        ("switch", 1),
        ("msg", 1, 0),
        ("disc", 0),
        ("msg", 1, 0),
    ]
    bqf, qbc = BQFProtocol(2), QBCProtocol(2)
    for proto in (bqf, qbc):
        t = 0.0
        for step in script:
            t += 1.0
            if step[0] == "switch":
                proto.on_cell_switch(step[1], t, 1)
            elif step[0] == "disc":
                proto.on_disconnect(step[1], t)
            else:
                _, src, dst = step
                proto.on_receive(dst, proto.on_send(src, dst, t), src=src, now=t)
    assert bqf.sn == qbc.sn
    assert bqf.rn == qbc.rn
    assert bqf.n_basic == qbc.n_basic
    assert bqf.n_forced == qbc.n_forced
    assert bqf.n_replaced == qbc.n_replaced


def test_bqf_autonomous_checkpoint_fires_on_period():
    p = BQFProtocol(2, period=10.0)
    p.on_send(0, 1, now=15.0)
    assert p.n_basic == 1
    # rn(-1) < sn(0): the autonomous checkpoint replaced its predecessor
    assert p.checkpoints[-1].replaced


def test_bqf_autonomous_uses_equivalence_rule():
    p = BQFProtocol(2, period=10.0)
    p.on_receive(0, 0, src=1, now=1.0)  # rn == sn == 0
    p.on_send(0, 1, now=15.0)  # autonomous ckpt must increment now
    assert p.sn[0] == 1
    assert not p.checkpoints[-1].replaced


def test_bqf_period_validation():
    with pytest.raises(ValueError):
        BQFProtocol(2, period=-1.0)


def test_bqf_recovery_line_rule():
    p = BQFProtocol(2)
    p.on_receive(0, 0, src=1, now=0.5)
    p.on_cell_switch(0, 1.0, 1)
    assert p.recovery_line_indices() == {0: 0, 1: 0}
