"""Scripted-scenario tests transcribing the BCS pseudocode (paper 4.2)."""

import pytest

from repro.protocols import BCSProtocol


def test_initial_state():
    p = BCSProtocol(3)
    assert p.sn == [0, 0, 0]
    assert len(p.checkpoints) == 3
    assert all(c.reason == "initial" and c.index == 0 for c in p.checkpoints)
    assert p.n_total == 0  # initial checkpoints are not counted


def test_piggyback_is_single_integer():
    p = BCSProtocol(10)
    assert p.piggyback_ints == 1
    assert p.on_send(0, 1, now=1.0) == 0


def test_receive_with_higher_sn_forces_checkpoint():
    p = BCSProtocol(2)
    p.sn[0] = 3  # pretend host 0 advanced
    pg = p.on_send(0, 1, now=1.0)
    assert pg == 3
    p.on_receive(1, pg, src=0, now=2.0)
    assert p.sn[1] == 3
    assert p.n_forced == 1
    forced = p.checkpoints[-1]
    assert forced.host == 1 and forced.index == 3 and forced.reason == "forced"


def test_receive_with_equal_or_lower_sn_no_checkpoint():
    p = BCSProtocol(2)
    p.on_receive(1, 0, src=0, now=1.0)  # equal
    assert p.n_forced == 0
    p.sn[1] = 5
    p.on_receive(1, 2, src=0, now=2.0)  # lower
    assert p.n_forced == 0
    assert p.sn[1] == 5


def test_cell_switch_increments_sn_and_takes_basic():
    p = BCSProtocol(2)
    p.on_cell_switch(0, now=10.0, new_cell=1)
    assert p.sn[0] == 1
    assert p.n_basic == 1
    assert p.checkpoints[-1].index == 1


def test_disconnect_increments_sn_and_takes_basic():
    p = BCSProtocol(2)
    p.on_disconnect(0, now=10.0)
    assert p.sn[0] == 1
    assert p.n_basic == 1


def test_reconnect_takes_no_checkpoint():
    p = BCSProtocol(2)
    p.on_reconnect(0, now=10.0, cell=1)
    assert p.n_total == 0


def test_forced_cascade_through_chain():
    """h0 switches (sn=1) -> h1 forced on receive -> h2 forced via h1."""
    p = BCSProtocol(3)
    p.on_cell_switch(0, 1.0, 1)
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    p.on_receive(2, p.on_send(1, 2, 4.0), src=1, now=5.0)
    assert p.sn == [1, 1, 1]
    assert p.n_forced == 2
    assert p.n_basic == 1


def test_jump_in_sequence_numbers():
    """A host can jump several indices at once on a receive."""
    p = BCSProtocol(2)
    for _ in range(4):
        p.on_cell_switch(0, 1.0, 1)
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    assert p.sn[1] == 4
    assert p.n_forced == 1  # one checkpoint despite the jump of 4


def test_recovery_line_simple():
    p = BCSProtocol(3)
    p.on_cell_switch(0, 1.0, 1)  # sn = [1, 0, 0]
    line = p.recovery_line_indices()
    assert line == {0: 0, 1: 0, 2: 0}  # min sn = 0, everyone has index 0


def test_recovery_line_after_jump_uses_first_greater():
    p = BCSProtocol(2)
    # host 0: indices 0,1,2,3,4; host 1 jumps straight to 4.
    for _ in range(4):
        p.on_cell_switch(0, 1.0, 1)
    p.on_receive(1, p.on_send(0, 1, 2.0), src=0, now=3.0)
    p.on_cell_switch(1, 4.0, 1)  # host 1 now at sn 5
    # min sn = 4 (host 0); host 1's first checkpoint >= 4 is its forced 4.
    line = p.recovery_line_indices()
    assert line == {0: 4, 1: 4}


def test_basic_counts_accumulate_per_host():
    p = BCSProtocol(2)
    p.on_cell_switch(0, 1.0, 1)
    p.on_disconnect(1, 2.0)
    p.on_cell_switch(0, 3.0, 0)
    assert p.sn == [2, 1]
    assert p.n_basic == 3
    assert len(p.checkpoints_of(0)) == 3  # initial + 2 basic


def test_invalid_n_hosts():
    with pytest.raises(ValueError):
        BCSProtocol(0)
