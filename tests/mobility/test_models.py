"""Unit tests for mobility models (repro.mobility)."""

import networkx as nx
import numpy as np
import pytest

from repro.des import RandomStreams
from repro.mobility import (
    GraphWalkCellChooser,
    MarkovCellChooser,
    MoveKind,
    PaperMobilityModel,
    UniformCellChooser,
    residence_means,
    split_fast_slow,
)
from repro.mobility.models import make_cell_chooser


# ---------------------------------------------------------------------------
# heterogeneity
# ---------------------------------------------------------------------------


def test_split_fast_slow_fractions():
    fast, slow = split_fast_slow(10, 0.3)
    assert fast == [0, 1, 2]
    assert slow == list(range(3, 10))
    fast, slow = split_fast_slow(10, 0.0)
    assert fast == [] and len(slow) == 10


def test_split_validation():
    with pytest.raises(ValueError):
        split_fast_slow(10, 1.5)


def test_residence_means_paper_factor():
    means = residence_means(10, 1000.0, heterogeneity=0.5)
    assert means[:5] == [100.0] * 5
    assert means[5:] == [1000.0] * 5


def test_residence_means_homogeneous():
    assert residence_means(4, 500.0) == [500.0] * 4


def test_residence_means_validation():
    with pytest.raises(ValueError):
        residence_means(4, -1.0)
    with pytest.raises(ValueError):
        residence_means(4, 100.0, fast_factor=0.5)


# ---------------------------------------------------------------------------
# paper mobility model
# ---------------------------------------------------------------------------


def test_decide_never_disconnects_at_pswitch_one():
    model = PaperMobilityModel([100.0], p_switch=1.0)
    rng = RandomStreams(1)
    for _ in range(50):
        assert model.decide(0, rng).kind is MoveKind.SWITCH


def test_decide_always_disconnects_at_pswitch_zero():
    model = PaperMobilityModel([100.0], p_switch=0.0, disconnect_mean=500.0)
    rng = RandomStreams(1)
    d = model.decide(0, rng)
    assert d.kind is MoveKind.DISCONNECT
    assert d.away_time > 0


def test_residence_means_respected():
    """Switch residences average T; disconnect residences average T/3."""
    model = PaperMobilityModel([300.0], p_switch=0.5)
    rng = RandomStreams(7)
    switches, disconnects = [], []
    for _ in range(3000):
        d = model.decide(0, rng)
        (switches if d.kind is MoveKind.SWITCH else disconnects).append(d.residence)
    assert np.mean(switches) == pytest.approx(300.0, rel=0.15)
    assert np.mean(disconnects) == pytest.approx(100.0, rel=0.15)


def test_model_validation():
    with pytest.raises(ValueError):
        PaperMobilityModel([100.0], p_switch=1.5)
    with pytest.raises(ValueError):
        PaperMobilityModel([100.0], p_switch=0.5, disconnect_mean=0.0)
    with pytest.raises(ValueError):
        PaperMobilityModel([-1.0], p_switch=0.5)


# ---------------------------------------------------------------------------
# cell choosers
# ---------------------------------------------------------------------------


def test_uniform_chooser_excludes_current():
    chooser = UniformCellChooser(5)
    rng = RandomStreams(3)
    picks = {chooser.next_cell(0, 2, rng) for _ in range(200)}
    assert 2 not in picks
    assert picks == {0, 1, 3, 4}


def test_uniform_chooser_needs_two_cells():
    with pytest.raises(ValueError):
        UniformCellChooser(1)


def test_graph_walk_respects_adjacency():
    chooser = GraphWalkCellChooser(5)  # default: cycle graph
    rng = RandomStreams(3)
    picks = {chooser.next_cell(0, 0, rng) for _ in range(100)}
    assert picks <= {1, 4}  # neighbours of 0 on a 5-cycle


def test_graph_walk_validation():
    disconnected = nx.Graph()
    disconnected.add_nodes_from(range(4))
    disconnected.add_edge(0, 1)
    disconnected.add_edge(2, 3)
    with pytest.raises(ValueError, match="connected"):
        GraphWalkCellChooser(4, disconnected)
    wrong_nodes = nx.path_graph(3)
    with pytest.raises(ValueError, match="exactly"):
        GraphWalkCellChooser(4, wrong_nodes)


def test_markov_chooser_follows_matrix():
    P = [
        [0.0, 1.0, 0.0],
        [0.5, 0.0, 0.5],
        [1.0, 0.0, 0.0],
    ]
    chooser = MarkovCellChooser(P)
    rng = RandomStreams(3)
    assert all(chooser.next_cell(0, 0, rng) == 1 for _ in range(20))
    assert all(chooser.next_cell(0, 2, rng) == 0 for _ in range(20))
    picks = {chooser.next_cell(0, 1, rng) for _ in range(100)}
    assert picks == {0, 2}


def test_markov_validation():
    with pytest.raises(ValueError, match="square"):
        MarkovCellChooser([[0.0, 1.0]])
    with pytest.raises(ValueError, match="diagonal"):
        MarkovCellChooser([[0.5, 0.5], [1.0, 0.0]])
    with pytest.raises(ValueError, match="probability"):
        MarkovCellChooser([[0.0, 0.7], [1.0, 0.0]])


def test_make_cell_chooser_factory():
    assert isinstance(make_cell_chooser("uniform", 3), UniformCellChooser)
    assert isinstance(make_cell_chooser("graph", 3), GraphWalkCellChooser)
    with pytest.raises(ValueError):
        make_cell_chooser("teleport", 3)
