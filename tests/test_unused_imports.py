"""Dead-import check over the workload and mobility packages.

The environment ships no ruff/pyflakes, so this is the equivalent gate:
an AST walk flagging imported names that are never referenced in the
module.  It caught (and now prevents regressing) the unused ``Optional``
import in ``repro.workload.config``.

Scope is deliberately the two packages the workload registry refactor
touches; widening it is a one-line change to ``PACKAGES``.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages under the dead-import gate.
PACKAGES = ("workload", "mobility")


def _module_files():
    for package in PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            yield path


def _imported_bindings(tree: ast.AST, source_lines: list[str]):
    """(local name, lineno) for every import binding, minus opt-outs.

    Skipped: ``from __future__ import ...`` (directive, not a name),
    ``TYPE_CHECKING``-guarded imports (annotation-only by design) and
    lines carrying a ``noqa`` comment (explicit side-effect imports).
    """
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = ast.unparse(node.test)
            if "TYPE_CHECKING" in test:
                for sub in ast.walk(node):
                    guarded.add(getattr(sub, "lineno", -1))
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if node.lineno in guarded:
            continue
        if "noqa" in source_lines[node.lineno - 1]:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name.split(".")[0]
            yield local, node.lineno


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # Dotted module usage (`os.path.exists`) roots in a Name
            # node already, but string annotations parsed by ast keep
            # attribute roots too; harmless to collect both.
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    # Names re-exported via __all__ strings count as used.
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        used.add(element.value)
    return used


@pytest.mark.parametrize(
    "path", list(_module_files()), ids=lambda p: str(p.relative_to(SRC))
)
def test_no_unused_imports(path: Path):
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    used = _used_names(tree)
    dead = [
        f"{path.relative_to(SRC)}:{lineno}: unused import {name!r}"
        for name, lineno in _imported_bindings(tree, source.splitlines())
        if name not in used
    ]
    assert not dead, "\n".join(dead)


def test_gate_covers_the_refactored_packages():
    files = list(_module_files())
    assert any("workload" in str(p) for p in files)
    assert any("mobility" in str(p) for p in files)
    # The file whose dead import motivated this gate is in scope.
    assert any(p.name == "config.py" and "workload" in str(p) for p in files)
