"""Span tracer, Chrome trace-event export and the phase table."""

import json
import os
import threading

from repro.obs.tracing import (
    Span,
    Tracer,
    chrome_trace_events,
    phase_table,
    write_chrome_trace,
)


def test_spans_nest_with_paths_and_depth():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("trace-acquire"):
            pass
        with tracer.span("fused-pass"):
            pass
    paths = [sp.path for sp in tracer.spans]
    # Children close before their parent, so the parent is recorded last.
    assert paths == ["run/trace-acquire", "run/fused-pass", "run"]
    assert [sp.depth for sp in tracer.spans] == [1, 1, 0]
    run = tracer.spans[-1]
    assert run.duration_s >= sum(s.duration_s for s in tracer.spans[:2]) * 0.5
    assert run.pid == os.getpid()


def test_span_tags_can_be_stamped_mid_phase():
    tracer = Tracer()
    with tracer.span("trace-acquire", attempt=1) as sp:
        sp.tags["source"] = "disk"
    (span,) = tracer.spans
    assert span.tags == {"attempt": 1, "source": "disk"}


def test_failed_phase_still_records_its_span():
    tracer = Tracer()
    try:
        with tracer.span("replay", protocol="BCS"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [sp.name for sp in tracer.spans] == ["replay"]


def test_threads_keep_independent_nesting_stacks():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def record(name):
        with tracer.span(name):
            barrier.wait()  # both spans open simultaneously

    threads = [
        threading.Thread(target=record, args=(n,)) for n in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Neither span adopted the other as a parent.
    assert sorted(sp.path for sp in tracer.spans) == ["a", "b"]
    assert all(sp.depth == 0 for sp in tracer.spans)


def test_as_dicts_round_trips_through_json():
    tracer = Tracer()
    with tracer.span("run", engine="fused"):
        pass
    dicts = json.loads(json.dumps(tracer.as_dicts()))
    assert dicts[0]["name"] == "run"
    assert dicts[0]["tags"] == {"engine": "fused"}
    # The exporters accept plain dicts (spans cross process boundaries
    # as dicts inside telemetry records).
    assert chrome_trace_events(dicts)[0]["name"] == "run"
    assert "run" in phase_table(dicts)


def test_chrome_trace_events_use_microseconds():
    span = Span(
        name="replay",
        path="run/replay",
        start_s=2.0,
        duration_s=0.25,
        pid=123,
        tid=7,
        depth=1,
        tags={"protocol": "TP"},
    )
    (event,) = chrome_trace_events([span])
    assert event["ph"] == "X"
    assert event["ts"] == 2_000_000.0
    assert event["dur"] == 250_000.0
    assert event["pid"] == 123 and event["tid"] == 7
    assert event["args"] == {"protocol": "TP"}


def test_write_chrome_trace_is_perfetto_loadable_shape(tmp_path):
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("trace-acquire"):
            pass
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer.spans)
    payload = json.loads(path.read_text())
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    assert payload["displayTimeUnit"] == "ms"
    names = {e["name"] for e in payload["traceEvents"]}
    assert names == {"run", "trace-acquire"}


def test_phase_table_aggregates_and_orders_depth_first():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("run"):
            with tracer.span("replay"):
                pass
    table = phase_table(tracer.spans)
    lines = table.splitlines()
    assert lines[0].split() == ["phase", "calls", "total_ms", "self_ms", "%"]
    # Parent row precedes its indented child; both ran 3 times.
    run_row = next(l for l in lines if l.startswith("run"))
    replay_row = next(l for l in lines if l.strip().startswith("replay"))
    assert lines.index(run_row) < lines.index(replay_row)
    assert run_row.split()[1] == "3" and replay_row.split()[1] == "3"
    assert replay_row.startswith("  ")  # depth-indented


def test_phase_table_empty():
    assert phase_table([]) == "(no spans recorded)"


def test_tracer_clear_and_len():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    assert len(tracer) == 1
    tracer.clear()
    assert len(tracer) == 0
