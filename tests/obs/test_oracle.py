"""Orphan-freedom oracle over every registered protocol.

The paper's central correctness claim (Section 3): a recovery line must
be a *consistent* global checkpoint -- no message received before the
line at its destination may have been sent after the line at its
source.  This suite drives every protocol in the registry over
generated workloads (three seeds each) and checks the protocol's own
recovery-line rule against the independent orphan checker and the
vector-clock criterion:

* index-based protocols (BCS, QBC, BQF and the no-send variants) build
  their line on the fly via ``recovery_line_indices``;
* TP guarantees *anchored* lines -- one per anchor host, pinned by the
  dependency vectors -- so every anchor is checked;
* protocols that promise no on-the-fly line get the naive
  most-recent-checkpoint cut audited under a non-strict xfail (a lucky
  seed can still yield a consistent cut): the uncoordinated baseline
  guarantees nothing (domino effect, paper Section 2), and FDAS is
  RDT-only -- adopting a piggybacked clock without checkpointing
  trades the equal-index line rule for fewer forced checkpoints.
"""

import pytest

from repro.core.consistency import (
    CausalOrder,
    annotate_replay,
    build_recovery_line,
    find_orphans,
    is_consistent,
    tp_anchored_line,
)
from repro.protocols.base import registry
from repro.workload import WorkloadConfig, generate_trace

SEEDS = (0, 1, 2)

NO_LINE_XFAIL = {
    "UNC": pytest.mark.xfail(
        strict=False,
        reason="uncoordinated checkpointing promises no recovery line: the "
        "naive last-checkpoint cut admits orphans and rollback cascades "
        "(domino effect, paper Section 2)",
    ),
    "FDAS": pytest.mark.xfail(
        strict=False,
        reason="FDAS is RDT-only: adopting a piggybacked clock without "
        "checkpointing breaks the equal-index line rule, so no on-the-fly "
        "recovery line is promised and the naive cut may admit orphans",
    ),
}


def oracle_cases():
    for name in sorted(registry):
        for seed in SEEDS:
            marks = (NO_LINE_XFAIL[name],) if name in NO_LINE_XFAIL else ()
            yield pytest.param(name, seed, marks=marks, id=f"{name}-seed{seed}")


def workload_trace(seed):
    return generate_trace(
        WorkloadConfig(
            t_switch=60.0, p_switch=0.8, sim_time=300.0, seed=seed
        )
    )


@pytest.mark.parametrize("name,seed", list(oracle_cases()))
def test_registered_protocol_recovery_line_admits_no_orphan(name, seed):
    trace = workload_trace(seed)
    protocol = registry[name](trace.n_hosts, trace.n_mss)
    run = annotate_replay(trace, protocol)
    assert run.messages, "workload produced no consumed message"

    try:
        line = build_recovery_line(run, protocol)
    except NotImplementedError:
        if hasattr(protocol, "required_indices"):
            # TP: every anchored line must close orphan-free.
            for anchor in range(trace.n_hosts):
                anchored = tp_anchored_line(run, protocol, anchor)
                assert find_orphans(run, anchored) == [], (
                    f"anchored line of host {anchor} has orphans"
                )
            return
        # Uncoordinated baseline: audit the naive cut (xfail above).
        naive = {h: run.last_checkpoint(h) for h in range(run.n_hosts)}
        assert is_consistent(run, naive)
        return

    assert find_orphans(run, line) == []
    # Independent definition of consistency: line members are pairwise
    # causally unordered.
    assert CausalOrder(run).line_is_consistent(line)
