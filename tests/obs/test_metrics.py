"""Metrics registry: instruments, labels, JSON and Prometheus dumps."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    registry,
)


def test_counter_increments_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("repro_runs_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("repro_pool_width")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3


def test_get_or_create_returns_the_same_series():
    reg = MetricsRegistry()
    assert reg.counter("x", kind="fused") is reg.counter("x", kind="fused")
    # A different label set is a different series under the same name.
    assert reg.counter("x", kind="fused") is not reg.counter(
        "x", kind="online"
    )


def test_label_order_does_not_split_series():
    reg = MetricsRegistry()
    a = reg.counter("x", a="1", b="2")
    b = reg.counter("x", b="2", a="1")
    assert a is b


def test_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("repro_thing")
    with pytest.raises(ValueError, match="is a counter"):
        reg.gauge("repro_thing")


def test_histogram_buckets_cumulative_with_inf():
    h = Histogram(buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(6.05)
    cumulative = dict(h.cumulative())
    assert cumulative["+Inf"] == 4
    assert cumulative["1"] == 3  # 0.05 + two 0.5s


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_as_dict_keys_series_by_name_and_labels():
    reg = MetricsRegistry()
    reg.counter("runs", kind="fused").inc(2)
    reg.histogram("secs", buckets=(1.0,)).observe(0.5)
    d = reg.as_dict()
    assert d['runs{kind="fused"}'] == {"kind": "counter", "value": 2.0}
    assert d["secs"]["kind"] == "histogram"
    assert d["secs"]["count"] == 1
    assert d["secs"]["buckets"]["+Inf"] == 1


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("repro_runs_total", kind="fused").inc(3)
    reg.histogram("repro_run_seconds", buckets=(0.5, 1.0)).observe(0.7)
    text = reg.to_prometheus()
    assert "# TYPE repro_runs_total counter" in text
    assert 'repro_runs_total{kind="fused"} 3' in text
    assert "# TYPE repro_run_seconds histogram" in text
    assert 'repro_run_seconds_bucket{le="0.5"} 0' in text
    assert 'repro_run_seconds_bucket{le="1"} 1' in text
    assert 'repro_run_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_run_seconds_sum 0.7" in text
    assert "repro_run_seconds_count 1" in text


def test_dump_picks_format_by_extension(tmp_path):
    reg = MetricsRegistry()
    reg.counter("repro_runs_total").inc()
    json_path = tmp_path / "metrics.json"
    prom_path = tmp_path / "metrics.prom"
    reg.dump(json_path)
    reg.dump(prom_path)
    assert json.loads(json_path.read_text())["repro_runs_total"]["value"] == 1
    assert "# TYPE repro_runs_total counter" in prom_path.read_text()


def test_reset_drops_series_and_type_registrations():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.reset()
    assert reg.as_dict() == {}
    reg.gauge("x")  # no type conflict after reset


def test_module_registry_is_process_local_singleton():
    assert registry() is registry()


def test_engine_runs_populate_the_default_registry():
    from repro.engine import RunSpec, execute
    from repro.workload import WorkloadConfig

    before = registry().counter("repro_engine_runs_total", kind="fused").value
    execute(
        RunSpec(
            protocols=("TP",),
            workload=WorkloadConfig(sim_time=200.0),
            engine="fused",
            use_cache=False,
        )
    )
    after = registry().counter("repro_engine_runs_total", kind="fused").value
    assert after == before + 1
    h = registry().histogram("repro_engine_run_seconds", kind="fused")
    assert h.count >= 1


def test_cache_events_populate_the_default_registry(tmp_path):
    from pathlib import Path

    from repro.workload import WorkloadConfig
    from repro.workload import cache as cache_mod

    def _events(event):
        return registry().counter(
            "repro_trace_cache_events_total", event=event
        ).value

    before = {e: _events(e) for e in ("miss", "hit", "disk_hit")}
    cache = cache_mod.TraceCache(disk_dir=tmp_path)
    cfg = WorkloadConfig(sim_time=200.0, seed=11)
    cache.get_or_generate(cfg)  # miss
    cache.get_or_generate(cfg)  # memory hit
    cache._memory.clear()
    cache.get_or_generate(cfg)  # disk hit
    assert _events("miss") == before["miss"] + 1
    assert _events("hit") == before["hit"] + 1
    assert _events("disk_hit") == before["disk_hit"] + 1
    cache_mod._shared.pop(str(Path(str(tmp_path)).resolve()), None)


def test_prometheus_escapes_label_values():
    # Backslash, double quote and newline are the three characters the
    # exposition format requires escaping in label values.
    reg = MetricsRegistry()
    reg.counter(
        "repro_paths_total", path='C:\\tmp\\"x"', note="line1\nline2"
    ).inc()
    text = reg.to_prometheus()
    line = next(
        ln for ln in text.splitlines() if ln.startswith("repro_paths_total")
    )
    assert "\n" not in line  # the newline must be escaped, not literal
    assert 'path="C:\\\\tmp\\\\\\"x\\""' in line
    assert 'note="line1\\nline2"' in line


def test_snapshot_round_trips_every_instrument_kind():
    reg = MetricsRegistry()
    reg.counter("c_total", kind="fused").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
    snap = reg.snapshot()
    by_name = {e["name"]: e for e in snap["series"]}
    assert by_name["c_total"]["value"] == 2
    assert by_name["c_total"]["labels"] == [["kind", "fused"]]
    assert by_name["g"]["value"] == 7
    h = by_name["h_seconds"]
    # Finite bounds only (OTLP explicitBounds convention); counts carry
    # one extra slot for the +Inf bucket.
    assert h["buckets"] == [0.1, 1.0]
    assert h["counts"] == [0, 1, 0]
    assert h["count"] == 1 and h["sum"] == 0.5
