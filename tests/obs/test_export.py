"""Exporters: Prometheus textfile/push-gateway, OTLP-JSON shape."""

import http.server
import json
import threading

from repro.obs.export import (
    otlp_metrics,
    otlp_payload,
    otlp_spans,
    push_prometheus,
    write_otlp,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("repro_runs_total", kind="fused").inc(3)
    reg.gauge("repro_workers_alive").set(2)
    reg.histogram("repro_run_seconds", buckets=(0.1, 1.0)).observe(0.5)
    return reg


# ----------------------------------------------------------------------
# Prometheus
# ----------------------------------------------------------------------
def test_write_prometheus_is_atomic_and_returns_text(tmp_path):
    path = tmp_path / "nested" / "fleet.prom"
    text = write_prometheus(path, _registry())
    assert path.read_text() == text
    assert 'repro_runs_total{kind="fused"} 3' in text
    assert not path.with_suffix(".prom.tmp").exists()


def test_push_prometheus_puts_to_job_path(tmp_path):
    seen = {}

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_PUT(self):
            seen["path"] = self.path
            length = int(self.headers["Content-Length"])
            seen["body"] = self.rfile.read(length).decode()
            self.send_response(200)
            self.end_headers()

        def log_message(self, *args):
            pass

    server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status = push_prometheus(
            f"http://127.0.0.1:{server.server_port}",
            _registry(),
            job="sweep/1",  # slash must be quoted into the path
        )
    finally:
        server.shutdown()
        thread.join(timeout=5)
    assert status == 200
    assert seen["path"] == "/metrics/job/sweep%2F1"
    assert "repro_runs_total" in seen["body"]


# ----------------------------------------------------------------------
# OTLP metrics
# ----------------------------------------------------------------------
def test_otlp_metrics_encodes_all_three_kinds():
    doc = otlp_metrics(_registry(), resource={"service.name": "repro"})
    (rm,) = doc["resourceMetrics"]
    assert rm["resource"]["attributes"] == [
        {"key": "service.name", "value": {"stringValue": "repro"}}
    ]
    metrics = {m["name"]: m for m in rm["scopeMetrics"][0]["metrics"]}

    runs = metrics["repro_runs_total"]["sum"]
    assert runs["isMonotonic"] is True
    assert runs["aggregationTemporality"] == 2
    (pt,) = runs["dataPoints"]
    assert pt["asDouble"] == 3
    assert {"key": "kind", "value": {"stringValue": "fused"}} in pt[
        "attributes"
    ]

    (gpt,) = metrics["repro_workers_alive"]["gauge"]["dataPoints"]
    assert gpt["asDouble"] == 2

    (hpt,) = metrics["repro_run_seconds"]["histogram"]["dataPoints"]
    # OTLP wants counts as strings, bounds as numbers, and one more
    # count slot than bounds (the +Inf bucket).
    assert hpt["bucketCounts"] == ["0", "1", "0"]
    assert hpt["explicitBounds"] == [0.1, 1.0]
    assert hpt["count"] == "1" and hpt["sum"] == 0.5


# ----------------------------------------------------------------------
# OTLP spans
# ----------------------------------------------------------------------
def _span(path, start, dur, depth, pid=1, tid=1, tags=None):
    name = path.rsplit("/", 1)[-1]
    return {
        "name": name, "path": path, "pid": pid, "tid": tid,
        "start_s": start, "duration_s": dur, "depth": depth,
        "tags": tags or {},
    }


def test_otlp_spans_rebuild_parent_linkage():
    spans = [
        _span("run", 0.0, 10.0, 0),
        _span("run/trace-acquire", 1.0, 2.0, 1),
        _span("run/fused-pass", 4.0, 3.0, 1),
        _span("run", 0.5, 9.0, 0, pid=2),  # other process: no parent
    ]
    doc = otlp_spans(spans, anchor_ns=0)
    out = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
    by_path = {}
    for rec in out:
        attrs = {a["key"]: a["value"]["stringValue"] for a in rec["attributes"]}
        by_path[(attrs["path"], attrs["pid"])] = rec

    root = by_path[("run", "1")]
    assert "parentSpanId" not in root
    assert by_path[("run/trace-acquire", "1")]["parentSpanId"] == root["spanId"]
    assert by_path[("run/fused-pass", "1")]["parentSpanId"] == root["spanId"]
    assert "parentSpanId" not in by_path[("run", "2")]
    # One export, one trace.
    assert len({rec["traceId"] for rec in out}) == 1
    # Nanosecond timestamps from the anchor.
    assert by_path[("run/fused-pass", "1")]["startTimeUnixNano"] == str(
        int(4.0 * 1e9)
    )


def test_otlp_span_ids_are_unique_and_stable():
    spans = [_span("run", 0.0, 1.0, 0), _span("run", 0.0, 1.0, 0)]
    a = otlp_spans(spans, anchor_ns=0)
    b = otlp_spans(spans, anchor_ns=0)
    ids_a = [
        s["spanId"] for s in a["resourceSpans"][0]["scopeSpans"][0]["spans"]
    ]
    ids_b = [
        s["spanId"] for s in b["resourceSpans"][0]["scopeSpans"][0]["spans"]
    ]
    assert len(set(ids_a)) == 2  # identical spans still get distinct ids
    assert ids_a == ids_b  # ...deterministically


# ----------------------------------------------------------------------
# Delivery
# ----------------------------------------------------------------------
def test_write_otlp_file_is_valid_json(tmp_path):
    dest = tmp_path / "otlp.json"
    payload = write_otlp(
        dest,
        registry=_registry(),
        spans=[_span("run", 0.0, 1.0, 0)],
        resource={"service.name": "repro"},
    )
    on_disk = json.loads(dest.read_text())
    assert on_disk == json.loads(json.dumps(payload))
    assert "resourceMetrics" in on_disk and "resourceSpans" in on_disk


def test_write_otlp_posts_to_http_endpoint():
    seen = {}

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_POST(self):
            length = int(self.headers["Content-Length"])
            seen["body"] = json.loads(self.rfile.read(length))
            seen["ctype"] = self.headers["Content-Type"]
            self.send_response(200)
            self.end_headers()

        def log_message(self, *args):
            pass

    server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        write_otlp(
            f"http://127.0.0.1:{server.server_port}/v1/metrics",
            registry=_registry(),
        )
    finally:
        server.shutdown()
        thread.join(timeout=5)
    assert seen["ctype"] == "application/json"
    assert "resourceMetrics" in seen["body"]


def test_otlp_payload_sections_are_opt_in():
    assert otlp_payload() == {}
    only_spans = otlp_payload(spans=[_span("run", 0.0, 1.0, 0)])
    assert set(only_spans) == {"resourceSpans"}
