"""Dashboard: sparklines, rendering, and the rotation-proof follower."""

import io
import json
import os

from repro.obs.dash import (
    JsonlFollower,
    render_dashboard,
    run_dashboard,
    sparkline,
)


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------
def test_sparkline_spans_min_to_max():
    line = sparkline([0, 1, 2, 3])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(line) == 4


def test_sparkline_flat_series_and_width_cap():
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""
    assert len(sparkline(range(100), width=10)) == 10


# ----------------------------------------------------------------------
# render_dashboard
# ----------------------------------------------------------------------
def _heartbeat(done, total, **extra):
    return {"kind": "heartbeat", "done": done, "total": total, **extra}


def _task(pid, wall, counters=None, **extra):
    return {
        "pid": pid, "wall_time_s": wall, "seed": 0, "t_switch": 50.0,
        "counters": counters or {}, **extra,
    }


def test_render_progress_from_latest_heartbeat():
    text = render_dashboard([
        _heartbeat(1, 4, rate_per_s=0.5),
        _heartbeat(3, 4, rate_per_s=2.0, workers_alive=2, retries=1),
    ])
    assert "3/4 cells (75%)" in text
    assert "workers 2" in text
    assert "retries 1" in text
    assert "throughput" in text


def test_render_per_worker_and_cache_tiers():
    text = render_dashboard([
        _task(100, 2.0, trace_source="uncached"),
        _task(100, 2.0, trace_source="memory", cache_hit=True),
        _task(200, 1.0, trace_source="memory", cache_hit=True),
    ])
    assert "100" in text and "200" in text
    assert "cache tiers" in text
    assert "memory 67%" in text


def test_render_forced_rate_sparklines_from_task_counters():
    counters = {"TP": {"n_forced": 9, "n_total": 10}}
    text = render_dashboard([_task(1, 1.0, counters=counters)])
    assert "forced-checkpoint rate" in text
    assert "TP" in text and "last 0.900" in text


def test_render_falls_back_to_outcome_records():
    text = render_dashboard([
        {"kind": "outcome", "protocol": "BCS", "n_forced": 1, "n_total": 4},
    ])
    assert "1 outcome records" in text
    assert "last 0.250" in text


def test_render_empty_is_calm():
    assert "(no records yet)" in render_dashboard([])


# ----------------------------------------------------------------------
# JsonlFollower: incremental reads, truncation, rotation
# ----------------------------------------------------------------------
def _write(path, records, mode="a"):
    with open(path, mode) as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


def test_follower_reads_incrementally(tmp_path):
    path = tmp_path / "s.jsonl"
    _write(path, [{"a": 1}])
    f = JsonlFollower(path)
    assert f.poll() is True
    assert f.records == [{"a": 1}]
    assert f.poll() is False  # nothing new
    _write(path, [{"a": 2}])
    assert f.poll() is True
    assert f.records == [{"a": 1}, {"a": 2}]
    f.close()


def test_follower_buffers_torn_lines(tmp_path):
    path = tmp_path / "s.jsonl"
    with open(path, "w") as fh:
        fh.write('{"a": 1}\n{"a": ')  # writer caught mid-record
    f = JsonlFollower(path)
    f.poll()
    assert f.records == [{"a": 1}]
    with open(path, "a") as fh:
        fh.write("2}\n")
    assert f.poll() is True
    assert f.records == [{"a": 1}, {"a": 2}]
    f.close()


def test_follower_recovers_from_truncation(tmp_path):
    # A `> file` truncation mid-follow must not stall at a stale offset.
    path = tmp_path / "s.jsonl"
    _write(path, [{"a": 1}, {"a": 2}])
    f = JsonlFollower(path)
    f.poll()
    assert len(f.records) == 2
    _write(path, [{"b": 1}], mode="w")  # truncate + rewrite
    assert f.poll() is True
    assert f.records == [{"b": 1}]
    assert f.resets == 1
    f.close()


def test_follower_recovers_from_rotation(tmp_path):
    # logrotate-style: the file is renamed away and a new one appears
    # under the old path (new inode).
    path = tmp_path / "s.jsonl"
    _write(path, [{"a": 1}])
    f = JsonlFollower(path)
    f.poll()
    os.rename(path, tmp_path / "s.jsonl.1")
    _write(path, [{"fresh": True}], mode="w")
    changed = f.poll() or f.poll()  # reopen, then read
    assert changed is True
    assert f.records == [{"fresh": True}]
    f.close()


def test_follower_tolerates_missing_file(tmp_path):
    path = tmp_path / "later.jsonl"
    f = JsonlFollower(path)
    assert f.poll() is False  # not created yet: no crash, no records
    _write(path, [{"a": 1}])
    assert f.poll() is True
    assert f.records == [{"a": 1}]
    f.close()


# ----------------------------------------------------------------------
# run_dashboard
# ----------------------------------------------------------------------
def test_run_dashboard_once_renders_single_frame(tmp_path):
    path = tmp_path / "s.jsonl"
    _write(path, [_task(1, 1.0)])
    out = io.StringIO()
    assert run_dashboard(path, once=True, stream=out) == 0
    frame = out.getvalue()
    assert "repro sweep dashboard" in frame
    assert "\x1b[2J" not in frame  # --once must not clear the screen


def test_run_dashboard_follow_bounded_by_max_frames(tmp_path):
    path = tmp_path / "s.jsonl"
    _write(path, [_heartbeat(1, 2)])
    out = io.StringIO()
    code = run_dashboard(
        path, interval_s=0.01, stream=out, max_frames=2
    )
    assert code == 0
    assert out.getvalue().count("\x1b[2J") == 2
