"""Fleet aggregation: delta sources, seq fencing, clock-skew alignment."""

import pytest

from repro.obs.fleet import (
    AdaptiveShardSizer,
    ClockSync,
    FleetAggregator,
    MetricsDeltaSource,
)
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# MetricsDeltaSource
# ----------------------------------------------------------------------
def test_delta_source_sends_only_increments():
    reg = MetricsRegistry()
    src = MetricsDeltaSource(reg)
    reg.counter("c_total").inc(3)
    first = src.delta()
    assert first["seq"] == 1
    (entry,) = first["series"]
    assert entry["kind"] == "counter" and entry["value"] == 3

    # Nothing changed: no frame at all.
    assert src.delta() is None

    reg.counter("c_total").inc(2)
    second = src.delta()
    assert second["seq"] == 2
    assert second["series"][0]["value"] == 2  # the increment, not 5


def test_delta_source_histogram_increments_and_gauge_last_value():
    reg = MetricsRegistry()
    src = MetricsDeltaSource(reg)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    reg.gauge("g").set(4)
    src.delta()

    reg.histogram("h", buckets=(1.0,)).observe(2.0)
    reg.gauge("g").set(9)
    delta = src.delta()
    by_name = {e["name"]: e for e in delta["series"]}
    assert by_name["h"]["counts"] == [0, 1]  # only the new observation
    assert by_name["h"]["count"] == 1
    assert by_name["g"]["value"] == 9


def test_delta_source_survives_registry_reset():
    reg = MetricsRegistry()
    src = MetricsDeltaSource(reg)
    reg.counter("c_total").inc(5)
    src.delta()
    reg.reset()
    reg.counter("c_total").inc(2)
    # The counter went backwards (5 -> 2): restart from the absolute
    # value instead of shipping a negative increment.
    delta = src.delta()
    assert delta["series"][0]["value"] == 2


# ----------------------------------------------------------------------
# FleetAggregator: merging, idempotence, interleaving
# ----------------------------------------------------------------------
def _delta(seq, value, name="c_total"):
    return {
        "seq": seq,
        "series": [
            {"name": name, "labels": [], "kind": "counter", "value": value}
        ],
    }


def test_aggregator_labels_series_by_worker_and_run():
    agg = FleetAggregator(run_id="r1")
    agg.apply_delta(0, _delta(1, 3))
    agg.apply_delta(1, _delta(1, 4))
    assert agg.registry.counter(
        "c_total", worker_id="0", run_id="r1"
    ).value == 3
    assert agg.registry.counter(
        "c_total", worker_id="1", run_id="r1"
    ).value == 4


def test_duplicate_deltas_do_not_double_count():
    # A worker-lost retry can replay the same frame; the seq fence must
    # swallow it.
    agg = FleetAggregator(run_id="r1")
    assert agg.apply_delta(0, _delta(1, 3)) is True
    assert agg.apply_delta(0, _delta(1, 3)) is False  # replayed
    assert agg.apply_delta(0, _delta(1, 7)) is False  # stale seq too
    assert agg.registry.counter(
        "c_total", worker_id="0", run_id="r1"
    ).value == 3
    assert agg.deltas_applied == 1 and agg.deltas_dropped == 2


def test_interleaved_worker_deltas_accumulate_independently():
    # Per-worker seq streams are independent: interleaving frames from
    # two workers never fences the other stream out.
    agg = FleetAggregator()
    agg.apply_delta("a", _delta(1, 1))
    agg.apply_delta("b", _delta(1, 10))
    agg.apply_delta("a", _delta(2, 2))
    agg.apply_delta("b", _delta(2, 20))
    assert agg.registry.counter("c_total", worker_id="a").value == 3
    assert agg.registry.counter("c_total", worker_id="b").value == 30


def test_end_to_end_deltas_match_absolute_counts():
    # Simulate two workers flushing repeatedly through real sources:
    # the merged fleet registry must equal each worker's final state.
    agg = FleetAggregator()
    regs = {w: MetricsRegistry() for w in ("w0", "w1")}
    srcs = {w: MetricsDeltaSource(regs[w]) for w in regs}
    for round_ in range(3):
        for w, reg in regs.items():
            reg.counter("runs_total").inc(round_ + 1)
            reg.histogram("secs", buckets=(1.0,)).observe(0.5)
            agg.apply_delta(w, srcs[w].delta())
    for w, reg in regs.items():
        assert (
            agg.registry.counter("runs_total", worker_id=w).value
            == reg.counter("runs_total").value
            == 6
        )
        assert agg.registry.histogram(
            "secs", buckets=(1.0,), worker_id=w
        ).count == 3


# ----------------------------------------------------------------------
# Clock-skew alignment
# ----------------------------------------------------------------------
def test_clock_sync_minimum_estimate_wins():
    sync = ClockSync()
    # offset + delay samples: the smallest (least delayed) is kept.
    sync.observe(42, remote_mono=100.0, local_mono=103.0)  # est 3.0
    sync.observe(42, remote_mono=200.0, local_mono=202.0)  # est 2.0
    sync.observe(42, remote_mono=300.0, local_mono=304.0)  # est 4.0
    assert sync.offset(42) == 2.0
    assert sync.offset(999) == 0.0  # unknown pid: assume shared clock


def test_span_alignment_shifts_only_skewed_processes():
    agg = FleetAggregator(run_id="r")
    agg.clock.observe(11, remote_mono=0.0, local_mono=5.0)  # +5s skew
    spans = [
        {"name": "run", "pid": 11, "start_s": 10.0, "duration_s": 1.0},
        {"name": "run", "pid": 22, "start_s": 10.0, "duration_s": 1.0},
    ]
    aligned = agg.align(spans)
    assert aligned[0]["start_s"] == 15.0
    assert aligned[1]["start_s"] == 10.0  # unknown pid untouched
    assert all(s["tags"]["run_id"] == "r" for s in aligned)
    # align() copies; the caller's spans are untouched.
    assert spans[0]["start_s"] == 10.0


def test_add_spans_tags_worker_and_shard():
    agg = FleetAggregator(run_id="r")
    agg.add_spans(3, 7, [{"name": "run", "pid": 1, "start_s": 0.0}])
    agg.add_spans(3, 8, None)  # tolerated: span-less outcome
    assert agg.span_count == 1
    (span,) = agg.spans_aligned()
    assert span["tags"]["worker_id"] == "3"
    assert span["tags"]["shard_id"] == "7"
    assert span["tags"]["run_id"] == "r"


# ----------------------------------------------------------------------
# Merged render
# ----------------------------------------------------------------------
def test_render_merges_local_registry_under_coordinator_label():
    agg = FleetAggregator(run_id="r")
    agg.apply_delta(0, _delta(1, 2))
    local = MetricsRegistry()
    local.counter("repro_sweep_tasks_total", status="done").inc(9)
    merged = agg.render(local=local)
    assert merged.counter("c_total", worker_id="0", run_id="r").value == 2
    assert merged.counter(
        "repro_sweep_tasks_total",
        status="done", worker_id="coordinator", run_id="r",
    ).value == 9
    # Rendering must not mutate the inputs.
    assert "worker_id" not in str(local.as_dict())


# ----------------------------------------------------------------------
# AdaptiveShardSizer
# ----------------------------------------------------------------------
def test_sizer_passes_default_through_until_warm():
    sizer = AdaptiveShardSizer(target_lease_s=10.0)
    assert sizer.suggest(8) == 8
    sizer.observe(1.0)
    sizer.observe(None)  # ignored
    assert sizer.suggest(8) == 8  # still under min_samples


def test_sizer_targets_the_lease_budget():
    sizer = AdaptiveShardSizer(target_lease_s=10.0, max_cells=64)
    for _ in range(5):
        sizer.observe(2.0)
    assert sizer.suggest(8) == 5  # 10s budget / 2s per cell
    for _ in range(16):
        sizer.observe(0.01)
    # Fast cells push the suggestion up; the cap bounds it.
    assert 1 <= sizer.suggest(8) <= 64


def test_sizer_clamps_to_bounds():
    sizer = AdaptiveShardSizer(
        target_lease_s=1.0, min_cells=2, max_cells=4
    )
    for _ in range(5):
        sizer.observe(100.0)  # slower than the whole budget
    assert sizer.suggest(8) == 2
    sizer2 = AdaptiveShardSizer(target_lease_s=100.0, max_cells=4)
    for _ in range(5):
        sizer2.observe(0.001)
    assert sizer2.suggest(8) == 4


def test_sizer_rejects_bad_bounds():
    with pytest.raises(ValueError):
        AdaptiveShardSizer(target_lease_s=0.0)
