"""Tests for the invariant audit (repro.obs.audit).

The audit's job is to catch a *broken* protocol or engine, so most of
these tests inject deliberately broken protocol stubs through the
``factories`` override of :func:`audit_trace` and assert the breach is
reported as the right structured :class:`AuditViolation` kind:

* a protocol that defers its forced checkpoints past delivery leaves an
  orphan message on its own recovery line (``orphan-message``);
* a protocol whose behaviour depends on hidden global state diverges
  between the reference and fused engines (``fused-divergence``);
* a protocol that logs decreasing or silently repeated indices trips
  ``index-monotonicity``;
* a protocol whose counters disagree with its log trips
  ``counter-mismatch``.

Clean protocols must audit clean on the same traces.
"""

import itertools
import pickle

import pytest

from repro.core.replay import replay, replay_fused
from repro.core.trace import EventType, build_trace
from repro.obs.audit import (
    COUNTER_MISMATCH,
    FUSED_DIVERGENCE,
    INDEX_MONOTONICITY,
    ORPHAN_MESSAGE,
    AuditViolation,
    audit_trace,
    check_protocol_invariants,
    run_audit_grid,
)
from repro.protocols import BCSProtocol
from repro.protocols.base import CheckpointingProtocol


def two_host_trace():
    """switch(0); 0->1; 1->0; 0->1 -- three receives (odd on purpose:
    stubs keyed on a shared invocation counter then land on different
    parities in the reference and fused passes)."""
    return build_trace(2, 2, [
        (1.0, EventType.CELL_SWITCH, 0, -1, 0, 1),
        (2.0, EventType.SEND, 0, 1, 1),
        (3.0, EventType.RECEIVE, 1, 1, 0),
        (4.0, EventType.SEND, 1, 2, 0),
        (5.0, EventType.RECEIVE, 0, 2, 1),
        (6.0, EventType.SEND, 0, 3, 1),
        (7.0, EventType.RECEIVE, 1, 3, 0),
    ])


# ---------------------------------------------------------------------------
# broken protocol stubs
# ---------------------------------------------------------------------------


class DelayedForceBCS(BCSProtocol):
    """BCS that takes its forced checkpoint only at the *next send*
    instead of before delivery -- the induced checkpoint no longer
    covers the receive, so the protocol's recovery line orphans the
    inducing message."""

    name = "BCS-delayed"

    def __init__(self, n_hosts, n_mss=1):
        super().__init__(n_hosts, n_mss)
        self._pending = [False] * n_hosts

    def on_receive(self, host, piggyback, src, now):
        if piggyback > self.sn[host]:
            self.sn[host] = piggyback
            self._pending[host] = True  # checkpoint late: after delivery

    def on_send(self, host, dst, now):
        if self._pending[host]:
            self._pending[host] = False
            self.take(host, self.sn[host], "forced", now)
        return self.sn[host]


class RepeatIndexProtocol(CheckpointingProtocol):
    """Logs every basic checkpoint at the same index without the QBC
    replacement flag -- a silent index repeat."""

    name = "REP"

    def __init__(self, n_hosts, n_mss=1):
        super().__init__(n_hosts, n_mss)
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    def on_cell_switch(self, host, now, new_cell):
        self.take(host, 1, "basic", now)


class CountdownIndexProtocol(CheckpointingProtocol):
    """Logs strictly *decreasing* checkpoint indices."""

    name = "DEC"

    def __init__(self, n_hosts, n_mss=1):
        super().__init__(n_hosts, n_mss)
        self._next = [5] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    def on_cell_switch(self, host, now, new_cell):
        self.take(host, self._next[host], "basic", now)
        self._next[host] -= 1


class LyingCountersBCS(BCSProtocol):
    """Claims a forced checkpoint it never logged."""

    name = "BCS-lying"

    def on_cell_switch(self, host, now, new_cell):
        super().on_cell_switch(host, now, new_cell)
        self.n_forced += 1


def flaky_bcs_class():
    """A BCS whose receive processing depends on a class-level shared
    tick counter: the reference and fused passes consume different tick
    ranges, so their counters diverge.  Built fresh per test so the
    counter state never leaks between tests."""

    class FlakyBCS(BCSProtocol):
        name = "BCS-flaky"
        tick = itertools.count()

        def on_receive(self, host, piggyback, src, now):
            if next(type(self).tick) % 2 == 0:
                super().on_receive(host, piggyback, src, now)

    return FlakyBCS


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


def test_clean_protocols_audit_clean_on_handcrafted_trace():
    assert audit_trace(two_host_trace(), ["TP", "BCS", "QBC"]) == []


def test_clean_protocols_audit_clean_on_generated_trace():
    from repro.workload import WorkloadConfig, generate_trace

    trace = generate_trace(
        WorkloadConfig(t_switch=80.0, p_switch=0.8, sim_time=400.0, seed=3)
    )
    assert audit_trace(trace, ["TP", "BCS", "QBC"], seed=3) == []


def test_delayed_force_is_caught_as_orphan_message():
    violations = audit_trace(
        two_host_trace(),
        ["BCS-delayed"],
        factories={"BCS-delayed": DelayedForceBCS},
        seed=7,
        t_switch=100.0,
    )
    kinds = {v.kind for v in violations}
    assert ORPHAN_MESSAGE in kinds
    orphan = next(v for v in violations if v.kind == ORPHAN_MESSAGE)
    assert orphan.protocol == "BCS-delayed"
    assert orphan.seed == 7 and orphan.t_switch == 100.0
    assert "orphans msg" in orphan.detail


def test_stateful_protocol_is_caught_as_fused_divergence():
    violations = audit_trace(
        two_host_trace(),
        ["BCS-flaky"],
        factories={"BCS-flaky": flaky_bcs_class()},
    )
    assert [v.kind for v in violations] == [FUSED_DIVERGENCE]
    assert "counters differ" in violations[0].detail


def test_repeated_index_without_replacement_is_caught():
    trace = build_trace(2, 2, [
        (1.0, EventType.CELL_SWITCH, 0, -1, 0, 1),
        (2.0, EventType.CELL_SWITCH, 0, -1, 1, 0),
    ])
    violations = audit_trace(
        trace, ["REP"], factories={"REP": RepeatIndexProtocol}
    )
    assert [v.kind for v in violations] == [INDEX_MONOTONICITY]
    assert violations[0].host == 0


def test_decreasing_indices_are_caught():
    trace = build_trace(2, 2, [
        (1.0, EventType.CELL_SWITCH, 0, -1, 0, 1),
        (2.0, EventType.CELL_SWITCH, 0, -1, 1, 0),
    ])
    violations = audit_trace(
        trace, ["DEC"], factories={"DEC": CountdownIndexProtocol}
    )
    assert INDEX_MONOTONICITY in {v.kind for v in violations}


def test_counter_log_disagreement_is_caught():
    violations = audit_trace(
        two_host_trace(),
        ["BCS-lying"],
        factories={"BCS-lying": LyingCountersBCS},
    )
    assert COUNTER_MISMATCH in {v.kind for v in violations}
    mismatch = next(v for v in violations if v.kind == COUNTER_MISMATCH)
    assert "n_forced" in mismatch.detail


def test_check_protocol_invariants_passes_clean_run():
    result = replay(two_host_trace(), BCSProtocol(2, 2))
    assert check_protocol_invariants(result.protocol) == []


# ---------------------------------------------------------------------------
# strict mode: replay(audit=True) raises
# ---------------------------------------------------------------------------


def test_replay_audit_mode_raises_on_broken_protocol():
    with pytest.raises(AuditViolation) as exc:
        replay(two_host_trace(), LyingCountersBCS(2, 2), audit=True)
    assert exc.value.kind == COUNTER_MISMATCH


def test_replay_fused_audit_mode_raises_on_divergence():
    with pytest.raises(AuditViolation) as exc:
        replay_fused(
            two_host_trace(), [flaky_bcs_class()(2, 2)], audit=True
        )
    assert exc.value.kind == FUSED_DIVERGENCE


def test_replay_audit_mode_is_silent_on_clean_protocol():
    clean = replay(two_host_trace(), BCSProtocol(2, 2), audit=True)
    audited = replay_fused(
        two_host_trace(), [BCSProtocol(2, 2)], audit=True
    )[0]
    assert (
        audited.protocol.counter_signature()
        == clean.protocol.counter_signature()
    )


# ---------------------------------------------------------------------------
# the violation object itself
# ---------------------------------------------------------------------------


def test_violation_pickles_through_the_pool_contract():
    v = AuditViolation(
        ORPHAN_MESSAGE, "BCS", "msg 7 orphaned", host=2, seed=1, t_switch=50.0
    )
    clone = pickle.loads(pickle.dumps(v))
    assert (clone.kind, clone.protocol, clone.detail) == (
        ORPHAN_MESSAGE, "BCS", "msg 7 orphaned"
    )
    assert (clone.host, clone.seed, clone.t_switch) == (2, 1, 50.0)


def test_violation_str_and_dict_carry_coordinates():
    v = AuditViolation(
        FUSED_DIVERGENCE, "QBC", "boom", seed=4, t_switch=1000.0
    )
    text = str(v)
    assert "fused-divergence(QBC)" in text
    assert "seed=4" in text and "t_switch=1000" in text
    d = v.as_dict()
    assert d["kind"] == FUSED_DIVERGENCE and d["seed"] == 4


# ---------------------------------------------------------------------------
# grid audit (the CLI body)
# ---------------------------------------------------------------------------


def test_run_audit_grid_clean_on_small_grid():
    from repro.experiments import SweepConfig
    from repro.workload import WorkloadConfig

    config = SweepConfig(
        base=WorkloadConfig(p_switch=0.8, sim_time=300.0),
        t_switch_values=(100.0, 800.0),
        seeds=(0, 1),
        workers=0,
        use_cache=False,
    )
    grid = run_audit_grid(config)
    assert grid.ok
    assert grid.violations == []
    assert len(grid.telemetry) == 4
    report = grid.report()
    assert "zero violations across 4 runs" in report
    assert "t_switch" in report  # the telemetry table header made it in
