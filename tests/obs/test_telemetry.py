"""Tests for run telemetry (repro.obs.telemetry) and its wiring
through the sweep runner, the figure entry point and the CLI."""

import json
import os

from repro import cli
from repro.experiments import SweepConfig, run_figure, run_sweep, validate_audit
from repro.obs.telemetry import (
    TaskTelemetry,
    read_jsonl,
    summarize,
    tail_summary,
    telemetry_table,
    write_jsonl,
)
from repro.workload import WorkloadConfig
from repro.workload.cache import shared_cache


def sweep_config(**overrides):
    kw = dict(
        base=WorkloadConfig(p_switch=0.8, sim_time=250.0),
        t_switch_values=(100.0, 800.0),
        seeds=(0, 1),
        workers=0,
        use_cache=False,
    )
    kw.update(overrides)
    return SweepConfig(**kw)


# ---------------------------------------------------------------------------
# per-task records out of the sweep runner
# ---------------------------------------------------------------------------


def test_every_task_reports_telemetry_in_point_seed_order():
    cfg = sweep_config()
    result = run_sweep(cfg)
    records = result.telemetry
    assert [(r.t_switch, r.seed) for r in records] == [
        (t, s) for t in cfg.t_switch_values for s in cfg.seeds
    ]
    for r in records:
        assert r.wall_time_s > 0
        assert r.pid == os.getpid()  # serial run: everything in-process
        assert r.n_events > 0 and r.n_sends > 0
        assert r.n_violations == 0


def test_telemetry_counters_match_the_run_outcomes():
    result = run_sweep(sweep_config())
    for point in result.points:
        by_seed = {r.seed: r for r in point.telemetry}
        for run in point.runs:
            counters = by_seed[run.seed].counters[run.protocol]
            assert counters["n_total"] == run.n_total
            assert counters["n_basic"] == run.n_basic
            assert counters["n_forced"] == run.n_forced
            assert counters["n_replaced"] == run.n_replaced


def test_trace_source_reflects_cache_tier(tmp_path, monkeypatch):
    from repro.workload import cache as cache_mod

    cfg = sweep_config(use_cache=True, cache_dir=str(tmp_path))
    cold = run_sweep(cfg)
    assert {r.trace_source for r in cold.telemetry} == {"generated"}
    assert not any(r.cache_hit for r in cold.telemetry)

    warm = run_sweep(cfg)
    assert {r.trace_source for r in warm.telemetry} == {"memory"}
    assert all(r.cache_hit for r in warm.telemetry)

    # A fresh process keeps only the disk tier.
    monkeypatch.setattr(cache_mod, "_shared", {})
    disk = run_sweep(cfg)
    assert {r.trace_source for r in disk.telemetry} == {"disk"}
    assert all(r.cache_hit for r in disk.telemetry)


def test_uncached_sweep_marks_every_task_uncached():
    result = run_sweep(sweep_config(use_cache=False))
    assert {r.trace_source for r in result.telemetry} == {"uncached"}


def test_parallel_sweep_telemetry_rides_the_pool(tmp_path):
    shared_cache(str(tmp_path))  # pre-warm dir creation
    cfg = sweep_config(workers=2, use_cache=True, cache_dir=str(tmp_path))
    result = run_sweep(cfg)
    records = result.telemetry
    assert len(records) == 4
    assert all(r.pid != 0 for r in records)
    summary = result.telemetry_summary()
    assert summary.workers == 2
    assert summary.n_tasks == 4


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def fake_record(**overrides):
    kw = dict(
        t_switch=100.0, seed=0, wall_time_s=1.0, trace_source="generated",
        cache_hit=False, n_events=10, n_sends=4, pid=1,
        counters={"BCS": {"n_total": 3, "n_basic": 2, "n_forced": 1,
                          "n_replaced": 0}},
    )
    kw.update(overrides)
    return TaskTelemetry(**kw)


def test_summarize_computes_utilization_and_balance():
    records = [
        fake_record(pid=1, wall_time_s=1.0),
        fake_record(seed=1, pid=2, wall_time_s=3.0, trace_source="memory",
                    cache_hit=True),
    ]
    summary = summarize(records, sweep_wall_s=2.0, workers=2)
    assert summary.n_tasks == 2
    assert summary.total_task_wall_s == 4.0
    assert summary.utilization == 4.0 / (2.0 * 2)
    assert summary.trace_sources == {"generated": 1, "memory": 1}
    assert summary.busy_by_pid == {1: 1.0, 2: 3.0}
    text = str(summary)
    assert "2 tasks" in text and "100% utilization" in text


def test_summarize_serial_normalises_worker_count():
    summary = summarize([fake_record()], sweep_wall_s=2.0, workers=0)
    assert summary.workers == 1
    assert summary.utilization == 0.5


# ---------------------------------------------------------------------------
# JSONL emission
# ---------------------------------------------------------------------------


def test_jsonl_round_trip_with_summary(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    records = [fake_record(), fake_record(seed=1, pid=2)]
    write_jsonl(records, path, summary=summarize(records, 1.0, 1))
    lines = read_jsonl(path)
    assert len(lines) == 3
    assert "kind" not in lines[0] and "kind" not in lines[1]
    assert lines[0] == records[0].as_json_dict()
    summary_line = lines[-1]
    assert summary_line["kind"] == "summary"
    assert summary_line["n_tasks"] == 2
    assert summary_line["busy_by_pid"] == {"1": 1.0, "2": 1.0}


def test_run_sweep_writes_telemetry_jsonl(tmp_path):
    path = tmp_path / "obs" / "sweep.jsonl"
    cfg = sweep_config(telemetry_path=str(path))
    run_sweep(cfg)  # creates the parent directory itself
    lines = read_jsonl(path)
    assert len(lines) == 4 + 1  # 4 tasks + summary
    for line in lines[:-1]:
        assert set(line) >= {
            "t_switch", "seed", "wall_time_s", "trace_source", "counters"
        }
        json.dumps(line)  # stays plain-JSON serialisable
    assert lines[-1]["kind"] == "summary"


def test_telemetry_table_lists_every_task():
    table = telemetry_table([fake_record(), fake_record(seed=1)])
    rows = table.splitlines()
    assert len(rows) == 3  # header + 2 tasks
    assert "t_switch" in rows[0]
    assert "BCS=3" in rows[1]


# ---------------------------------------------------------------------------
# cache health in telemetry
# ---------------------------------------------------------------------------


def test_corrupt_cache_entry_surfaces_in_telemetry(tmp_path, monkeypatch):
    from repro.workload import cache as cache_mod

    cfg = sweep_config(
        t_switch_values=(100.0,), seeds=(0,),
        use_cache=True, cache_dir=str(tmp_path),
    )
    run_sweep(cfg)  # warm: writes the disk entry
    (entry,) = tmp_path.glob("*.npz")
    data = entry.read_bytes()
    entry.write_bytes(data[: len(data) // 2])  # torn write

    monkeypatch.setattr(cache_mod, "_shared", {})  # force a disk read
    result = run_sweep(cfg)
    (record,) = result.telemetry
    assert record.cache_corrupt_evictions == 1
    assert record.cache_legacy_upgrades == 0
    assert record.trace_source == "generated"  # evicted, then regenerated
    table = telemetry_table(result.telemetry)
    assert "[cache: corrupt_evictions=1 legacy_upgrades=0]" in table


def test_legacy_cache_entry_surfaces_in_telemetry(tmp_path, monkeypatch):
    import numpy as np

    from repro.workload import cache as cache_mod

    cfg = sweep_config(
        t_switch_values=(100.0,), seeds=(0,),
        use_cache=True, cache_dir=str(tmp_path),
    )
    run_sweep(cfg)
    (entry,) = tmp_path.glob("*.npz")
    with np.load(entry) as data:
        arrays = {k: data[k] for k in data.files if k != "digest"}
    np.savez_compressed(entry, **arrays)  # pre-checksum legacy file

    monkeypatch.setattr(cache_mod, "_shared", {})
    result = run_sweep(cfg)
    (record,) = result.telemetry
    assert record.cache_legacy_upgrades == 1
    assert record.cache_corrupt_evictions == 0
    assert record.cache_hit  # the legacy entry was still usable
    summary = summarize(result.telemetry, sweep_wall_s=1.0, workers=1)
    assert summary.cache_legacy_upgrades == 1
    assert "cache health: corrupt_evictions=0, legacy_upgrades=1" in str(
        summary
    )


def test_summary_hides_cache_health_when_clean():
    summary = summarize([fake_record()], sweep_wall_s=1.0, workers=1)
    assert summary.cache_corrupt_evictions == 0
    assert summary.cache_legacy_upgrades == 0
    assert "cache health" not in str(summary)


def test_telemetry_table_flags_cache_health_per_row():
    clean = fake_record()
    dirty = fake_record(seed=1, cache_corrupt_evictions=2,
                        cache_legacy_upgrades=1)
    rows = telemetry_table([clean, dirty]).splitlines()
    assert "[cache:" not in rows[1]
    assert "[cache: corrupt_evictions=2 legacy_upgrades=1]" in rows[2]


# ---------------------------------------------------------------------------
# tail_summary (backs `repro tail`)
# ---------------------------------------------------------------------------


def test_tail_summary_classifies_mixed_streams():
    records = [
        fake_record().as_json_dict(),
        fake_record(seed=1, cache_hit=True,
                    trace_source="memory").as_json_dict(),
        {"kind": "outcome", "protocol": "BCS", "n_total": 4,
         "t_switch": 100.0, "seed": 0},
        {"kind": "outcome", "protocol": "BCS", "n_total": 6,
         "t_switch": 100.0, "seed": 1},
        {"kind": "heartbeat", "done": 2, "total": 4,
         "rate_per_s": 0.5, "eta_s": 4.0},
        {"kind": "summary", "n_tasks": 2, "sweep_wall_s": 3.5,
         "n_retries": 1, "n_quarantined": 0},
    ]
    text = tail_summary(records)
    assert "6 records: 2 task(s), 2 outcome(s), 1 heartbeat(s)" in text
    assert "cache hits 1/2" in text
    assert "N_tot means: BCS=3.0" in text
    assert "outcomes N_tot means: BCS=5.0" in text
    assert "last heartbeat: 2/4 tasks, rate 0.50/s, eta 4s" in text
    assert "summary: 2 tasks in 3.50s wall, 1 retries, 0 quarantined" in text


def test_tail_summary_handles_empty_and_partial_streams():
    assert "0 records" in tail_summary([])
    # A heartbeat-only stream (e.g. tailing mid-sweep before any task
    # telemetry lands) must not trip on missing task fields.
    text = tail_summary([{"kind": "heartbeat", "done": 1, "total": 8,
                          "rate_per_s": 1.25, "eta_s": None}])
    assert text.splitlines()[-1] == (
        "last heartbeat: 1/8 tasks, rate 1.25/s"  # no eta suffix
    )


# ---------------------------------------------------------------------------
# figure + CLI integration
# ---------------------------------------------------------------------------


def test_run_figure_audit_and_telemetry(tmp_path):
    path = tmp_path / "fig.jsonl"
    result = run_figure(
        1,
        sim_time=300.0,
        seeds=(0,),
        t_switch_values=(100.0, 800.0),
        use_cache=False,
        audit=True,
        telemetry_path=str(path),
    )
    assert result.violations == []
    assert len(result.telemetry) == 2
    report = validate_audit(result)
    assert report.ok, str(report)
    assert path.exists()


def test_cli_audit_smoke(tmp_path, capsys):
    path = tmp_path / "audit.jsonl"
    code = cli.main([
        "audit", "--sim-time", "300", "--sweep", "100", "800",
        "--seeds", "0", "--no-cache", "--telemetry", str(path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "zero violations across 2 runs" in out
    assert f"telemetry written to {path}" in out
    lines = read_jsonl(path)
    assert len(lines) == 3 and lines[-1]["kind"] == "summary"
