"""The analytical model must agree with the simulator (repro.analysis.analytical)."""

import pytest

from repro.analysis.analytical import basic_rate, connected_fraction, estimate
from repro.core.replay import replay
from repro.protocols import BCSProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig, generate_trace


def test_connected_fraction_limits():
    # never disconnecting -> always connected
    assert connected_fraction(1000.0, 1.0, 1000.0) == 1.0
    # always disconnecting with long aways -> mostly away
    assert connected_fraction(300.0, 0.0, 10000.0) < 0.01


def test_basic_rate_no_disconnections():
    # one switch per residence: rate = 1 / T
    assert basic_rate(500.0, 1.0, 1000.0) == pytest.approx(1 / 500.0)


def test_basic_rate_with_disconnections():
    # cycle = 0.5*300 + 0.5*(100 + 1000) = 700
    assert basic_rate(300.0, 0.5, 1000.0) == pytest.approx(1 / 700.0)


@pytest.mark.parametrize("p_switch", [1.0, 0.8])
def test_model_predicts_sends_and_basics(p_switch):
    cfg = WorkloadConfig(
        t_switch=500.0, p_switch=p_switch, sim_time=8000.0, seed=1
    )
    model = estimate(cfg)
    trace = generate_trace(cfg)
    assert trace.n_sends == pytest.approx(model.n_sends, rel=0.15)
    assert trace.n_basic_triggers == pytest.approx(model.total_basics, rel=0.35)


def test_model_predicts_tp_forced_within_band():
    """TP forces on ~half the consuming receives."""
    cfg = WorkloadConfig(t_switch=2000.0, p_switch=1.0, sim_time=6000.0, seed=2)
    trace = generate_trace(cfg)
    result = replay(trace, TwoPhaseProtocol(cfg.n_hosts, cfg.n_mss))
    predicted = 0.5 * trace.n_receives
    assert result.metrics.stats.n_forced == pytest.approx(predicted, rel=0.15)


def test_bcs_forced_upper_bound_holds():
    for seed in range(3):
        cfg = WorkloadConfig(
            t_switch=1000.0, p_switch=0.9, sim_time=6000.0, seed=seed
        )
        trace = generate_trace(cfg)
        result = replay(trace, BCSProtocol(cfg.n_hosts, cfg.n_mss))
        model = estimate(cfg)
        assert result.metrics.stats.n_forced <= model.bcs_forced_upper * 1.2


def test_bcs_bound_near_tight_when_communication_fast():
    """Message rate (~4/unit) >> basic rate (1/1000): every increment
    should force almost everyone."""
    cfg = WorkloadConfig(t_switch=1000.0, p_switch=1.0, sim_time=10000.0, seed=3)
    trace = generate_trace(cfg)
    result = replay(trace, BCSProtocol(cfg.n_hosts, cfg.n_mss))
    bound = trace.n_basic_triggers * (cfg.n_hosts - 1)
    assert result.metrics.stats.n_forced >= 0.7 * bound


def test_model_explains_figure_shape():
    """The model reproduces the figures' qualitative shape: TP flat in
    T_switch, index-based falling ~1/T."""
    lo = estimate(WorkloadConfig(t_switch=100.0, p_switch=1.0, sim_time=1e4))
    hi = estimate(WorkloadConfig(t_switch=10000.0, p_switch=1.0, sim_time=1e4))
    assert lo.tp_forced == pytest.approx(hi.tp_forced, rel=0.01)
    assert hi.total_basics == pytest.approx(lo.total_basics / 100.0, rel=0.01)
