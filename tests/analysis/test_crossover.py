"""Tests for the checkpoint-premium/failure-cost crossover analysis."""

import pytest

from repro.analysis.crossover import CostPoint, CrossoverResult, cost_sweep
from repro.protocols import BCSProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig


def factories(n=10, m=5):
    return {
        "TP": lambda: TwoPhaseProtocol(n, m),
        "BCS": lambda: BCSProtocol(n, m),
    }


def small_config(seed=4):
    return WorkloadConfig(
        t_switch=300.0, p_switch=0.9, sim_time=1500.0, seed=seed
    )


def test_cost_sweep_covers_grid():
    result = cost_sweep(
        small_config(), factories(), failure_intervals=(400.0, 1000.0)
    )
    assert len(result.points) == 4
    assert set(result.intervals()) == {400.0, 1000.0}
    assert all(isinstance(p, CostPoint) for p in result.points)


def test_cost_components_add_up():
    result = cost_sweep(
        small_config(),
        factories(),
        failure_intervals=(500.0,),
        ckpt_unit_cost=2.0,
        lost_unit_cost=3.0,
    )
    for p in result.points:
        assert p.total_cost == pytest.approx(
            2.0 * p.n_total + 3.0 * p.lost_work
        )


def test_cheapest_prefers_index_without_failures():
    """With failures too rare to happen, the index protocol's tiny
    premium wins outright."""
    result = cost_sweep(
        small_config(), factories(), failure_intervals=(1e9,)
    )
    assert result.cheapest_at(1e9) == "BCS"


def test_tp_wins_when_lost_work_is_everything():
    """Frequent failures + free checkpoints: TP's short rollback window
    dominates."""
    result = cost_sweep(
        small_config(),
        factories(),
        failure_intervals=(150.0,),
        ckpt_unit_cost=0.0,
        lost_unit_cost=1.0,
    )
    assert result.cheapest_at(150.0) == "TP"


def test_crossover_detected_when_winner_flips():
    result = cost_sweep(
        small_config(),
        factories(),
        failure_intervals=(150.0, 1e9),
        ckpt_unit_cost=0.0,
        lost_unit_cost=1.0,
    )
    # at 150 TP wins (above); at 1e9 both have zero failure cost and
    # zero checkpoint cost -> tie broken by min() order, TP first...
    # so force a flip with a checkpoint cost at the rare end instead
    result2 = cost_sweep(
        small_config(),
        factories(),
        failure_intervals=(150.0, 1e9),
        ckpt_unit_cost=1.0,
        lost_unit_cost=50.0,
    )
    winners = {iv: result2.cheapest_at(iv) for iv in result2.intervals()}
    if winners[150.0] != winners[1e9]:
        assert result2.crossover_interval() == 1e9
    else:
        assert result2.crossover_interval() is None


def test_validation():
    with pytest.raises(ValueError):
        cost_sweep(small_config(), factories(), failure_intervals=())
    with pytest.raises(ValueError):
        cost_sweep(
            small_config(),
            factories(),
            failure_intervals=(100.0,),
            ckpt_unit_cost=-1.0,
        )
    result = cost_sweep(small_config(), factories(), failure_intervals=(500.0,))
    with pytest.raises(ValueError):
        result.cheapest_at(123.0)
