"""Tests for ASCII plotting (repro.analysis.plotting)."""

import pytest

from repro.analysis import ascii_plot


def test_plot_renders_all_series_glyphs():
    out = ascii_plot(
        {
            "TP": [(100.0, 5000.0), (1000.0, 5500.0)],
            "BCS": [(100.0, 500.0), (1000.0, 100.0)],
        },
        title="demo",
    )
    assert "demo" in out
    assert "*=TP" in out and "+=BCS" in out
    assert "*" in out and "+" in out


def test_plot_axis_labels_log():
    out = ascii_plot({"a": [(10.0, 1.0), (1000.0, 100.0)]})
    assert "10" in out and "1e+03" in out or "1000" in out


def test_plot_rejects_empty():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"a": []})


def test_log_axis_rejects_nonpositive():
    with pytest.raises(ValueError):
        ascii_plot({"a": [(0.0, 1.0)]})
    # linear axes accept zero fine
    out = ascii_plot({"a": [(0.0, 0.0), (1.0, 1.0)]}, log_x=False, log_y=False)
    assert "|" in out


def test_single_point_degenerate_span():
    out = ascii_plot({"a": [(10.0, 10.0)]})
    assert "*" in out


def test_plot_dimensions():
    out = ascii_plot({"a": [(1.0, 1.0), (10.0, 10.0)]}, width=30, height=8)
    grid_rows = [l for l in out.splitlines() if l.strip().startswith("|")]
    assert len(grid_rows) == 8
    assert all(len(row.strip()) == 32 for row in grid_rows)  # |...30...|
