"""Tests for checkpoint time-series analysis (repro.analysis.timeseries)."""

import pytest

from repro.analysis.timeseries import (
    burstiness,
    rate_series,
    steady_state_rate,
    warmup_cutoff,
    window_counts,
)
from repro.core.replay import replay
from repro.protocols import BCSProtocol, TwoPhaseProtocol
from repro.workload import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def run():
    cfg = WorkloadConfig(t_switch=300.0, p_switch=0.9, sim_time=4000.0, seed=2)
    trace = generate_trace(cfg)
    return cfg, replay(trace, BCSProtocol(cfg.n_hosts, cfg.n_mss)).protocol


def test_window_counts_sum_to_n_total(run):
    cfg, protocol = run
    counts = window_counts(protocol, cfg.sim_time, window=200.0)
    assert counts.sum() == protocol.n_total


def test_window_counts_by_reason_partition(run):
    cfg, protocol = run
    basic = window_counts(protocol, cfg.sim_time, 200.0, reason="basic")
    forced = window_counts(protocol, cfg.sim_time, 200.0, reason="forced")
    total = window_counts(protocol, cfg.sim_time, 200.0)
    assert (basic + forced == total).all()


def test_window_validation(run):
    cfg, protocol = run
    with pytest.raises(ValueError):
        window_counts(protocol, cfg.sim_time, window=0.0)


def test_rate_series_midpoints(run):
    cfg, protocol = run
    series = rate_series(protocol, cfg.sim_time, window=500.0)
    assert series[0][0] == 250.0
    assert len(series) == 8
    assert all(rate >= 0 for _, rate in series)


def test_warmup_cutoff_stationary_series():
    assert warmup_cutoff([5.0, 5.2, 4.8, 5.1, 5.0, 4.9]) == 0


def test_warmup_cutoff_detects_transient():
    counts = [50.0, 20.0] + [5.0] * 10
    cut = warmup_cutoff(counts, tolerance=0.2)
    assert 1 <= cut <= 3


def test_warmup_cutoff_validation():
    with pytest.raises(ValueError):
        warmup_cutoff([])


def test_steady_state_rate_close_to_naive_rate(run):
    cfg, protocol = run
    rate = steady_state_rate(protocol, cfg.sim_time, window=400.0)
    naive = protocol.n_total / cfg.sim_time
    assert rate == pytest.approx(naive, rel=0.35)


def test_forced_checkpoints_are_bursty():
    """Index waves make BCS's forced checkpoints much more dispersed
    than a Poisson process, and more dispersed than TP's (which track
    smooth communication)."""
    cfg = WorkloadConfig(t_switch=1000.0, p_switch=1.0, sim_time=6000.0, seed=4)
    trace = generate_trace(cfg)
    bcs = replay(trace, BCSProtocol(cfg.n_hosts, cfg.n_mss)).protocol
    tp = replay(trace, TwoPhaseProtocol(cfg.n_hosts, cfg.n_mss)).protocol
    b_bcs = burstiness(window_counts(bcs, cfg.sim_time, 10.0, reason="forced"))
    b_tp = burstiness(window_counts(tp, cfg.sim_time, 10.0, reason="forced"))
    assert b_bcs > 1.5
    assert b_bcs > b_tp


def test_burstiness_validation():
    with pytest.raises(ValueError):
        burstiness([])
    assert burstiness([0.0, 0.0]) == 0.0
