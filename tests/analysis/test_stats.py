"""Tests for sample statistics (repro.analysis.stats)."""

import pytest

from repro.analysis import (
    confidence_interval,
    relative_spread,
    summarize,
    within_tolerance,
)


def test_summarize_basic():
    s = summarize([10.0, 12.0, 11.0])
    assert s.n == 3
    assert s.mean == pytest.approx(11.0)
    assert s.minimum == 10.0 and s.maximum == 12.0
    assert s.std == pytest.approx(1.0)


def test_summarize_single_value():
    s = summarize([5.0])
    assert s.std == 0.0
    assert s.relative_spread == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_relative_spread_matches_paper_check():
    # paper: "within 4% of each other"
    assert relative_spread([100.0, 103.0]) == pytest.approx(0.0295566, rel=1e-4)
    assert within_tolerance([100.0, 103.0], tolerance=0.04)
    assert not within_tolerance([100.0, 110.0], tolerance=0.04)


def test_relative_spread_zero_mean():
    assert relative_spread([0.0, 0.0]) == 0.0


def test_confidence_interval_contains_mean():
    values = [10.0, 11.0, 9.0, 10.5, 9.5]
    lo, hi = confidence_interval(values)
    mean = sum(values) / len(values)
    assert lo < mean < hi


def test_confidence_interval_single_sample_degenerate():
    assert confidence_interval([7.0]) == (7.0, 7.0)


def test_confidence_interval_wider_at_higher_confidence():
    values = [10.0, 12.0, 8.0, 11.0]
    lo95, hi95 = confidence_interval(values, 0.95)
    lo99, hi99 = confidence_interval(values, 0.99)
    assert hi99 - lo99 > hi95 - lo95


def test_confidence_validation():
    with pytest.raises(ValueError):
        confidence_interval([1.0, 2.0], confidence=1.5)
