"""Tests for the overhead/energy model (repro.analysis.overhead)."""

import pytest

from repro.analysis.overhead import CostModel, estimate_overhead
from repro.core.metrics import CheckpointStats, ProtocolRunMetrics


def metrics(n_sends=100, n_forced=10, n_basic=5, piggyback_total=100, name="BCS"):
    stats = CheckpointStats(n_basic=n_basic, n_forced=n_forced)
    return ProtocolRunMetrics(
        protocol=name,
        stats=stats,
        n_sends=n_sends,
        n_receives=n_sends,
        piggyback_ints_total=piggyback_total,
        sim_time=1000.0,
    )


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(dirty_fraction=0.0).validate()
    with pytest.raises(ValueError):
        CostModel(tx_energy=-1.0).validate()
    with pytest.raises(ValueError):
        CostModel(payload_bytes=0).validate()


def test_incremental_cheaper_than_full():
    m = metrics()
    inc = estimate_overhead(m, incremental=True)
    full = estimate_overhead(m, incremental=False)
    assert inc.checkpoint_bytes < full.checkpoint_bytes
    assert inc.energy < full.energy
    assert inc.checkpoint_bytes == pytest.approx(0.1 * full.checkpoint_bytes)


def test_piggyback_bytes_scale_with_ints():
    small = estimate_overhead(metrics(piggyback_total=100))
    large = estimate_overhead(metrics(piggyback_total=2000, name="TP"))
    assert large.piggyback_bytes == 20 * small.piggyback_bytes


def test_more_checkpoints_cost_more_energy():
    few = estimate_overhead(metrics(n_forced=10))
    many = estimate_overhead(metrics(n_forced=1000))
    assert many.energy > few.energy
    assert many.checkpoint_bytes > few.checkpoint_bytes


def test_report_row_shape():
    row = estimate_overhead(metrics()).as_row()
    assert set(row) == {
        "protocol",
        "wireless_KiB",
        "checkpoint_KiB",
        "piggyback_KiB",
        "energy",
    }
    assert row["protocol"] == "BCS"


def test_zero_activity_zero_cost():
    report = estimate_overhead(metrics(n_sends=0, n_forced=0, n_basic=0,
                                       piggyback_total=0))
    assert report.energy == 0.0
    assert report.wireless_bytes == 0.0
