"""Integration-style unit tests for the mobile system (repro.net.system)."""

import pytest

from repro.des import Environment, RandomStreams
from repro.net import MobileSystem, NetworkParams
from repro.net.message import ControlKind


def make_system(**kw):
    env = Environment()
    params = NetworkParams(**kw)
    return env, MobileSystem(env, params, RandomStreams(1))


# ---------------------------------------------------------------------------
# parameter validation
# ---------------------------------------------------------------------------


def test_params_validation():
    with pytest.raises(ValueError):
        NetworkParams(n_hosts=1).validate()
    with pytest.raises(ValueError):
        NetworkParams(n_mss=0).validate()
    with pytest.raises(ValueError):
        NetworkParams(leg_latency=-0.1).validate()
    with pytest.raises(ValueError):
        NetworkParams(duplicate_prob=1.5).validate()


def test_placement_round_robin_default():
    assert NetworkParams(n_hosts=7, n_mss=3).placement() == [0, 1, 2, 0, 1, 2, 0]


def test_placement_explicit_validated():
    with pytest.raises(ValueError):
        NetworkParams(n_hosts=3, n_mss=2, initial_placement=[0, 1]).placement()
    with pytest.raises(ValueError):
        NetworkParams(n_hosts=2, n_mss=2, initial_placement=[0, 5]).placement()


# ---------------------------------------------------------------------------
# routing and latency
# ---------------------------------------------------------------------------


def test_same_cell_delivery_takes_two_legs():
    env, sys_ = make_system(n_hosts=2, n_mss=1, leg_latency=0.01)
    sys_.send_application(0, 1, payload="hi")
    env.run()
    msg = sys_.hosts[1].try_receive()
    assert msg.payload == "hi"
    assert env.now == pytest.approx(0.02)  # wireless up + wireless down
    assert msg.hops == 2


def test_cross_cell_delivery_takes_three_legs():
    env, sys_ = make_system(
        n_hosts=2, n_mss=2, leg_latency=0.01, initial_placement=[0, 1]
    )
    sys_.send_application(0, 1)
    env.run()
    assert sys_.hosts[1].try_receive() is not None
    assert env.now == pytest.approx(0.03)  # up + wired + down


def test_send_to_self_rejected():
    _, sys_ = make_system(n_hosts=2, n_mss=1)
    with pytest.raises(ValueError):
        sys_.send_application(0, 0)


def test_disconnected_sender_rejected():
    env, sys_ = make_system(n_hosts=2, n_mss=1)
    sys_.disconnect(0)
    with pytest.raises(RuntimeError):
        sys_.send_application(0, 1)


def test_fifo_delivery_between_pair():
    env, sys_ = make_system(n_hosts=2, n_mss=1)
    for i in range(5):
        sys_.send_application(0, 1, payload=i)
    env.run()
    got = [sys_.hosts[1].try_receive().payload for _ in range(5)]
    assert got == [0, 1, 2, 3, 4]


def test_piggyback_travels_with_message():
    env, sys_ = make_system(n_hosts=2, n_mss=1)
    sys_.send_application(0, 1, piggyback={"sn": 7}, piggyback_ints=1)
    env.run()
    assert sys_.hosts[1].try_receive().piggyback == {"sn": 7}


# ---------------------------------------------------------------------------
# mobility: handoff
# ---------------------------------------------------------------------------


def test_switch_cell_updates_registration_and_directory():
    env, sys_ = make_system(n_hosts=2, n_mss=3, initial_placement=[0, 1])
    sys_.switch_cell(0, 2)
    assert sys_.hosts[0].mss_id == 2
    assert sys_.stations[2].serves(0) and not sys_.stations[0].serves(0)
    assert sys_.directory.locate(0) == 2


def test_switch_cell_sends_two_control_messages():
    env, sys_ = make_system(n_hosts=2, n_mss=3, initial_placement=[0, 1])
    before = sys_.control_message_count
    sys_.switch_cell(0, 2)
    assert sys_.control_message_count == before + 2


def test_switch_to_same_cell_rejected():
    _, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    with pytest.raises(ValueError):
        sys_.switch_cell(0, 0)


def test_switch_while_disconnected_rejected():
    _, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    sys_.disconnect(0)
    with pytest.raises(RuntimeError):
        sys_.switch_cell(0, 1)


def test_in_flight_message_forwarded_after_switch():
    env, sys_ = make_system(
        n_hosts=2, n_mss=3, leg_latency=0.01, initial_placement=[0, 1]
    )
    sys_.send_application(0, 1)
    # Host 1 moves while the message is crossing the wired network.
    env.call_later(0.015, lambda: sys_.switch_cell(1, 2))
    env.run()
    assert sys_.hosts[1].try_receive() is not None
    assert sys_.directory.forward_count >= 1


# ---------------------------------------------------------------------------
# mobility: disconnection / reconnection
# ---------------------------------------------------------------------------


def test_disconnect_then_reconnect_roundtrip():
    env, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    sys_.disconnect(0)
    assert not sys_.hosts[0].is_connected
    assert sys_.directory.locate(0) is None
    assert sys_.directory.buffering_mss(0) == 0
    sys_.reconnect(0)
    assert sys_.hosts[0].is_connected
    assert sys_.directory.locate(0) == 0


def test_double_disconnect_rejected():
    _, sys_ = make_system(n_hosts=2, n_mss=1)
    sys_.disconnect(0)
    with pytest.raises(RuntimeError):
        sys_.disconnect(0)


def test_reconnect_while_connected_rejected():
    _, sys_ = make_system(n_hosts=2, n_mss=1)
    with pytest.raises(RuntimeError):
        sys_.reconnect(0)


def test_messages_buffered_during_disconnection_and_released():
    env, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    sys_.disconnect(1)
    sys_.send_application(0, 1, payload="while away")
    env.run()
    assert sys_.hosts[1].try_receive() is None  # not delivered yet
    assert sys_.stations[1].pending_for(1) == 1
    sys_.reconnect(1)
    env.run()
    assert sys_.hosts[1].try_receive().payload == "while away"
    assert sys_.stations[1].pending_for(1) == 0


def test_reconnect_into_different_cell_gets_buffered_traffic():
    env, sys_ = make_system(n_hosts=2, n_mss=3, initial_placement=[0, 1])
    sys_.disconnect(1)
    sys_.send_application(0, 1, payload="wired forward")
    env.run()
    sys_.reconnect(1, mss_id=2)
    env.run()
    assert sys_.hosts[1].try_receive().payload == "wired forward"


def test_message_to_host_disconnecting_mid_flight_is_buffered():
    env, sys_ = make_system(n_hosts=2, n_mss=1, leg_latency=0.01)
    sys_.send_application(0, 1)
    env.call_later(0.015, lambda: sys_.disconnect(1))
    env.run()
    assert sys_.hosts[1].try_receive() is None
    assert sys_.stations[0].pending_for(1) == 1


# ---------------------------------------------------------------------------
# at-least-once semantics
# ---------------------------------------------------------------------------


def test_duplicates_are_suppressed_before_inbox():
    env, sys_ = make_system(
        n_hosts=2,
        n_mss=2,
        initial_placement=[0, 1],
        duplicate_prob=0.9,
    )
    for _ in range(20):
        sys_.send_application(0, 1)
    env.run()
    received = 0
    while sys_.hosts[1].try_receive() is not None:
        received += 1
    assert received == 20  # exactly-once at the application layer
    assert sys_.duplicates_suppressed > 0


# ---------------------------------------------------------------------------
# checkpoint storage integration
# ---------------------------------------------------------------------------


def test_store_checkpoint_lands_at_current_mss():
    env, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    rec = sys_.store_checkpoint(0, index=0, reason="basic")
    assert sys_.stations[0].storage.get(0, 0) is rec
    assert rec.reason == "basic"


def test_incremental_checkpoint_fetches_base_across_mss():
    env, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    sys_.store_checkpoint(0, index=0, reason="basic")
    sys_.switch_cell(0, 1)
    sys_.store_checkpoint(0, index=1, reason="basic", incremental=True, base_index=0)
    assert sys_.checkpoint_fetches == 1
    # the base got migrated to the new MSS
    assert sys_.stations[1].storage.get(0, 0) is not None
    assert sys_.stations[1].storage.get(0, 1) is not None


def test_incremental_checkpoint_no_fetch_when_base_local():
    env, sys_ = make_system(n_hosts=2, n_mss=2, initial_placement=[0, 1])
    sys_.store_checkpoint(0, index=0, reason="basic")
    sys_.store_checkpoint(0, index=1, reason="forced", incremental=True, base_index=0)
    assert sys_.checkpoint_fetches == 0


def test_wireless_channel_counters_track_traffic():
    env, sys_ = make_system(n_hosts=2, n_mss=1)
    sys_.send_application(0, 1, piggyback_ints=3)
    env.run()
    stats = sys_.wireless[0].stats
    assert stats.messages == 2  # up + down
    assert stats.piggyback_ints == 6


def test_control_kind_enum_covers_handoff_pair():
    assert ControlKind.HANDOFF_LEAVE.value != ControlKind.HANDOFF_JOIN.value
