"""Unit tests for individual network components (channels, location,
host, MSS) -- the system-level behaviour is covered in test_system.py."""

import pytest

from repro.des import Environment
from repro.net.channels import Channel, ChannelStats, total_stats
from repro.net.host import HostState, MobileHost
from repro.net.location import LocationDirectory
from repro.net.message import Message, MessageKind
from repro.net.mss import MobileSupportStation


# ---------------------------------------------------------------------------
# channels
# ---------------------------------------------------------------------------


def test_channel_delivers_after_latency():
    env = Environment()
    ch = Channel(env, 0.5)
    got = []
    ch.transmit(Message(src=0, dst=1), got.append)
    env.run()
    assert env.now == 0.5
    assert got[0].hops == 1


def test_channel_negative_latency_rejected():
    with pytest.raises(ValueError):
        Channel(Environment(), -0.1)


def test_channel_stats_accumulate():
    env = Environment()
    ch = Channel(env, 0.1)
    ch.transmit(Message(src=0, dst=1, piggyback_ints=3), lambda m: None)
    ctrl = Message(src=0, dst=None, kind=MessageKind.CONTROL)
    ch.transmit(ctrl, lambda m: None)
    env.run()
    assert ch.stats.messages == 2
    assert ch.stats.control_messages == 1
    assert ch.stats.piggyback_ints == 3
    assert ch.stats.busy_time == pytest.approx(0.2)


def test_channel_extra_delay():
    env = Environment()
    ch = Channel(env, 0.1)
    times = []
    ch.transmit(Message(src=0, dst=1), lambda m: times.append(env.now),
                extra_delay=0.4)
    env.run()
    assert times == [pytest.approx(0.5)]


def test_stats_merge_and_total():
    a = ChannelStats(messages=1, control_messages=0, piggyback_ints=2, busy_time=0.1)
    b = ChannelStats(messages=2, control_messages=1, piggyback_ints=3, busy_time=0.2)
    m = a.merge(b)
    assert (m.messages, m.control_messages) == (3, 1)
    env = Environment()
    chans = [Channel(env, 0.1), Channel(env, 0.1)]
    chans[0].stats = a
    chans[1].stats = b
    assert total_stats(chans).piggyback_ints == 5


# ---------------------------------------------------------------------------
# location directory
# ---------------------------------------------------------------------------


def test_directory_tracks_moves():
    d = LocationDirectory(2, [0, 1])
    assert d.locate(0) == 0
    d.moved(0, 1)
    assert d.locate(0) == 1
    assert d.update_count == 1
    assert d.lookup_count == 2


def test_directory_disconnect_reconnect_cycle():
    d = LocationDirectory(2, [0, 1])
    d.disconnected(0)
    assert d.locate(0) is None
    assert d.buffering_mss(0) == 0
    d.reconnected(0, 1)
    assert d.locate(0) == 1
    assert d.buffering_mss(0) is None


def test_directory_size_mismatch():
    with pytest.raises(ValueError):
        LocationDirectory(3, [0, 1])


def test_directory_forward_counter():
    d = LocationDirectory(2, [0, 1])
    d.note_forward()
    d.note_forward()
    assert d.forward_count == 2


# ---------------------------------------------------------------------------
# host
# ---------------------------------------------------------------------------


def test_host_try_receive_counts():
    env = Environment()
    h = MobileHost(env, 0, 0)
    assert h.try_receive() is None
    h.inbox.put(Message(src=1, dst=0))
    msg = h.try_receive()
    assert msg.src == 1
    assert h.received_count == 1


def test_host_blocking_receive_event():
    env = Environment()
    h = MobileHost(env, 0, 0)
    ev = h.receive_event()
    h.inbox.put(Message(src=1, dst=0))
    env.run()
    assert ev.value.src == 1
    assert h.received_count == 1


def test_host_state_flags():
    env = Environment()
    h = MobileHost(env, 0, 0)
    assert h.is_connected
    h.state = HostState.DISCONNECTED
    assert not h.is_connected


# ---------------------------------------------------------------------------
# MSS
# ---------------------------------------------------------------------------


def test_mss_registration():
    mss = MobileSupportStation(0)
    mss.register(3)
    assert mss.serves(3)
    mss.deregister(3)
    assert not mss.serves(3)
    mss.deregister(3)  # idempotent


def test_mss_buffering_fifo():
    mss = MobileSupportStation(0)
    for i in range(3):
        mss.buffer_message(Message(src=1, dst=5, payload=i))
    assert mss.pending_for(5) == 3
    drained = mss.drain_buffer(5)
    assert [m.payload for m in drained] == [0, 1, 2]
    assert mss.pending_for(5) == 0
    assert mss.drain_buffer(5) == []
    assert mss.buffered_messages == 3
