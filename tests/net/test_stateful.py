"""Hypothesis stateful testing of the mobile network substrate.

Drives a :class:`MobileSystem` through arbitrary interleavings of
sends, cell switches, disconnections, reconnections and time advances,
checking the registration/directory invariants after every step and --
at teardown -- that every sent application message is delivered to its
destination's inbox *exactly once* (the at-least-once channel plus
duplicate suppression), no matter how the destination moved.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.des import Environment, RandomStreams
from repro.net import HostState, MobileSystem, NetworkParams

N_HOSTS = 4
N_MSS = 3


class MobileSystemMachine(RuleBasedStateMachine):
    @initialize(duplicates=st.booleans())
    def setup(self, duplicates):
        self.env = Environment()
        self.system = MobileSystem(
            self.env,
            NetworkParams(
                n_hosts=N_HOSTS,
                n_mss=N_MSS,
                duplicate_prob=0.5 if duplicates else 0.0,
            ),
            RandomStreams(0),
        )
        self.sent: list[int] = []  # msg ids in send order
        self.consumed: list[int] = []

    # ------------------------------------------------------------------
    @rule(src=st.integers(0, N_HOSTS - 1), dst=st.integers(0, N_HOSTS - 1))
    def send(self, src, dst):
        if src == dst or not self.system.hosts[src].is_connected:
            return
        msg = self.system.send_application(src, dst, payload=len(self.sent))
        self.sent.append(msg.msg_id)

    @rule(host=st.integers(0, N_HOSTS - 1), cell=st.integers(0, N_MSS - 1))
    def switch(self, host, cell):
        h = self.system.hosts[host]
        if not h.is_connected or h.mss_id == cell:
            return
        self.system.switch_cell(host, cell)

    @rule(host=st.integers(0, N_HOSTS - 1))
    def disconnect(self, host):
        if self.system.hosts[host].is_connected:
            self.system.disconnect(host)

    @rule(host=st.integers(0, N_HOSTS - 1), cell=st.integers(0, N_MSS - 1))
    def reconnect(self, host, cell):
        if not self.system.hosts[host].is_connected:
            self.system.reconnect(host, cell)

    @rule()
    def advance_time(self):
        self.env.run(until=self.env.now + 0.05)

    @rule(host=st.integers(0, N_HOSTS - 1))
    def consume(self, host):
        msg = self.system.hosts[host].try_receive()
        if msg is not None:
            self.consumed.append(msg.msg_id)

    # ------------------------------------------------------------------
    @invariant()
    def registration_matches_connection_state(self):
        if not hasattr(self, "system"):
            return
        for h in self.system.hosts:
            if h.state is HostState.ACTIVE:
                assert self.system.stations[h.mss_id].serves(h.host_id)
                assert self.system.directory.locate(h.host_id) == h.mss_id
            else:
                assert all(
                    not s.serves(h.host_id) for s in self.system.stations
                )
                assert self.system.directory.locate(h.host_id) is None
                assert self.system.directory.buffering_mss(h.host_id) is not None

    @invariant()
    def each_host_registered_at_most_once(self):
        if not hasattr(self, "system"):
            return
        for h in self.system.hosts:
            serving = [s.mss_id for s in self.system.stations if s.serves(h.host_id)]
            assert len(serving) <= 1

    def teardown(self):
        if not hasattr(self, "system"):
            return
        # Reconnect everyone and drain the network: every sent message
        # must reach its destination inbox exactly once.
        for h in self.system.hosts:
            if not h.is_connected:
                self.system.reconnect(h.host_id)
        self.env.run()
        for h in self.system.hosts:
            while True:
                msg = h.try_receive()
                if msg is None:
                    break
                self.consumed.append(msg.msg_id)
        assert sorted(self.consumed) == sorted(self.sent)
        assert len(set(self.consumed)) == len(self.consumed)


MobileSystemMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestMobileSystem = MobileSystemMachine.TestCase
