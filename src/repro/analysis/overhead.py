"""Operational overhead model: energy, bandwidth and storage proxies.

The paper motivates protocol selection with resource arguments it never
quantifies -- battery drain, wireless channel contention, stable-storage
traffic (Section 2.1 points a/b/e).  This model turns a protocol run
into those proxies so scenarios (and the ablation benches) can report
them:

* every wireless transmission costs ``tx_energy`` per message plus
  ``byte_energy`` per payload/piggyback byte;
* every checkpoint ships its state over the wireless link -- either the
  full state or, with incremental checkpointing, the expected dirty
  fraction (plus occasional cross-MSS base fetches on the wired side,
  which cost bandwidth but no MH battery);
* piggybacked control integers are charged at 4 bytes each.

All constants are explicit parameters: the point is comparing protocols
under one consistent cost model, not absolute joule counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ProtocolRunMetrics


@dataclass(slots=True)
class CostModel:
    """Unit costs of the overhead model."""

    #: Fixed energy per wireless transmission (battery units).
    tx_energy: float = 1.0
    #: Energy per byte sent over the wireless link.
    byte_energy: float = 0.001
    #: Bytes of application payload per message.
    payload_bytes: int = 256
    #: Bytes per piggybacked control integer.
    int_bytes: int = 4
    #: Full checkpoint state size in bytes.
    checkpoint_bytes: int = 262_144  # 64 pages x 4 KiB
    #: Fraction of the state dirtied per checkpoint interval when
    #: incremental checkpointing is on.
    dirty_fraction: float = 0.1

    def validate(self) -> "CostModel":
        """Check the unit costs; returns self (chainable)."""
        if min(self.tx_energy, self.byte_energy) < 0:
            raise ValueError("energies must be >= 0")
        if not 0.0 < self.dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in (0, 1]")
        if min(self.payload_bytes, self.int_bytes, self.checkpoint_bytes) <= 0:
            raise ValueError("byte sizes must be positive")
        return self


@dataclass(slots=True)
class OverheadReport:
    """Aggregate resource costs of one protocol run."""

    protocol: str
    #: Bytes moved over wireless links (messages + checkpoint uploads).
    wireless_bytes: float
    #: ... of which checkpoint uploads.
    checkpoint_bytes: float
    #: ... of which piggybacked control information.
    piggyback_bytes: float
    #: Total battery proxy.
    energy: float

    def as_row(self) -> dict:
        """Flat dict (KiB-scaled) for table reporting."""
        return {
            "protocol": self.protocol,
            "wireless_KiB": round(self.wireless_bytes / 1024, 1),
            "checkpoint_KiB": round(self.checkpoint_bytes / 1024, 1),
            "piggyback_KiB": round(self.piggyback_bytes / 1024, 1),
            "energy": round(self.energy, 1),
        }


def estimate_overhead(
    metrics: ProtocolRunMetrics,
    model: CostModel | None = None,
    incremental: bool = True,
) -> OverheadReport:
    """Convert run metrics into the resource proxies.

    ``incremental`` applies the dirty-fraction discount to every
    checkpoint after the first per host (the paper's Section 2.2
    recommendation); full checkpointing ships the whole state each time.
    """
    model = (model or CostModel()).validate()
    per_ckpt = (
        model.checkpoint_bytes * model.dirty_fraction
        if incremental
        else model.checkpoint_bytes
    )
    n_ckpts = metrics.stats.n_total
    ckpt_bytes = n_ckpts * per_ckpt
    piggyback_bytes = metrics.piggyback_ints_total * model.int_bytes
    msg_bytes = metrics.n_sends * model.payload_bytes + piggyback_bytes
    wireless_bytes = msg_bytes + ckpt_bytes
    transmissions = metrics.n_sends + n_ckpts
    energy = transmissions * model.tx_energy + wireless_bytes * model.byte_energy
    return OverheadReport(
        protocol=metrics.protocol,
        wireless_bytes=wireless_bytes,
        checkpoint_bytes=ckpt_bytes,
        piggyback_bytes=piggyback_bytes,
        energy=energy,
    )
