"""Time-series analysis of checkpoint activity.

The paper reports single N_tot totals per run; a careful simulation
study also wants to know that the measured rates are *stationary* (no
warm-up bias) and how checkpointing activity evolves -- e.g. index-based
forced checkpoints arrive in bursts when an index wave propagates.

* :func:`rate_series` -- checkpoints per time unit over fixed windows;
* :func:`warmup_cutoff` -- first window after which the running mean of
  the remaining series stays inside a tolerance band of the final
  steady mean (an MSER-flavoured truncation rule);
* :func:`steady_state_rate` -- mean rate after warm-up truncation;
* :func:`burstiness` -- index of dispersion of per-window counts
  (1 = Poisson-like; > 1 = bursty).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.protocols.base import CheckpointingProtocol, TakenCheckpoint


def _times(
    checkpoints: Sequence[TakenCheckpoint],
    reason: Optional[str] = None,
) -> np.ndarray:
    return np.array(
        [
            c.time
            for c in checkpoints
            if c.reason != "initial" and (reason is None or c.reason == reason)
        ],
        dtype=float,
    )


def window_counts(
    protocol: CheckpointingProtocol,
    sim_time: float,
    window: float,
    reason: Optional[str] = None,
) -> np.ndarray:
    """Checkpoints taken per window of length *window* (optionally only
    "basic" or "forced" ones)."""
    if window <= 0 or sim_time <= 0:
        raise ValueError("window and sim_time must be positive")
    times = _times(protocol.checkpoints, reason)
    n_windows = max(1, int(np.ceil(sim_time / window)))
    counts, _edges = np.histogram(
        times, bins=n_windows, range=(0.0, n_windows * window)
    )
    return counts.astype(float)


def rate_series(
    protocol: CheckpointingProtocol,
    sim_time: float,
    window: float,
    reason: Optional[str] = None,
) -> list[tuple[float, float]]:
    """(window midpoint, checkpoints per time unit) series."""
    counts = window_counts(protocol, sim_time, window, reason)
    return [
        ((i + 0.5) * window, c / window) for i, c in enumerate(counts)
    ]


def warmup_cutoff(counts: Sequence[float], tolerance: float = 0.2) -> int:
    """Index of the first window from which the running mean of the
    remaining series stays within ``tolerance`` (relative) of the mean
    of the second half of the series.

    Returns 0 when the series is stationary from the start; returns
    ``len(counts) - 1`` at worst.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("empty series")
    reference = counts[counts.size // 2 :].mean()
    if reference == 0:
        return 0
    for start in range(counts.size):
        tail_mean = counts[start:].mean()
        if abs(tail_mean - reference) <= tolerance * reference:
            return start
    return counts.size - 1


def steady_state_rate(
    protocol: CheckpointingProtocol,
    sim_time: float,
    window: float,
    reason: Optional[str] = None,
    tolerance: float = 0.2,
) -> float:
    """Mean checkpoint rate after truncating the warm-up windows."""
    counts = window_counts(protocol, sim_time, window, reason)
    start = warmup_cutoff(counts, tolerance)
    return float(counts[start:].mean() / window)


def burstiness(counts: Sequence[float]) -> float:
    """Index of dispersion (variance / mean) of per-window counts.

    1 for a Poisson process; index-based forced checkpoints propagate in
    waves and come out well above 1.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("empty series")
    mean = counts.mean()
    return float(counts.var() / mean) if mean > 0 else 0.0
