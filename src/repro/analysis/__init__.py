"""Statistics, modelling and reporting helpers for the experiments.

* :mod:`~repro.analysis.stats` -- multi-seed summaries, the paper's
  within-4% agreement check, confidence intervals.
* :mod:`~repro.analysis.plotting` -- ASCII log-log figure plots.
* :mod:`~repro.analysis.analytical` -- closed-form count predictions
  cross-checking the simulator.
* :mod:`~repro.analysis.overhead` -- energy/bandwidth/storage proxies.
* :mod:`~repro.analysis.timeseries` -- checkpoint rates over time,
  warm-up truncation, burstiness.
* :mod:`~repro.analysis.crossover` -- checkpoint premium vs failure
  cost break-even analysis.
"""

from repro.analysis.analytical import AnalyticalEstimates, estimate
from repro.analysis.crossover import CrossoverResult, cost_sweep
from repro.analysis.overhead import CostModel, OverheadReport, estimate_overhead
from repro.analysis.plotting import ascii_plot
from repro.analysis.stats import (
    SampleSummary,
    confidence_interval,
    relative_spread,
    summarize,
    within_tolerance,
)
from repro.analysis.timeseries import (
    burstiness,
    rate_series,
    steady_state_rate,
    warmup_cutoff,
    window_counts,
)

__all__ = [
    "AnalyticalEstimates",
    "CostModel",
    "CrossoverResult",
    "OverheadReport",
    "SampleSummary",
    "ascii_plot",
    "burstiness",
    "confidence_interval",
    "cost_sweep",
    "estimate",
    "estimate_overhead",
    "rate_series",
    "relative_spread",
    "steady_state_rate",
    "summarize",
    "warmup_cutoff",
    "window_counts",
    "within_tolerance",
]
