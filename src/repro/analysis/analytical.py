"""Closed-form approximations of the checkpoint counts.

Back-of-envelope models that predict the simulator's output from the
workload parameters -- useful as sanity checks on both the simulator and
the protocols (the test suite asserts simulation and model agree), and
to explain the *shape* of the paper's figures:

**Basic checkpoints.**  A host's mobility cycle is: with probability
``p_switch`` a residence ``Exp(T_i)`` ending in a cell switch; otherwise
a residence ``Exp(T_i/3)`` ending in a disconnection followed by
``Exp(D)`` away.  Every cycle produces exactly one basic checkpoint, so

    rate_basic(i) = 1 / (p_switch * T_i
                         + (1 - p_switch) * (T_i / 3 + D))

which is why the index-based curves fall roughly as ``1/T_switch`` in
the figures.

**TP forced checkpoints.**  A consuming receive forces iff the host's
last phase-relevant event was a send.  In steady state sends and
consuming receives balance (every message is eventually consumed), so
at a receive the previous relevant event is a send with probability
about one half -- TP forces on ~half of all receives:

    forced_TP ~= 0.5 * n_receives ~= 0.5 * p_send * ops

independent of mobility.  That is the flat TP curve of the figures.

**BCS forced checkpoints (upper bound).**  Every basic checkpoint
increments an index; when communication is fast relative to mobility
every increment propagates to all other ``n - 1`` hosts as one forced
checkpoint each; slow communication coalesces several increments into
one jump.  Hence

    forced_BCS <= total_basics * (n - 1)

with near-equality when the message rate per host far exceeds the basic
rate.  QBC <= BCS (its increments are a subset, statistically).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.heterogeneity import residence_means
from repro.workload.config import WorkloadConfig


@dataclass(slots=True)
class AnalyticalEstimates:
    """Model predictions for one workload configuration."""

    ops_per_host: float
    n_sends: float
    n_receives: float
    basic_per_host: list[float]
    total_basics: float
    tp_forced: float
    bcs_forced_upper: float

    @property
    def tp_total(self) -> float:
        """Predicted TP N_tot (basics + forced)."""
        return self.total_basics + self.tp_forced

    @property
    def bcs_total_upper(self) -> float:
        """Upper bound on BCS N_tot (basics + forced bound)."""
        return self.total_basics + self.bcs_forced_upper


def connected_fraction(
    t_residence: float, p_switch: float, disconnect_mean: float,
    divisor: float = 3.0,
) -> float:
    """Expected fraction of time a host is connected."""
    connected = p_switch * t_residence + (1 - p_switch) * t_residence / divisor
    away = (1 - p_switch) * disconnect_mean
    return connected / (connected + away)


def basic_rate(
    t_residence: float, p_switch: float, disconnect_mean: float,
    divisor: float = 3.0,
) -> float:
    """Basic checkpoints per unit time for one host (one per mobility
    cycle)."""
    cycle = (
        p_switch * t_residence
        + (1 - p_switch) * (t_residence / divisor + disconnect_mean)
    )
    return 1.0 / cycle


def estimate(config: WorkloadConfig) -> AnalyticalEstimates:
    """Predict checkpoint counts for *config* (see module docstring)."""
    config.validate()
    means = residence_means(
        config.n_hosts,
        config.t_switch,
        config.heterogeneity,
        config.fast_factor,
    )
    frac = [
        connected_fraction(
            m,
            config.p_switch,
            config.disconnect_mean,
            config.disconnect_residence_divisor,
        )
        for m in means
    ]
    # Hosts only execute operations while connected.
    ops = [config.sim_time / config.internal_mean * f for f in frac]
    n_sends = config.p_send * sum(ops)
    # Receives consume what was sent (minus the undelivered tail).
    n_receives = n_sends
    basics = [
        basic_rate(
            m,
            config.p_switch,
            config.disconnect_mean,
            config.disconnect_residence_divisor,
        )
        * config.sim_time
        for m in means
    ]
    total_basics = sum(basics)
    return AnalyticalEstimates(
        ops_per_host=sum(ops) / config.n_hosts,
        n_sends=n_sends,
        n_receives=n_receives,
        basic_per_host=basics,
        total_basics=total_basics,
        tp_forced=0.5 * n_receives,
        bcs_forced_upper=total_basics * (config.n_hosts - 1),
    )
