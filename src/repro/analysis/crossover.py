"""Cost crossover: when do TP's dense checkpoints pay for themselves?

The failure-injection harness exposes the real contract behind the
paper's comparison: TP takes ~20x the checkpoints of the index-based
protocols, but each checkpoint anchors a *fresh* consistent line, so a
crash undoes far less work; BCS/QBC pay a tiny failure-free premium but
their min-index line lags.  Which protocol minimises total cost depends
on the failure rate.

This module sweeps the failure rate and finds the break-even under an
explicit linear cost model:

    total_cost = ckpt_unit_cost  * N_tot
               + lost_unit_cost  * total_lost_work

Both unit costs are parameters (a checkpoint costs wireless transfer +
MSS storage; lost work costs recomputation).  The result reports, per
failure interval, each protocol's cost and the cheapest protocol -- and
the interval (if any) where the cheapest choice flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.failures import run_with_failures
from repro.protocols.base import CheckpointingProtocol
from repro.workload.config import WorkloadConfig


@dataclass(slots=True)
class CostPoint:
    """Costs of one protocol at one failure interval."""

    protocol: str
    failure_mean_interval: float
    n_failures: int
    n_total: int
    lost_work: float
    total_cost: float


@dataclass(slots=True)
class CrossoverResult:
    """Outcome of a failure-rate cost sweep."""

    ckpt_unit_cost: float
    lost_unit_cost: float
    points: list[CostPoint] = field(default_factory=list)

    def cheapest_at(self, interval: float) -> str:
        """Protocol with the lowest total cost at *interval*."""
        candidates = [p for p in self.points if p.failure_mean_interval == interval]
        if not candidates:
            raise ValueError(f"no data at interval {interval}")
        return min(candidates, key=lambda p: p.total_cost).protocol

    def intervals(self) -> list[float]:
        """Failure intervals present in the sweep, in insertion order."""
        seen: list[float] = []
        for p in self.points:
            if p.failure_mean_interval not in seen:
                seen.append(p.failure_mean_interval)
        return seen

    def crossover_interval(self) -> float | None:
        """First interval (sweeping from frequent failures to rare ones)
        where the cheapest protocol changes; None when one protocol
        dominates the whole sweep."""
        order = sorted(self.intervals())
        winners = [self.cheapest_at(iv) for iv in order]
        for prev, curr, iv in zip(winners, winners[1:], order[1:]):
            if prev != curr:
                return iv
        return None


def cost_sweep(
    config: WorkloadConfig,
    protocol_factories: dict[str, Callable[[], CheckpointingProtocol]],
    failure_intervals: Sequence[float],
    ckpt_unit_cost: float = 1.0,
    lost_unit_cost: float = 1.0,
) -> CrossoverResult:
    """Run every protocol at every failure interval and price the runs.

    ``protocol_factories`` maps a display name to a zero-argument
    factory producing a *fresh* protocol instance.
    """
    if ckpt_unit_cost < 0 or lost_unit_cost < 0:
        raise ValueError("unit costs must be >= 0")
    if not failure_intervals:
        raise ValueError("need at least one failure interval")
    result = CrossoverResult(
        ckpt_unit_cost=ckpt_unit_cost, lost_unit_cost=lost_unit_cost
    )
    for interval in failure_intervals:
        for name, factory in protocol_factories.items():
            run = run_with_failures(
                config, factory(), failure_mean_interval=interval
            )
            n_total = run.protocol.n_total
            cost = (
                ckpt_unit_cost * n_total
                + lost_unit_cost * run.total_lost_work
            )
            result.points.append(
                CostPoint(
                    protocol=name,
                    failure_mean_interval=interval,
                    n_failures=run.n_failures,
                    n_total=n_total,
                    lost_work=run.total_lost_work,
                    total_cost=cost,
                )
            )
    return result
