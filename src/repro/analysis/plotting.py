"""Terminal-friendly ASCII plots of figure sweeps.

The paper's figures are log-log plots of ``N_tot`` vs ``T_switch`` with
one curve per protocol; :func:`ascii_plot` renders the same picture in a
report without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Curve glyphs assigned to series in insertion order.
_GLYPHS = "*+ox#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError(f"log axis requires positive values, got {v}")
        return math.log10(v)
    return v


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render curves of (x, y) points as an ASCII grid.

    Parameters
    ----------
    series:
        Name -> list of (x, y) points (need not be sorted).
    width, height:
        Plot-area size in characters.
    log_x, log_y:
        Use log10 axes (the paper's figures are log-log).
    """
    if not series:
        raise ValueError("nothing to plot")
    pts = [
        (_transform(x, log_x), _transform(y, log_y))
        for curve in series.values()
        for x, y in curve
    ]
    if not pts:
        raise ValueError("all series are empty")
    xs, ys = zip(*pts)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, curve), glyph in zip(series.items(), _GLYPHS):
        for x, y in curve:
            cx = _transform(x, log_x)
            cy = _transform(y, log_y)
            col = round((cx - x_lo) / x_span * (width - 1))
            row = height - 1 - round((cy - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append(legend)
    y_top = 10**y_hi if log_y else y_hi
    y_bot = 10**y_lo if log_y else y_lo
    lines.append(f"{y_top:>10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_bot:>10.4g} +" + "-" * width + "+")
    x_left = 10**x_lo if log_x else x_lo
    x_right = 10**x_hi if log_x else x_hi
    lines.append(" " * 12 + f"{x_left:<.4g}" + " " * (width - 16) + f"{x_right:>.4g}")
    return "\n".join(lines)
