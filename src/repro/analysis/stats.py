"""Sample statistics for multi-seed simulation runs.

The paper reports that "we did several simulation runs with different
seeds and the result were within 4% of each other, thus, variance is not
reported in the plots" -- :func:`relative_spread` and
:func:`within_tolerance` reproduce exactly that check, and
:func:`confidence_interval` provides the Student-t interval for reports
that do want error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(slots=True, frozen=True)
class SampleSummary:
    """Mean/spread summary of one sample of run outcomes."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean -- the paper's run-agreement measure."""
        return (self.maximum - self.minimum) / self.mean if self.mean else 0.0


def summarize(values: Sequence[float]) -> SampleSummary:
    """Summary statistics of *values* (sample std, ddof=1)."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return SampleSummary(
        n=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean of the sample."""
    return summarize(values).relative_spread


def within_tolerance(values: Sequence[float], tolerance: float = 0.04) -> bool:
    """True when all runs agree within *tolerance* (paper: 4%)."""
    return relative_spread(values) <= tolerance


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of *values*."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    s = summarize(values)
    if s.n < 2:
        return (s.mean, s.mean)
    half = (
        _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=s.n - 1)
        * s.std
        / math.sqrt(s.n)
    )
    return (s.mean - half, s.mean + half)
