"""The assembled mobile system: hosts + MSSs + channels + routing.

:class:`MobileSystem` offers the four primitives the paper's model needs
-- ``send_application``, ``switch_cell``, ``disconnect``, ``reconnect``
-- plus ``store_checkpoint`` as the single integration point between
checkpointing protocols and MSS stable storage (including the cross-MSS
base fetch after a handoff).

Latency model (paper Section 5.1): every wireless leg and every MSS-MSS
wired transfer costs ``leg_latency`` (0.01) time units.  Routing:

``src MH --wireless--> src MSS --wired--> dst MSS --wireless--> dst MH``

with the wired leg skipped when both hosts share a cell.  If the
destination moved while the message was in flight, the stale MSS
forwards it (an extra wired leg, counted by the location directory); if
it disconnected, the last MSS buffers the message and releases it at
reconnection -- together with the reliable channels this yields the
at-least-once delivery semantic assumed in Section 3 (an optional
``duplicate_prob`` exercises the *more-than-once* part; duplicates are
suppressed at the destination like a transport layer would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.des.core import Environment
from repro.des.rng import RandomStreams
from repro.net.channels import Channel
from repro.net.host import HostState, MobileHost
from repro.net.location import LocationDirectory
from repro.net.message import ControlKind, Message, MessageKind
from repro.net.mss import MobileSupportStation
from repro.storage.stable import CheckpointRecord


@dataclass(slots=True)
class NetworkParams:
    """Static configuration of the mobile system."""

    n_hosts: int = 10
    n_mss: int = 5
    #: Latency of each wireless or wired leg (paper: 0.01).
    leg_latency: float = 0.01
    #: Initial cell of each host; default spreads hosts round-robin.
    initial_placement: Optional[list[int]] = None
    #: Probability that the wired leg delivers a duplicate (default off;
    #: exercises the at-least-once semantic of Section 3).
    duplicate_prob: float = 0.0
    #: Pessimistic message logging at the source MSS (cf. the
    #: Acharya-Badrinath system): records every application message's
    #: id so in-transit messages can be replayed after a rollback
    #: instead of being lost.
    log_messages: bool = False
    #: Bytes charged per stored checkpoint in the storage model.
    checkpoint_bytes: int = 4096

    def placement(self) -> list[int]:
        if self.initial_placement is not None:
            if len(self.initial_placement) != self.n_hosts:
                raise ValueError(
                    f"initial_placement needs {self.n_hosts} entries, "
                    f"got {len(self.initial_placement)}"
                )
            bad = [m for m in self.initial_placement if not 0 <= m < self.n_mss]
            if bad:
                raise ValueError(f"placement references unknown MSS ids {bad}")
            return list(self.initial_placement)
        return [h % self.n_mss for h in range(self.n_hosts)]

    def validate(self) -> None:
        if self.n_hosts < 2:
            raise ValueError("need at least 2 hosts to exchange messages")
        if self.n_mss < 1:
            raise ValueError("need at least 1 MSS")
        if self.leg_latency < 0:
            raise ValueError("leg_latency must be >= 0")
        if not 0.0 <= self.duplicate_prob < 1.0:
            raise ValueError("duplicate_prob must be in [0, 1)")


class MobileSystem:
    """Runtime assembly of the mobile environment."""

    def __init__(
        self,
        env: Environment,
        params: NetworkParams,
        rng: Optional[RandomStreams] = None,
    ):
        params.validate()
        self.env = env
        self.params = params
        self.rng = rng or RandomStreams(0)
        placement = params.placement()
        self.stations = [MobileSupportStation(m) for m in range(params.n_mss)]
        self.hosts = [
            MobileHost(env, h, placement[h]) for h in range(params.n_hosts)
        ]
        for host in self.hosts:
            self.stations[host.mss_id].register(host.host_id)
        self.directory = LocationDirectory(params.n_hosts, placement)
        self.wireless = [
            Channel(env, params.leg_latency, name=f"wireless/cell{m}")
            for m in range(params.n_mss)
        ]
        self.wired = Channel(env, params.leg_latency, name="wired/fabric")
        #: Per-host set of delivered msg ids (duplicate suppression).
        self._delivered: list[set[int]] = [set() for _ in range(params.n_hosts)]
        #: System-local message ids: keeps traces deterministic across
        #: runs in one process (the module-level Message counter is
        #: shared by every system and by control traffic).
        self._next_msg_id = 0
        #: Called with (host, message) right after an inbox insertion.
        self.on_deliver: Optional[Callable[[MobileHost, Message], None]] = None
        self.control_message_count = 0
        self.checkpoint_fetches = 0
        self.duplicates_suppressed = 0

    # ------------------------------------------------------------------
    # application traffic
    # ------------------------------------------------------------------
    def send_application(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        piggyback: Optional[dict[str, Any]] = None,
        piggyback_ints: int = 0,
    ) -> Message:
        """Send one application message; returns the Message object.

        The *send operation* is instantaneous for the sender (paper
        model); delivery into the destination inbox happens after the
        routed legs' latencies.
        """
        if src == dst:
            raise ValueError(f"host {src} cannot send to itself")
        sender = self.hosts[src]
        if not sender.is_connected:
            raise RuntimeError(f"host {src} is disconnected and cannot send")
        msg = Message(
            src=src,
            dst=dst,
            kind=MessageKind.APPLICATION,
            payload=payload,
            piggyback=dict(piggyback or {}),
            piggyback_ints=piggyback_ints,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        msg.sent_at = self.env.now
        sender.sent_count += 1
        sender.wireless_sends += 1
        # Leg 1: wireless up to the sender's current MSS.
        up = self.wireless[sender.mss_id]
        up.transmit(msg, lambda m, mss=sender.mss_id: self._at_mss(m, mss))
        return msg

    def _at_mss(self, msg: Message, mss_id: int) -> None:
        """Message arrived (over any leg) at MSS *mss_id*: route onward."""
        assert msg.dst is not None
        if self.params.log_messages and msg.hops == 1:
            # First MSS on the path (the sender's): log pessimistically.
            self.stations[mss_id].message_log.add(msg.msg_id)
        current = self.directory.locate(msg.dst)
        if current is None:
            # Destination disconnected: buffer at its last MSS.
            home = self.directory.buffering_mss(msg.dst)
            assert home is not None
            if home == mss_id:
                self.stations[mss_id].buffer_message(msg)
            else:
                self.wired.transmit(
                    msg, lambda m, h=home: self._buffer_at(m, h)
                )
            return
        if current == mss_id:
            # Leg 3: wireless down into the destination's cell.
            self.wireless[mss_id].transmit(
                msg, lambda m, c=mss_id: self._deliver(m, c)
            )
            return
        # Leg 2: wired transfer towards the destination's current MSS.
        if msg.hops > 1:  # this MSS is not the first wired stop: a forward
            self.directory.note_forward()
            self.stations[mss_id].forwarded_messages += 1
        self.wired.transmit(msg, lambda m, c=current: self._at_mss(m, c))
        if self.params.duplicate_prob > 0.0 and self.rng.bernoulli(
            "net/duplicates", self.params.duplicate_prob
        ):
            dup = Message(
                src=msg.src,
                dst=msg.dst,
                kind=msg.kind,
                payload=msg.payload,
                piggyback=dict(msg.piggyback),
                piggyback_ints=msg.piggyback_ints,
                msg_id=msg.msg_id,  # same identity: a true duplicate
            )
            dup.sent_at = msg.sent_at
            self.wired.transmit(dup, lambda m, c=current: self._at_mss(m, c))

    def _buffer_at(self, msg: Message, mss_id: int) -> None:
        host_mss = self.directory.locate(msg.dst)  # may have reconnected
        if host_mss is not None:
            self._at_mss(msg, mss_id)
            return
        self.stations[mss_id].buffer_message(msg)

    def _deliver(self, msg: Message, cell: int) -> None:
        """Final wireless hop (in *cell*) reached the destination host."""
        assert msg.dst is not None
        host = self.hosts[msg.dst]
        if not host.is_connected:
            # Disconnected between MSS dispatch and air delivery: buffer.
            home = self.directory.buffering_mss(msg.dst)
            if home is not None:
                self.stations[home].buffer_message(msg)
            return
        if host.mss_id != cell:
            # Host switched cells during the final hop: the old MSS
            # forwards the message towards the new one.
            self._at_mss(msg, cell)
            return
        if msg.msg_id in self._delivered[msg.dst]:
            self.duplicates_suppressed += 1
            return
        self._delivered[msg.dst].add(msg.msg_id)
        host.inbox.put(msg)
        if self.on_deliver is not None:
            self.on_deliver(host, msg)

    # ------------------------------------------------------------------
    # mobility operations
    # ------------------------------------------------------------------
    def switch_cell(self, host_id: int, new_mss: int) -> None:
        """Hand the host off to *new_mss* (paper: a 2-message protocol)."""
        host = self.hosts[host_id]
        if not host.is_connected:
            raise RuntimeError(f"host {host_id} cannot switch cells while disconnected")
        if not 0 <= new_mss < self.params.n_mss:
            raise ValueError(f"unknown MSS {new_mss}")
        if new_mss == host.mss_id:
            raise ValueError(f"host {host_id} is already in cell {new_mss}")
        old_mss = host.mss_id
        self._send_control(host_id, old_mss, ControlKind.HANDOFF_LEAVE)
        self._send_control(host_id, new_mss, ControlKind.HANDOFF_JOIN)
        self.stations[old_mss].deregister(host_id)
        self.stations[new_mss].register(host_id)
        host.mss_id = new_mss
        host.handoff_count += 1
        self.directory.moved(host_id, new_mss)

    def disconnect(self, host_id: int) -> None:
        """Voluntary disconnection (1 control message to the current MSS)."""
        host = self.hosts[host_id]
        if not host.is_connected:
            raise RuntimeError(f"host {host_id} is already disconnected")
        self._send_control(host_id, host.mss_id, ControlKind.DISCONNECT)
        self.stations[host.mss_id].deregister(host_id)
        host.state = HostState.DISCONNECTED
        host.disconnect_count += 1
        self.directory.disconnected(host_id)

    def reconnect(self, host_id: int, mss_id: Optional[int] = None) -> None:
        """Reconnect into cell *mss_id* (default: the last cell).

        Messages buffered during the disconnection are released into the
        host's inbox after one wireless leg each.
        """
        host = self.hosts[host_id]
        if host.is_connected:
            raise RuntimeError(f"host {host_id} is already connected")
        home = self.directory.buffering_mss(host_id)
        target = mss_id if mss_id is not None else home
        assert target is not None
        if not 0 <= target < self.params.n_mss:
            raise ValueError(f"unknown MSS {target}")
        host.state = HostState.ACTIVE
        host.mss_id = target
        self.stations[target].register(host_id)
        self.directory.reconnected(host_id, target)
        self._send_control(host_id, target, ControlKind.RECONNECT)
        assert home is not None
        pending = self.stations[home].drain_buffer(host_id)
        for msg in pending:
            if home != target:
                self.wired.transmit(msg, lambda m, t=target: self._at_mss(m, t))
            else:
                self.wireless[target].transmit(
                    msg, lambda m, c=target: self._deliver(m, c)
                )

    def _send_control(self, host_id: int, mss_id: int, kind: ControlKind) -> None:
        """One wireless control message from host to an MSS (accounting)."""
        msg = Message(
            src=host_id,
            dst=None,
            kind=MessageKind.CONTROL,
            control=kind,
            dst_mss=mss_id,
        )
        msg.sent_at = self.env.now
        self.control_message_count += 1
        self.hosts[host_id].wireless_sends += 1
        self.wireless[mss_id].transmit(msg, lambda m: None)

    # ------------------------------------------------------------------
    # checkpoint storage integration
    # ------------------------------------------------------------------
    def store_checkpoint(
        self,
        host_id: int,
        index: int,
        reason: str,
        metadata: Optional[dict[str, Any]] = None,
        size_bytes: Optional[int] = None,
        incremental: bool = False,
        base_index: Optional[int] = None,
    ) -> CheckpointRecord:
        """Persist a checkpoint of *host_id* at its current MSS.

        If the checkpoint is incremental and the base record lives at a
        different MSS (the host switched cells since), the base is
        fetched over the wired network first (counted; paper Section 2.2
        "transfer operation to fetch the last checkpoint").
        """
        host = self.hosts[host_id]
        mss = self.stations[host.mss_id]
        if incremental and base_index is not None:
            if mss.storage.get(host_id, base_index) is None:
                donor = self._find_record_holder(host_id, base_index)
                if donor is not None:
                    rec = donor.storage.serve_fetch(host_id, base_index)
                    assert rec is not None
                    self.checkpoint_fetches += 1
                    fetch = Message(
                        src=host_id,
                        dst=None,
                        kind=MessageKind.CONTROL,
                        control=ControlKind.CKPT_FETCH,
                        dst_mss=mss.mss_id,
                    )
                    self.wired.transmit(fetch, lambda m: None)
                    migrated = CheckpointRecord(
                        host_id=rec.host_id,
                        index=rec.index,
                        taken_at=rec.taken_at,
                        mss_id=mss.mss_id,
                        reason=rec.reason,
                        size_bytes=0,  # a copy, not new state
                        incremental=rec.incremental,
                        base_index=rec.base_index,
                        metadata=dict(rec.metadata),
                    )
                    mss.storage.store(migrated)
        record = CheckpointRecord(
            host_id=host_id,
            index=index,
            taken_at=self.env.now,
            mss_id=mss.mss_id,
            reason=reason,
            size_bytes=(
                size_bytes if size_bytes is not None else self.params.checkpoint_bytes
            ),
            incremental=incremental,
            base_index=base_index,
            metadata=dict(metadata or {}),
        )
        mss.storage.store(record)
        return record

    def _find_record_holder(
        self, host_id: int, index: int
    ) -> Optional[MobileSupportStation]:
        for station in self.stations:
            if station.storage.get(host_id, index) is not None:
                return station
        return None

    # ------------------------------------------------------------------
    def connected_hosts(self) -> list[int]:
        """Ids of currently connected hosts."""
        return [h.host_id for h in self.hosts if h.is_connected]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MobileSystem hosts={self.params.n_hosts} "
            f"mss={self.params.n_mss} t={self.env.now}>"
        )
