"""Location management.

The paper's point (d): delivering anything to a mobile host first costs
a *location* step.  The directory maps each host to its current MSS; it
is updated by handoff/disconnect/reconnect and counts lookups so the
experiment layer can report location cost.  A message routed to a stale
MSS (the host moved while the message was in flight) triggers a
*forwarding* hop, also counted here.
"""

from __future__ import annotations

from typing import Optional


class LocationDirectory:
    """Host -> current-MSS mapping with lookup/forward accounting."""

    def __init__(self, n_hosts: int, initial_mss: list[int]):
        if len(initial_mss) != n_hosts:
            raise ValueError(
                f"initial_mss has {len(initial_mss)} entries for {n_hosts} hosts"
            )
        self._current: list[Optional[int]] = list(initial_mss)
        #: MSS that buffers for a disconnected host (its last cell).
        self._home_while_disconnected: list[Optional[int]] = [None] * n_hosts
        self.lookup_count = 0
        self.update_count = 0
        self.forward_count = 0

    def locate(self, host_id: int) -> Optional[int]:
        """Current MSS of *host_id*; ``None`` while disconnected."""
        self.lookup_count += 1
        return self._current[host_id]

    def buffering_mss(self, host_id: int) -> Optional[int]:
        """MSS holding buffered traffic for a disconnected host."""
        return self._home_while_disconnected[host_id]

    def moved(self, host_id: int, new_mss: int) -> None:
        """Record a cell switch."""
        self._current[host_id] = new_mss
        self.update_count += 1

    def disconnected(self, host_id: int) -> None:
        """Record a voluntary disconnection (last MSS becomes buffer)."""
        self._home_while_disconnected[host_id] = self._current[host_id]
        self._current[host_id] = None
        self.update_count += 1

    def reconnected(self, host_id: int, mss_id: int) -> None:
        """Record a reconnection into cell *mss_id*."""
        self._current[host_id] = mss_id
        self._home_while_disconnected[host_id] = None
        self.update_count += 1

    def note_forward(self) -> None:
        """Count one stale-location forwarding hop."""
        self.forward_count += 1
