"""Channel model: fixed-latency legs with usage accounting.

The paper charges 0.01 time units per traversed leg (wireless up,
MSS-MSS wired, wireless down) and motivates protocol design with
*channel contention* and *energy consumption* (Section 2.1, points b/e).
:class:`Channel` therefore counts messages and piggyback volume per leg
so the experiment harness can report contention/energy proxies alongside
checkpoint counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.des.core import Environment


@dataclass
class ChannelStats:
    """Cumulative usage counters for one channel."""

    messages: int = 0
    control_messages: int = 0
    piggyback_ints: int = 0
    busy_time: float = 0.0

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Return the element-wise sum of two stat records."""
        return ChannelStats(
            messages=self.messages + other.messages,
            control_messages=self.control_messages + other.control_messages,
            piggyback_ints=self.piggyback_ints + other.piggyback_ints,
            busy_time=self.busy_time + other.busy_time,
        )


class Channel:
    """A unidirectional fixed-latency transmission leg.

    Parameters
    ----------
    env:
        Simulation environment.
    latency:
        Per-message traversal time (paper: 0.01).
    name:
        Diagnostic label, e.g. ``"wireless/cell3"`` or ``"wired/1->4"``.

    Notes
    -----
    The paper models channels as delay-only (no queueing); capacity
    contention shows up through the *counters*, which the analysis layer
    converts into contention/energy proxies.  ``transmit`` hence only
    schedules the delivery callback ``latency`` in the future.
    """

    __slots__ = ("env", "latency", "name", "stats")

    def __init__(self, env: Environment, latency: float, name: str = "channel"):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.env = env
        self.latency = latency
        self.name = name
        self.stats = ChannelStats()

    def transmit(
        self,
        message,
        deliver: Callable[[object], None],
        extra_delay: float = 0.0,
    ) -> None:
        """Send *message* through the channel; call ``deliver(message)``
        after the channel latency (plus *extra_delay*)."""
        self.stats.messages += 1
        if not getattr(message, "is_application", False):
            self.stats.control_messages += 1
        self.stats.piggyback_ints += getattr(message, "piggyback_ints", 0)
        self.stats.busy_time += self.latency
        message.hops += 1
        self.env.call_later(self.latency + extra_delay, lambda: deliver(message))


def total_stats(channels: list[Channel]) -> ChannelStats:
    """Aggregate the stats of several channels."""
    agg = ChannelStats()
    for ch in channels:
        agg = agg.merge(ch.stats)
    return agg
