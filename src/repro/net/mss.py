"""Mobile support stations.

An MSS is the wired-network access point of every MH currently in its
cell (paper Section 1).  It:

* forwards application messages between the wireless and wired sides,
* buffers messages addressed to hosts that disconnected from its cell,
  delivering them at reconnection (at-least-once semantics),
* hosts a :class:`~repro.storage.stable.StableStorage` bay for the
  checkpoints of the MHs it serves,
* serves checkpoint fetches from other MSSs after handoffs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.storage.stable import StableStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


class MobileSupportStation:
    """One MSS / cell."""

    __slots__ = (
        "mss_id",
        "registered",
        "buffered",
        "storage",
        "forwarded_messages",
        "buffered_messages",
        "message_log",
    )

    def __init__(self, mss_id: int):
        self.mss_id = mss_id
        #: Host ids currently registered in this cell.
        self.registered: set[int] = set()
        #: Messages held for disconnected hosts, per host id.
        self.buffered: dict[int, list["Message"]] = defaultdict(list)
        self.storage = StableStorage(mss_id)
        self.forwarded_messages = 0
        self.buffered_messages = 0
        #: Pessimistic message log (msg ids seen at this MSS), enabling
        #: replay of in-transit messages after a rollback.  Populated
        #: only when NetworkParams.log_messages is on.
        self.message_log: set[int] = set()

    # -- registration ------------------------------------------------------
    def register(self, host_id: int) -> None:
        """A host entered this cell (initial placement, handoff join, or
        reconnection)."""
        self.registered.add(host_id)

    def deregister(self, host_id: int) -> None:
        """A host left this cell (handoff leave or disconnection)."""
        self.registered.discard(host_id)

    def serves(self, host_id: int) -> bool:
        """True while *host_id* is registered in this cell."""
        return host_id in self.registered

    # -- buffering for disconnected hosts -----------------------------------
    def buffer_message(self, msg: "Message") -> None:
        """Hold *msg* for a disconnected host last seen in this cell."""
        assert msg.dst is not None
        self.buffered[msg.dst].append(msg)
        self.buffered_messages += 1

    def drain_buffer(self, host_id: int) -> list["Message"]:
        """Release (in arrival order) everything held for *host_id*."""
        return self.buffered.pop(host_id, [])

    def pending_for(self, host_id: int) -> int:
        """Number of messages buffered for a disconnected host."""
        return len(self.buffered.get(host_id, ()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MSS {self.mss_id} hosts={sorted(self.registered)} "
            f"ckpts={len(self.storage)}>"
        )
