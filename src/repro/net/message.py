"""Message types exchanged in the mobile system.

Application messages carry a protocol *piggyback* (the communication-
induced checkpointing control information: a single integer index for
BCS/QBC, dependency vectors for TP).  Control messages implement the
handoff/disconnection protocols and, for the coordinated baselines,
markers and coordination rounds.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class MessageKind(enum.Enum):
    """Top-level classification of a network message."""

    APPLICATION = "app"
    CONTROL = "ctrl"


class ControlKind(enum.Enum):
    """Sub-kinds of control messages (paper Sections 2-3)."""

    #: Handoff leg 1: MH tells the MSS it is leaving.
    HANDOFF_LEAVE = "handoff_leave"
    #: Handoff leg 2: MH registers with the new MSS.
    HANDOFF_JOIN = "handoff_join"
    #: Voluntary disconnection notice to the current MSS.
    DISCONNECT = "disconnect"
    #: Reconnection notice (also flushes buffered messages).
    RECONNECT = "reconnect"
    #: Chandy-Lamport marker (coordinated baseline).
    MARKER = "marker"
    #: Coordinated-protocol request/ack pair (Koo-Toueg etc.).
    CKPT_REQUEST = "ckpt_request"
    CKPT_ACK = "ckpt_ack"
    #: Fetch of a checkpoint between MSSs after a cell switch.
    CKPT_FETCH = "ckpt_fetch"


_msg_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """A message travelling through the mobile system.

    Parameters
    ----------
    src, dst:
        Host identifiers (``int`` indices).  Control messages addressed
        to an MSS use ``dst_mss`` instead and leave ``dst`` as ``None``.
    kind:
        Application or control.
    payload:
        Application payload (opaque).
    piggyback:
        Protocol control information attached by the checkpointing
        protocol of the sender (e.g. ``{"sn": 3}`` for index-based
        protocols).
    piggyback_ints:
        Size of the piggyback measured in integers -- the paper's
        scalability argument (TP carries two n-vectors, index-based
        protocols one integer).
    """

    src: int
    dst: Optional[int]
    kind: MessageKind = MessageKind.APPLICATION
    control: Optional[ControlKind] = None
    dst_mss: Optional[int] = None
    payload: Any = None
    piggyback: dict[str, Any] = field(default_factory=dict)
    piggyback_ints: int = 0
    #: Unique id; also used to pair send/receive events in traces.
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    #: Simulation time of the send operation (stamped by MobileSystem).
    sent_at: float = float("nan")
    #: Number of network legs traversed so far (diagnostics).
    hops: int = 0

    @property
    def is_application(self) -> bool:
        """True for application messages (the ones protocols act on)."""
        return self.kind is MessageKind.APPLICATION

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = self.control.value if self.control else "app"
        return f"<Message #{self.msg_id} {tag} {self.src}->{self.dst}>"


def reset_message_ids() -> None:
    """Restart the global message-id counter (test isolation helper)."""
    global _msg_counter
    _msg_counter = itertools.count()
