"""Mobile network substrate.

Implements the system model of the paper's Section 3: ``n`` mobile hosts
(MHs) reach the wired network through ``r`` mobile support stations
(MSSs), each MSS serving one wireless cell.  Every application message
travels MH -> current MSS (wireless), MSS -> MSS (wired, skipped when
src/dst share a cell), MSS -> MH (wireless); each traversed leg costs a
fixed latency (0.01 time units in the paper).

Public pieces:

* :class:`~repro.net.message.Message` / control-message kinds,
* :class:`~repro.net.host.MobileHost` runtime state + inbox,
* :class:`~repro.net.mss.MobileSupportStation` with buffering for
  disconnected hosts and a stable-storage bay,
* :class:`~repro.net.location.LocationDirectory`,
* :class:`~repro.net.channels.Channel` latency/accounting,
* :class:`~repro.net.system.MobileSystem` tying it all together
  (send / handoff / disconnect / reconnect).
"""

from repro.net.channels import Channel, ChannelStats
from repro.net.host import HostState, MobileHost
from repro.net.location import LocationDirectory
from repro.net.message import ControlKind, Message, MessageKind
from repro.net.mss import MobileSupportStation
from repro.net.system import MobileSystem, NetworkParams

__all__ = [
    "Channel",
    "ChannelStats",
    "ControlKind",
    "HostState",
    "LocationDirectory",
    "Message",
    "MessageKind",
    "MobileHost",
    "MobileSupportStation",
    "MobileSystem",
    "NetworkParams",
]
