"""Mobile-host runtime state.

A :class:`MobileHost` is a passive record manipulated by
:class:`~repro.net.system.MobileSystem`: it tracks the host's current
cell, connection state, and the FIFO inbox of application messages
awaiting an explicit *receive operation* (paper Section 5.1: on each
communication step the host performs a send with probability ``P_s``,
otherwise a receive).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.des.core import Environment
from repro.des.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


class HostState(enum.Enum):
    """Connection state of a mobile host."""

    ACTIVE = "active"
    DISCONNECTED = "disconnected"


class MobileHost:
    """State of one mobile host.

    Parameters
    ----------
    env:
        Simulation environment.
    host_id:
        Index in ``range(n_hosts)``.
    mss_id:
        Identifier of the MSS whose cell the host starts in.
    """

    __slots__ = (
        "env",
        "host_id",
        "mss_id",
        "state",
        "inbox",
        "sent_count",
        "received_count",
        "handoff_count",
        "disconnect_count",
        "wireless_sends",
    )

    def __init__(self, env: Environment, host_id: int, mss_id: int):
        self.env = env
        self.host_id = host_id
        self.mss_id = mss_id
        self.state = HostState.ACTIVE
        #: Application messages delivered over the air, awaiting an
        #: explicit receive operation.
        self.inbox: Store = Store(env)
        self.sent_count = 0
        self.received_count = 0
        self.handoff_count = 0
        self.disconnect_count = 0
        #: Wireless transmissions originated by this host (energy proxy).
        self.wireless_sends = 0

    @property
    def is_connected(self) -> bool:
        """True while the host is reachable in some cell."""
        return self.state is HostState.ACTIVE

    def try_receive(self) -> Optional["Message"]:
        """Consume the oldest inbox message, or ``None`` if empty.

        This is the non-blocking receive operation used by the paper
        workload (see DESIGN.md "Model decisions").
        """
        ok, msg = self.inbox.try_get()
        if not ok:
            return None
        self.received_count += 1
        return msg

    def receive_event(self):
        """Blocking receive: an event that fires with the next message.

        Offered for the ``block_on_empty_receive`` workload variant.
        """
        ev = self.inbox.get()

        def _count(event):
            if event.ok:
                self.received_count += 1

        ev.add_callback(_count)
        return ev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MobileHost h{self.host_id} cell={self.mss_id} "
            f"{self.state.value} inbox={len(self.inbox)}>"
        )
