"""Chandy-Lamport coordinated snapshots (baseline, online-mode only).

The paper's Section 2 uses Chandy-Lamport [8] to illustrate why plain
coordinated checkpointing fits mobile systems poorly: every snapshot
round must *locate* each mobile host (point d), floods control messages
through contended wireless cells (points a/b/e), and does not scale
with the number of hosts (point f).

The executable implementation lives in :mod:`repro.core.online`
(coordinated baselines cannot be trace-replayed -- their markers perturb
the schedule); this module provides the convenience entry point.
"""

from __future__ import annotations

from repro.core.online import CoordinatedResult, CoordinatedScheme, run_coordinated
from repro.workload.config import WorkloadConfig


def run_chandy_lamport(
    config: WorkloadConfig, snapshot_interval: float, initiator: int = 0
) -> CoordinatedResult:
    """Run the workload under periodic Chandy-Lamport snapshots."""
    return run_coordinated(
        config,
        CoordinatedScheme.CHANDY_LAMPORT,
        snapshot_interval,
        initiator=initiator,
    )
