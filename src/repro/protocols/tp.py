"""TP: the Acharya-Badrinath two-phase protocol.

Paper Section 4.1 -- an adaptation of Russell's protocol to mobile
systems.  Each host carries a phase flag:

* sending a message sets ``phase := SEND``;
* receiving while ``phase = SEND`` forces a checkpoint (then
  ``phase := RECV``).

This guarantees no host receives after sending within one checkpoint
interval, which is what makes every local checkpoint part of a
consistent global checkpoint.  To *build* that global checkpoint on the
fly, every message additionally piggybacks two n-vectors:

* ``CKPT_i[]`` -- transitive dependency vector over checkpoint
  intervals (``CKPT_i[i]`` is the index of i's latest checkpoint);
* ``LOC_i[]`` -- the MSS where each of those checkpoints is stored,
  enabling efficient retrieval over the wired network.

Both vectors are recorded on stable storage with each checkpoint.  The
O(n) piggyback is the protocol's scalability weakness the paper calls
out.

Model note (under-specified in the paper's pseudocode): a *basic*
checkpoint also resets ``phase := RECV``.  Russell's rule only needs a
checkpoint between the last send and the next receive, and the basic
checkpoint provides exactly that, so a forced checkpoint right after it
would be redundant.  This reading is charitable to TP; even so TP takes
far more checkpoints than the index-based protocols.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import CheckpointingProtocol, register

_RECV = 0
_SEND = 1


@register("TP")
class TwoPhaseProtocol(CheckpointingProtocol):
    """Two-phase (send/receive) communication-induced checkpointing."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: local phase-flag placement plus the CKPT/LOC
        matrix fixpoint in logging mode (see
        :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import tp_replay

        tp_replay(vt, instances)

    def __init__(self, n_hosts: int, n_mss: int = 1, initial_cells=None):
        super().__init__(n_hosts, n_mss)
        self.phase = [_RECV] * n_hosts
        #: Next checkpoint index per host (C_{i,x} numbering).
        self.count = [0] * n_hosts
        cells = (
            list(initial_cells)
            if initial_cells is not None
            else [h % n_mss for h in range(n_hosts)]
        )
        if len(cells) != n_hosts:
            raise ValueError("initial_cells must have one entry per host")
        self.cell = cells
        #: CKPT_i[j]: largest checkpoint index of j that i's current
        #: interval transitively depends on (-1 = no dependency yet).
        self.ckpt_vec = [[-1] * n_hosts for _ in range(n_hosts)]
        #: LOC_i[j]: MSS storing that checkpoint of j (-1 = unknown).
        self.loc_vec = [[-1] * n_hosts for _ in range(n_hosts)]
        #: Cached (tuple(CKPT_i), tuple(LOC_i)) piggyback per host;
        #: None while the live vectors have changed since the last
        #: snapshot.  Saves the two O(n) tuple builds on every send in
        #: an unchanged interval, and checkpoint metadata reuses the
        #: same immutable snapshots.
        self._snapshot: list = [None] * n_hosts
        for host in range(n_hosts):
            self._checkpoint(host, "initial", 0.0)

    @property
    def piggyback_ints(self) -> int:
        return 2 * self.n_hosts  # CKPT[] and LOC[] vectors

    # ------------------------------------------------------------------
    def _checkpoint(self, host: int, reason: str, now: float) -> None:
        index = self.count[host]
        self.count[host] += 1
        if self.log_checkpoints:
            self.ckpt_vec[host][host] = index
            self.loc_vec[host][host] = self.cell[host]
            # Snapshot the vectors once: the immutable tuples serve both
            # the checkpoint metadata and the next sends of this interval.
            snapshot = (tuple(self.ckpt_vec[host]), tuple(self.loc_vec[host]))
            self._snapshot[host] = snapshot
            self.take(
                host,
                index,
                reason,
                now,
                metadata={"ckpt_vec": snapshot[0], "loc_vec": snapshot[1]},
            )
        else:
            # Counters-only mode: TP's checkpoint *placement* depends on
            # nothing but the phase flag -- the CKPT/LOC vectors are
            # recovery-line metadata that never decides when a
            # checkpoint is taken -- so lean mode maintains no
            # dependency state at all.  The counter updates are
            # :meth:`take` inlined; TP forces a checkpoint on roughly
            # every other receive, making this its hottest
            # non-dispatch path under the fused sweep engine.
            self.last_index[host] = index
            if reason == "forced":
                self.n_forced += 1
                self.per_host_total[host] += 1
            elif reason == "basic":
                self.n_basic += 1
                self.per_host_total[host] += 1
            else:  # "initial"
                self.n_initial += 1
        self.phase[host] = _RECV

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> Optional[tuple]:
        self.phase[host] = _SEND
        if not self.log_checkpoints:
            # Counters-only mode tracks no dependency vectors, so there
            # is nothing meaningful to piggyback (see _checkpoint).
            return None
        snapshot = self._snapshot[host]
        if snapshot is None:
            snapshot = (tuple(self.ckpt_vec[host]), tuple(self.loc_vec[host]))
            self._snapshot[host] = snapshot
        return snapshot

    def on_receive(self, host: int, piggyback, src: int, now: float) -> None:
        if self.phase[host] == _SEND:
            self._checkpoint(host, "forced", now)
        if piggyback is None:  # counters-only mode: no vectors to merge
            return
        m_ckpt, m_loc = piggyback
        mine_c = self.ckpt_vec[host]
        mine_l = self.loc_vec[host]
        # No j != host guard needed: knowledge of a host's own latest
        # index originates at that host, so m_ckpt[host] can never
        # exceed mine_c[host] (equality merges are no-ops under the
        # strict comparison).
        changed = False
        for j, m in enumerate(m_ckpt):
            if m > mine_c[j]:
                mine_c[j] = m
                mine_l[j] = m_loc[j]
                changed = True
        if changed:
            self._snapshot[host] = None

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self.cell[host] = new_cell
        self._checkpoint(host, "basic", now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._checkpoint(host, "basic", now)

    def on_reconnect(self, host: int, now: float, cell: int) -> None:
        self.cell[host] = cell

    # ------------------------------------------------------------------
    def recovery_line_indices(self) -> dict[int, int]:
        """TP has no single global line index.

        Its guarantee is *anchored*: each local checkpoint belongs to a
        consistent global checkpoint identified by the dependency
        vectors recorded with it (see :meth:`required_indices` and
        :func:`repro.core.consistency.tp_anchored_line`).  The set of
        every host's *latest* checkpoint is in general **not**
        consistent -- a host that sent but never checkpointed since
        leaves its messages orphaned by such a cut.
        """
        raise NotImplementedError(
            "TP builds anchored lines via required_indices(), not a "
            "global index rule"
        )

    def required_indices(self, anchor: int) -> dict[int, int]:
        """Checkpoint index each other host must contribute to the
        consistent global checkpoint containing *anchor*'s latest
        checkpoint.

        The paper's rule: if ``CKPT_a[j] = p``, the global checkpoint
        including ``CKPT_a[a]``-th of ``h_a`` must include a checkpoint
        of ``h_j`` that covers ``h_j``'s interval ``p`` -- i.e. the
        first checkpoint with index ``p + 1``.  A host ``h_j`` with no
        such checkpoint yet contributes the checkpoint it takes on
        demand at collection time (its interval ``p + 1`` is still
        open); the two-phase rule guarantees that on-demand checkpoint
        closes the line without cascading.

        Uses the vectors *recorded with* the anchor's latest checkpoint
        (events after it are not covered and must not pin anything).
        """
        latest = None
        for ck in self.checkpoints:
            if ck.host == anchor:
                latest = ck
        assert latest is not None  # every host has its initial checkpoint
        assert latest.metadata is not None
        vec = latest.metadata["ckpt_vec"]
        return {
            j: vec[j] + 1 for j in range(self.n_hosts) if j != anchor
        }

    def take_on_demand(self, host: int, now: float) -> int:
        """Checkpoint collection forces a host whose required checkpoint
        does not exist yet to take it on the spot (paper Section 4.1);
        returns the new checkpoint's index."""
        index = self.count[host]
        self._checkpoint(host, "forced", now)
        return index

    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore phase and dependency vectors from the line
        checkpoints' recorded metadata.  Checkpoint numbering continues
        from the restart index (discarded indices are reused; their
        storage records are overwritten, which is what a real restart
        does)."""
        for host, index in indices.items():
            record = None
            for ck in self.checkpoints:
                if ck.host == host and ck.index == index:
                    record = ck
            if record is None:
                raise ValueError(
                    f"host {host} has no checkpoint with index {index}"
                )
            assert record.metadata is not None
            self.ckpt_vec[host] = list(record.metadata["ckpt_vec"])
            self.loc_vec[host] = list(record.metadata["loc_vec"])
            self._snapshot[host] = None
            self.count[host] = index + 1
            self.phase[host] = _RECV

    def locate(self, observer: int, target: int) -> tuple[int, int]:
        """(checkpoint index, MSS id) of *target* as recorded in
        *observer*'s dependency vectors -- the paper's retrieval use of
        ``LOC``: "if CKPT_i[j] = p and LOC_i[j] = q, a global checkpoint
        including CKPT_i[i] must include the p-th checkpoint of h_j
        located at the q-th MSS"."""
        return self.ckpt_vec[observer][target], self.loc_vec[observer][target]
