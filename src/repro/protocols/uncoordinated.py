"""Uncoordinated (independent) checkpointing baseline.

Paper Section 2: "processes take local checkpoints independently ...
there is the risk of a domino effect while attempting to build a
consistent global checkpoint during the rollback phase".  This baseline
exists to *demonstrate* that: it takes cheap local checkpoints (periodic
plus the mobility-mandated ones) and never coordinates, so
:mod:`repro.core.recovery` can measure the domino rollback it suffers
against the bounded rollback of the CIC protocols.

The recovery line must be discovered a posteriori (rollback-dependency
graph search in :mod:`repro.core.consistency`);
:meth:`recovery_line_indices` therefore raises.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


@register("UNC")
class UncoordinatedProtocol(CheckpointingProtocol):
    """Periodic independent checkpoints; no forced checkpoints at all."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: checkpoint-to-checkpoint walk over the period
        boundaries (see :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import unc_replay

        unc_replay(vt, instances)

    def __init__(self, n_hosts: int, n_mss: int = 1, period: float = 100.0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        super().__init__(n_hosts, n_mss)
        self.period = period
        self.count = [0] * n_hosts
        self._last_ckpt_time = [0.0] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)
            self.count[host] = 1

    @property
    def piggyback_ints(self) -> int:
        return 0  # nothing rides on messages -- that is the problem

    # ------------------------------------------------------------------
    def _checkpoint(self, host: int, reason: str, now: float) -> None:
        self.take(host, self.count[host], reason, now)
        self.count[host] += 1
        self._last_ckpt_time[host] = now

    def _maybe_periodic(self, host: int, now: float) -> None:
        # Catch up on every period boundary crossed since the last
        # checkpoint (hosts idle for long stretches take one per period
        # of *activity*, approximated at the next observable event).
        if now - self._last_ckpt_time[host] >= self.period:
            self._checkpoint(host, "basic", now)

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> None:
        self._maybe_periodic(host, now)
        return None

    def on_receive(self, host: int, piggyback, src: int, now: float) -> None:
        self._maybe_periodic(host, now)

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._checkpoint(host, "basic", now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._checkpoint(host, "basic", now)
