"""Koo-Toueg blocking coordinated checkpointing (baseline, online only).

Koo-Toueg [11] coordinates only the initiator's *dependents* (hosts it
received messages from since its last checkpoint) through a blocking
two-phase exchange: checkpoint request -> tentative checkpoint + ack ->
commit.  Participants must withhold application sends between the
tentative checkpoint and the commit; in a mobile setting that blocked
time is paid on high-latency located wireless paths, which is the
paper's argument against blocking coordination.

Executable implementation: :mod:`repro.core.online`.
"""

from __future__ import annotations

from repro.core.online import CoordinatedResult, CoordinatedScheme, run_coordinated
from repro.workload.config import WorkloadConfig


def run_koo_toueg(
    config: WorkloadConfig, snapshot_interval: float, initiator: int = 0
) -> CoordinatedResult:
    """Run the workload under periodic Koo-Toueg coordination.

    The result's ``blocked_time`` aggregates the send-blocking windows
    (one round trip per participant per round).
    """
    return run_coordinated(
        config,
        CoordinatedScheme.KOO_TOUEG,
        snapshot_interval,
        initiator=initiator,
    )
