"""BCS: the Briatico-Ciuffoletti-Simoncini index-based protocol.

Paper Section 4.2.  Every host carries a sequence number ``sn_i``
(first checkpoint has index 0); each outgoing message piggybacks the
sender's ``sn``.  Receiving ``m`` with ``m.sn > sn_i`` forces a
checkpoint at the new index; every basic checkpoint (cell switch or
disconnection) increments ``sn_i``.  Checkpoints with equal sequence
number form a consistent global checkpoint (with the "first checkpoint
after a jump" completion rule), so a recovery line is available on the
fly with one piggybacked integer -- the protocol scales with the number
of hosts.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


@register("BCS")
class BCSProtocol(CheckpointingProtocol):
    """Index-based communication-induced checkpointing."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: the index-family trajectory with BCS's
        unconditional basic increment (see
        :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import index_family_replay

        index_family_replay(vt, instances, "bcs")

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        #: sn_i per host; index of the host's latest checkpoint.
        self.sn = [0] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    @property
    def piggyback_ints(self) -> int:
        return 1  # just the sender's sequence number

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> int:
        return self.sn[host]

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        m_sn = piggyback
        if m_sn > self.sn[host]:
            self.sn[host] = m_sn
            self.take(host, m_sn, "forced", now)

    def _basic(self, host: int, now: float) -> None:
        self.sn[host] += 1
        self.take(host, self.sn[host], "basic", now)

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)

    # ------------------------------------------------------------------
    def invariant_violations(self) -> list[str]:
        """Base checks plus the index-protocol invariant: ``sn_i`` is by
        construction the index of the host's latest checkpoint."""
        problems = super().invariant_violations()
        for host, (sn, last) in enumerate(zip(self.sn, self.last_index)):
            if sn != last:
                problems.append(
                    f"host {host}: sn {sn} != latest checkpoint index {last}"
                )
        return problems

    # ------------------------------------------------------------------
    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore live state to the line: ``sn_i`` is exactly the index
        of the checkpoint the host restarts from."""
        for host, index in indices.items():
            self.sn[host] = index

    # ------------------------------------------------------------------
    def recovery_line_indices(self) -> dict[int, int]:
        """Hosts agree on the line index ``L = min_i sn_i``; each host
        contributes its *first* checkpoint with index >= L (the jump
        rule).  Returns the contributed checkpoint index per host."""
        line_index = min(self.sn)
        contribution: dict[int, int] = {}
        for host in range(self.n_hosts):
            candidates = [
                c.index for c in self.checkpoints_of(host) if c.index >= line_index
            ]
            contribution[host] = min(candidates)
        return contribution
