"""FDAS: Fixed-Dependency-After-Send, from the Garcia-Vieira-Buzato
taxonomy of communication-induced protocols.

The rollback-history survey of Garcia, Vieira & Buzato (PAPERS.md)
organises the index/logical-clock CIC family by *when* a higher
piggybacked clock forces a checkpoint.  BCS (Section 4.2 of the source
paper) is the eager extreme: *every* message carrying ``m.lc > lc_i``
forces one.  FDAS relaxes it with the after-send rule:

* a message with ``m.lc > lc_i`` forces a checkpoint **only if the
  host has sent a message in its current checkpoint interval** --
  otherwise the host silently adopts the higher clock
  (``lc_i := m.lc``) and keeps computing;
* once a checkpoint is taken, the interval's send flag resets, so the
  first send "fixes" the dependency structure of the interval (hence
  the name: dependencies are fixed after the first send).

The host that only consumes messages between checkpoints never pays a
forced checkpoint, which is exactly the asymmetric-traffic shape of a
mobile host feeding off infrastructure servers.  The protocol stays a
single piggybacked integer per message, like BCS/QBC.

What FDAS guarantees is *rollback-dependency trackability* (RDT):
consistent global checkpoints exist and are computable from tracked
dependencies, but the simple equal-index rule of the BCS family does
NOT hold -- a host that adopted an index without checkpointing has no
checkpoint standing at that index, and completing the line with its
*next* checkpoint would orphan the very message that raised the clock.
:meth:`recovery_line_indices` is therefore deliberately not
implemented (building RDT lines needs the dependency vectors the
replay does not carry); the conformance kit and the audit skip the
on-the-fly-line batteries for it, exactly as they do for the
uncoordinated baseline.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


@register("FDAS")
class FDASProtocol(CheckpointingProtocol):
    """Logical-clock CIC with the fixed-dependency-after-send rule."""

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        #: Logical clock per host; may run ahead of the host's latest
        #: checkpoint index (unlike BCS's ``sn``, which never does).
        self.lc = [0] * n_hosts
        #: True once the host sent in the current checkpoint interval.
        self.sent_since_ckpt = [False] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    @property
    def piggyback_ints(self) -> int:
        return 1  # the sender's logical clock, as in BCS

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> int:
        self.sent_since_ckpt[host] = True
        return self.lc[host]

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        m_lc = piggyback
        if m_lc > self.lc[host]:
            if self.sent_since_ckpt[host]:
                # The interval already has a fixed (sent) dependency: a
                # checkpoint must separate it from the new one.
                self.lc[host] = m_lc
                self.sent_since_ckpt[host] = False
                self.take(host, m_lc, "forced", now)
            else:
                # Receive-only interval: adopt the clock, no checkpoint.
                self.lc[host] = m_lc

    def _basic(self, host: int, now: float) -> None:
        self.lc[host] += 1
        self.sent_since_ckpt[host] = False
        self.take(host, self.lc[host], "basic", now)

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)

    # ------------------------------------------------------------------
    def invariant_violations(self) -> list[str]:
        """Base checks plus the FDAS clock contract: ``lc_i`` never
        falls behind the latest checkpoint index (it may run ahead of
        it after an adopted clock, never behind)."""
        problems = super().invariant_violations()
        for host, (lc, last) in enumerate(zip(self.lc, self.last_index)):
            if lc < last:
                problems.append(
                    f"host {host}: lc {lc} < latest checkpoint index {last}"
                )
        return problems

    # ------------------------------------------------------------------
    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore the live clock to the restart checkpoint's index; a
        restored interval has sent nothing yet."""
        for host, index in indices.items():
            self.lc[host] = index
            self.sent_since_ckpt[host] = False
