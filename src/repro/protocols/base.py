"""Protocol base class shared by replay and online execution.

A checkpointing protocol is a deterministic state machine over the five
per-host hooks below.  It never touches the network itself; the driver
(trace replay or the online simulation) invokes the hooks and carries
the returned piggyback to the matching receive.

Hook contract
-------------

* ``on_send(host, dst, now) -> piggyback`` -- called at a send
  operation; the return value rides on the message.
* ``on_receive(host, piggyback, src, now)`` -- called when the host
  *consumes* the message (the paper's "upon the receipt" processing).
* ``on_cell_switch(host, now, new_cell)`` / ``on_disconnect(host, now)``
  -- the two basic-checkpoint triggers.
* ``on_reconnect(host, now, cell)`` -- bookkeeping only.

Checkpoints are reported through :meth:`CheckpointingProtocol.take`,
which records a :class:`TakenCheckpoint` and forwards to an optional
``storage_hook`` (wired to
:meth:`repro.net.system.MobileSystem.store_checkpoint` in online mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(slots=True)
class TakenCheckpoint:
    """One checkpoint taken during a run.

    Mutable only through :meth:`CheckpointingProtocol.rename_last`: the
    no-send skip rule relabels an existing checkpoint with a higher
    index (a metadata-only operation at the MSS -- no state transfer),
    so ``index`` can grow after the fact while everything else is
    fixed at take time.
    """

    host: int
    index: int
    time: float
    #: "initial", "basic" or "forced" (paper terminology).
    reason: str
    #: True when this checkpoint *replaced* its predecessor at the same
    #: index (QBC's equivalence rule).
    replaced: bool = False
    #: Protocol metadata snapshotted with the checkpoint (TP records its
    #: dependency vectors here); None when the protocol has none.
    metadata: Optional[dict[str, Any]] = None


#: Signature of the storage callback: (host, index, reason, metadata).
StorageHook = Callable[[int, int, str, dict[str, Any]], None]


class CheckpointingProtocol:
    """Common machinery: checkpoint log, counters, storage forwarding.

    Execution capabilities are *declared on the class* (and validated
    at registration time by :func:`register`): the engine layer
    (:mod:`repro.engine`) reads them to decide which engines may drive
    a protocol and rejects incompatible requests with typed errors
    instead of failing mid-run.
    """

    #: Short name used in reports ("TP", "BCS", "QBC", ...).
    name: str = "base"
    #: Whether the protocol can be evaluated by pure trace replay
    #: (communication-induced ones can; coordinated ones need online
    #: mode because their control messages perturb the schedule).
    replayable: bool = True
    #: Whether fresh instances may ride the fused single-pass engine
    #: (:func:`repro.core.replay.replay_fused`).  Requires
    #: ``replayable``; a protocol whose hooks share hidden global state
    #: across instances would clear this flag.
    fusable: bool = True
    #: Whether the protocol ships a batch kernel (a
    #: ``vectorized_replay`` classmethod) for the vectorized engine
    #: (:mod:`repro.core.vectorized`).  Only honored together with
    #: ``fusable`` -- the engine layer treats a subclass that clears
    #: ``fusable`` as having lost any inherited kernel too, since the
    #: vectorized engine is the fused engine in array form.
    vectorizable: bool = False
    #: True for coordinated baselines (Chandy-Lamport, Koo-Toueg,
    #: Prakash-Singhal): they inject control messages into the
    #: schedule, so they can only run embedded in the online DES.
    coordinated: bool = False
    #: Whether the protocol tolerates counters-only mode
    #: (``log_checkpoints = False``): its decisions must not depend on
    #: reading back its own checkpoint log.
    supports_counters_only: bool = True
    #: When False, :meth:`take` maintains the counters only -- no
    #: :class:`TakenCheckpoint` records, no storage forwarding.  The
    #: sweep engine flips this off because figure curves need nothing
    #: but counts; anything that inspects the log (recovery lines,
    #: rollback, online storage) needs the default True.
    log_checkpoints: bool = True

    def __init__(self, n_hosts: int, n_mss: int = 1):
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts
        self.n_mss = n_mss
        self.checkpoints: list[TakenCheckpoint] = []
        self.n_basic = 0
        self.n_forced = 0
        self.n_replaced = 0
        #: Metadata-only relabels (no state transfer; not in N_tot).
        self.n_renamed = 0
        #: Initial checkpoints (taken in the constructor; not in N_tot).
        self.n_initial = 0
        #: Non-initial checkpoints per host, maintained incrementally so
        #: metrics aggregation never has to rescan the checkpoint log.
        self.per_host_total = [0] * n_hosts
        #: Index of each host's most recent checkpoint (kept even in
        #: counters-only mode, where rename_last cannot scan the log).
        self.last_index = [-1] * n_hosts
        self.storage_hook: Optional[StorageHook] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def take(
        self,
        host: int,
        index: int,
        reason: str,
        now: float,
        replaced: bool = False,
        metadata: Optional[dict[str, Any]] = None,
    ) -> Optional[TakenCheckpoint]:
        """Record (and persist, when wired) one checkpoint.

        Returns the log record, or None in counters-only mode
        (``log_checkpoints = False``).
        """
        ck = None
        if self.log_checkpoints:
            ck = TakenCheckpoint(
                host=host,
                index=index,
                time=now,
                reason=reason,
                replaced=replaced,
                metadata=metadata,
            )
            self.checkpoints.append(ck)
        self.last_index[host] = index
        if reason == "basic":
            self.n_basic += 1
            self.per_host_total[host] += 1
        elif reason == "forced":
            self.n_forced += 1
            self.per_host_total[host] += 1
        elif reason == "initial":
            self.n_initial += 1
        else:
            self.per_host_total[host] += 1
        if replaced:
            self.n_replaced += 1
        if self.log_checkpoints and self.storage_hook is not None:
            self.storage_hook(host, index, reason, dict(metadata or {}))
        return ck

    def rename_last(
        self, host: int, new_index: int, now: float
    ) -> Optional[TakenCheckpoint]:
        """Relabel *host*'s most recent checkpoint with *new_index*.

        The no-send equivalence rule (cf. Helary et al. and the
        checkpoint-equivalence formalisation of [6, 14]): when a host
        has sent nothing since its last checkpoint, that checkpoint can
        stand in the recovery line at a higher index -- the MSS just
        updates the stored index, no state crosses the wireless link.
        Does NOT count toward N_tot; tracked in ``n_renamed``.

        Returns the relabelled record (None in counters-only mode).
        """
        last = self.last_index[host]
        if last < 0:
            raise ValueError(f"host {host} has no checkpoint to rename")
        if new_index <= last:
            raise ValueError(
                f"rename must increase the index ({last} -> {new_index})"
            )
        self.last_index[host] = new_index
        self.n_renamed += 1
        renamed = None
        if self.log_checkpoints:
            for ck in reversed(self.checkpoints):
                if ck.host == host:
                    ck.index = new_index
                    renamed = ck
                    break
        if self.storage_hook is not None:
            self.storage_hook(host, new_index, "rename", {})
        return renamed

    @property
    def n_total(self) -> int:
        """The paper's N_tot: basic + forced (initial ones excluded)."""
        return self.n_basic + self.n_forced

    def checkpoints_of(self, host: int) -> list[TakenCheckpoint]:
        """This host's checkpoints in the order taken."""
        return [c for c in self.checkpoints if c.host == host]

    # ------------------------------------------------------------------
    # audit hooks (repro.obs)
    # ------------------------------------------------------------------
    def counter_signature(self) -> dict[str, Any]:
        """Every counter this run maintained, as one comparable dict.

        Two runs of the same protocol over the same trace must produce
        identical signatures regardless of engine (reference vs fused)
        or logging mode -- the audit layer compares these bit-for-bit.
        """
        return {
            "protocol": self.name,
            "n_basic": self.n_basic,
            "n_forced": self.n_forced,
            "n_initial": self.n_initial,
            "n_replaced": self.n_replaced,
            "n_renamed": self.n_renamed,
            "n_total": self.n_total,
            "per_host_total": tuple(self.per_host_total),
            "last_index": tuple(self.last_index),
        }

    def invariant_violations(self) -> list[str]:
        """Internal-consistency problems of this run (empty = sound).

        The base contract cross-checks the incremental counters against
        the checkpoint log (when one exists): per-reason counts,
        per-host totals and each host's final index must agree.
        Subclasses extend this with protocol-specific invariants (e.g.
        QBC's ``rn <= sn``); the audit layer surfaces every entry as a
        structured violation.
        """
        problems: list[str] = []
        if self.log_checkpoints:
            n_basic = n_forced = n_initial = n_replaced = 0
            per_host = [0] * self.n_hosts
            last_index = [-1] * self.n_hosts
            for ck in self.checkpoints:
                if ck.reason == "basic":
                    n_basic += 1
                elif ck.reason == "forced":
                    n_forced += 1
                elif ck.reason == "initial":
                    n_initial += 1
                if ck.reason != "initial":
                    per_host[ck.host] += 1
                if ck.replaced:
                    n_replaced += 1
                last_index[ck.host] = max(last_index[ck.host], ck.index)
            for label, counted, logged in (
                ("n_basic", self.n_basic, n_basic),
                ("n_forced", self.n_forced, n_forced),
                ("n_initial", self.n_initial, n_initial),
                ("n_replaced", self.n_replaced, n_replaced),
            ):
                if counted != logged:
                    problems.append(
                        f"{label} counter is {counted} but the log "
                        f"records {logged}"
                    )
            for host in range(self.n_hosts):
                if self.per_host_total[host] != per_host[host]:
                    problems.append(
                        f"host {host}: per_host_total {self.per_host_total[host]} "
                        f"!= {per_host[host]} logged checkpoints"
                    )
                if self.last_index[host] != last_index[host]:
                    problems.append(
                        f"host {host}: last_index {self.last_index[host]} "
                        f"!= {last_index[host]} from the log"
                    )
        else:
            # Counters-only mode keeps no log; the reason-class split
            # must still account for every per-host increment.
            if sum(self.per_host_total) != self.n_basic + self.n_forced:
                problems.append(
                    f"per_host_total sums to {sum(self.per_host_total)} "
                    f"but n_basic + n_forced = {self.n_basic + self.n_forced}"
                )
        if any(v < 0 for v in self.per_host_total):
            problems.append("negative per_host_total entry")
        return problems

    # ------------------------------------------------------------------
    # piggyback size accounting (paper's scalability argument)
    # ------------------------------------------------------------------
    @property
    def piggyback_ints(self) -> int:
        """Control integers piggybacked per application message."""
        return 0

    # ------------------------------------------------------------------
    # hooks (default: no-ops; subclasses override what they need)
    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> Any:
        """Send operation at *host* towards *dst*; returns piggyback."""
        return None

    def on_receive(self, host: int, piggyback: Any, src: int, now: float) -> None:
        """Receive-operation processing of a consumed message."""

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        """Basic-checkpoint trigger: the host switched cells."""

    def on_disconnect(self, host: int, now: float) -> None:
        """Basic-checkpoint trigger: voluntary disconnection."""

    def on_reconnect(self, host: int, now: float, cell: int) -> None:
        """Reconnection (no checkpoint in any of the paper's protocols)."""

    # ------------------------------------------------------------------
    def recovery_line_indices(self) -> dict[int, int]:
        """Map host -> checkpoint index forming the most recent
        consistent global checkpoint this protocol guarantees.

        Subclasses implementing an on-the-fly recovery-line rule
        override this; the base implementation raises.
        """
        raise NotImplementedError(
            f"{self.name} does not build recovery lines on the fly"
        )

    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore the protocol's volatile per-host state to the
        recovery line *indices* (host -> checkpoint index).

        Used by failure injection (:mod:`repro.core.failures`): after a
        rollback every host's live protocol variables must equal what
        was recorded with its line checkpoint.  The checkpoint *log*
        stays intact -- those checkpoints were really taken and count
        toward N_tot.
        """
        raise NotImplementedError(
            f"{self.name} does not support live rollback"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} hosts={self.n_hosts} "
            f"basic={self.n_basic} forced={self.n_forced}>"
        )


#: Registry of replayable protocol factories, keyed by report name.
registry: dict[str, Callable[..., CheckpointingProtocol]] = {}


def validate_capabilities(cls) -> None:
    """Check that *cls*'s declared capabilities are coherent.

    Raises ``ValueError`` on an impossible combination; called at
    registration time so a mis-declared protocol fails at import, not
    mid-sweep.  The rules:

    * ``coordinated`` excludes ``replayable``/``fusable`` (control
      messages perturb the schedule, so no trace replay is faithful);
    * ``fusable`` requires ``replayable`` (the fused engine *is* a
      replay engine).
    """
    coordinated = bool(getattr(cls, "coordinated", False))
    replayable = bool(getattr(cls, "replayable", True))
    fusable = bool(getattr(cls, "fusable", True))
    label = getattr(cls, "__name__", repr(cls))
    if coordinated and (replayable or fusable):
        raise ValueError(
            f"{label}: coordinated protocols cannot be replayable/fusable "
            "(their control messages perturb the schedule)"
        )
    if fusable and not replayable:
        raise ValueError(
            f"{label}: fusable requires replayable (the fused engine "
            "replays a trace)"
        )


def register(name: str):
    """Class decorator adding a protocol to :data:`registry`.

    Validates the class's declared capabilities
    (:func:`validate_capabilities`) so an incoherent declaration fails
    at import time.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"protocol registry name must be a non-empty string, got {name!r}")

    def deco(cls):
        """Register *cls* under the decorator's name."""
        validate_capabilities(cls)
        registry[name] = cls
        cls.name = name
        return cls

    return deco
