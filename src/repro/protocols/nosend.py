"""Index-based protocols with the *no-send* skip rule (extension).

The CIC literature after BCS (Helary-Mostefaoui-Netzer-Raynal's
protocol family; the checkpoint-equivalence formalisation of the
paper's refs [6, 14]) observes that a forced checkpoint is wasted when
the receiver has **sent nothing** since its last checkpoint: that last
checkpoint cannot be the source of any orphan for the new index, so it
can simply be *renamed* to the incoming index -- a metadata update at
the MSS, no state transfer over the wireless link.

Soundness sketch (machine-checked by the property-test suite against
the independent orphan checker): let C be h_i's last checkpoint, with
no send by h_i after C.  Renaming C to index ``m.sn`` puts C in the
line at ``m.sn``.  Orphans w.r.t. (C_j, C) need a message received by
h_i *before C* and sent by h_j after its index-``m.sn`` line
checkpoint; but everything h_i received before C carried an index
``<= C``'s old index ``< m.sn``, so the sender's line checkpoint (first
with index ``>= m.sn``) covers the send.  Orphans w.r.t. (C, C_j) need
a send by h_i after C -- excluded by the rule.

Two protocols:

* :class:`NoSendBCSProtocol` ("BCS-NS") -- BCS with the skip rule on
  the receive side.
* :class:`NoSendQBCProtocol` ("QBC-NS") -- the skip rule combined with
  QBC's basic-side replacement rule; the most checkpoint-frugal of the
  index family in this repository.

Both keep the 1-integer piggyback and the same min-index recovery-line
rule.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


class _NoSendMixin(CheckpointingProtocol):
    """Shared receive-side machinery for the skip rule."""

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        self.sn = [0] * n_hosts
        #: True once the host sent a message in its current interval.
        self.sent_since_ckpt = [False] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0, metadata={"rn": -1})

    @property
    def piggyback_ints(self) -> int:
        return 1

    def on_send(self, host: int, dst: int, now: float) -> int:
        self.sent_since_ckpt[host] = True
        return self.sn[host]

    def _receive_index(self, host: int, m_sn: int, now: float) -> None:
        """Apply the index rule with the no-send skip."""
        if m_sn > self.sn[host]:
            self.sn[host] = m_sn
            if self.sent_since_ckpt[host]:
                self.take(
                    host, m_sn, "forced", now, metadata={"rn": m_sn}
                )
                self.sent_since_ckpt[host] = False
            else:
                self.rename_last(host, m_sn, now)

    def recovery_line_indices(self) -> dict[int, int]:
        line_index = min(self.sn)
        contribution: dict[int, int] = {}
        for host in range(self.n_hosts):
            candidates = [
                c.index for c in self.checkpoints_of(host) if c.index >= line_index
            ]
            contribution[host] = min(candidates)
        return contribution

    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore sn (and rn where present) from the line checkpoints;
        the restored interval has no sends by definition."""
        for host, index in indices.items():
            self.sn[host] = index
            self.sent_since_ckpt[host] = False
            if hasattr(self, "rn"):
                restored_rn = -1
                for ck in self.checkpoints:
                    if ck.host == host and ck.index == index:
                        restored_rn = (ck.metadata or {}).get("rn", -1)
                self.rn[host] = min(restored_rn, index)


@register("BCS-NS")
class NoSendBCSProtocol(_NoSendMixin):
    """BCS plus the no-send skip rule on receives."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: BCS dynamics plus the no-send forced/rename
        split (see :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import index_family_replay

        index_family_replay(vt, instances, "bcs_ns")

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        self._receive_index(host, piggyback, now)

    def _basic(self, host: int, now: float) -> None:
        self.sn[host] += 1
        self.take(host, self.sn[host], "basic", now, metadata={"rn": -1})
        self.sent_since_ckpt[host] = False

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)


@register("QBC-NS")
class NoSendQBCProtocol(_NoSendMixin):
    """QBC's basic-side replacement + the no-send receive-side skip."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: QBC dynamics plus the no-send forced/rename
        split (see :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import index_family_replay

        index_family_replay(vt, instances, "qbc_ns")

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        self.rn = [-1] * n_hosts

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        if piggyback > self.rn[host]:
            self.rn[host] = piggyback
        self._receive_index(host, piggyback, now)
        assert self.rn[host] <= self.sn[host]

    def _basic(self, host: int, now: float) -> None:
        if self.rn[host] == self.sn[host]:
            self.sn[host] += 1
            self.take(
                host, self.sn[host], "basic", now,
                metadata={"rn": self.rn[host]},
            )
        else:
            self.take(
                host, self.sn[host], "basic", now, replaced=True,
                metadata={"rn": self.rn[host]},
            )
        self.sent_since_ckpt[host] = False

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)
