"""QBC: the Quaglia-Baldoni-Ciciani optimisation of BCS.

Paper Section 4.2.  QBC adds a *receive number* ``rn_i`` recording the
largest sequence number received on application messages.  At a basic
checkpoint:

* if ``rn_i = sn_i`` the checkpoint starts a new index (as in BCS);
* if ``rn_i < sn_i`` the new checkpoint is *equivalent* to its
  predecessor with respect to the current recovery line -- it does not
  depend on any checkpoint with index ``sn_i`` -- so it keeps index
  ``sn_i`` and **replaces** the predecessor in the line.

Sequence numbers therefore grow more slowly than under BCS, which
reduces the forced checkpoints caused by ``m.sn > sn_i`` receives; the
gain is largest when some hosts take basic checkpoints much more often
than others (heterogeneous mobility, disconnections).

Invariants maintained here and checked in the property-test suite:
``rn_i <= sn_i`` at all times, and on any shared trace
``sn_i(QBC) <= sn_i(BCS)`` pointwise.  Note the *forced-count*
reduction is an expectation under realistic workloads, not a pointwise
theorem: QBC can be forced by a message whose index BCS had already
reached through an earlier basic increment (hypothesis finds such
schedules), but across the paper's workloads QBC's slower index growth
wins -- the integration suite asserts the statistical dominance.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


@register("QBC")
class QBCProtocol(CheckpointingProtocol):
    """Index-based protocol with checkpoint equivalence/replacement."""

    vectorizable = True

    @classmethod
    def vectorized_replay(cls, vt, instances) -> None:
        """Batch kernel: the index-family trajectory with QBC's armed
        (``rn = sn``) basic rule (see
        :mod:`repro.protocols._vectorized`)."""
        from repro.protocols._vectorized import index_family_replay

        index_family_replay(vt, instances, "qbc")

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        self.sn = [0] * n_hosts
        #: Largest index received with an application message; -1 before
        #: any receive (paper: rn_i := -1 at init).
        self.rn = [-1] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0, metadata={"rn": -1})

    @property
    def piggyback_ints(self) -> int:
        return 1  # same single integer as BCS: the optimisation is free

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> int:
        return self.sn[host]

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        # Invariant rn <= sn holds by construction here (rn only grows
        # to m_sn, and sn catches up whenever m_sn passes it); the
        # property-test suite checks it, keeping the hot path lean.
        m_sn = piggyback
        if m_sn > self.rn[host]:
            self.rn[host] = m_sn
        if m_sn > self.sn[host]:
            self.sn[host] = m_sn
            self.take(host, m_sn, "forced", now, metadata={"rn": self.rn[host]})

    def _basic(self, host: int, now: float) -> None:
        if self.rn[host] == self.sn[host]:
            # The current checkpoint interval depends on the line at
            # sn_i: a new index must start.
            self.sn[host] += 1
            self.take(
                host, self.sn[host], "basic", now,
                metadata={"rn": self.rn[host]},
            )
        else:
            # rn < sn: the new checkpoint is equivalent to its
            # predecessor w.r.t. the recovery line and replaces it.
            self.take(
                host, self.sn[host], "basic", now, replaced=True,
                metadata={"rn": self.rn[host]},
            )

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)

    # ------------------------------------------------------------------
    def invariant_violations(self) -> list[str]:
        """Base checks plus QBC's own invariants: ``rn_i <= sn_i`` at
        all times (paper Section 4.2) and ``sn_i`` tracking the latest
        checkpoint index."""
        problems = super().invariant_violations()
        for host in range(self.n_hosts):
            if self.rn[host] > self.sn[host]:
                problems.append(
                    f"host {host}: rn {self.rn[host]} > sn {self.sn[host]}"
                )
            if self.sn[host] != self.last_index[host]:
                problems.append(
                    f"host {host}: sn {self.sn[host]} != latest checkpoint "
                    f"index {self.last_index[host]}"
                )
        return problems

    # ------------------------------------------------------------------
    def rollback_to(self, indices: dict[int, int], now: float) -> None:
        """Restore ``sn`` and ``rn`` to the line checkpoints' recorded
        values.  ``rn`` must be the value *at checkpoint time* -- the
        restored state really did receive those indices, so resetting rn
        lower would let the equivalence rule replace a checkpoint the
        line depends on."""
        for host, index in indices.items():
            self.sn[host] = index
            restored_rn = -1
            for ck in self.checkpoints:  # latest record at that index wins
                if ck.host == host and ck.index == index:
                    restored_rn = ck.metadata["rn"]
            self.rn[host] = restored_rn
            assert self.rn[host] <= self.sn[host]

    # ------------------------------------------------------------------
    def recovery_line_indices(self) -> dict[int, int]:
        """Same rule as BCS (paper: "a consistent global checkpoint can
        be built by using the same rule of the BCS protocol"), except a
        replaced checkpoint means the *latest* one at that index stands
        in for its predecessors."""
        line_index = min(self.sn)
        contribution: dict[int, int] = {}
        for host in range(self.n_hosts):
            candidates = [
                c.index for c in self.checkpoints_of(host) if c.index >= line_index
            ]
            contribution[host] = min(candidates)
        return contribution
