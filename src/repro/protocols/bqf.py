"""BQF: Baldoni-Quaglia-Fornara index-based checkpointing (extension).

Reference [6] of the paper ("An Index-Based Checkpointing Algorithm for
Autonomous Distributed Systems", SRDS'97) is the wired-network precursor
of QBC: processes take *autonomous* (timer-driven) basic checkpoints and
the same rn/sn equivalence rule keeps sequence numbers from diverging.

Adapted here to the mobile setting as an ablation: in addition to the
mobility-mandated basic checkpoints (cell switch / disconnection, which
an MH cannot avoid), each host also checkpoints autonomously every
``period`` time units, using QBC's replacement rule throughout.  Setting
``period = inf`` makes BQF degenerate to QBC exactly -- a property the
test suite checks.
"""

from __future__ import annotations

from repro.protocols.base import CheckpointingProtocol, register


@register("BQF")
class BQFProtocol(CheckpointingProtocol):
    """QBC equivalence rule + autonomous periodic basic checkpoints."""

    def __init__(
        self, n_hosts: int, n_mss: int = 1, period: float = float("inf")
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        super().__init__(n_hosts, n_mss)
        self.period = period
        self.sn = [0] * n_hosts
        self.rn = [-1] * n_hosts
        self._last_ckpt_time = [0.0] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    @property
    def piggyback_ints(self) -> int:
        return 1

    # ------------------------------------------------------------------
    def _basic(self, host: int, now: float) -> None:
        if self.rn[host] == self.sn[host]:
            self.sn[host] += 1
            self.take(host, self.sn[host], "basic", now)
        else:
            self.take(host, self.sn[host], "basic", now, replaced=True)
        self._last_ckpt_time[host] = now

    def _maybe_autonomous(self, host: int, now: float) -> None:
        if now - self._last_ckpt_time[host] >= self.period:
            self._basic(host, now)

    # ------------------------------------------------------------------
    def on_send(self, host: int, dst: int, now: float) -> int:
        self._maybe_autonomous(host, now)
        return self.sn[host]

    def on_receive(self, host: int, piggyback: int, src: int, now: float) -> None:
        self._maybe_autonomous(host, now)
        m_sn = piggyback
        if m_sn > self.rn[host]:
            self.rn[host] = m_sn
        if m_sn > self.sn[host]:
            self.sn[host] = m_sn
            self.take(host, m_sn, "forced", now)
        assert self.rn[host] <= self.sn[host], "BQF invariant rn <= sn violated"

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._basic(host, now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._basic(host, now)

    # ------------------------------------------------------------------
    def recovery_line_indices(self) -> dict[int, int]:
        """Same index rule as BCS/QBC."""
        line_index = min(self.sn)
        contribution: dict[int, int] = {}
        for host in range(self.n_hosts):
            candidates = [
                c.index for c in self.checkpoints_of(host) if c.index >= line_index
            ]
            contribution[host] = min(candidates)
        return contribution
