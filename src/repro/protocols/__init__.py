"""Checkpointing protocols.

The paper's three communication-induced protocols adapted to mobile
hosts:

* :class:`~repro.protocols.tp.TwoPhaseProtocol` (TP) -- Acharya-Badrinath,
* :class:`~repro.protocols.bcs.BCSProtocol` -- Briatico-Ciuffoletti-
  Simoncini index-based,
* :class:`~repro.protocols.qbc.QBCProtocol` -- Quaglia-Baldoni-Ciciani
  index-based with checkpoint equivalence/replacement,

plus baselines discussed in the paper's Section 2 (implemented for the
overhead/ablation experiments):

* :class:`~repro.protocols.uncoordinated.UncoordinatedProtocol`
  (periodic independent checkpoints; domino-prone),
* :class:`~repro.protocols.chandy_lamport.ChandyLamportCoordinator`
  (marker-based coordinated snapshots; online-mode only),
* :class:`~repro.protocols.koo_toueg.KooTouegProtocol` (blocking
  minimal coordination, online-mode only),
* :class:`~repro.protocols.prakash_singhal.PrakashSinghalProtocol`
  (dependency-subset coordination, online-mode only),
* :class:`~repro.protocols.bqf.BQFProtocol` -- Baldoni-Quaglia-Fornara
  index-based variant with lazy index advance (extension),
* :class:`~repro.protocols.fdas.FDASProtocol` -- fixed-dependency-
  after-send CIC from the Garcia-Vieira-Buzato family (extension).

Third-party protocols join the same registry through the plugin
mechanisms of :mod:`repro.engine.plugins` (entry points in the
``repro.protocols`` group, or drop-in ``repro_protocols`` namespace
modules); see ``docs/plugins.md``.
"""

from repro.protocols.base import (
    CheckpointingProtocol,
    TakenCheckpoint,
    registry,
)
from repro.protocols.bcs import BCSProtocol
from repro.protocols.bqf import BQFProtocol
from repro.protocols.chandy_lamport import run_chandy_lamport
from repro.protocols.fdas import FDASProtocol
from repro.protocols.koo_toueg import run_koo_toueg
from repro.protocols.nosend import NoSendBCSProtocol, NoSendQBCProtocol
from repro.protocols.prakash_singhal import run_prakash_singhal
from repro.protocols.qbc import QBCProtocol
from repro.protocols.tp import TwoPhaseProtocol
from repro.protocols.uncoordinated import UncoordinatedProtocol

__all__ = [
    "BCSProtocol",
    "BQFProtocol",
    "CheckpointingProtocol",
    "FDASProtocol",
    "NoSendBCSProtocol",
    "NoSendQBCProtocol",
    "QBCProtocol",
    "TakenCheckpoint",
    "TwoPhaseProtocol",
    "UncoordinatedProtocol",
    "registry",
    "run_chandy_lamport",
    "run_koo_toueg",
    "run_prakash_singhal",
]
