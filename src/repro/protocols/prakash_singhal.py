"""Prakash-Singhal minimal-set coordination (baseline, online only).

Prakash-Singhal [13] answers the "only hosts that really need to
checkpoint should be forced" critique (the paper's point 4) by
coordinating non-blockingly over the *transitive* causal-dependency set
of the initiator.  The paper still finds it wanting for mobility: the
protocol adds explicit control messages and carries data structures
whose logical size is the number of processes, so points (1), (2) and
(3) "remain, at least partially, unanswered".

Executable implementation: :mod:`repro.core.online`.
"""

from __future__ import annotations

from repro.core.online import CoordinatedResult, CoordinatedScheme, run_coordinated
from repro.workload.config import WorkloadConfig


def run_prakash_singhal(
    config: WorkloadConfig, snapshot_interval: float, initiator: int = 0
) -> CoordinatedResult:
    """Run the workload under periodic Prakash-Singhal coordination."""
    return run_coordinated(
        config,
        CoordinatedScheme.PRAKASH_SINGHAL,
        snapshot_interval,
        initiator=initiator,
    )
