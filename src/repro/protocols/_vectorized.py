"""Batch-kernel implementations behind ``vectorized_replay``.

Each replayable protocol family gets one kernel here, built on the
segmented primitives of :mod:`repro.core.vectorized`.  A kernel
receives a :class:`~repro.core.vectorized.VectorizedTrace` (one or more
trace blocks) plus one fresh protocol instance per block, and must
leave every instance in *exactly* the state the reference per-event
replay would: counters, per-host live variables and -- when
``log_checkpoints`` is on -- the checkpoint log, record for record.

The kernels therefore split cleanly in two:

* **solve** -- numpy passes over the whole batch (segmented cummax,
  boolean placement masks, the piggyback fixpoint where causality
  demands it);
* **materialize** -- walk the solved checkpoint placements (orders of
  magnitude fewer than events) through the instance's own
  :meth:`~repro.protocols.base.CheckpointingProtocol.take` /
  ``rename_last``, which guarantees counter/log/storage semantics
  can never drift from the base class.  In counters-only mode the
  walk is skipped and the counters are assigned from per-segment
  tallies directly.

Protocols import this module, never the other way around; the engine
layer reaches the kernels only through the ``vectorized_replay``
classmethods.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.vectorized import (
    VectorizedTrace,
    gather,
    index_trajectory,
    nosend_classification,
    seg_counts,
    seg_cumsum,
    seg_cummax,
    seg_shift,
)

# Index-family flavors: (uses rn / QBC basic rule, uses no-send rule).
_FLAVORS = {
    "bcs": (False, False),
    "qbc": (True, False),
    "bcs_ns": (False, True),
    "qbc_ns": (True, True),
}


# ---------------------------------------------------------------------------
# BCS / QBC / BCS-NS / QBC-NS
# ---------------------------------------------------------------------------

def index_family_replay(vt: VectorizedTrace, instances, flavor: str) -> None:
    """Replay one index-family protocol over every block of *vt*."""
    import numpy as np

    qbc, nosend = _FLAVORS[flavor]
    traj = index_trajectory(vt, qbc)
    basic = vt.basic
    n_hosts = vt.n_hosts

    if nosend:
        jump_forced = nosend_classification(vt, traj)
        n_forced_seg = np.bincount(
            traj.jump_seg[jump_forced], minlength=vt.n_segments
        )
        n_renamed_seg = traj.n_jump_seg - n_forced_seg
    else:
        # Without the no-send rule every jump is a forced take.
        jump_forced = None
        n_forced_seg = traj.n_jump_seg
        n_renamed_seg = None
    n_basic_seg = np.diff(basic.starts)
    if qbc:
        n_replaced_seg = seg_counts(~traj.armed, basic.starts)
    else:
        n_replaced_seg = np.zeros(vt.n_segments, dtype=np.int64)

    if nosend:
        # Final sent-since-checkpoint flag: a send after the last
        # flag-clearing event (basic trigger or forced jump).
        sp_end = vt.seg_last(vt.send.idx, vt.send, -1)
        reset_end = vt.seg_last(basic.idx, basic, -1)
        fp_end = np.full(vt.n_segments, -1, dtype=np.int64)
        if jump_forced.any():
            np.maximum.at(
                fp_end,
                traj.jump_seg[jump_forced],
                vt.recv.idx[traj.jump_row[jump_forced]],
            )
        sent_flag = sp_end > np.maximum(reset_end, fp_end)

    for b, inst in enumerate(instances):
        lo_s, hi_s = b * n_hosts, (b + 1) * n_hosts
        sn_final = traj.sn_final[lo_s:hi_s]
        inst.sn = sn_final.tolist()
        if qbc:
            inst.rn = traj.rn_final[lo_s:hi_s].tolist()
        if nosend:
            inst.sent_since_ckpt = sent_flag[lo_s:hi_s].tolist()
        if inst.log_checkpoints:
            _materialize_index_family(
                vt, inst, traj, b, qbc, nosend, jump_forced
            )
        else:
            inst.n_basic += int(n_basic_seg[lo_s:hi_s].sum())
            inst.n_forced += int(n_forced_seg[lo_s:hi_s].sum())
            if n_renamed_seg is not None:
                inst.n_renamed += int(n_renamed_seg[lo_s:hi_s].sum())
            inst.n_replaced += int(n_replaced_seg[lo_s:hi_s].sum())
            per_host = (n_basic_seg + n_forced_seg)[lo_s:hi_s]
            for h in range(n_hosts):
                inst.per_host_total[h] += int(per_host[h])
                inst.last_index[h] = int(sn_final[h])


def _materialize_index_family(vt, inst, traj, block, qbc, nosend, jump_forced):
    """Apply one block's solved checkpoints through take()/rename_last()
    in original event order."""
    import numpy as np

    n_hosts = vt.n_hosts
    ops = []  # (original position, kind, host, index, time, *extras)

    lo, hi = vt.block_bounds(vt.basic, block)
    sl = slice(lo, hi)
    b_pos = vt.perm[vt.basic.idx[sl]].tolist()
    b_host = (vt.seg_p[vt.basic.idx[sl]] % n_hosts).tolist()
    b_time = vt.basic.time[sl].tolist()
    b_index = traj.sn_after_basic[sl].tolist()
    b_armed = traj.armed[sl].tolist()
    b_rn = traj.rn_at_basic[sl].tolist()
    for k in range(len(b_pos)):
        if qbc:
            md = {"rn": b_rn[k]}
            replaced = not b_armed[k]
        elif nosend:  # BCS-NS basics record the rn they ignored
            md = {"rn": -1}
            replaced = False
        else:
            md = None
            replaced = False
        ops.append(
            (b_pos[k], "basic", b_host[k], b_index[k], b_time[k],
             replaced, md)
        )

    # Jump arrays are segment-major, so one block is a contiguous span.
    jlo = int(np.searchsorted(traj.jump_seg, block * n_hosts))
    jhi = int(np.searchsorted(traj.jump_seg, (block + 1) * n_hosts))
    rows = traj.jump_row[jlo:jhi]
    j_pos = vt.perm[vt.recv.idx[rows]].tolist()
    j_host = (traj.jump_seg[jlo:jhi] % n_hosts).tolist()
    j_time = vt.recv.time[rows].tolist()
    j_index = traj.jump_index[jlo:jhi].tolist()
    j_forced = (
        jump_forced[jlo:jhi].tolist() if nosend else [True] * len(j_pos)
    )
    for k in range(len(j_pos)):
        if not j_forced[k]:
            ops.append(
                (j_pos[k], "rename", j_host[k], j_index[k], j_time[k],
                 False, None)
            )
        else:
            md = {"rn": j_index[k]} if (qbc or nosend) else None
            ops.append(
                (j_pos[k], "forced", j_host[k], j_index[k], j_time[k],
                 False, md)
            )

    ops.sort(key=lambda op: op[0])
    for _, kind, host, index, time, replaced, md in ops:
        if kind == "rename":
            inst.rename_last(host, index, time)
        elif replaced or md is not None:
            inst.take(host, index, kind, time, replaced=replaced, metadata=md)
        else:
            # Same call shape as the reference hooks so take() overrides
            # with the plain four-argument signature keep working.
            inst.take(host, index, kind, time)


# ---------------------------------------------------------------------------
# UNC (periodic independent checkpointing)
# ---------------------------------------------------------------------------

def unc_replay(vt: VectorizedTrace, instances) -> None:
    """Replay the uncoordinated baseline over every block of *vt*.

    No piggybacks, so no fixpoint: per host, the next checkpoint is
    whichever comes first of the next basic trigger and the first
    message event at least one period after the last checkpoint.  The
    walk advances checkpoint-to-checkpoint (bisecting the message-time
    list), so it is O(checkpoints log events), not O(events).
    """
    n_hosts = vt.n_hosts
    basic, msg = vt.basic, vt.msg

    for b, inst in enumerate(instances):
        period = inst.period
        logging = inst.log_checkpoints
        ops = []
        for h in range(n_hosts):
            s = b * n_hosts + h
            b_lo, b_hi = int(basic.starts[s]), int(basic.starts[s + 1])
            m_lo, m_hi = int(msg.starts[s]), int(msg.starts[s + 1])
            b_pos = basic.idx[b_lo:b_hi].tolist()
            b_time = basic.time[b_lo:b_hi].tolist()
            m_pos = msg.idx[m_lo:m_hi].tolist()
            m_time = msg.time[m_lo:m_hi].tolist()
            t_last = inst._last_ckpt_time[h]
            count = inst.count[h]
            taken = 0
            ib, im = 0, 0
            nb, nm = len(b_pos), len(m_time)
            while True:
                # First message event from im that the reference
                # predicate (now - t_last >= period) accepts.  Bisect on
                # t_last + period lands within rounding of the exact
                # boundary; the predicate is monotone in the event time,
                # so a local adjustment recovers bit-exactness.
                k = bisect_left(m_time, t_last + period, im)
                while k > im and m_time[k - 1] - t_last >= period:
                    k -= 1
                while k < nm and m_time[k] - t_last < period:
                    k += 1
                bpos = b_pos[ib] if ib < nb else None
                mpos = m_pos[k] if k < nm else None
                if bpos is None and mpos is None:
                    break
                if mpos is None or (bpos is not None and bpos < mpos):
                    pos, now = bpos, b_time[ib]
                    ib += 1
                else:
                    pos, now = mpos, m_time[k]
                if logging:
                    # Sort key is the *original* event position -- the
                    # subsets hold permuted (segment-major) positions.
                    ops.append((int(vt.perm[pos]), h, count, now))
                count += 1
                taken += 1
                t_last = now
                im = bisect_right(m_pos, pos)
            inst.count[h] = count
            inst._last_ckpt_time[h] = t_last
            if not logging:
                inst.n_basic += taken
                inst.per_host_total[h] += taken
                inst.last_index[h] = count - 1
        if logging:
            ops.sort(key=lambda op: op[0])
            for _, host, index, now in ops:
                inst.take(host, index, "basic", now)


# ---------------------------------------------------------------------------
# TP (two-phase)
# ---------------------------------------------------------------------------

def tp_replay(vt: VectorizedTrace, instances) -> None:
    """Replay TP over every block of *vt*.

    Placement is purely local (the phase flag), so it needs no
    fixpoint: a receive is forced iff its host sent after its last
    basic trigger and no earlier receive of the same send-group already
    cleared the phase -- i.e. the receive is the *first* of its host
    after that send.  Checkpoint indices are then a segmented cumsum
    over the placed checkpoints.

    Only logging mode touches the CKPT/LOC dependency vectors (exactly
    like the reference implementation, whose counters-only path
    maintains no vector state); there they are solved by the matrix
    piggyback fixpoint and recorded per checkpoint through take().
    """
    import numpy as np

    n_hosts = vt.n_hosts
    recv, send, basic = vt.recv, vt.send, vt.basic

    # -- placement ---------------------------------------------------------
    sp_r = gather(send.idx, vt.last_send_at[recv.idx], -1)
    bp_r = gather(basic.idx, vt.last_basic_at[recv.idx], -1)
    prev_sp_r = seg_shift(sp_r, recv.starts, -2)  # -2: "no previous receive"
    forced_mask = (sp_r > bp_r) & (sp_r != prev_sp_r)

    n_forced_seg = seg_counts(forced_mask, recv.starts)
    n_basic_seg = np.diff(basic.starts)
    n_ckpt_seg = n_basic_seg + n_forced_seg

    # Final live phase: a send after the last checkpoint event.  The
    # last checkpoint per segment is the later of the last basic
    # trigger and the last forced receive.
    fidx = np.flatnonzero(forced_mask)
    f_hi = np.searchsorted(fidx, recv.starts[1:])
    f_lo = np.searchsorted(fidx, recv.starts[:-1])
    last_forced = np.full(vt.n_segments, -1, dtype=np.int64)
    has_forced = f_hi > f_lo
    if fidx.size:
        last_forced[has_forced] = recv.idx[fidx[f_hi[has_forced] - 1]]
    reset_end = vt.seg_last(basic.idx, basic, -1)
    cp_end = np.maximum(last_forced, reset_end)
    sp_end = vt.seg_last(send.idx, send, -1)
    phase_send = sp_end > cp_end

    # Final cell: last cell-change value, else the instance's initial.
    last_change_seg = vt.seg_last(
        np.arange(vt.change.idx.shape[0], dtype=np.int64), vt.change, -1
    )

    logging = any(inst.log_checkpoints for inst in instances)
    if logging:
        # The per-event checkpoint index (a full-domain segmented
        # cumsum) is only needed to number and materialize records.
        is_ckpt = np.zeros(vt.n_events, dtype=np.int64)
        is_ckpt[basic.idx] = 1
        is_ckpt[recv.idx[forced_mask]] = 1
        ckpt_cum = seg_cumsum(is_ckpt, vt.seg_starts)
        vecs = _tp_vectors(vt, ckpt_cum, forced_mask)

    for b, inst in enumerate(instances):
        lo_s, hi_s = b * n_hosts, (b + 1) * n_hosts
        seg_ids = range(lo_s, hi_s)
        initial_cells = list(inst.cell)
        final_cells = [
            int(vt.change_cell[last_change_seg[s]])
            if last_change_seg[s] >= 0
            else initial_cells[s - lo_s]
            for s in seg_ids
        ]
        inst.cell = final_cells
        inst.phase = [int(phase_send[s]) for s in seg_ids]
        inst.count = [int(n_ckpt_seg[s]) + 1 for s in seg_ids]
        if inst.log_checkpoints:
            _materialize_tp(vt, inst, b, vecs, initial_cells)
        else:
            inst.n_basic += int(n_basic_seg[lo_s:hi_s].sum())
            inst.n_forced += int(n_forced_seg[lo_s:hi_s].sum())
            for h in range(n_hosts):
                inst.per_host_total[h] += int(n_ckpt_seg[lo_s + h])
                inst.last_index[h] = int(n_ckpt_seg[lo_s + h])


def _tp_vectors(vt, ckpt_cum, forced_mask):
    """Solve TP's CKPT dependency-vector fixpoint over the whole batch.

    The piggyback of send *s* by host *h* is a full n-vector: own entry
    = h's checkpoint count at *s* (placement-determined, no fixpoint
    needed), other entries = componentwise running max over the rows
    received before *s*.  One (n_sends, n_hosts) matrix fixpoint.

    Returns everything materialization needs: the converged inclusive /
    exclusive merged-row views at receives.
    """
    import numpy as np

    recv, send = vt.recv, vt.send
    r_before_send = vt.last_recv_at[send.idx]
    send_host = (vt.seg_p[send.idx] % vt.n_hosts).astype(np.int64)
    own_at_send = ckpt_cum[send.idx]
    state = {}

    def step(pb):
        rows = pb[recv.slot]
        m_incl = seg_cummax(rows, recv.starts)
        state["m_incl"] = m_incl
        out = np.empty_like(pb)
        out[send.slot] = gather(m_incl, r_before_send, -1)
        out[send.slot, send_host] = own_at_send
        return out

    pb0 = np.full((vt.n_sends, vt.n_hosts), -1, dtype=np.int64)
    if vt.n_sends:
        pb0[send.slot, send_host] = own_at_send
    from repro.core.vectorized import fixpoint

    fixpoint(pb0, step, vt.n_events + 2, "tp-vectors")
    m_incl = state.get("m_incl")
    if m_incl is None:  # no receives anywhere: nothing ever merged
        m_incl = np.full((0, vt.n_hosts), -1, dtype=np.int64)
    return {
        "m_incl": m_incl,
        "m_excl": seg_shift(m_incl, recv.starts, -1),
        "forced_mask": forced_mask,
        "ckpt_cum": ckpt_cum,
    }


def _materialize_tp(vt, inst, block, vecs, initial_cells):
    """Build one block's TP checkpoint records (with CKPT/LOC metadata)
    and final live vectors, then apply them through take()."""
    import numpy as np

    n_hosts = vt.n_hosts
    recv, basic = vt.recv, vt.basic
    m_incl, m_excl = vecs["m_incl"], vecs["m_excl"]
    forced_mask, ckpt_cum = vecs["forced_mask"], vecs["ckpt_cum"]
    lo_s = block * n_hosts

    # Checkpoint rows: basics (inclusive merge view -- all receives
    # strictly precede the trigger) and forced receives (exclusive view
    # -- TP checkpoints *before* merging the incoming vectors).
    b_lo, b_hi = vt.block_bounds(basic, block)
    b_ids = basic.idx[b_lo:b_hi]
    b_rows = gather(m_incl, vt.last_recv_at[b_ids], -1)
    r_lo, r_hi = vt.block_bounds(recv, block)
    f_pick = np.flatnonzero(forced_mask[r_lo:r_hi]) + r_lo
    f_ids = recv.idx[f_pick]
    f_rows = m_excl[f_pick] if f_pick.size else np.full(
        (0, n_hosts), -1, dtype=np.int64
    )

    ids = np.concatenate([b_ids, f_ids])
    rows = np.concatenate([b_rows, f_rows])
    reasons = ["basic"] * len(b_ids) + ["forced"] * len(f_ids)
    hosts = (vt.seg_p[ids] % n_hosts).astype(np.int64)
    indices = ckpt_cum[ids]
    rows[np.arange(len(ids)), hosts] = indices  # own entry: the new index

    # Per-host index -> cell-at-that-checkpoint table for LOC lookups.
    cells_at = gather(
        vt.change_cell, vt.last_change_at[ids],
        np.int64(-2),  # placeholder: no change yet -> initial cell
    )
    init = np.asarray(initial_cells, dtype=np.int64)
    cells_at = np.where(cells_at == -2, init[hosts], cells_at)
    max_count = int(indices.max(initial=0)) + 1
    cc = np.full((n_hosts, max_count), -1, dtype=np.int64)
    cc[:, 0] = init
    cc[hosts, indices] = cells_at
    loc_rows = cc[
        np.arange(n_hosts)[None, :], np.maximum(rows, 0)
    ]
    loc_rows[rows < 0] = -1

    order = np.argsort(vt.perm[ids], kind="stable")
    hosts_l = hosts[order].tolist()
    idx_l = indices[order].tolist()
    time_l = vt.time_p[ids][order].tolist()
    rows_l = rows[order].tolist()
    loc_l = loc_rows[order].tolist()
    reasons_l = [reasons[k] for k in order.tolist()]
    for k in range(len(hosts_l)):
        inst.take(
            hosts_l[k],
            idx_l[k],
            reasons_l[k],
            time_l[k],
            metadata={
                "ckpt_vec": tuple(rows_l[k]),
                "loc_vec": tuple(loc_l[k]),
            },
        )

    # Final live dependency vectors: inclusive merge over everything
    # received, own entry at the final index (cc covers every index a
    # vector entry can reference, so LOC lookups stay in the table).
    last_r = np.asarray(
        [
            int(recv.starts[s + 1]) - 1
            if recv.starts[s + 1] > recv.starts[s]
            else -1
            for s in range(lo_s, lo_s + n_hosts)
        ],
        dtype=np.int64,
    )
    final_m = gather(m_incl, last_r, -1)
    own_final = np.asarray(
        [inst.count[h] - 1 for h in range(n_hosts)], dtype=np.int64
    )
    diag = np.arange(n_hosts)
    final_m[diag, diag] = own_final
    final_loc = cc[diag[None, :], np.maximum(final_m, 0)]
    final_loc[final_m < 0] = -1
    inst.ckpt_vec = [row.tolist() for row in final_m]
    inst.loc_vec = [row.tolist() for row in final_loc]
    inst._snapshot = [None] * n_hosts
