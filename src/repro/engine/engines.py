"""The three execution engines behind one interface.

Every way this repository evaluates a protocol -- reference replay,
fused single-pass replay, online discrete-event simulation (CIC
protocols in the loop *and* the coordinated baselines) -- is an
:class:`Engine` driving a validated
:class:`~repro.engine.spec.ExecutionPlan`:

* :class:`ReferenceReplayEngine` -- one pass of
  :func:`repro.core.replay.replay` per protocol; the semantic
  baseline the fused engine is audited against.
* :class:`FusedReplayEngine` -- all instances in one compiled-trace
  pass via :func:`repro.core.replay.replay_fused`.
* :class:`VectorizedFusedEngine` -- all instances as batch kernels
  over array columns via :func:`repro.core.replay.replay_vectorized`;
  the fastest replay path for protocols that declare
  ``vectorizable``, bit-identical to the other two.
  :func:`execute_batch` extends it across several specs at once (one
  row-block grid, one kernel pass per protocol).
* :class:`OnlineEngine` -- :func:`repro.workload.driver.run_online`
  for replayable protocols that need checkpoint latency / GC
  modelling, :func:`repro.core.online.run_coordinated` for the
  coordinated baselines.

:meth:`Engine.run` is a template: observers are notified uniformly
(run start, trace known, each outcome, run end), trace acquisition is
shared (pre-built trace, content-addressed cache with tier detection,
or fresh generation), and the result shape
(:class:`RunResult` of :class:`ProtocolOutcome`) is identical across
engines.  :func:`execute` is the one-call entry point: spec in,
result out.

The hot loops stay in :mod:`repro.core.replay` untouched; this layer
adds dispatch and bookkeeping only, so fused throughput through the
engine matches the raw call (benchmarked in
``benchmarks/bench_engine.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.online import CoordinatedResult, run_coordinated
from repro.core.replay import (
    replay,
    replay_fused,
    replay_vectorized,
    replay_vectorized_batch,
)
from repro.engine.errors import PlanError
from repro.engine.observers import ObserverError
from repro.engine.spec import ExecutionPlan, RunSpec, plan as _plan
# repro.obs.metrics is a dependency-free leaf (the repro.obs package
# resolves lazily), so this import cannot cycle back into the engine.
from repro.obs.metrics import registry as _metrics_registry
from repro.workload import driver as _driver
from repro.workload.cache import shared_cache


@dataclass(slots=True)
class ProtocolOutcome:
    """One protocol's result within a run."""

    name: str
    #: The driven instance; None for coordinated baselines (the online
    #: DES wraps its own bookkeeper around the scheme).
    protocol: Optional[object]
    #: Replay-style run metrics; None for coordinated baselines.
    metrics: Optional[object]
    #: The full online result (trace, system, GC counters) when this
    #: protocol ran embedded in the simulation.
    online: Optional[object] = None
    #: The coordinated-baseline result when this entry is one.
    coordinated: Optional[CoordinatedResult] = None

    @property
    def n_total(self) -> int:
        """The run's N_tot regardless of how the protocol was driven."""
        if self.metrics is not None:
            return self.metrics.n_total
        if self.coordinated is not None:
            return self.coordinated.n_total
        raise ValueError(f"outcome of {self.name!r} carries no counts")


@dataclass(slots=True)
class RunResult:
    """The uniform outcome every engine produces."""

    engine_kind: str
    outcomes: list[ProtocolOutcome]
    #: The run's schedule.  Replay engines: the replayed trace.  Online
    #: engine: the trace emitted by the (first) online run; None when
    #: only coordinated baselines ran.
    trace: Optional[object] = None
    #: Where the trace came from: a cache tier ("memory"/"disk"/
    #: "generated"), "uncached", "provided", or "online".
    trace_source: str = "provided"
    seed: Optional[int] = None
    wall_time_s: float = 0.0
    #: Audit violations collected by attached AuditObservers.
    violations: list = field(default_factory=list)
    #: Observer callbacks that raised mid-run and were absorbed
    #: (:class:`~repro.engine.observers.ObserverError`); the run's
    #: outcomes are complete and correct regardless.
    observer_errors: list = field(default_factory=list)

    def outcome(self, name: str) -> ProtocolOutcome:
        """The outcome of protocol *name* (raises KeyError if absent)."""
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(name)

    @property
    def metrics(self) -> dict[str, object]:
        """name -> ProtocolRunMetrics for every replayed/online entry."""
        return {
            o.name: o.metrics for o in self.outcomes if o.metrics is not None
        }


def _resolve_seed(spec: RunSpec) -> Optional[int]:
    """The seed stamped into metrics/telemetry, by precedence."""
    if spec.seed is not None:
        return spec.seed
    if spec.workload is not None:
        return spec.workload.seed
    if spec.trace is not None:
        return spec.trace.meta.get("seed")
    return None


def _acquire_trace(spec: RunSpec):
    """(trace, source tier) for a replay run -- pre-built, cached, or
    freshly generated."""
    if spec.trace is not None:
        return spec.trace, "provided"
    if spec.use_cache:
        cache = shared_cache(spec.cache_dir)
        before = (cache.hits, cache.disk_hits)
        trace = cache.get_or_generate(spec.workload)
        if cache.hits > before[0]:
            return trace, "memory"
        if cache.disk_hits > before[1]:
            return trace, "disk"
        return trace, "generated"
    # Through the module so monkeypatched generators are observed.
    return _driver.generate_trace(spec.workload), "uncached"


class _NullSpan:
    """Context-manager stand-in when no tracer is attached: accepts
    tag writes, times nothing, costs one allocation."""

    __slots__ = ("tags",)

    def __init__(self):
        self.tags: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _find_tracer(observers):
    """The first observer-carried tracer (duck-typed: any observer
    exposing a ``tracer`` with a ``span`` context manager -- see
    :class:`~repro.engine.observers.TimingObserver`)."""
    for obs in observers:
        tracer = getattr(obs, "tracer", None)
        if tracer is not None and callable(getattr(tracer, "span", None)):
            return tracer
    return None


class Engine:
    """Common interface: a validated plan in, a :class:`RunResult` out.

    ``run`` is a template method -- timing, span tracing, observer
    fan-out and result assembly live here; subclasses implement
    ``_execute`` and call ``_notify_trace`` / ``_notify_outcome`` as
    the run unfolds.

    Observer failure isolation: ``on_run_start`` exceptions propagate
    (nothing ran yet; the single-run reuse guards depend on failing
    fast), but mid-run callbacks (``on_trace`` / ``on_outcome``) and
    ``on_run_end`` are absorbed into
    :attr:`RunResult.observer_errors` -- a broken dashboard tap must
    not cost a finished run its result.
    """

    #: The :attr:`ExecutionPlan.engine_kind` this engine accepts.
    kind: str = "abstract"

    def run(self, target: Union[ExecutionPlan, RunSpec]) -> RunResult:
        """Execute *target* (a plan, or a spec planned on the spot)."""
        p = _plan(target) if isinstance(target, RunSpec) else target
        if p.engine_kind != self.kind:
            raise PlanError(
                f"plan selected the {p.engine_kind!r} engine; "
                f"this is the {self.kind!r} engine"
            )
        self._plan = p
        self._tracer = _find_tracer(p.observers)
        self._observer_errors: list[ObserverError] = []
        started = time.perf_counter()
        # run_id labels only exist when the spec carries one (the
        # fleet-observability plane); unlabelled runs keep the exact
        # series/tag shapes they always had.
        run_labels = {"kind": self.kind}
        run_tags = {"engine": self.kind}
        if p.spec.run_id:
            run_labels["run_id"] = p.spec.run_id
            run_tags["run_id"] = p.spec.run_id
        with self._span("run", **run_tags):
            for obs in p.observers:
                obs.on_run_start(p)
            result = self._execute(p)
            result.wall_time_s = time.perf_counter() - started
            result.observer_errors.extend(self._observer_errors)
            for obs in p.observers:
                with self._span(f"observer:{type(obs).__name__}"):
                    try:
                        obs.on_run_end(p, result)
                    except Exception as exc:
                        result.observer_errors.append(
                            ObserverError(
                                type(obs).__name__, "on_run_end", repr(exc)
                            )
                        )
        reg = _metrics_registry()
        reg.counter("repro_engine_runs_total", **run_labels).inc()
        reg.histogram("repro_engine_run_seconds", **run_labels).observe(
            result.wall_time_s
        )
        reg.counter("repro_engine_outcomes_total", **run_labels).inc(
            len(result.outcomes)
        )
        if result.observer_errors:
            reg.counter("repro_observer_errors_total").inc(
                len(result.observer_errors)
            )
        return result

    # -- subclass protocol -------------------------------------------------
    def _execute(self, p: ExecutionPlan) -> RunResult:
        raise NotImplementedError

    def _span(self, name: str, **tags):
        """A tracing span when the run carries a tracer, else a no-op."""
        if self._tracer is None:
            return _NullSpan()
        return self._tracer.span(name, **tags)

    def _notify_trace(self, trace, source: str) -> None:
        for obs in self._plan.observers:
            try:
                obs.on_trace(self._plan, trace, source)
            except Exception as exc:
                self._observer_errors.append(
                    ObserverError(type(obs).__name__, "on_trace", repr(exc))
                )

    def _notify_outcome(self, outcome: ProtocolOutcome) -> None:
        for obs in self._plan.observers:
            try:
                obs.on_outcome(self._plan, outcome)
            except Exception as exc:
                self._observer_errors.append(
                    ObserverError(type(obs).__name__, "on_outcome", repr(exc))
                )

    # -- shared helpers ----------------------------------------------------
    def _instances(self, p: ExecutionPlan, n_hosts: int, n_mss: int):
        """Fresh, spec-configured instances for every plan entry."""
        instances = []
        for entry in p.entries:
            instance = entry.make(n_hosts, n_mss)
            if p.spec.counters_only:
                instance.log_checkpoints = False
            instances.append(instance)
        return instances


class ReferenceReplayEngine(Engine):
    """One reference :func:`~repro.core.replay.replay` per protocol."""

    kind = "reference"

    def _execute(self, p: ExecutionPlan) -> RunResult:
        spec = p.spec
        with self._span("trace-acquire") as sp:
            trace, source = _acquire_trace(spec)
            sp.tags["source"] = source
        self._notify_trace(trace, source)
        seed = _resolve_seed(spec)
        outcomes = []
        for entry, instance in zip(
            p.entries, self._instances(p, trace.n_hosts, trace.n_mss)
        ):
            with self._span("replay", protocol=entry.name):
                rr = replay(trace, instance, seed=seed)
            outcome = ProtocolOutcome(
                name=entry.name, protocol=instance, metrics=rr.metrics
            )
            self._notify_outcome(outcome)
            outcomes.append(outcome)
        return RunResult(
            engine_kind=self.kind,
            outcomes=outcomes,
            trace=trace,
            trace_source=source,
            seed=seed,
        )


class FusedReplayEngine(Engine):
    """All instances over one compiled trace in a single pass."""

    kind = "fused"

    def _execute(self, p: ExecutionPlan) -> RunResult:
        spec = p.spec
        with self._span("trace-acquire") as sp:
            trace, source = _acquire_trace(spec)
            sp.tags["source"] = source
        self._notify_trace(trace, source)
        seed = _resolve_seed(spec)
        instances = self._instances(p, trace.n_hosts, trace.n_mss)
        with self._span("fused-pass", protocols=len(instances)):
            results = replay_fused(trace, instances, seed=seed)
        outcomes = []
        for entry, rr in zip(p.entries, results):
            outcome = ProtocolOutcome(
                name=entry.name, protocol=rr.protocol, metrics=rr.metrics
            )
            self._notify_outcome(outcome)
            outcomes.append(outcome)
        return RunResult(
            engine_kind=self.kind,
            outcomes=outcomes,
            trace=trace,
            trace_source=source,
            seed=seed,
        )


class VectorizedFusedEngine(Engine):
    """All instances as batch kernels over the trace's array columns.

    Same contract and result shape as :class:`FusedReplayEngine` --
    the plan layer guarantees every entry declared ``vectorizable``
    before this engine ever sees it -- but the replay happens in
    :func:`~repro.core.replay.replay_vectorized`: no per-event
    dispatch, just segmented scans and masks (see
    :mod:`repro.core.vectorized`).
    """

    kind = "vectorized"

    def _execute(self, p: ExecutionPlan) -> RunResult:
        spec = p.spec
        with self._span("trace-acquire") as sp:
            trace, source = _acquire_trace(spec)
            sp.tags["source"] = source
        self._notify_trace(trace, source)
        seed = _resolve_seed(spec)
        instances = self._instances(p, trace.n_hosts, trace.n_mss)
        with self._span("vectorized-pass", protocols=len(instances)):
            results = replay_vectorized(trace, instances, seed=seed)
        outcomes = []
        for entry, rr in zip(p.entries, results):
            outcome = ProtocolOutcome(
                name=entry.name, protocol=rr.protocol, metrics=rr.metrics
            )
            self._notify_outcome(outcome)
            outcomes.append(outcome)
        return RunResult(
            engine_kind=self.kind,
            outcomes=outcomes,
            trace=trace,
            trace_source=source,
            seed=seed,
        )


class OnlineEngine(Engine):
    """Protocol-in-the-loop simulation, one run per entry.

    Replayable entries go through
    :func:`~repro.workload.driver.run_online` (honouring
    ``ckpt_latency`` / ``gc_interval``); coordinated entries through
    :func:`~repro.core.online.run_coordinated` with the spec's
    ``snapshot_interval``.  Each entry simulates its own run -- unlike
    replay there is no shared schedule once checkpoint latency or
    control messages perturb timing.
    """

    kind = "online"

    def _execute(self, p: ExecutionPlan) -> RunResult:
        spec = p.spec
        cfg = spec.workload
        seed = _resolve_seed(spec)
        outcomes = []
        first_trace = None
        for entry in p.entries:
            if entry.capabilities.coordinated:
                with self._span("coordinated-run", protocol=entry.name):
                    res = run_coordinated(
                        cfg, entry.scheme, spec.snapshot_interval
                    )
                outcome = ProtocolOutcome(
                    name=entry.name,
                    protocol=None,
                    metrics=None,
                    coordinated=res,
                )
            else:
                instance = entry.make(cfg.n_hosts, cfg.n_mss)
                with self._span("online-run", protocol=entry.name):
                    res = _driver.run_online(
                        cfg,
                        instance,
                        ckpt_latency=spec.ckpt_latency,
                        gc_interval=spec.gc_interval,
                    )
                if first_trace is None:
                    first_trace = res.trace
                    self._notify_trace(res.trace, "online")
                outcome = ProtocolOutcome(
                    name=entry.name,
                    protocol=instance,
                    metrics=res.metrics,
                    online=res,
                )
            self._notify_outcome(outcome)
            outcomes.append(outcome)
        return RunResult(
            engine_kind=self.kind,
            outcomes=outcomes,
            trace=first_trace,
            trace_source="online",
            seed=seed,
        )


#: kind -> engine class, the dispatch table of :func:`engine_for`.
ENGINES = {
    ReferenceReplayEngine.kind: ReferenceReplayEngine,
    FusedReplayEngine.kind: FusedReplayEngine,
    VectorizedFusedEngine.kind: VectorizedFusedEngine,
    OnlineEngine.kind: OnlineEngine,
}


def engine_for(kind: str) -> Engine:
    """A fresh engine instance for a concrete *kind*."""
    try:
        return ENGINES[kind]()
    except KeyError:
        raise PlanError(
            f"no engine of kind {kind!r}; known: {sorted(ENGINES)}"
        ) from None


def execute(spec: Union[RunSpec, ExecutionPlan]) -> RunResult:
    """Plan (if needed) and run *spec* on the engine it selects."""
    p = _plan(spec) if isinstance(spec, RunSpec) else spec
    return engine_for(p.engine_kind).run(p)


def execute_batch(specs) -> list[RunResult]:
    """Run several replay specs as one vectorized row-block batch.

    Each spec is planned individually (trace acquisition included, so
    the content-addressed cache keys each point as usual), then all
    traces become blocks of a single
    :class:`~repro.core.vectorized.VectorizedTrace` and every
    protocol's kernel runs once over the whole grid via
    :func:`~repro.core.replay.replay_vectorized_batch`.  Returns one
    :class:`RunResult` per spec, shaped exactly as
    ``[execute(s) for s in specs]`` would produce.

    Every plan must land on the vectorized engine and the specs must
    agree on protocols, host counts and counters mode -- the batch is
    one grid, not a scheduler.  Observers are per-spec and notified as
    in a single run.
    """
    plans = [_plan(s) if isinstance(s, RunSpec) else s for s in specs]
    if not plans:
        return []
    for p in plans:
        if p.engine_kind != "vectorized":
            raise PlanError(
                f"execute_batch drives the vectorized engine only; spec "
                f"planned to {p.engine_kind!r}"
            )
    names = plans[0].protocol_names
    for p in plans[1:]:
        if p.protocol_names != names:
            raise PlanError(
                "execute_batch specs must agree on protocols: "
                f"{names} vs {p.protocol_names}"
            )
        if p.spec.counters_only != plans[0].spec.counters_only:
            raise PlanError(
                "execute_batch specs must agree on counters_only"
            )

    started = time.perf_counter()
    errors_per_plan: list[list[ObserverError]] = [[] for _ in plans]

    def _absorb(k, obs, cb, exc):
        errors_per_plan[k].append(
            ObserverError(type(obs).__name__, cb, repr(exc))
        )

    for p in plans:
        for obs in p.observers:
            obs.on_run_start(p)

    traces, sources = [], []
    for k, p in enumerate(plans):
        trace, source = _acquire_trace(p.spec)
        traces.append(trace)
        sources.append(source)
        for obs in p.observers:
            try:
                obs.on_trace(p, trace, source)
            except Exception as exc:
                _absorb(k, obs, "on_trace", exc)
    dims = {(t.n_hosts, t.n_mss) for t in traces}
    if len(dims) != 1:
        raise PlanError(
            f"execute_batch traces must share (n_hosts, n_mss); got {sorted(dims)}"
        )
    (n_hosts, n_mss), = dims

    counters_only = plans[0].spec.counters_only

    def _factory(entry):
        def make():
            instance = entry.make(n_hosts, n_mss)
            if counters_only:
                instance.log_checkpoints = False
            return instance

        return make

    grid = replay_vectorized_batch(
        traces, [_factory(e) for e in plans[0].entries]
    )

    results = []
    for k, (p, trace, source, row) in enumerate(
        zip(plans, traces, sources, grid)
    ):
        outcomes = []
        for entry, rr in zip(p.entries, row):
            outcome = ProtocolOutcome(
                name=entry.name, protocol=rr.protocol, metrics=rr.metrics
            )
            for obs in p.observers:
                try:
                    obs.on_outcome(p, outcome)
                except Exception as exc:
                    _absorb(k, obs, "on_outcome", exc)
            outcomes.append(outcome)
        result = RunResult(
            engine_kind="vectorized",
            outcomes=outcomes,
            trace=trace,
            trace_source=source,
            seed=_resolve_seed(p.spec),
            wall_time_s=time.perf_counter() - started,
            observer_errors=errors_per_plan[k],
        )
        for obs in p.observers:
            try:
                obs.on_run_end(p, result)
            except Exception as exc:
                result.observer_errors.append(
                    ObserverError(type(obs).__name__, "on_run_end", repr(exc))
                )
        results.append(result)
    reg = _metrics_registry()
    batch_labels = {"kind": "vectorized"}
    run_ids = {p.spec.run_id for p in plans}
    if len(run_ids) == 1 and next(iter(run_ids)):
        batch_labels["run_id"] = next(iter(run_ids))
    reg.counter("repro_engine_runs_total", **batch_labels).inc(len(plans))
    reg.counter("repro_engine_outcomes_total", **batch_labels).inc(
        sum(len(r.outcomes) for r in results)
    )
    return results
