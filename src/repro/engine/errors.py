"""Typed errors of the execution-engine layer.

Every consumer-facing failure mode of :mod:`repro.engine` raises one of
these, so the CLI, the sweep config and library callers can react to
the *kind* of problem instead of parsing message strings:

* :class:`UnknownProtocolError` -- a requested protocol name is not in
  the registry (the message lists every known name).
* :class:`CapabilityError` -- the protocol exists but cannot run the
  requested way (a coordinated baseline on a replay engine, a
  counters-only run of a protocol that keeps no counters contract, a
  non-fusable protocol on the fused engine).
* :class:`PlanError` -- the :class:`~repro.engine.spec.RunSpec` itself
  is incoherent (no protocols, trace and workload both missing, an
  online run from a pre-built trace, ...).

All three subclass :class:`ValueError` so pre-engine callers that
caught ``ValueError`` from the old hand-rolled validation keep working
unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence


class EngineError(ValueError):
    """Base class of every engine-layer resolution/planning error."""


class UnknownProtocolError(EngineError):
    """A requested protocol name is not registered.

    The standard error text -- shared by the CLI and
    :meth:`repro.experiments.config.SweepConfig.validate` -- always
    lists the offending names and every known name so the fix is
    obvious from the message alone.
    """

    def __init__(self, unknown: Sequence[str], known: Sequence[str]):
        self.unknown = tuple(unknown)
        self.known = tuple(known)
        super().__init__(
            f"unknown protocols {list(self.unknown)}; "
            f"known: {sorted(self.known)}"
        )


class CapabilityError(EngineError):
    """A protocol lacks a capability the requested execution needs."""

    def __init__(
        self,
        protocol: str,
        capability: str,
        detail: str,
        engine: Optional[str] = None,
    ):
        self.protocol = protocol
        self.capability = capability
        self.engine = engine
        where = f" on the {engine!r} engine" if engine else ""
        super().__init__(
            f"protocol {protocol!r} does not support "
            f"{capability!r}{where}: {detail}"
        )


class PlanError(EngineError):
    """The run specification itself is incoherent."""
