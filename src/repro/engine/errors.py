"""Typed errors of the execution-engine layer.

Every consumer-facing failure mode of :mod:`repro.engine` raises one of
these, so the CLI, the sweep config and library callers can react to
the *kind* of problem instead of parsing message strings:

* :class:`UnknownProtocolError` -- a requested protocol name is not in
  the registry (the message lists every known name, with closest-match
  suggestions for likely typos).
* :class:`CapabilityError` -- the protocol exists but cannot run the
  requested way (a coordinated baseline on a replay engine, a
  counters-only run of a protocol that keeps no counters contract, a
  non-fusable protocol on the fused engine).
* :class:`PlanError` -- the :class:`~repro.engine.spec.RunSpec` itself
  is incoherent (no protocols, trace and workload both missing, an
  online run from a pre-built trace, ...).
* :class:`PluginError` and its subclasses -- a third-party protocol
  distribution failed to load, registered something that is not a
  protocol, or collided with an existing name (see
  :mod:`repro.engine.plugins`).

All of them subclass :class:`ValueError` so pre-engine callers that
caught ``ValueError`` from the old hand-rolled validation keep working
unchanged.
"""

from __future__ import annotations

import difflib
from typing import Optional, Sequence


class EngineError(ValueError):
    """Base class of every engine-layer resolution/planning error."""


def suggest_names(
    name: str, known: Sequence[str], n: int = 3
) -> tuple[str, ...]:
    """Closest registered names to *name* (case-insensitive, best
    first) -- the "did you mean" candidates for one unknown name."""
    by_fold = {k.casefold(): k for k in known}
    matches = difflib.get_close_matches(
        name.casefold(), list(by_fold), n=n, cutoff=0.5
    )
    return tuple(by_fold[m] for m in matches)


class UnknownProtocolError(EngineError):
    """A requested protocol name is not registered.

    The standard error text -- shared by the CLI and
    :meth:`repro.experiments.config.SweepConfig.validate` -- always
    lists the offending names, the closest registered names to each
    (likely typos), and every known name, so the fix is obvious from
    the message alone.
    """

    def __init__(self, unknown: Sequence[str], known: Sequence[str]):
        self.unknown = tuple(unknown)
        self.known = tuple(known)
        #: name -> closest registered names, best match first.
        self.suggestions = {
            name: suggest_names(name, self.known) for name in self.unknown
        }
        hints = "".join(
            f"; did you mean {' or '.join(repr(s) for s in hit)} "
            f"instead of {name!r}?"
            for name, hit in self.suggestions.items()
            if hit
        )
        super().__init__(
            f"unknown protocols {list(self.unknown)}{hints}; "
            f"known: {sorted(self.known)}"
        )


class CapabilityError(EngineError):
    """A protocol lacks a capability the requested execution needs."""

    def __init__(
        self,
        protocol: str,
        capability: str,
        detail: str,
        engine: Optional[str] = None,
    ):
        self.protocol = protocol
        self.capability = capability
        self.engine = engine
        where = f" on the {engine!r} engine" if engine else ""
        super().__init__(
            f"protocol {protocol!r} does not support "
            f"{capability!r}{where}: {detail}"
        )


class PlanError(EngineError):
    """The run specification itself is incoherent."""


class PluginError(EngineError):
    """Base class of protocol-plugin discovery failures.

    Every instance names the plugin (entry point or namespace module)
    and where it came from, so a report of several failed plugins stays
    actionable.
    """

    def __init__(self, plugin: str, source: str, detail: str):
        self.plugin = plugin
        self.source = source
        self.detail = detail
        super().__init__(f"plugin {plugin!r} (from {source}): {detail}")


class PluginLoadError(PluginError):
    """The plugin could not even be imported / resolved.

    Wraps the underlying exception (kept in ``__cause__`` when raised
    with ``raise ... from exc``) -- a plugin with a syntax error or a
    missing dependency fails discovery with this, never with a bare
    ImportError mid-resolution.
    """


class PluginProtocolError(PluginError):
    """The plugin loaded, but what it registered is not a usable
    protocol: not a :class:`~repro.protocols.base.CheckpointingProtocol`
    subclass, an incoherent capability declaration, or an entry point
    that registered nothing at all."""


class PluginCollisionError(PluginError):
    """The plugin tried to register a name that already exists.

    Shadowing is never allowed: a plugin cannot replace a builtin
    protocol, and two plugins cannot claim the same name -- the first
    load wins and the second fails with this error (its registrations
    are rolled back).
    """

    def __init__(
        self, plugin: str, source: str, name: str, existing_origin: str
    ):
        self.name = name
        self.existing_origin = existing_origin
        super().__init__(
            plugin,
            source,
            f"protocol name {name!r} is already registered "
            f"({existing_origin}); plugin names must not shadow "
            "existing protocols",
        )
