"""Protocol plugin discovery: third-party protocols join the registry.

Two public growth mechanisms feed the capability-aware registry of
:mod:`repro.engine.registry`, both discovered automatically when the
engine is imported (and lazily on first name resolution):

* **Entry points** -- a distribution declares protocols in the
  ``repro.protocols`` entry-point group::

      [project.entry-points."repro.protocols"]
      XBCS = "my_pkg.protocols:StrideBCSProtocol"

  An entry point may resolve to a
  :class:`~repro.protocols.base.CheckpointingProtocol` subclass (it is
  registered under the entry-point name), or to a module / zero-arg
  callable whose import / call performs its own registrations through
  the public :func:`repro.protocols.base.register` /
  :func:`repro.engine.registry.register_coordinated` API (any number of
  names).

* **Namespace packages** -- any importable module inside the
  ``repro_protocols`` namespace package is imported; its module body
  registers protocols with the same decorators the in-tree protocols
  use.  Dropping a single ``repro_protocols/mine.py`` on ``sys.path``
  is enough -- no packaging required.

Rules enforced here (all failures are typed
:class:`~repro.engine.errors.PluginError` subclasses):

* **coherence** -- whatever a plugin registers must be a protocol class
  with a coherent capability declaration
  (:func:`repro.protocols.base.validate_capabilities` runs on every
  new name);
* **no shadowing** -- a plugin may not re-bind an existing name, be it
  builtin or from an earlier plugin
  (:class:`~repro.engine.errors.PluginCollisionError`); first load
  wins;
* **atomicity** -- a plugin that fails mid-load leaves no partial
  registrations behind (the registries are rolled back to their
  pre-load snapshot).

Discovery is *fault-isolated* by default: one broken plugin is
recorded in :func:`plugin_errors` (and warned about) without taking
down the interpreter or the other plugins.  ``repro protocols`` (the
CLI) lists every registered protocol with its origin and any load
errors; :func:`discover_plugins` with ``strict=True`` re-raises
instead, which is what the plugin's own test suite should call.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.errors import (
    PluginCollisionError,
    PluginError,
    PluginLoadError,
    PluginProtocolError,
)
from repro.protocols.base import (
    CheckpointingProtocol,
    register,
    registry as _class_registry,
    validate_capabilities,
)

#: The entry-point group plugins publish protocols under.
ENTRY_POINT_GROUP = "repro.protocols"

#: The namespace package scanned for drop-in protocol modules.
NAMESPACE_PACKAGE = "repro_protocols"


@dataclass(frozen=True)
class ProtocolOrigin:
    """Where a registered protocol name came from.

    ``kind`` is ``"builtin"`` (registered by importing
    :mod:`repro.protocols`), ``"plugin"`` (an entry-point
    distribution), ``"namespace"`` (a ``repro_protocols`` module) or
    ``"runtime"`` (registered programmatically after import -- test
    stubs, notebooks).  ``source`` names the distribution or module for
    the plugin kinds.
    """

    kind: str
    source: Optional[str] = None

    def __str__(self) -> str:
        return self.kind if self.source is None else f"{self.kind}:{self.source}"


_BUILTIN = ProtocolOrigin("builtin")
_RUNTIME = ProtocolOrigin("runtime")

#: Plugin-registered name -> origin (builtins are derived, not stored).
_origins: dict[str, ProtocolOrigin] = {}
#: Names present before any plugin loaded (the builtin snapshot).
_builtin_names: frozenset[str] = frozenset()
#: Errors collected by the last non-strict discovery pass.
_errors: list[PluginError] = []
_discovered = False
_in_progress = False


def _coordinated_registry() -> dict:
    # Deferred: repro.engine.registry imports this module's consumers'
    # world; binding it lazily keeps the import graph acyclic.
    from repro.engine.registry import _coordinated

    return _coordinated


def _all_registered_names() -> set[str]:
    return set(_class_registry) | set(_coordinated_registry())


def protocol_origin(name: str) -> ProtocolOrigin:
    """The origin of registered protocol *name* (see
    :class:`ProtocolOrigin`).  Unregistered names raise ``KeyError``."""
    if name in _origins:
        return _origins[name]
    if name not in _all_registered_names():
        raise KeyError(name)
    if _discovered and name not in _builtin_names:
        return _RUNTIME
    return _BUILTIN


def plugin_errors() -> tuple[PluginError, ...]:
    """Typed errors of the last discovery pass (empty = all clean)."""
    return tuple(_errors)


# ---------------------------------------------------------------------------
# loading one plugin
# ---------------------------------------------------------------------------


def _snapshot():
    return dict(_class_registry), dict(_coordinated_registry())

def _restore(snapshot) -> None:
    classes, coordinated = snapshot
    _class_registry.clear()
    _class_registry.update(classes)
    reg = _coordinated_registry()
    reg.clear()
    reg.update(coordinated)


def _adopt_new_names(
    before: set[str], plugin: str, source: str, origin: ProtocolOrigin
) -> list[str]:
    """Validate and claim every name the plugin just registered.

    Raises :class:`PluginProtocolError` when a new class registration is
    incoherent; collision against *pre-existing* names is checked by the
    caller before anything loads (the registries reject some collisions
    themselves, but a plugin overwriting a dict entry would otherwise
    be silent shadowing).
    """
    added = sorted(_all_registered_names() - before)
    for name in added:
        cls = _class_registry.get(name)
        if cls is not None:
            if not (
                isinstance(cls, type) and issubclass(cls, CheckpointingProtocol)
            ):
                raise PluginProtocolError(
                    plugin,
                    source,
                    f"registered {name!r} -> {cls!r}, which is not a "
                    "CheckpointingProtocol subclass",
                )
            try:
                validate_capabilities(cls)
            except ValueError as exc:
                raise PluginProtocolError(plugin, source, str(exc)) from exc
        _origins[name] = origin
    return added


def _load_plugin(
    plugin: str,
    source: str,
    origin: ProtocolOrigin,
    loader: Callable[[], object],
    register_class_as: Optional[str] = None,
) -> list[str]:
    """Run one plugin's *loader* under the atomicity contract.

    Returns the names it registered.  ``register_class_as`` is the
    entry-point name a resolved protocol *class* is registered under
    (module / callable entry points register themselves).
    """
    before_names = _all_registered_names()
    snapshot = _snapshot()
    try:
        try:
            obj = loader()
        except PluginError:
            raise
        except Exception as exc:
            raise PluginLoadError(plugin, source, repr(exc)) from exc

        if isinstance(obj, type):
            if not issubclass(obj, CheckpointingProtocol):
                raise PluginProtocolError(
                    plugin,
                    source,
                    f"resolved to class {obj.__name__!r}, which is not a "
                    "CheckpointingProtocol subclass",
                )
            name = register_class_as or plugin
            existing = _class_registry.get(name)
            if name in before_names and existing is not obj:
                raise PluginCollisionError(
                    plugin, source, name, str(protocol_origin(name))
                )
            if existing is not obj:
                try:
                    register(name)(obj)
                except ValueError as exc:
                    raise PluginProtocolError(plugin, source, str(exc)) from exc
        elif callable(obj):
            try:
                obj()
            except PluginError:
                raise
            except Exception as exc:
                raise PluginLoadError(
                    plugin, source, f"registration hook raised {exc!r}"
                ) from exc
        # else: a module (or anything with import-time side effects) --
        # its registrations already happened during loader().

        shadowed = [
            name
            for name in before_names
            if _class_registry.get(name) is not snapshot[0].get(name)
            or _coordinated_registry().get(name) is not snapshot[1].get(name)
        ]
        if shadowed:
            raise PluginCollisionError(
                plugin, source, shadowed[0], str(protocol_origin(shadowed[0]))
            )
        added = _adopt_new_names(before_names, plugin, source, origin)
        if not added and not isinstance(obj, type) and not callable(obj):
            # A module that registered nothing is a packaging bug
            # (forgotten @register line) worth surfacing early.
            raise PluginProtocolError(
                plugin, source, "loaded but registered no protocols"
            )
        return added
    except PluginError:
        _restore(snapshot)
        for name in list(_origins):
            if name not in _all_registered_names():
                del _origins[name]
        raise


# ---------------------------------------------------------------------------
# discovery passes
# ---------------------------------------------------------------------------


def _iter_entry_points():
    from importlib import metadata

    try:
        return list(metadata.entry_points(group=ENTRY_POINT_GROUP))
    except Exception:  # pragma: no cover - defensive: broken metadata
        return []


def _discover_entry_points(collect: list[PluginError]) -> None:
    for ep in _iter_entry_points():
        dist = getattr(getattr(ep, "dist", None), "name", None)
        source = f"entry point {ep.value!r}" + (
            f" of distribution {dist!r}" if dist else ""
        )
        origin = ProtocolOrigin("plugin", dist or ep.value)
        try:
            _load_plugin(
                ep.name, source, origin, ep.load, register_class_as=ep.name
            )
        except PluginError as exc:
            collect.append(exc)


def _discover_namespace(collect: list[PluginError]) -> None:
    import importlib
    import pkgutil

    try:
        ns = importlib.import_module(NAMESPACE_PACKAGE)
    except ModuleNotFoundError:
        return  # no drop-in modules anywhere on sys.path
    except Exception as exc:
        collect.append(
            PluginLoadError(NAMESPACE_PACKAGE, "namespace package", repr(exc))
        )
        return
    for info in pkgutil.iter_modules(getattr(ns, "__path__", [])):
        if info.name.startswith("_"):
            continue  # private helpers are not protocol modules
        module = f"{NAMESPACE_PACKAGE}.{info.name}"
        origin = ProtocolOrigin("namespace", module)
        try:
            _load_plugin(
                module,
                f"namespace module {module!r}",
                origin,
                lambda module=module: importlib.import_module(module),
            )
        except PluginError as exc:
            collect.append(exc)


def discover_plugins(*, strict: bool = False, force: bool = False) -> int:
    """Run (or re-run) plugin discovery; returns the number of
    protocol names plugins contributed overall.

    ``force`` re-scans even if discovery already ran -- tests and
    long-lived processes use it after mutating ``sys.path``.  Already
    loaded plugin names stay registered (loads are idempotent: an entry
    point resolving to the already-registered class is not a
    collision).  ``strict`` raises the first
    :class:`~repro.engine.errors.PluginError` instead of collecting;
    the non-strict default stashes errors in :func:`plugin_errors` and
    emits one :class:`UserWarning` naming them.
    """
    global _discovered, _builtin_names, _in_progress
    if _in_progress or (_discovered and not force):
        return len(_origins)
    # Builtins must be fully registered before the snapshot is taken;
    # importing the package is idempotent and cheap.
    import repro.protocols  # noqa: F401
    from repro.engine import registry as _registry  # noqa: F401  (coordinated)

    if not _discovered:
        _builtin_names = frozenset(_all_registered_names() - set(_origins))
    _in_progress = True
    try:
        collect: list[PluginError] = []
        _discover_entry_points(collect)
        _discover_namespace(collect)
        _errors[:] = collect
        _discovered = True
    finally:
        _in_progress = False
    if _errors:
        if strict:
            raise _errors[0]
        warnings.warn(
            f"{len(_errors)} protocol plugin(s) failed to load: "
            + "; ".join(str(e) for e in _errors)
            + " -- run `repro protocols` for details",
            stacklevel=2,
        )
    return len(_origins)


def ensure_discovered() -> None:
    """Idempotent discovery trigger (the lazy path used by the
    registry); never raises on plugin failures."""
    if not _discovered and not _in_progress:
        discover_plugins(strict=False)


def reset_plugins() -> None:
    """Unregister every plugin-contributed protocol and forget the
    discovery state.  Test isolation only -- production processes have
    no reason to unload plugins."""
    global _discovered
    coordinated = _coordinated_registry()
    for name in list(_origins):
        _class_registry.pop(name, None)
        coordinated.pop(name, None)
    _origins.clear()
    _errors.clear()
    _discovered = False
