"""Run specification and planning.

A :class:`RunSpec` states *what* to evaluate -- which protocols, over
which workload or pre-built trace, with which execution preferences and
observers.  :func:`plan` resolves it against the capability-aware
registry into an :class:`ExecutionPlan` that names a concrete engine
and carries fully resolved protocol entries.  All validation happens
here, *before* anything runs: unknown names, capability mismatches and
incoherent specs fail fast with the typed errors of
:mod:`repro.engine.errors`, identically from every consumer (CLI,
sweep config, library code).

Engine selection
----------------

``engine="auto"`` (the default) picks the cheapest sound engine:

* any coordinated protocol in the set -> the **online** DES (the only
  engine that can drive coordination rounds);
* otherwise, if every protocol ships batch kernels -> the
  **vectorized** replay (fused contract, no per-event dispatch);
* otherwise, if every protocol is fusable -> the **fused** single-pass
  replay;
* otherwise -> the **reference** per-protocol replay.

Naming an engine explicitly instead turns the same conditions into
hard :class:`~repro.engine.errors.CapabilityError` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from repro.engine.errors import CapabilityError, PlanError
from repro.engine.observers import RunObserver
from repro.engine.registry import (
    ProtocolFactory,
    ResolvedProtocol,
    resolve_protocols,
)

#: The engine kinds :func:`plan` can select.
ENGINE_KINDS = ("auto", "reference", "fused", "vectorized", "online")

#: Version tag of the :meth:`RunSpec.to_wire` dict format (bumped on
#: breaking shape changes; :meth:`RunSpec.from_wire` refuses others).
#: v2: the workload dict carries the registry fields ``workload`` /
#: ``workload_params`` (name + params travel, never a materialized
#: schedule), so a v1 peer must not silently drop them.
SPEC_WIRE_VERSION = 2


@dataclass(frozen=True)
class RunSpec:
    """One declarative run request.

    Exactly one of *workload* / *trace* supplies the schedule: replay
    engines accept either (a workload is resolved through the trace
    cache / generator), the online engine needs a workload (it *emits*
    the trace, it cannot consume one).
    """

    #: Protocol names; ``None`` selects every protocol the chosen
    #: engine can drive.
    protocols: Optional[Sequence[str]] = None
    #: Workload to generate (or fetch) the schedule from.
    workload: Optional["WorkloadConfig"] = None  # noqa: F821
    #: Pre-built trace to replay (replay engines only).
    trace: Optional["Trace"] = None  # noqa: F821
    #: Engine preference: one of :data:`ENGINE_KINDS`.
    engine: str = "auto"
    #: Skip checkpoint logs; every protocol must declare
    #: ``supports_counters_only`` and the engine must be a replay one.
    counters_only: bool = False
    #: Arm the invariant audit (attaches an AuditObserver when the
    #: observer stack has none).
    audit: bool = False
    #: Seed stamped into metrics/telemetry (defaults to the workload's).
    seed: Optional[int] = None
    #: Serve workload traces from the content-addressed cache.
    use_cache: bool = False
    #: Disk tier of the trace cache (None: REPRO_TRACE_CACHE_DIR / memory).
    cache_dir: Optional[str] = None
    #: Observer stack, notified in order (see repro.engine.observers).
    observers: Tuple[RunObserver, ...] = ()
    #: Factory overrides (name -> factory), trumping the registry.
    factories: Optional[Mapping[str, ProtocolFactory]] = None
    #: Online engine: per-checkpoint pause (Section 5.1 scenario).
    ckpt_latency: float = 0.0
    #: Online engine: stable-storage GC period (None disables).
    gc_interval: Optional[float] = None
    #: Online engine: coordinated snapshot round period.
    snapshot_interval: float = 500.0
    #: Fleet-observability run label: stamped into the engine's span
    #: tags and metric labels when set, so one sweep's series are
    #: separable across processes.  ``None`` (the default) keeps the
    #: series names exactly as they were -- no label churn for runs
    #: that never asked for the fleet plane.
    run_id: Optional[str] = None

    def __post_init__(self):
        if self.engine not in ENGINE_KINDS:
            raise PlanError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_KINDS}"
            )
        object.__setattr__(self, "observers", tuple(self.observers))
        if self.protocols is not None:
            object.__setattr__(self, "protocols", tuple(self.protocols))

    # -- serialization across a process / network boundary -------------
    def to_wire(self) -> dict:
        """Plain-dict form of this spec for a serialized boundary.

        The sharded sweep service ships specs to worker processes as
        version-tagged frames; only the *declarative* fields travel.
        Process-local state cannot: a pre-built trace (regenerate or
        cache it on the far side), observers (attach them worker-side)
        and factory overrides (plain callables don't name themselves)
        all raise :class:`~repro.engine.errors.PlanError`.

        The result is JSON-compatible as long as ``workload.extra``
        is, so it survives json/pickle round-trips identically.
        """
        if self.trace is not None:
            raise PlanError(
                "a pre-built trace does not serialize with the spec; "
                "send the workload and let the far side hit the trace "
                "cache (or regenerate)"
            )
        if self.observers:
            raise PlanError(
                "observers are process-local; attach them on the "
                "executing side, not through the wire"
            )
        if self.factories:
            raise PlanError(
                "factory overrides are process-local callables and do "
                "not serialize; register the protocol on the far side"
            )
        from dataclasses import asdict

        return {
            "version": SPEC_WIRE_VERSION,
            "protocols": (
                list(self.protocols) if self.protocols is not None else None
            ),
            "workload": (
                asdict(self.workload) if self.workload is not None else None
            ),
            "engine": self.engine,
            "counters_only": bool(self.counters_only),
            "audit": bool(self.audit),
            "seed": self.seed,
            "use_cache": bool(self.use_cache),
            "cache_dir": self.cache_dir,
            "ckpt_latency": self.ckpt_latency,
            "gc_interval": self.gc_interval,
            "snapshot_interval": self.snapshot_interval,
            # Optional additive field (absent-tolerant on decode), so
            # it rides wire v2 without a version bump.
            "run_id": self.run_id,
        }

    @classmethod
    def from_wire(cls, wire: Mapping) -> "RunSpec":
        """Rebuild a spec from :meth:`to_wire` output.

        Raises :class:`~repro.engine.errors.PlanError` on an unknown
        wire version or a malformed payload, so a coordinator/worker
        version skew fails loudly instead of mis-running a sweep.
        """
        version = wire.get("version")
        if version != SPEC_WIRE_VERSION:
            raise PlanError(
                f"cannot decode spec wire version {version!r} "
                f"(this side speaks {SPEC_WIRE_VERSION})"
            )
        workload = wire.get("workload")
        if workload is not None:
            from repro.workload.config import WorkloadConfig

            try:
                workload = WorkloadConfig(**workload)
            except TypeError as exc:
                raise PlanError(f"malformed workload on the wire: {exc}")
        protocols = wire.get("protocols")
        return cls(
            protocols=tuple(protocols) if protocols is not None else None,
            workload=workload,
            engine=wire.get("engine", "auto"),
            counters_only=bool(wire.get("counters_only", False)),
            audit=bool(wire.get("audit", False)),
            seed=wire.get("seed"),
            use_cache=bool(wire.get("use_cache", False)),
            cache_dir=wire.get("cache_dir"),
            ckpt_latency=wire.get("ckpt_latency", 0.0),
            gc_interval=wire.get("gc_interval"),
            snapshot_interval=wire.get("snapshot_interval", 500.0),
            run_id=wire.get("run_id"),
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated spec bound to a concrete engine.

    Produced only by :func:`plan`; engines trust it (no re-validation
    in the hot path).
    """

    spec: RunSpec
    #: "reference" | "fused" | "vectorized" | "online" -- never "auto".
    engine_kind: str
    entries: Tuple[ResolvedProtocol, ...]
    observers: Tuple[RunObserver, ...] = field(default_factory=tuple)

    @property
    def protocol_names(self) -> Tuple[str, ...]:
        return tuple(e.name for e in self.entries)


def _select_engine(spec: RunSpec, entries) -> str:
    """Resolve ``engine="auto"`` to a concrete kind (see module doc)."""
    if spec.trace is None and any(
        e.capabilities.coordinated or not e.capabilities.replayable
        for e in entries
    ):
        return "online"
    # A pre-built trace can only be replayed; a non-replayable entry
    # then fails the fit check with the standard CapabilityError.
    if all(e.capabilities.vectorizable for e in entries):
        return "vectorized"
    if all(e.capabilities.fusable for e in entries):
        return "fused"
    return "reference"


def _check_engine_fit(kind: str, entries) -> None:
    """Every entry must support the chosen engine kind."""
    for e in entries:
        caps = e.capabilities
        if kind in ("reference", "fused", "vectorized") and not caps.replayable:
            raise CapabilityError(
                e.name,
                "replayable",
                "coordinated baselines inject control messages that "
                "perturb the schedule; run them on the online engine"
                if caps.coordinated
                else "this protocol must run embedded in the online "
                "simulation",
                engine=kind,
            )
        if kind in ("fused", "vectorized") and not caps.fusable:
            raise CapabilityError(
                e.name,
                "fusable",
                "instances cannot share a fused single pass; use the "
                "reference replay engine",
                engine=kind,
            )
        if kind == "vectorized" and not caps.vectorizable:
            raise CapabilityError(
                e.name,
                "vectorizable",
                "this protocol ships no batch kernels; use the fused "
                "replay engine",
                engine=kind,
            )


def plan(spec: RunSpec) -> ExecutionPlan:
    """Resolve and validate *spec* into an :class:`ExecutionPlan`.

    Raises
    ------
    UnknownProtocolError
        A requested protocol name is not registered.
    CapabilityError
        A protocol cannot run on the requested (or required) engine,
        or lacks the counters-only contract the spec demands.
    PlanError
        The spec itself is incoherent: no schedule source, both
        sources at once, an online run from a pre-built trace, an
        audited online run, ...
    """
    if spec.workload is None and spec.trace is None:
        raise PlanError("spec needs a workload or a pre-built trace")
    if spec.workload is not None and spec.trace is not None:
        raise PlanError(
            "spec has both a workload and a pre-built trace; pick one "
            "schedule source"
        )
    if spec.workload is not None:
        # Resolve the workload model at plan time, so an unknown name
        # or bad parameter fails here with the registry's did-you-mean
        # errors (ValueErrors, like every engine error) instead of
        # mid-run in a worker process.
        from repro.workload.registry import check_workload

        check_workload(
            spec.workload.workload, spec.workload.workload_params
        )

    # protocols=None means "everything the chosen engine can drive":
    # all protocols for the online engine, the fusable/replayable set
    # otherwise (auto included, so the default never drags a
    # coordinated baseline into a replay comparison).
    default_gate = {
        "online": None,
        "fused": "fusable",
        "vectorized": "vectorizable",
    }.get(spec.engine, "replayable")
    entries = resolve_protocols(
        spec.protocols,
        require=default_gate if spec.protocols is None else None,
        factories=spec.factories,
    )
    if not entries:
        raise PlanError("spec resolved to zero protocols")

    kind = spec.engine
    if kind == "auto":
        kind = _select_engine(spec, entries)
    _check_engine_fit(kind, entries)

    if kind == "online":
        if spec.trace is not None:
            raise PlanError(
                "the online engine emits its own trace; it cannot replay "
                "a pre-built one -- use the reference or fused engine"
            )
        if spec.counters_only:
            raise CapabilityError(
                next(iter(entries)).name,
                "counters_only",
                "online runs keep full checkpoint logs (GC and recovery "
                "lines need them); counters-only is a replay-engine mode",
                engine=kind,
            )
        if spec.audit:
            raise PlanError(
                "audit replays the consistency oracle over a replayable "
                "schedule; online runs only get post-run structural "
                "checks -- attach an AuditObserver explicitly if that "
                "is what you want"
            )

    if spec.counters_only:
        for e in entries:
            if not e.capabilities.counters_only:
                raise CapabilityError(
                    e.name,
                    "counters_only",
                    "this protocol derives state from its checkpoint log "
                    "and cannot skip it",
                    engine=kind,
                )

    observers = tuple(spec.observers)
    if spec.audit:
        from repro.engine.observers import AuditObserver

        if not any(isinstance(o, AuditObserver) for o in observers):
            observers = observers + (AuditObserver(),)

    return ExecutionPlan(
        spec=spec, engine_kind=kind, entries=entries, observers=observers
    )
