"""Uniform run observers: telemetry, audit and metrics as attachments.

Before the engine layer existed, per-run telemetry and the invariant
audit were wired by hand at each call site (the sweep task body built
its own :class:`~repro.obs.telemetry.TaskTelemetry`, the audit grid
re-plumbed :func:`~repro.obs.audit.audit_trace`).  Observers make both
a property of *any* engine run instead: attach them to a
:class:`~repro.engine.spec.RunSpec` and every engine honours them
through the same four callbacks.

Lifecycle (driven by :meth:`repro.engine.engines.Engine.run`):

1. :meth:`RunObserver.on_run_start` -- the plan is final, nothing ran.
2. :meth:`RunObserver.on_trace` -- the run's trace is known (replay
   engines: fetched/generated before the pass; online engines: the
   emitted trace, after the simulation).
3. :meth:`RunObserver.on_outcome` -- once per protocol, in spec order.
4. :meth:`RunObserver.on_run_end` -- the assembled
   :class:`~repro.engine.engines.RunResult`; observers may append
   violations or stamp derived records here.

Observers must not mutate protocol instances or the trace; they are
read-only taps.  All built-ins tolerate any engine kind.

Failure isolation: an exception raised in :meth:`~RunObserver.on_run_start`
propagates (nothing has run; failing fast is safe -- the reuse guards
below rely on it), but an observer that raises from ``on_trace`` /
``on_outcome`` / ``on_run_end`` cannot corrupt the run: the engine
records the failure on :attr:`RunResult.observer_errors
<repro.engine.engines.RunResult.observer_errors>` and carries on.

Reuse across runs: each built-in declares its policy explicitly.
:class:`MetricsObserver` (and :class:`TimingObserver`'s tracer)
*accumulate-safe*: metrics reset per run on ``on_run_start``, spans are
absolutely timestamped so several runs coexist in one trace.
:class:`TelemetryObserver` is *single-run*: its record labels one
(t_switch, seed) grid cell, so attaching the same instance to a second
run raises :class:`ObserverReuseError` instead of silently relabelling
or mixing counters.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trace import Trace
    from repro.engine.engines import ProtocolOutcome, RunResult
    from repro.engine.spec import ExecutionPlan


class ObserverReuseError(RuntimeError):
    """A single-run observer instance was attached to a second run."""


@dataclass(slots=True)
class ObserverError:
    """One observer callback failure the engine absorbed mid-run."""

    #: Class name of the raising observer.
    observer: str
    #: Which callback raised ("on_trace" / "on_outcome" / "on_run_end").
    callback: str
    #: ``repr`` of the exception.
    error: str

    def __str__(self) -> str:
        return f"{self.observer}.{self.callback} raised {self.error}"


class RunObserver:
    """Base observer: all callbacks default to no-ops."""

    def on_run_start(self, plan: "ExecutionPlan") -> None:
        """The plan was validated; execution is about to begin."""

    def on_trace(self, plan: "ExecutionPlan", trace: "Trace", source: str) -> None:
        """The run's trace is known (*source* is a
        :data:`repro.obs.telemetry.TRACE_SOURCES` tier, ``"provided"``
        for pre-built traces, or ``"online"`` for emitted ones)."""

    def on_outcome(self, plan: "ExecutionPlan", outcome: "ProtocolOutcome") -> None:
        """One protocol finished (called in spec order)."""

    def on_run_end(self, plan: "ExecutionPlan", result: "RunResult") -> None:
        """The whole run finished; *result* is fully assembled."""


class MetricsObserver(RunObserver):
    """Collects every protocol's run metrics as one name-keyed dict.

    The per-protocol counter dicts match the shape the sweep's
    telemetry records carry (``n_total`` / ``n_basic`` / ``n_forced`` /
    ``n_replaced``), so consumers can diff them across runs directly.

    Reuse: **per-run reset**.  ``on_run_start`` clears both dicts, so
    an instance attached to several runs always reports the *latest*
    run -- never a silent union of two runs' protocol sets.
    """

    def __init__(self) -> None:
        self.metrics: dict[str, Any] = {}
        self.counters: dict[str, dict[str, int]] = {}

    def on_run_start(self, plan) -> None:
        self.metrics.clear()
        self.counters.clear()

    def on_outcome(self, plan, outcome) -> None:
        if outcome.metrics is not None:
            self.metrics[outcome.name] = outcome.metrics
            s = outcome.metrics.stats
            self.counters[outcome.name] = {
                "n_total": s.n_total,
                "n_basic": s.n_basic,
                "n_forced": s.n_forced,
                "n_replaced": s.n_replaced,
            }


class TelemetryObserver(MetricsObserver):
    """Builds the task's :class:`~repro.obs.telemetry.TaskTelemetry`.

    The sweep runner attaches one per (point, seed) task; ``record`` is
    available after the run.  ``t_switch``/``seed`` label the record's
    grid cell (engine runs outside a sweep may leave them at their
    defaults).

    Reuse: **single-run**.  The record labels one grid cell, so a
    second ``on_run_start`` on the same instance raises
    :class:`ObserverReuseError` (attach a fresh observer per run) --
    the alternative is two runs' counters silently landing under one
    (t_switch, seed) label.
    """

    def __init__(self, t_switch: float = 0.0, seed: Optional[int] = None):
        super().__init__()
        self.t_switch = t_switch
        self.seed = seed
        self.record = None
        self._started: Optional[float] = None
        self._trace = None
        self._trace_source = "provided"
        self._cache_before: Optional[tuple[int, int]] = None
        self._cache = None

    def on_run_start(self, plan) -> None:
        if self._started is not None:
            raise ObserverReuseError(
                "this TelemetryObserver already observed a run; its record "
                "labels one (t_switch, seed) cell -- attach a fresh "
                "instance per run"
            )
        super().on_run_start(plan)
        if plan.spec.use_cache:
            # Snapshot the shared cache's health counters so the record
            # carries the deltas *this task* caused (corrupt evictions,
            # legacy upgrades), not the process's lifetime totals.
            from repro.workload.cache import shared_cache

            self._cache = shared_cache(plan.spec.cache_dir)
            self._cache_before = (
                self._cache.corrupt_evictions,
                self._cache.legacy_upgrades,
            )
        self._started = time.perf_counter()
        if self.seed is None:
            self.seed = plan.spec.seed

    def on_trace(self, plan, trace, source) -> None:
        self._trace = trace
        self._trace_source = source

    def on_run_end(self, plan, result) -> None:
        from repro.obs.telemetry import TaskTelemetry

        wall = time.perf_counter() - (self._started or time.perf_counter())
        trace = self._trace
        corrupt = legacy = 0
        if self._cache is not None and self._cache_before is not None:
            corrupt = self._cache.corrupt_evictions - self._cache_before[0]
            legacy = self._cache.legacy_upgrades - self._cache_before[1]
        self.record = TaskTelemetry(
            t_switch=self.t_switch,
            seed=self.seed if self.seed is not None else -1,
            wall_time_s=wall,
            trace_source=self._trace_source,
            cache_hit=self._trace_source in ("memory", "disk"),
            n_events=len(trace) if trace is not None else 0,
            n_sends=trace.compiled().n_sends if trace is not None else 0,
            pid=os.getpid(),
            counters=dict(self.counters),
            n_violations=len(result.violations),
            cache_corrupt_evictions=max(0, corrupt),
            cache_legacy_upgrades=max(0, legacy),
        )


class AuditObserver(RunObserver):
    """Arms the invariant audit of :mod:`repro.obs.audit` on the run.

    After a replay-engine run, the run's trace is re-driven through the
    full audit battery (reference/fused counter equivalence, counter vs
    log consistency, index monotonicity, the recovery-line orphan
    oracle); every breach lands on ``violations`` *and* on the
    :class:`~repro.engine.engines.RunResult`.  ``t_switch`` stamps the
    grid coordinate into each violation for sweep reports.

    Online runs only get the post-run structural checks of their
    protocol instances (the replay oracle needs a replayable schedule).
    """

    def __init__(self, t_switch: Optional[float] = None):
        self.t_switch = t_switch
        self.violations: list = []

    def on_run_end(self, plan, result) -> None:
        from repro.obs.audit import audit_trace, check_protocol_invariants

        spec = plan.spec
        if (
            plan.engine_kind in ("reference", "fused", "vectorized")
            and result.trace is not None
        ):
            self.violations.extend(
                audit_trace(
                    result.trace,
                    [e.name for e in plan.entries],
                    factories=spec.factories,
                    seed=result.seed,
                    t_switch=self.t_switch,
                )
            )
        else:
            for outcome in result.outcomes:
                if outcome.protocol is not None:
                    self.violations.extend(
                        check_protocol_invariants(
                            outcome.protocol,
                            seed=result.seed,
                            t_switch=self.t_switch,
                        )
                    )
        result.violations.extend(self.violations)


class TimingObserver(RunObserver):
    """Arms span tracing (:mod:`repro.obs.tracing`) on the run.

    The observer carries a :class:`~repro.obs.tracing.Tracer`; engines
    look for it on the observer stack (the ``tracer`` attribute) and,
    when present, record every phase of the run as nested spans: the
    whole run, trace acquisition (tagged with its cache tier), each
    protocol's replay / fused pass / online simulation, and each
    observer's ``on_run_end`` work (which is where the audit battery
    and telemetry assembly live).  Without a TimingObserver attached,
    the engines' span hooks are no-ops.

    Reuse: **accumulating**.  Spans carry absolute monotonic
    timestamps, so one instance can trace a whole serial sweep into a
    single timeline; ``clear()`` the tracer (or attach a fresh
    observer) to start over.
    """

    def __init__(self, tracer=None):
        if tracer is None:
            from repro.obs.tracing import Tracer

            tracer = Tracer()
        #: The tracer engines record into (duck-typed discovery).
        self.tracer = tracer

    @property
    def spans(self):
        """Spans recorded so far (:class:`~repro.obs.tracing.Span`)."""
        return self.tracer.spans

    def as_dicts(self) -> list[dict[str, Any]]:
        """Recorded spans as plain dicts (telemetry / JSON emission)."""
        return self.tracer.as_dicts()

    def phase_table(self) -> str:
        """Text flamegraph of the recorded spans."""
        from repro.obs.tracing import phase_table

        return phase_table(self.tracer.spans)

    def write_chrome_trace(self, path) -> None:
        """Export the recorded spans as Chrome trace-event JSON."""
        from repro.obs.tracing import write_chrome_trace

        write_chrome_trace(path, self.tracer.spans)


class StreamObserver(RunObserver):
    """Streams one JSONL line per :class:`ProtocolOutcome` to a sink.

    Built for external dashboards: every outcome appends one
    self-contained JSON object (``kind: "outcome"``, protocol name,
    engine kind, seed, checkpoint counters, wall-clock ``ts``) and the
    run end appends a ``kind: "run"`` line with the run's wall time.
    Each line is flushed immediately, so a ``tail -f`` (or ``repro
    tail``) consumer sees outcomes as they happen, and a crash loses
    at most the line being written.

    The sink is either a path (opened lazily in append mode; several
    sweep tasks -- or processes -- can share one file, each line is a
    single ``write``) or an open file-like object (not closed by
    :meth:`close`; pass ``sys.stdout`` to stream to a pipe).  *labels*
    are merged into every line -- the sweep runner stamps
    ``t_switch``/``seed`` so grid cells stay identifiable.

    Reuse: **append-safe** across runs; lines are independent records.
    """

    def __init__(self, target, labels: Optional[dict] = None):
        self._path = None
        self._fh = None
        self._owns_fh = False
        if hasattr(target, "write"):
            self._fh = target
        else:
            self._path = os.fspath(target)
            self._owns_fh = True
        self.labels = dict(labels or {})
        self.lines_written = 0

    def _write(self, payload: dict) -> None:
        if self._fh is None:
            parent = os.path.dirname(self._path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self._path, "a")
        record = {**self.labels, **payload, "ts": time.time()}
        # One write call per line: on POSIX, O_APPEND writes of this
        # size are atomic, so concurrent sweep workers interleave whole
        # lines, never fragments.
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    @staticmethod
    def _spec_seed(plan) -> Optional[int]:
        spec = plan.spec
        if spec.seed is not None:
            return spec.seed
        if spec.workload is not None:
            return spec.workload.seed
        return None

    def on_outcome(self, plan, outcome) -> None:
        payload: dict[str, Any] = {
            "kind": "outcome",
            "protocol": outcome.name,
            "engine": plan.engine_kind,
            "seed": self._spec_seed(plan),
        }
        if outcome.metrics is not None:
            s = outcome.metrics.stats
            payload.update(
                n_total=s.n_total,
                n_basic=s.n_basic,
                n_forced=s.n_forced,
                n_replaced=s.n_replaced,
            )
        elif outcome.coordinated is not None:
            payload["n_total"] = outcome.coordinated.n_total
        self._write(payload)

    def on_run_end(self, plan, result) -> None:
        self._write(
            {
                "kind": "run",
                "engine": result.engine_kind,
                "seed": result.seed,
                "wall_s": result.wall_time_s,
                "n_outcomes": len(result.outcomes),
                "trace_source": result.trace_source,
                "n_violations": len(result.violations),
            }
        )

    def close(self) -> None:
        """Close the sink if this observer opened it."""
        if self._owns_fh and self._fh is not None:
            self._fh.close()
            self._fh = None
