"""Uniform run observers: telemetry, audit and metrics as attachments.

Before the engine layer existed, per-run telemetry and the invariant
audit were wired by hand at each call site (the sweep task body built
its own :class:`~repro.obs.telemetry.TaskTelemetry`, the audit grid
re-plumbed :func:`~repro.obs.audit.audit_trace`).  Observers make both
a property of *any* engine run instead: attach them to a
:class:`~repro.engine.spec.RunSpec` and every engine honours them
through the same four callbacks.

Lifecycle (driven by :meth:`repro.engine.engines.Engine.run`):

1. :meth:`RunObserver.on_run_start` -- the plan is final, nothing ran.
2. :meth:`RunObserver.on_trace` -- the run's trace is known (replay
   engines: fetched/generated before the pass; online engines: the
   emitted trace, after the simulation).
3. :meth:`RunObserver.on_outcome` -- once per protocol, in spec order.
4. :meth:`RunObserver.on_run_end` -- the assembled
   :class:`~repro.engine.engines.RunResult`; observers may append
   violations or stamp derived records here.

Observers must not mutate protocol instances or the trace; they are
read-only taps.  All built-ins tolerate any engine kind.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trace import Trace
    from repro.engine.engines import ProtocolOutcome, RunResult
    from repro.engine.spec import ExecutionPlan


class RunObserver:
    """Base observer: all callbacks default to no-ops."""

    def on_run_start(self, plan: "ExecutionPlan") -> None:
        """The plan was validated; execution is about to begin."""

    def on_trace(self, plan: "ExecutionPlan", trace: "Trace", source: str) -> None:
        """The run's trace is known (*source* is a
        :data:`repro.obs.telemetry.TRACE_SOURCES` tier, ``"provided"``
        for pre-built traces, or ``"online"`` for emitted ones)."""

    def on_outcome(self, plan: "ExecutionPlan", outcome: "ProtocolOutcome") -> None:
        """One protocol finished (called in spec order)."""

    def on_run_end(self, plan: "ExecutionPlan", result: "RunResult") -> None:
        """The whole run finished; *result* is fully assembled."""


class MetricsObserver(RunObserver):
    """Collects every protocol's run metrics as one name-keyed dict.

    The per-protocol counter dicts match the shape the sweep's
    telemetry records carry (``n_total`` / ``n_basic`` / ``n_forced`` /
    ``n_replaced``), so consumers can diff them across runs directly.
    """

    def __init__(self) -> None:
        self.metrics: dict[str, Any] = {}
        self.counters: dict[str, dict[str, int]] = {}

    def on_outcome(self, plan, outcome) -> None:
        if outcome.metrics is not None:
            self.metrics[outcome.name] = outcome.metrics
            s = outcome.metrics.stats
            self.counters[outcome.name] = {
                "n_total": s.n_total,
                "n_basic": s.n_basic,
                "n_forced": s.n_forced,
                "n_replaced": s.n_replaced,
            }


class TelemetryObserver(MetricsObserver):
    """Builds the task's :class:`~repro.obs.telemetry.TaskTelemetry`.

    The sweep runner attaches one per (point, seed) task; ``record`` is
    available after the run.  ``t_switch``/``seed`` label the record's
    grid cell (engine runs outside a sweep may leave them at their
    defaults).
    """

    def __init__(self, t_switch: float = 0.0, seed: Optional[int] = None):
        super().__init__()
        self.t_switch = t_switch
        self.seed = seed
        self.record = None
        self._started: Optional[float] = None
        self._trace = None
        self._trace_source = "provided"

    def on_run_start(self, plan) -> None:
        self._started = time.perf_counter()
        if self.seed is None:
            self.seed = plan.spec.seed

    def on_trace(self, plan, trace, source) -> None:
        self._trace = trace
        self._trace_source = source

    def on_run_end(self, plan, result) -> None:
        from repro.obs.telemetry import TaskTelemetry

        wall = time.perf_counter() - (self._started or time.perf_counter())
        trace = self._trace
        self.record = TaskTelemetry(
            t_switch=self.t_switch,
            seed=self.seed if self.seed is not None else -1,
            wall_time_s=wall,
            trace_source=self._trace_source,
            cache_hit=self._trace_source in ("memory", "disk"),
            n_events=len(trace) if trace is not None else 0,
            n_sends=trace.compiled().n_sends if trace is not None else 0,
            pid=os.getpid(),
            counters=dict(self.counters),
            n_violations=len(result.violations),
        )


class AuditObserver(RunObserver):
    """Arms the invariant audit of :mod:`repro.obs.audit` on the run.

    After a replay-engine run, the run's trace is re-driven through the
    full audit battery (reference/fused counter equivalence, counter vs
    log consistency, index monotonicity, the recovery-line orphan
    oracle); every breach lands on ``violations`` *and* on the
    :class:`~repro.engine.engines.RunResult`.  ``t_switch`` stamps the
    grid coordinate into each violation for sweep reports.

    Online runs only get the post-run structural checks of their
    protocol instances (the replay oracle needs a replayable schedule).
    """

    def __init__(self, t_switch: Optional[float] = None):
        self.t_switch = t_switch
        self.violations: list = []

    def on_run_end(self, plan, result) -> None:
        from repro.obs.audit import audit_trace, check_protocol_invariants

        spec = plan.spec
        if plan.engine_kind in ("reference", "fused") and result.trace is not None:
            self.violations.extend(
                audit_trace(
                    result.trace,
                    [e.name for e in plan.entries],
                    factories=spec.factories,
                    seed=result.seed,
                    t_switch=self.t_switch,
                )
            )
        else:
            for outcome in result.outcomes:
                if outcome.protocol is not None:
                    self.violations.extend(
                        check_protocol_invariants(
                            outcome.protocol,
                            seed=result.seed,
                            t_switch=self.t_switch,
                        )
                    )
        result.violations.extend(self.violations)
