"""Unified execution engine: one pipeline for every way a protocol runs.

The entry point consumers use::

    from repro.engine import RunSpec, execute

    result = execute(RunSpec(protocols=["TP", "BCS"], workload=cfg))

A :class:`~repro.engine.spec.RunSpec` is resolved against the
capability-aware registry (:mod:`repro.engine.registry`) into an
:class:`~repro.engine.spec.ExecutionPlan`, then run on one of three
engines (:mod:`repro.engine.engines`) with a uniform observer stack
(:mod:`repro.engine.observers`) and typed failure modes
(:mod:`repro.engine.errors`).

This package is the *only* sanctioned call site of the low-level run
primitives (``replay`` / ``replay_fused`` / ``run_online`` /
``run_coordinated``) outside their home modules and direct unit tests
-- enforced by ``tests/test_import_contracts.py``.  Conversely,
``repro.protocols`` never imports this package: protocols declare
capabilities, engines interpret them.
"""

from repro.engine.engines import (
    ENGINES,
    Engine,
    FusedReplayEngine,
    OnlineEngine,
    ProtocolOutcome,
    ReferenceReplayEngine,
    RunResult,
    VectorizedFusedEngine,
    engine_for,
    execute,
    execute_batch,
)
from repro.engine.errors import (
    CapabilityError,
    EngineError,
    PlanError,
    PluginCollisionError,
    PluginError,
    PluginLoadError,
    PluginProtocolError,
    UnknownProtocolError,
)
from repro.engine.plugins import (
    ProtocolOrigin,
    discover_plugins,
    plugin_errors,
    protocol_origin,
)
from repro.engine.observers import (
    AuditObserver,
    MetricsObserver,
    ObserverError,
    ObserverReuseError,
    RunObserver,
    StreamObserver,
    TelemetryObserver,
    TimingObserver,
)
from repro.engine.registry import (
    Capabilities,
    ResolvedProtocol,
    known_names,
    known_protocols,
    register_coordinated,
    resolve_protocols,
)
from repro.engine.spec import (
    ENGINE_KINDS,
    SPEC_WIRE_VERSION,
    ExecutionPlan,
    RunSpec,
    plan,
)

__all__ = [
    "ENGINES",
    "ENGINE_KINDS",
    "SPEC_WIRE_VERSION",
    "AuditObserver",
    "Capabilities",
    "CapabilityError",
    "Engine",
    "EngineError",
    "ExecutionPlan",
    "FusedReplayEngine",
    "MetricsObserver",
    "ObserverError",
    "ObserverReuseError",
    "OnlineEngine",
    "PlanError",
    "PluginCollisionError",
    "PluginError",
    "PluginLoadError",
    "PluginProtocolError",
    "ProtocolOrigin",
    "ProtocolOutcome",
    "ReferenceReplayEngine",
    "ResolvedProtocol",
    "RunObserver",
    "RunResult",
    "RunSpec",
    "StreamObserver",
    "TelemetryObserver",
    "TimingObserver",
    "UnknownProtocolError",
    "VectorizedFusedEngine",
    "discover_plugins",
    "engine_for",
    "execute",
    "execute_batch",
    "known_names",
    "known_protocols",
    "plan",
    "plugin_errors",
    "protocol_origin",
    "register_coordinated",
    "resolve_protocols",
]

# Discover third-party protocol plugins as soon as the engine exists:
# entry points of the "repro.protocols" group and drop-in modules in
# the repro_protocols namespace package register themselves here, so
# `import repro` already sees the full protocol universe.  A broken
# plugin warns (and shows in `repro protocols`); it never breaks the
# import.  Runs after every public name above is bound, so plugins may
# import repro.engine freely.
from repro.engine.plugins import ensure_discovered as _ensure_discovered

_ensure_discovered()
