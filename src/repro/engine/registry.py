"""Capability-aware protocol registry of the execution engine.

:data:`repro.protocols.base.registry` maps names to *replayable*
protocol classes; the coordinated baselines (Chandy-Lamport, Koo-Toueg,
Prakash-Singhal) historically lived outside it as bare functions
because they cannot be trace-replayed.  This module unifies both under
one resolution entry point:

* every class in the base registry appears here with the capabilities
  *it declares* (``replayable`` / ``fusable`` / ``coordinated`` /
  ``supports_counters_only`` -- see
  :class:`repro.protocols.base.CheckpointingProtocol`), re-read on
  every resolution so late registrations (custom protocols, test
  stubs) are picked up;
* the coordinated schemes are registered here by name (``CL``, ``KT``,
  ``PS``) with ``coordinated=True``, so requesting one from a replay
  engine fails with a typed :class:`~repro.engine.errors.CapabilityError`
  instead of a ``KeyError`` or a mid-run crash.

:func:`resolve_protocols` is the *only* sanctioned way for consumers
(CLI, sweep config, benchmarks) to turn protocol names into runnable
entries: it raises :class:`~repro.engine.errors.UnknownProtocolError`
with the full known-name list, giving every consumer the same error
text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.core.online import CoordinatedScheme
from repro.engine.errors import CapabilityError, UnknownProtocolError
from repro.protocols.base import (
    CheckpointingProtocol,
    registry as _class_registry,
    validate_capabilities,
)

#: A protocol factory: ``factory(n_hosts, n_mss) -> instance``.
ProtocolFactory = Callable[[int, int], CheckpointingProtocol]


@dataclass(frozen=True)
class Capabilities:
    """What ways of driving a protocol are sound."""

    replayable: bool = True
    fusable: bool = True
    #: Ships batch kernels for the vectorized engine.  Effective only
    #: together with ``fusable`` (the kernels honour the fused
    #: contract), so :meth:`of` masks the declaration accordingly.
    vectorizable: bool = False
    coordinated: bool = False
    counters_only: bool = True

    @classmethod
    def of(cls, protocol_cls) -> "Capabilities":
        """Read the capability declaration off a protocol class (or
        factory), validating coherence."""
        validate_capabilities(protocol_cls)
        fusable = bool(getattr(protocol_cls, "fusable", True))
        return cls(
            replayable=bool(getattr(protocol_cls, "replayable", True)),
            fusable=fusable,
            vectorizable=fusable
            and bool(getattr(protocol_cls, "vectorizable", False)),
            coordinated=bool(getattr(protocol_cls, "coordinated", False)),
            counters_only=bool(
                getattr(protocol_cls, "supports_counters_only", True)
            ),
        )


@dataclass(frozen=True)
class ResolvedProtocol:
    """One registry entry, ready for an engine to drive."""

    name: str
    capabilities: Capabilities
    #: Builds a fresh instance; None for coordinated baselines (the
    #: online DES builds its own bookkeeper around the scheme).
    factory: Optional[ProtocolFactory] = None
    #: Set iff ``capabilities.coordinated``.
    scheme: Optional[CoordinatedScheme] = None

    def make(self, n_hosts: int, n_mss: int) -> CheckpointingProtocol:
        """A fresh instance sized for the run."""
        if self.factory is None:
            raise CapabilityError(
                self.name,
                "instantiation",
                "coordinated baselines are driven by the online DES "
                "around their scheme, not instantiated directly",
            )
        return self.factory(n_hosts, n_mss)


#: Coordinated baselines: name -> scheme.  Registered here (not in the
#: class registry) because they are driven *by* the online engine, not
#: replayed; the names match the paper's Section 2 discussion.
_coordinated: dict[str, CoordinatedScheme] = {}


def register_coordinated(name: str, scheme: CoordinatedScheme) -> None:
    """Add a coordinated baseline to the engine registry."""
    if not name or not isinstance(name, str):
        raise ValueError(
            f"coordinated registry name must be a non-empty string, got {name!r}"
        )
    if name in _class_registry:
        raise ValueError(
            f"name {name!r} already registered as a replayable protocol"
        )
    _coordinated[name] = scheme


register_coordinated("CL", CoordinatedScheme.CHANDY_LAMPORT)
register_coordinated("KT", CoordinatedScheme.KOO_TOUEG)
register_coordinated("PS", CoordinatedScheme.PRAKASH_SINGHAL)
register_coordinated("TK", CoordinatedScheme.TULI_KUMAR)

#: Capabilities every coordinated baseline shares.
_COORDINATED_CAPS = Capabilities(
    replayable=False, fusable=False, coordinated=True, counters_only=False
)


def known_protocols() -> dict[str, ResolvedProtocol]:
    """Every resolvable protocol, rebuilt from the live registries.

    Re-reads :data:`repro.protocols.base.registry` on every call so
    protocols registered after import (custom classes, test stubs) are
    visible without any extra wiring -- adding a protocol stays a
    single ``@register`` line.  Third-party plugins are discovered on
    the first call (idempotent; see :mod:`repro.engine.plugins`), so
    every resolution path sees the same protocol universe.
    """
    from repro.engine import plugins

    plugins.ensure_discovered()
    out: dict[str, ResolvedProtocol] = {}
    for name, cls in _class_registry.items():
        out[name] = ResolvedProtocol(
            name=name, capabilities=Capabilities.of(cls), factory=cls
        )
    for name, scheme in _coordinated.items():
        out[name] = ResolvedProtocol(
            name=name, capabilities=_COORDINATED_CAPS, scheme=scheme
        )
    return out


def known_names() -> list[str]:
    """Sorted names of every resolvable protocol."""
    return sorted(known_protocols())


def _check_requirement(entry: ResolvedProtocol, require: str) -> None:
    caps = entry.capabilities
    if require == "replayable" and not caps.replayable:
        raise CapabilityError(
            entry.name,
            "replayable",
            "coordinated baselines inject control messages that perturb "
            "the schedule; run them on the online engine"
            if caps.coordinated
            else "this protocol must run embedded in the online simulation",
        )
    if require == "fusable" and not caps.fusable:
        _check_requirement(entry, "replayable")  # sharper message first
        raise CapabilityError(
            entry.name,
            "fusable",
            "instances cannot share a fused single pass; use the "
            "reference replay engine",
        )
    if require == "vectorizable" and not caps.vectorizable:
        _check_requirement(entry, "fusable")  # sharper message first
        raise CapabilityError(
            entry.name,
            "vectorizable",
            "this protocol ships no batch kernels; use the fused "
            "replay engine",
        )


def resolve_protocols(
    names: Optional[Sequence[str]] = None,
    *,
    require: Optional[str] = None,
    factories: Optional[Mapping[str, ProtocolFactory]] = None,
) -> tuple[ResolvedProtocol, ...]:
    """Resolve protocol *names* against the capability-aware registry.

    Parameters
    ----------
    names:
        Requested protocol names.  ``None`` selects every registered
        protocol that satisfies *require* (sorted by name) -- the CLI's
        "compare everything" default.
    require:
        Optional capability gate applied to each resolved entry:
        ``"replayable"``, ``"fusable"`` or ``"vectorizable"``.  A
        protocol that exists but lacks the capability raises
        :class:`~repro.engine.errors.CapabilityError` (the same typed
        error the plan layer raises, so CLI / config / engine agree).
    factories:
        Optional override map (name -> factory); names found here trump
        the registry.  Tests use this to inject deliberately broken
        protocol stubs; capabilities are read off the override factory.

    Raises
    ------
    UnknownProtocolError
        Any name in neither *factories* nor the registry; the message
        lists all known names.
    CapabilityError
        A resolved protocol fails the *require* gate.
    """
    if require not in (None, "replayable", "fusable", "vectorizable"):
        raise ValueError(f"unknown capability requirement {require!r}")
    known = known_protocols()
    if factories:
        for name, factory in factories.items():
            known[name] = ResolvedProtocol(
                name=name,
                capabilities=Capabilities.of(factory),
                factory=factory,
            )
    if names is None:
        entries = [known[name] for name in sorted(known)]
        if require is not None:
            entries = [e for e in entries if getattr(e.capabilities, require)]
        return tuple(entries)
    unknown = [name for name in names if name not in known]
    if unknown:
        raise UnknownProtocolError(unknown, tuple(known))
    entries = [known[name] for name in names]
    if require is not None:
        for entry in entries:
            _check_requirement(entry, require)
    return tuple(entries)
