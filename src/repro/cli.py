"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``figure``
    Run one of the paper's six figure sweeps, print the paper-style
    report and the shape validation.
``compare``
    One workload, every replayable protocol, one table.
``trace``
    Generate a workload trace and save it (npz) for later replay.
``replay``
    Replay a saved trace through one or more protocols.
``recovery``
    Inject a failure on a workload and report the rollback costs.
``audit``
    Sweep a config grid with the invariant audit armed (orphan-freedom
    of recovery lines, fused-vs-reference equivalence, counter/log
    consistency) and print the violation/telemetry report.
``tail``
    Follow a telemetry / outcome / heartbeat JSONL stream (written by
    ``figure --telemetry/--stream/--heartbeat``) and print a live
    summary.  Survives log truncation and rotation.
``dash``
    Live TTY dashboard over the same JSONL streams: per-worker
    throughput, cache-tier hit rates, retry/quarantine counts and
    per-protocol forced-checkpoint-rate sparklines.
``protocols``
    List every registered protocol -- builtin and plugin-contributed --
    with capabilities and origin, plus any plugin load errors.
``conformance``
    Run the protocol conformance batteries (counter-signature shape,
    engine equivalence, determinism, orphan-freedom, ...) against one
    or more registered protocols and print a per-battery table.
``shard-worker``
    Join a running sharded sweep (``figure --shard-listen``) as an
    external worker process; leases, executes and streams back shards
    until the coordinator drains it.

Exit codes are standardized across subcommands: 0 = success, 1 =
violations / failed validation / grid holes, 2 = usage error, 130 =
interrupted (SIGINT drained a partial result).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.workload.config import WorkloadConfig

#: Standard exit codes (also documented in docs/resilience.md).
EXIT_OK = 0
EXIT_FAILURE = 1  # violations, failed validation, quarantined holes
EXIT_USAGE = 2  # argparse errors, unknown protocols
EXIT_INTERRUPTED = 130  # 128 + SIGINT, the shell convention


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hosts", type=int, default=10)
    parser.add_argument("--mss", type=int, default=5)
    parser.add_argument("--p-send", type=float, default=0.4)
    parser.add_argument("--t-switch", type=float, default=1000.0)
    parser.add_argument("--p-switch", type=float, default=0.8)
    parser.add_argument("--heterogeneity", type=float, default=0.0)
    parser.add_argument("--sim-time", type=float, default=10_000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload", default=None, metavar="NAME[:K=V,...]",
        help="registered workload model shaping the run (e.g. "
        "'zipf:alpha=1.1'; see 'repro workloads'; default: paper)",
    )


def _workload_from(args) -> WorkloadConfig:
    extra = {}
    workload = getattr(args, "workload", None)
    if workload:
        from repro.workload.registry import resolve_workload_spec

        name, params = resolve_workload_spec(workload)
        extra = {"workload": name, "workload_params": params}
    return WorkloadConfig(
        n_hosts=args.hosts,
        n_mss=args.mss,
        p_send=args.p_send,
        t_switch=args.t_switch,
        p_switch=args.p_switch,
        heterogeneity=args.heterogeneity,
        sim_time=args.sim_time,
        seed=args.seed,
        **extra,
    ).validate()


def _cmd_figure(args) -> int:
    from repro.experiments import figure_report, run_figure, validate_figure

    resume = args.resume
    journal = args.journal
    if resume and journal is None:
        # Resuming normally wants new completions appended to the same
        # ledger, so --resume implies --journal at the same path.
        journal = resume
    result = run_figure(
        args.number,
        sim_time=args.sim_time,
        seeds=tuple(args.seeds),
        t_switch_values=tuple(args.sweep),
        engine=args.engine,
        workload=args.workload,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        audit=args.audit,
        telemetry_path=args.telemetry,
        task_timeout_s=args.task_timeout,
        max_task_retries=args.retries,
        journal_path=journal,
        resume_from=resume,
        progress=args.progress,
        heartbeat_path=args.heartbeat,
        trace_path=args.trace,
        stream_path=args.stream,
        shards=args.shards,
        shard_listen=args.shard_listen,
        shard_size=args.shard_size,
        run_id=args.run_id,
        prom_path=args.prom,
        prom_gateway=args.prom_gateway,
        otlp_path=args.otlp,
        obs_refresh_s=args.obs_refresh,
        adaptive_shard_size=args.adaptive_shards,
    )
    if args.metrics:
        from repro.obs.metrics import registry

        registry().dump(args.metrics)
    if result.interrupted:
        done = sum(len(p.telemetry) for p in result.points)
        total = len(result.config.t_switch_values) * len(result.config.seeds)
        print(
            f"interrupted: {done}/{total} tasks finished"
            + (f" (journal: {journal})" if journal else "")
        )
        return EXIT_INTERRUPTED
    print(figure_report(result, figure=args.number))
    report = validate_figure(result, spread_tolerance=args.spread_tolerance)
    print()
    print(report)
    ok = report.ok
    if result.errors:
        print()
        print(f"{len(result.errors)} task(s) quarantined (holes in the grid):")
        for error in result.errors:
            print(f"  {error}")
        ok = False
    if args.audit:
        from repro.experiments import validate_audit

        audit_report = validate_audit(result)
        print()
        print(audit_report)
        for violation in result.violations:
            print(f"  {violation}")
        ok = ok and audit_report.ok
    otlp_file = args.otlp if args.otlp and "://" not in args.otlp else None
    for label, path in (
        ("telemetry", args.telemetry),
        ("trace-event JSON", args.trace),
        ("metrics", args.metrics),
        ("outcome stream", args.stream),
        ("heartbeats", args.heartbeat),
        ("fleet metrics (prometheus)", args.prom),
        ("fleet OTLP-JSON", otlp_file),
    ):
        if path:
            print(f"\n{label} written to {path}", end="")
    if any((args.telemetry, args.trace, args.metrics, args.stream,
            args.heartbeat, args.prom, otlp_file)):
        print()
    return EXIT_OK if ok else EXIT_FAILURE


def _cmd_tail(args) -> int:
    import os
    import time as _time

    from repro.obs.dash import JsonlFollower
    from repro.obs.telemetry import tail_summary

    if args.once:
        if not os.path.exists(args.path):
            print(f"{args.path}: no such file", file=sys.stderr)
            return EXIT_USAGE
        follower = JsonlFollower(args.path)
        follower.poll()
        print(tail_summary(follower.records))
        return EXIT_OK
    # Follow mode: an incremental reader keeps its offset between
    # polls and reopens from the start on truncation/rotation (stat
    # size below offset, or inode change), so a rotated file never
    # stalls the summary at a stale offset (KeyboardInterrupt -> 130
    # via main()).
    follower = JsonlFollower(args.path)
    first = True
    while True:
        if follower.poll() or first:
            if not first:
                print("---")
            print(tail_summary(follower.records) if follower.records else
                  f"(waiting for {args.path})")
            first = False
        _time.sleep(args.interval)


def _cmd_dash(args) -> int:
    import os

    from repro.obs.dash import run_dashboard

    if args.once and not os.path.exists(args.path):
        print(f"{args.path}: no such file", file=sys.stderr)
        return EXIT_USAGE
    return run_dashboard(
        args.path,
        interval_s=args.interval,
        once=args.once,
        width=args.width,
    )


def _cmd_audit(args) -> int:
    from repro.experiments.config import SweepConfig
    from repro.obs.audit import run_audit_grid
    from repro.obs.telemetry import write_jsonl

    base = _workload_from(args)
    try:
        config = SweepConfig(
            base=base,
            t_switch_values=tuple(args.sweep),
            protocols=tuple(args.protocols),
            seeds=tuple(args.seeds),
            workers=args.workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            audit=True,
        ).validate()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    grid = run_audit_grid(config)
    if grid.sweep.interrupted:
        done = sum(len(p.telemetry) for p in grid.sweep.points)
        total = len(config.t_switch_values) * len(config.seeds)
        print(f"interrupted: {done}/{total} tasks finished")
        return EXIT_INTERRUPTED
    print(grid.report())
    if args.telemetry:
        write_jsonl(
            grid.telemetry,
            args.telemetry,
            summary=grid.sweep.telemetry_summary(),
        )
        print(f"\ntelemetry written to {args.telemetry}")
    ok = grid.ok and not grid.sweep.errors
    return EXIT_OK if ok else EXIT_FAILURE


def _cmd_compare(args) -> int:
    from repro.engine import RunSpec, execute

    cfg = _workload_from(args)
    # Replay engines only: compare is the paper's common-schedule
    # comparison, so a coordinated baseline (or any unknown name) is a
    # plan-time EngineError that main() turns into exit code 2.
    result = execute(
        RunSpec(protocols=args.protocols, workload=cfg, engine=args.engine)
    )
    print(
        f"{'protocol':>9} {'N_tot':>8} {'basic':>7} {'forced':>7} "
        f"{'pg ints/msg':>12}"
    )
    for outcome in result.outcomes:
        s = outcome.metrics.stats
        print(
            f"{outcome.name:>9} {s.n_total:>8} {s.n_basic:>7} {s.n_forced:>7} "
            f"{outcome.protocol.piggyback_ints:>12}"
        )
    return 0


def _cmd_trace(args) -> int:
    from repro.core.trace_io import save_trace
    from repro.workload.driver import generate_trace

    cfg = _workload_from(args)
    trace = generate_trace(cfg)
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace)} events "
        f"({trace.n_sends} sends, {trace.n_basic_triggers} basic triggers)"
    )
    return 0


def _cmd_replay(args) -> int:
    from repro.core.trace_io import load_trace
    from repro.engine import RunSpec, execute

    trace = load_trace(args.trace)
    result = execute(
        RunSpec(protocols=args.protocols, trace=trace, engine=args.engine)
    )
    for outcome in result.outcomes:
        s = outcome.metrics.stats
        print(
            f"{outcome.name:>9}: N_tot={s.n_total} "
            f"basic={s.n_basic} forced={s.n_forced}"
        )
    return 0


def _cmd_recovery(args) -> int:
    from repro.core.consistency import annotate_replay
    from repro.core.recovery import minimal_rollback, protocol_line_rollback
    from repro.engine import resolve_protocols
    from repro.workload.driver import generate_trace

    cfg = _workload_from(args)
    trace = generate_trace(cfg)
    (entry,) = resolve_protocols([args.protocol], require="replayable")
    protocol = entry.make(cfg.n_hosts, cfg.n_mss)
    run = annotate_replay(trace, protocol)
    failed = args.failed_host
    try:
        outcome = protocol_line_rollback(run, protocol, failed, trace.sim_time)
        mode = "protocol recovery line"
    except NotImplementedError:
        outcome = minimal_rollback(run, failed, trace.sim_time)
        mode = "rollback-propagation search"
    print(f"failure of host {failed} under {args.protocol} ({mode}):")
    print(f"  undone events total : {outcome.total_undone_events}")
    print(f"  worst rollback time : {outcome.max_rollback_time:.1f}")
    print(f"  in-transit messages : {outcome.in_transit}")
    print(f"  propagation passes  : {outcome.iterations}")
    return 0


def _cmd_failures(args) -> int:
    from repro.core.failures import run_with_failures
    from repro.engine import resolve_protocols

    cfg = _workload_from(args)
    (entry,) = resolve_protocols([args.protocol], require="replayable")
    protocol = entry.make(cfg.n_hosts, cfg.n_mss)
    result = run_with_failures(
        cfg, protocol, failure_mean_interval=args.mean_interval
    )
    print(
        f"{args.protocol} over {cfg.sim_time:g} time units with Poisson "
        f"failures (mean interval {args.mean_interval:g}):"
    )
    print(f"  failures            : {result.n_failures}")
    print(f"  checkpoints (N_tot) : {protocol.n_total}")
    print(f"  lost work (time)    : {result.total_lost_work:.1f}")
    print(f"  recovery downtime   : {result.total_recovery_downtime:.3f}")
    print(f"  stale msgs dropped  : {result.stale_messages_dropped}")
    print(f"  availability        : {100 * result.availability:.2f}%")
    return EXIT_OK


def _cmd_conformance(args) -> int:
    try:
        from repro.testing import check_conformance
    except ImportError as exc:
        # repro.testing needs the optional test extra (hypothesis);
        # point at the fix instead of dumping a traceback.
        print(
            f"the conformance kit needs the test extra ({exc}); install "
            f"with: pip install -e '.[test]'",
            file=sys.stderr,
        )
        return EXIT_USAGE

    from repro.engine import known_names
    from repro.engine.errors import suggest_names

    known = known_names()
    unknown = [n for n in args.names if n not in known]
    if unknown:
        for name in unknown:
            hints = suggest_names(name, known)
            hint = f" (did you mean {', '.join(hints)}?)" if hints else ""
            print(f"unknown protocol {name!r}{hint}", file=sys.stderr)
        print(f"known protocols: {', '.join(known)}", file=sys.stderr)
        return EXIT_USAGE

    reports = [check_conformance(name) for name in args.names]
    if args.json:
        import json

        print(json.dumps({
            "reports": [
                {
                    "protocol": r.protocol,
                    "ok": r.ok,
                    "results": [
                        {
                            "battery": b.battery,
                            "status": b.status,
                            "detail": b.detail,
                        }
                        for b in r.results
                    ],
                }
                for r in reports
            ],
            "ok": all(r.ok for r in reports),
        }, indent=2))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.summary())
        failed = sum(len(r.failures) for r in reports)
        total = sum(len(r.results) for r in reports)
        print(
            f"\n{len(reports)} protocol(s), {total} batteries, "
            f"{failed} failure(s)"
        )
    return EXIT_OK if all(r.ok for r in reports) else EXIT_FAILURE


def _cmd_shard_worker(args) -> int:
    from repro.experiments.sharded import AUTHKEY_ENV, parse_address, worker_main

    import os

    if not os.environ.get(AUTHKEY_ENV):
        print(
            f"{AUTHKEY_ENV} must carry the coordinator's hex authkey "
            f"(the sweep side exports it when --shard-listen is set)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        address = parse_address(args.connect)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    try:
        code = worker_main(address, connect_timeout_s=args.connect_timeout)
    except ConnectionError as exc:
        print(exc, file=sys.stderr)
        return EXIT_FAILURE
    if code != 0:
        print(
            "connection to the coordinator was lost; the lease was "
            "reassigned on its side",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_protocols(args) -> int:
    from repro.engine import known_protocols, plugin_errors, protocol_origin

    entries = known_protocols()
    errors = plugin_errors()
    rows = []
    for name in sorted(entries):
        caps = entries[name].capabilities
        flags = [
            label
            for label, on in (
                ("replayable", caps.replayable),
                ("fusable", caps.fusable),
                ("vectorizable", caps.vectorizable),
                ("coordinated", caps.coordinated),
                ("counters-only", caps.counters_only),
            )
            if on
        ]
        rows.append((name, str(protocol_origin(name)), flags))

    if args.json:
        import json

        print(
            json.dumps(
                {
                    "protocols": [
                        {"name": name, "origin": origin, "capabilities": flags}
                        for name, origin, flags in rows
                    ],
                    "plugin_errors": [str(e) for e in errors],
                },
                indent=2,
            )
        )
    else:
        name_w = max(len("protocol"), max(len(r[0]) for r in rows))
        origin_w = max(len("origin"), max(len(r[1]) for r in rows))
        print(
            f"{'protocol':<{name_w}}  {'origin':<{origin_w}}  capabilities"
        )
        for name, origin, flags in rows:
            print(
                f"{name:<{name_w}}  {origin:<{origin_w}}  "
                + (", ".join(flags) or "-")
            )
        print(f"\n{len(rows)} protocol(s) registered")
        if errors:
            print(f"{len(errors)} plugin(s) failed to load:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
    return EXIT_FAILURE if errors else EXIT_OK


def _cmd_workloads(args) -> int:
    from repro.workload.registry import get_workload, workload_names

    infos = [get_workload(name).describe() for name in workload_names()]
    if args.json:
        import json

        print(json.dumps({"workloads": infos}, indent=2))
        return EXIT_OK

    def _params(info) -> str:
        parts = []
        for key, spec in info["params"].items():
            value = "<required>" if spec["required"] else repr(spec["default"])
            parts.append(f"{key}={value}")
        return ", ".join(parts) or "-"

    rows = [(info["name"], _params(info), info["doc"]) for info in infos]
    name_w = max(len("workload"), max(len(r[0]) for r in rows))
    params_w = max(len("parameters"), max(len(r[1]) for r in rows))
    print(f"{'workload':<{name_w}}  {'parameters':<{params_w}}  description")
    for name, params, doc in rows:
        print(f"{name:<{name_w}}  {params:<{params_w}}  {doc}")
    print(
        f"\n{len(rows)} workload model(s) registered; use "
        "--workload NAME[:key=value,...] on figure/audit/compare/"
        "trace/recovery/failures"
    )
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure", help="run one paper figure sweep")
    p.add_argument("number", type=int, choices=range(1, 7))
    p.add_argument("--sim-time", type=float, default=20_000.0)
    p.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    p.add_argument(
        "--sweep", type=float, nargs="+", default=[100.0, 1000.0, 10000.0]
    )
    p.add_argument("--spread-tolerance", type=float, default=0.5)
    p.add_argument(
        "--engine", choices=("auto", "fused", "vectorized"), default="fused",
        help="replay strategy per (point, seed) task (bit-identical "
        "results; 'vectorized' runs batch kernels, 'auto' picks it "
        "when every protocol supports it)",
    )
    p.add_argument(
        "--workload", default=None, metavar="NAME[:K=V,...]",
        help="swap the figure's workload model for a registered one, "
        "e.g. 'zipf:alpha=1.1' (see 'repro workloads'; default: the "
        "paper's uniform model)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width over (point, seed) tasks; 0 = serial",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-addressed trace cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="directory of the persistent on-disk trace store "
        "(default: REPRO_TRACE_CACHE_DIR or memory-only)",
    )
    p.add_argument(
        "--audit", action="store_true",
        help="run the invariant audit on every (point, seed) task",
    )
    p.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write per-task run telemetry (JSONL) to PATH",
    )
    p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append-only JSONL ledger of completed (point, seed) "
        "tasks (fsynced; makes the sweep crash-safe)",
    )
    p.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a journal written by an earlier run of the "
        "same sweep: only missing tasks re-execute (implies "
        "--journal PATH unless given separately)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-(point, seed) task deadline; overrunning tasks are "
        "retried, then quarantined",
    )
    p.add_argument(
        "--retries", type=int, default=2,
        help="re-dispatches per failed task before quarantine "
        "(default 2)",
    )
    p.add_argument(
        "--progress", dest="progress", action="store_true", default=None,
        help="live status line (done/total, rate, ETA) on stderr "
        "(default: REPRO_PROGRESS env, else TTY detection)",
    )
    p.add_argument(
        "--no-progress", dest="progress", action="store_false",
        help="suppress the live status line",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record engine phase spans on every task and write the "
        "merged Chrome trace-event JSON (Perfetto-loadable) to PATH",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump the process metrics registry after the sweep: JSON "
        "when PATH ends in .json, Prometheus text exposition otherwise",
    )
    p.add_argument(
        "--stream", default=None, metavar="PATH",
        help="append one JSONL line per protocol outcome to PATH as "
        "tasks complete (live result feed; see 'repro tail')",
    )
    p.add_argument(
        "--heartbeat", default=None, metavar="PATH",
        help="append periodic {\"kind\": \"heartbeat\"} JSONL progress "
        "records to PATH (machine-readable twin of --progress)",
    )
    p.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the grid on the sharded dispatch service with N "
        "spawned worker processes (shard leases, heartbeat liveness, "
        "reassignment on worker loss; value-identical to --workers)",
    )
    p.add_argument(
        "--shard-listen", default=None, metavar="HOST:PORT",
        help="also accept external 'repro shard-worker' processes on "
        "HOST:PORT (authenticated via REPRO_SHARD_AUTHKEY)",
    )
    p.add_argument(
        "--shard-size", type=int, default=None, metavar="CELLS",
        help="cells per shard lease (default: ~4 leases per worker)",
    )
    p.add_argument(
        "--prom", default=None, metavar="PATH",
        help="fleet observability: write the merged worker+coordinator "
        "metrics as a Prometheus textfile at PATH, refreshed every "
        "--obs-refresh seconds (enables the fleet plane)",
    )
    p.add_argument(
        "--prom-gateway", default=None, metavar="URL",
        help="also PUT the exposition to a Prometheus push-gateway at "
        "URL on the same refresh cadence",
    )
    p.add_argument(
        "--otlp", default=None, metavar="PATH_OR_URL",
        help="write one OTLP-JSON artifact (merged metrics + "
        "skew-aligned spans) at sweep end: a file path, or an "
        "http(s):// endpoint to POST to (enables the fleet plane)",
    )
    p.add_argument(
        "--obs-refresh", type=float, default=5.0, metavar="SECONDS",
        help="fleet exporter refresh interval (default 5)",
    )
    p.add_argument(
        "--run-id", default=None, metavar="ID",
        help="run label stamped into fleet metric series and span tags "
        "(default: derived from the sweep config hash)",
    )
    p.add_argument(
        "--adaptive-shards", action="store_true",
        help="size shard leases from observed per-cell wall time "
        "instead of the static --shard-size",
    )
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "audit",
        help="invariant audit + telemetry over a config grid",
    )
    _add_workload_args(p)
    p.add_argument(
        "--protocols", nargs="+", default=["TP", "BCS", "QBC"],
        help="protocols to audit (default: the paper's three)",
    )
    p.add_argument(
        "--sweep", type=float, nargs="+", default=[100.0, 1000.0, 10000.0],
        help="t_switch grid to audit over",
    )
    p.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1],
        help="seeds per grid point",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width over (point, seed) tasks; 0 = serial",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--cache-dir", default=None)
    p.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write per-task run telemetry (JSONL) to PATH",
    )
    # A shorter default horizon than the figure sweeps: the audit
    # replays each protocol three extra times per task.
    p.set_defaults(fn=_cmd_audit, sim_time=2000.0)

    p = sub.add_parser("compare", help="all protocols on one workload")
    _add_workload_args(p)
    p.add_argument("--protocols", nargs="+", default=None)
    p.add_argument(
        "--engine", choices=("auto", "reference", "fused", "vectorized"),
        default="fused",
        help="replay engine (bit-identical results across all four)",
    )
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("trace", help="generate and save a trace")
    _add_workload_args(p)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("replay", help="replay a saved trace")
    p.add_argument("--trace", required=True)
    p.add_argument("--protocols", nargs="+", default=["TP", "BCS", "QBC"])
    p.add_argument(
        "--engine", choices=("auto", "reference", "fused", "vectorized"),
        default="auto",
        help="replay engine (default: auto picks the fastest sound one)",
    )
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("recovery", help="failure injection on a workload")
    _add_workload_args(p)
    p.add_argument("--protocol", default="QBC")
    p.add_argument("--failed-host", type=int, default=0)
    p.set_defaults(fn=_cmd_recovery)

    p = sub.add_parser(
        "failures", help="run with Poisson crashes and full rollback"
    )
    _add_workload_args(p)
    p.add_argument("--protocol", default="QBC")
    p.add_argument("--mean-interval", type=float, default=1500.0)
    p.set_defaults(fn=_cmd_failures)

    p = sub.add_parser(
        "protocols",
        help="list registered protocols with capabilities and origin",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output (protocols + plugin errors)",
    )
    p.set_defaults(fn=_cmd_protocols)

    p = sub.add_parser(
        "workloads",
        help="list registered workload models with their parameters",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output (name, doc, parameter specs)",
    )
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser(
        "conformance",
        help="run the protocol conformance batteries",
    )
    p.add_argument(
        "names", nargs="+", metavar="PROTOCOL",
        help="registered protocol name(s) to check (see 'repro "
        "protocols')",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable per-battery results",
    )
    p.set_defaults(fn=_cmd_conformance)

    p = sub.add_parser(
        "shard-worker",
        help="join a sharded sweep as an external worker",
    )
    p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (the sweep's --shard-listen value)",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=15.0, metavar="SECONDS",
        help="how long to retry dialing the coordinator (default 15s)",
    )
    p.set_defaults(fn=_cmd_shard_worker)

    p = sub.add_parser(
        "tail",
        help="follow a telemetry/outcome/heartbeat JSONL stream",
    )
    p.add_argument(
        "path",
        help="JSONL file written by figure --telemetry, --stream or "
        "--heartbeat (mixed record kinds are fine)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print one summary and exit instead of following",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval while following (default 2s)",
    )
    p.set_defaults(fn=_cmd_tail)

    p = sub.add_parser(
        "dash",
        help="live TTY dashboard over a sweep's JSONL stream",
    )
    p.add_argument(
        "path",
        help="JSONL file written by figure --stream, --telemetry or "
        "--heartbeat (mixed record kinds are fine)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="repaint interval (default 2s)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit instead of following",
    )
    p.add_argument(
        "--width", type=int, default=72, metavar="COLS",
        help="frame width in columns (default 72)",
    )
    p.set_defaults(fn=_cmd_dash)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse *argv* and dispatch; returns the exit code.

    Codes: 0 = ok, 1 = violations/failed validation/grid holes, 2 =
    usage error (argparse convention), 130 = interrupted.
    """
    from repro.engine import EngineError
    from repro.workload.registry import WorkloadError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (EngineError, WorkloadError) as exc:
        # Unknown protocols/workloads and capability mismatches are
        # usage errors, reported uniformly regardless of which
        # subcommand hit them.
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # A force-quit (second SIGINT) or an interrupt outside the
        # supervised sweep loop: report the shell convention.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
