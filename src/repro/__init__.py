"""repro: checkpointing protocols in distributed systems with mobile hosts.

A from-scratch reproduction of Quaglia, Ciciani & Baldoni,
*"Checkpointing Protocols in Distributed Systems with Mobile Hosts: a
Performance Analysis"* (IPPS 1998): a discrete-event simulator of a
mobile computing environment, the paper's three communication-induced
checkpointing protocols (TP, BCS, QBC) plus baselines, consistency and
recovery machinery, and the full experiment harness regenerating every
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import RunSpec, WorkloadConfig, execute
>>> cfg = WorkloadConfig(t_switch=1000.0, p_switch=0.8, sim_time=5000.0, seed=1)
>>> run = execute(RunSpec(protocols=("TP", "BCS", "QBC"), workload=cfg))
>>> for outcome in run.outcomes:
...     print(outcome.name, outcome.n_total)  # doctest: +SKIP

:func:`repro.engine.execute` is the unified entry point: it resolves
protocol names against the capability-aware registry, picks the right
engine (fused replay here; online DES for coordinated baselines) and
drives every protocol over the identical schedule.  The raw
:func:`replay` / :func:`run_online` drivers stay exported for direct
low-level use.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.metrics import CheckpointStats, ProtocolRunMetrics, gain_percent
from repro.core.replay import ReplayResult, replay, replay_fused, replay_many
from repro.core.trace import EventType, Trace, TraceEvent
from repro.engine import ExecutionPlan, RunResult, RunSpec, execute, plan
from repro.experiments.figures import run_figure
from repro.workload.cache import TraceCache, config_key, shared_cache
from repro.workload.config import WorkloadConfig
from repro.workload.driver import OnlineResult, generate_trace, run_online

__version__ = "1.0.0"

__all__ = [
    "CheckpointStats",
    "EventType",
    "ExecutionPlan",
    "OnlineResult",
    "ProtocolRunMetrics",
    "ReplayResult",
    "RunResult",
    "RunSpec",
    "Trace",
    "TraceCache",
    "TraceEvent",
    "WorkloadConfig",
    "__version__",
    "config_key",
    "execute",
    "gain_percent",
    "generate_trace",
    "plan",
    "replay",
    "replay_fused",
    "replay_many",
    "run_figure",
    "run_online",
    "shared_cache",
]
