"""repro: checkpointing protocols in distributed systems with mobile hosts.

A from-scratch reproduction of Quaglia, Ciciani & Baldoni,
*"Checkpointing Protocols in Distributed Systems with Mobile Hosts: a
Performance Analysis"* (IPPS 1998): a discrete-event simulator of a
mobile computing environment, the paper's three communication-induced
checkpointing protocols (TP, BCS, QBC) plus baselines, consistency and
recovery machinery, and the full experiment harness regenerating every
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import WorkloadConfig, generate_trace, replay
>>> from repro.protocols import BCSProtocol, QBCProtocol, TwoPhaseProtocol
>>> cfg = WorkloadConfig(t_switch=1000.0, p_switch=0.8, sim_time=5000.0, seed=1)
>>> trace = generate_trace(cfg)
>>> for cls in (TwoPhaseProtocol, BCSProtocol, QBCProtocol):
...     result = replay(trace, cls(cfg.n_hosts, cfg.n_mss))
...     print(result.metrics.protocol, result.n_total)  # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.metrics import CheckpointStats, ProtocolRunMetrics, gain_percent
from repro.core.replay import ReplayResult, replay, replay_fused, replay_many
from repro.core.trace import EventType, Trace, TraceEvent
from repro.experiments.figures import run_figure
from repro.workload.cache import TraceCache, config_key, shared_cache
from repro.workload.config import WorkloadConfig
from repro.workload.driver import OnlineResult, generate_trace, run_online

__version__ = "1.0.0"

__all__ = [
    "CheckpointStats",
    "EventType",
    "OnlineResult",
    "ProtocolRunMetrics",
    "ReplayResult",
    "Trace",
    "TraceCache",
    "TraceEvent",
    "WorkloadConfig",
    "__version__",
    "config_key",
    "gain_percent",
    "generate_trace",
    "replay",
    "replay_fused",
    "replay_many",
    "run_figure",
    "run_online",
    "shared_cache",
]
