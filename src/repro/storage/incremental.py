"""Incremental checkpointing (paper Section 2.2).

Transferring a full MH state over the wireless link on every checkpoint
is expensive (battery, channel).  Incremental checkpointing ships only
the pages dirtied since the previous checkpoint; the MSS reconstructs
the full state by applying the delta to the stored predecessor.  If a
cell switch moved the host away from the MSS that holds the predecessor,
the new MSS must first *fetch* that base over the wired network.

The model here is a page-granular dirty-bit abstraction:
:class:`HostStateModel` mutates pages as the application runs;
:class:`IncrementalCheckpointer` cuts full or delta checkpoints and can
reconstruct any checkpointed state from a chain of deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class CheckpointDelta:
    """Dirty pages captured by one incremental checkpoint."""

    host_id: int
    index: int
    base_index: Optional[int]
    #: page number -> page content version
    pages: dict[int, int]

    @property
    def size_pages(self) -> int:
        """Number of pages shipped by this delta."""
        return len(self.pages)


class HostStateModel:
    """Page-granular model of a mobile host's volatile state.

    Parameters
    ----------
    host_id:
        Owning host.
    n_pages:
        Address-space size in pages.
    page_bytes:
        Bytes per page (cost accounting).
    """

    def __init__(self, host_id: int, n_pages: int = 64, page_bytes: int = 4096):
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1, got {n_pages}")
        self.host_id = host_id
        self.n_pages = n_pages
        self.page_bytes = page_bytes
        #: content version per page; bumped on every write
        self._pages = [0] * n_pages
        self._dirty: set[int] = set(range(n_pages))  # everything dirty at start

    def touch(self, page: int) -> None:
        """Write to *page* (marks it dirty)."""
        if not 0 <= page < self.n_pages:
            raise IndexError(f"page {page} out of range 0..{self.n_pages - 1}")
        self._pages[page] += 1
        self._dirty.add(page)

    def touch_random(self, rng, count: int) -> None:
        """Dirty *count* random pages (application write model)."""
        for page in rng.integers(0, self.n_pages, size=count):
            self.touch(int(page))

    @property
    def dirty_pages(self) -> set[int]:
        """Pages written since the last checkpoint cut."""
        return set(self._dirty)

    def snapshot(self) -> dict[int, int]:
        """Full copy of the current page versions."""
        return {i: v for i, v in enumerate(self._pages)}

    def cut_delta(self, index: int, base_index: Optional[int]) -> CheckpointDelta:
        """Capture dirty pages as a delta and clear the dirty set."""
        delta = CheckpointDelta(
            host_id=self.host_id,
            index=index,
            base_index=base_index,
            pages={p: self._pages[p] for p in sorted(self._dirty)},
        )
        self._dirty.clear()
        return delta


class IncrementalCheckpointer:
    """Maintains the delta chain of one host and reconstructs states.

    The checkpointer mirrors what the MSS-side agent does: it remembers
    which checkpoint index each delta was based on and can replay the
    chain ``full_base -> delta -> ... -> delta`` to materialise any
    checkpointed state.
    """

    def __init__(self, state: HostStateModel, full_every: int = 0):
        self.state = state
        #: Take a full (non-incremental) checkpoint every N cuts
        #: (0 = only the first checkpoint is full).
        self.full_every = full_every
        self._chain: dict[int, CheckpointDelta] = {}
        self._full: dict[int, dict[int, int]] = {}
        self._last_index: Optional[int] = None
        self._cuts = 0
        self.bytes_shipped = 0

    @property
    def last_index(self) -> Optional[int]:
        """Index of the most recent cut (None before the first)."""
        return self._last_index

    def cut(self, index: int) -> CheckpointDelta | dict[int, int]:
        """Take checkpoint *index*; returns the shipped object.

        The first cut (and every ``full_every``-th when configured) ships
        a full snapshot; all others ship dirty-page deltas.
        """
        if index in self._chain or index in self._full:
            raise ValueError(f"checkpoint index {index} already cut")
        if self._last_index is not None and index <= self._last_index:
            raise ValueError(
                f"checkpoint indices must increase: {index} after {self._last_index}"
            )
        take_full = self._last_index is None or (
            self.full_every > 0 and self._cuts % self.full_every == 0
        )
        self._cuts += 1
        if take_full:
            snap = self.state.snapshot()
            self.state._dirty.clear()
            self._full[index] = snap
            self._last_index = index
            self.bytes_shipped += len(snap) * self.state.page_bytes
            return snap
        delta = self.state.cut_delta(index, base_index=self._last_index)
        self._chain[index] = delta
        self._last_index = index
        self.bytes_shipped += delta.size_pages * self.state.page_bytes
        return delta

    def reconstruct(self, index: int) -> dict[int, int]:
        """Materialise the full state at checkpoint *index*.

        Raises ``KeyError`` if *index* was never cut.
        """
        if index in self._full:
            return dict(self._full[index])
        if index not in self._chain:
            raise KeyError(f"no checkpoint with index {index}")
        # Walk back to the nearest full snapshot, then replay forward.
        path: list[CheckpointDelta] = []
        cursor: Optional[int] = index
        while cursor is not None and cursor not in self._full:
            delta = self._chain[cursor]
            path.append(delta)
            cursor = delta.base_index
        if cursor is None:
            raise KeyError(f"delta chain for index {index} has no full base")
        state = dict(self._full[cursor])
        for delta in reversed(path):
            state.update(delta.pages)
        return state

    def chain_length(self, index: int) -> int:
        """Number of deltas that must be applied to materialise *index*
        (0 when it is a full snapshot) -- the reconstruction-cost proxy."""
        length = 0
        cursor: Optional[int] = index
        while cursor is not None and cursor not in self._full:
            length += 1
            cursor = self._chain[cursor].base_index
        if cursor is None:
            raise KeyError(f"delta chain for index {index} has no full base")
        return length
