"""Per-MSS stable storage for mobile-host checkpoints.

Checkpoints are keyed by ``(host_id, index)``.  The *index* is the
protocol's checkpoint numbering: the sequence number for BCS/QBC, the
per-host checkpoint count for TP.  Each record also notes whether it is
a full snapshot or an incremental delta, so reconstruction cost can be
modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(slots=True)
class CheckpointRecord:
    """One stored local checkpoint of one mobile host."""

    host_id: int
    index: int
    taken_at: float
    #: MSS that holds this record.
    mss_id: int
    #: "basic" (cell switch / disconnect) or "forced" (protocol-induced),
    #: matching the paper's terminology.
    reason: str = "basic"
    #: Bytes written to stable storage for this record.
    size_bytes: int = 0
    #: True when the record is an incremental delta over ``base_index``.
    incremental: bool = False
    base_index: Optional[int] = None
    #: Protocol metadata snapshotted with the checkpoint (e.g. the TP
    #: dependency vectors, which the protocol records on stable storage).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> tuple[int, int]:
        """Storage key: ``(host_id, index)``."""
        return (self.host_id, self.index)


class StableStorage:
    """Checkpoint repository of one MSS.

    Also tracks bytes written and fetch traffic so experiments can report
    storage/transfer overhead (paper Section 2.2).
    """

    def __init__(self, mss_id: int):
        self.mss_id = mss_id
        self._records: dict[tuple[int, int], CheckpointRecord] = {}
        #: Most recent record per host (insertion order = time order).
        self._latest: dict[int, CheckpointRecord] = {}
        self.bytes_written = 0
        self.fetches_served = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._records

    def store(self, record: CheckpointRecord) -> None:
        """Persist *record*.  Re-storing an existing key overwrites it
        (QBC's checkpoint *replacement* does exactly this)."""
        if record.mss_id != self.mss_id:
            raise ValueError(
                f"record for MSS {record.mss_id} stored at MSS {self.mss_id}"
            )
        self._records[record.key] = record
        prev = self._latest.get(record.host_id)
        if prev is None or record.taken_at >= prev.taken_at:
            self._latest[record.host_id] = record
        self.bytes_written += record.size_bytes

    def get(self, host_id: int, index: int) -> Optional[CheckpointRecord]:
        """Fetch one record, or None."""
        return self._records.get((host_id, index))

    def latest(self, host_id: int) -> Optional[CheckpointRecord]:
        """Most recently taken record of *host_id* held here."""
        return self._latest.get(host_id)

    def records_for(self, host_id: int) -> list[CheckpointRecord]:
        """All records of *host_id*, ordered by checkpoint index."""
        return sorted(
            (r for r in self._records.values() if r.host_id == host_id),
            key=lambda r: r.index,
        )

    def all_records(self) -> list[CheckpointRecord]:
        """Every record, ordered by (host, index)."""
        return sorted(self._records.values(), key=lambda r: r.key)

    def remove(self, host_id: int, index: int) -> Optional[CheckpointRecord]:
        """Delete and return one record (used by GC and by checkpoint
        migration after a handoff)."""
        rec = self._records.pop((host_id, index), None)
        if rec is not None and self._latest.get(host_id) is rec:
            remaining = self.records_for(host_id)
            self._latest.pop(host_id, None)
            if remaining:
                self._latest[host_id] = max(remaining, key=lambda r: r.taken_at)
        return rec

    def serve_fetch(self, host_id: int, index: int) -> Optional[CheckpointRecord]:
        """Another MSS requests a record (handoff base transfer)."""
        rec = self.get(host_id, index)
        if rec is not None:
            self.fetches_served += 1
        return rec
