"""Garbage collection of obsolete checkpoints.

Once the recovery line has advanced past index ``L`` for every host, no
rollback can ever target a checkpoint with index ``< L``; those records
(and the wired-storage space they occupy) can be reclaimed.  The paper's
setting makes this valuable: MSS stable storage is a shared resource and
"the reduction of the number of checkpoints" (Section 2.2) applies to
retained state too.

The index-based recovery-line rule (BCS/QBC) makes the cutoff simple:
the minimum over hosts of the highest checkpoint index is a consistent
line, so anything strictly older than each host's *last checkpoint at or
below the cutoff* is collectable.  We keep, per host, the newest record
with ``index <= cutoff`` (the line member, honouring the first-after-jump
rule from below) plus everything newer.
"""

from __future__ import annotations

from typing import Iterable

from repro.storage.stable import CheckpointRecord, StableStorage


def obsolete_records(
    records: Iterable[CheckpointRecord], cutoff_index: int
) -> list[CheckpointRecord]:
    """Return records provably useless for any future rollback.

    A record of host ``h`` is obsolete iff some *newer* record of ``h``
    still has ``index <= cutoff_index`` (that newer one dominates it as
    a line member).
    """
    by_host: dict[int, list[CheckpointRecord]] = {}
    for rec in records:
        by_host.setdefault(rec.host_id, []).append(rec)
    victims: list[CheckpointRecord] = []
    for recs in by_host.values():
        recs.sort(key=lambda r: r.index)
        eligible = [r for r in recs if r.index <= cutoff_index]
        if len(eligible) > 1:
            victims.extend(eligible[:-1])  # keep only the newest eligible
    return victims


def collect_garbage(storages: Iterable[StableStorage], cutoff_index: int) -> int:
    """Drop obsolete records from every storage; return bytes reclaimed.

    ``cutoff_index`` must come from the recovery-line machinery (e.g.
    ``min over hosts of max checkpoint index``); passing a too-large
    cutoff silently deletes nothing *incorrect* only if that contract is
    honoured, so callers should derive it via
    :func:`repro.core.consistency.max_consistent_index`.
    """
    storages = list(storages)
    by_mss = {s.mss_id: s for s in storages}
    # Decide obsolescence over the union: a host's records may be spread
    # across MSSs after handoffs, and per-storage decisions would keep
    # one stale record per MSS.
    everything = [rec for s in storages for rec in s.all_records()]
    reclaimed = 0
    for victim in obsolete_records(everything, cutoff_index):
        removed = by_mss[victim.mss_id].remove(victim.host_id, victim.index)
        if removed is not None:
            reclaimed += removed.size_bytes
    return reclaimed
