"""Stable-storage substrate at the mobile support stations.

The paper's mobility point (a): MH local storage is vulnerable, so every
checkpoint is transferred to the *current MSS's* stable storage.  This
package provides:

* :class:`~repro.storage.stable.StableStorage` -- per-MSS checkpoint
  repository (:class:`~repro.storage.stable.CheckpointRecord`).
* :class:`~repro.storage.incremental.IncrementalCheckpointer` and the
  dirty-page :class:`~repro.storage.incremental.HostStateModel` -- the
  incremental checkpointing technique of Section 2.2, including
  reconstruction at the MSS and cross-MSS base fetches after a handoff.
* :func:`~repro.storage.gc.collect_garbage` -- reclamation of checkpoints
  made obsolete by an advancing recovery line.
"""

from repro.storage.gc import collect_garbage, obsolete_records
from repro.storage.incremental import (
    CheckpointDelta,
    HostStateModel,
    IncrementalCheckpointer,
)
from repro.storage.stable import CheckpointRecord, StableStorage

__all__ = [
    "CheckpointDelta",
    "CheckpointRecord",
    "HostStateModel",
    "IncrementalCheckpointer",
    "StableStorage",
    "collect_garbage",
    "obsolete_records",
]
