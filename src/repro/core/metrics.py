"""Run metrics: the paper's N_tot and supporting overhead measures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.base import CheckpointingProtocol


@dataclass(slots=True)
class CheckpointStats:
    """Checkpoint counts of one protocol run."""

    n_basic: int = 0
    n_forced: int = 0
    n_initial: int = 0
    n_replaced: int = 0
    per_host_total: dict[int, int] = field(default_factory=dict)

    @property
    def n_total(self) -> int:
        """The paper's N_tot (initial checkpoints excluded)."""
        return self.n_basic + self.n_forced

    @classmethod
    def from_protocol(cls, protocol: "CheckpointingProtocol") -> "CheckpointStats":
        """Aggregate the counters of a finished protocol run.

        Reads the counters :meth:`CheckpointingProtocol.take` maintains
        incrementally -- O(n_hosts), never rescanning the checkpoint log.
        """
        return cls(
            n_basic=protocol.n_basic,
            n_forced=protocol.n_forced,
            n_initial=protocol.n_initial,
            n_replaced=protocol.n_replaced,
            per_host_total=dict(enumerate(protocol.per_host_total)),
        )


@dataclass(slots=True)
class ProtocolRunMetrics:
    """Everything one (trace, protocol) evaluation produces."""

    protocol: str
    stats: CheckpointStats
    #: Sends observed in the trace.
    n_sends: int = 0
    #: Receive operations that actually consumed a message.
    n_receives: int = 0
    #: Total control integers shipped on application messages
    #: (n_sends x per-message piggyback size) -- the paper's
    #: scalability measure.
    piggyback_ints_total: int = 0
    sim_time: float = 0.0
    seed: Optional[int] = None

    @property
    def n_total(self) -> int:
        return self.stats.n_total

    @property
    def forced_per_send(self) -> float:
        """Forced checkpoints per application message sent (intensity)."""
        return self.stats.n_forced / self.n_sends if self.n_sends else 0.0

    def as_row(self) -> dict:
        """Flat dict for table/CSV reporting."""
        return {
            "protocol": self.protocol,
            "n_total": self.n_total,
            "n_basic": self.stats.n_basic,
            "n_forced": self.stats.n_forced,
            "n_replaced": self.stats.n_replaced,
            "n_sends": self.n_sends,
            "n_receives": self.n_receives,
            "piggyback_ints": self.piggyback_ints_total,
            "sim_time": self.sim_time,
            "seed": self.seed,
        }


def gain_percent(baseline: float, improved: float) -> float:
    """The paper's gain measure: how much *improved* undercuts *baseline*
    in percent (e.g. 90.0 when an index protocol takes 10x fewer
    checkpoints than TP)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
