"""Consistency of global checkpoints: happens-before, orphans, lines.

Definitions (paper Section 3): a message ``m`` from ``h_i`` to ``h_j``
is *orphan* w.r.t. the pair ``(C_i, C_j)`` iff its receive occurred
before ``C_j`` while its send occurred after ``C_i``.  A global
checkpoint (one local checkpoint per host) is *consistent* iff no pair
admits an orphan message.

Positions, not timestamps
-------------------------
Whether a checkpoint covers an event is a question of *per-host event
order*, not wall-clock time: a forced checkpoint is taken upon receipt
**before** the message is delivered, so the message is received *after*
that checkpoint even though both carry the same timestamp.  This module
therefore re-runs a protocol over a trace while recording the exact
interleaving of events and checkpoints per host
(:func:`annotate_replay`), and all consistency queries work on those
integer positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.trace import EventType, Trace
from repro.protocols.base import CheckpointingProtocol, TakenCheckpoint


@dataclass(slots=True, frozen=True)
class MessageRecord:
    """Send/receive positions of one consumed message."""

    msg_id: int
    src: int
    src_pos: int
    dst: int
    dst_pos: int


@dataclass(slots=True, frozen=True)
class LocalCheckpoint:
    """A checkpoint pinned to its per-host position."""

    host: int
    #: Ordinal among this host's checkpoints (0 = initial checkpoint).
    ordinal: int
    #: Position in the host's event sequence; events with a smaller
    #: position are covered by (happened before) this checkpoint.
    position: int
    record: TakenCheckpoint


@dataclass
class AnnotatedRun:
    """A replayed trace with exact per-host event/checkpoint ordering."""

    n_hosts: int
    #: All consumed messages with their endpoint positions.
    messages: list[MessageRecord] = field(default_factory=list)
    #: Per host: checkpoints in the order taken, with positions.
    checkpoints: list[list[LocalCheckpoint]] = field(default_factory=list)
    #: Per host: total number of positions used (diagnostics).
    sequence_length: list[int] = field(default_factory=list)
    #: Global creation order of all (host, position) pairs -- the
    #: topological order vector clocks are computed in.
    order: list[tuple[int, int]] = field(default_factory=list)

    def last_checkpoint(self, host: int) -> LocalCheckpoint:
        """The host's most recent checkpoint."""
        return self.checkpoints[host][-1]

    def latest_with_index(self, host: int, index: int) -> Optional[LocalCheckpoint]:
        """Most recent checkpoint of *host* carrying protocol index
        *index* (QBC may have several; the last replaces the others)."""
        found = None
        for ck in self.checkpoints[host]:
            if ck.record.index == index:
                found = ck
        return found

    def first_with_index_at_least(
        self, host: int, index: int
    ) -> Optional[LocalCheckpoint]:
        """First checkpoint with protocol index >= *index* (the BCS
        "jump" completion rule)."""
        best = None
        for ck in self.checkpoints[host]:
            if ck.record.index >= index:
                if best is None or ck.position < best.position:
                    best = ck
        return best


def annotate_replay(
    trace: Trace, protocol: CheckpointingProtocol
) -> AnnotatedRun:
    """Replay *trace* through a fresh *protocol*, recording positions.

    Checkpoints taken inside a hook are positioned **before** the event
    that triggered the hook (the protocol checkpoints, then the event
    completes) -- this matches the pseudocode of all the paper's
    protocols.
    """
    if protocol.checkpoints and any(
        c.reason != "initial" for c in protocol.checkpoints
    ):
        raise ValueError("annotate_replay needs a fresh protocol instance")
    run = AnnotatedRun(
        n_hosts=trace.n_hosts,
        checkpoints=[[] for _ in range(trace.n_hosts)],
        sequence_length=[0] * trace.n_hosts,
    )
    pos = run.sequence_length  # alias: next free position per host

    def note_new_checkpoints() -> None:
        taken = protocol.checkpoints
        while len(taken) > note_counts[0]:
            ck = taken[note_counts[0]]
            note_counts[0] += 1
            p = pos[ck.host]
            pos[ck.host] += 1
            run.order.append((ck.host, p))
            run.checkpoints[ck.host].append(
                LocalCheckpoint(
                    host=ck.host,
                    ordinal=len(run.checkpoints[ck.host]),
                    position=p,
                    record=ck,
                )
            )

    note_counts = [0]
    # Initial checkpoints (taken in the protocol constructor).
    note_new_checkpoints()

    in_flight: dict[int, tuple[object, int, int]] = {}  # piggyback, src, src_pos
    for ev in trace.events:
        et = ev.etype
        if et is EventType.SEND:
            piggyback = protocol.on_send(ev.host, ev.peer, ev.time)
            note_new_checkpoints()  # e.g. periodic ckpt before send
            p = pos[ev.host]
            pos[ev.host] += 1
            run.order.append((ev.host, p))
            in_flight[ev.msg_id] = (piggyback, ev.host, p)
        elif et is EventType.RECEIVE:
            piggyback, src, src_pos = in_flight.pop(ev.msg_id)
            protocol.on_receive(ev.host, piggyback, src, ev.time)
            note_new_checkpoints()  # forced ckpt precedes delivery
            p = pos[ev.host]
            pos[ev.host] += 1
            run.order.append((ev.host, p))
            run.messages.append(
                MessageRecord(
                    msg_id=ev.msg_id,
                    src=src,
                    src_pos=src_pos,
                    dst=ev.host,
                    dst_pos=p,
                )
            )
        elif et is EventType.CELL_SWITCH:
            protocol.on_cell_switch(ev.host, ev.time, ev.cell)
            note_new_checkpoints()
        elif et is EventType.DISCONNECT:
            protocol.on_disconnect(ev.host, ev.time)
            note_new_checkpoints()
        elif et is EventType.RECONNECT:
            protocol.on_reconnect(ev.host, ev.time, ev.cell)
            note_new_checkpoints()
    return run


# ---------------------------------------------------------------------------
# consistency queries
# ---------------------------------------------------------------------------

#: A global checkpoint: one LocalCheckpoint per host.
GlobalCheckpoint = dict[int, LocalCheckpoint]


def find_orphans(run: AnnotatedRun, line: GlobalCheckpoint) -> list[MessageRecord]:
    """Messages orphaned by *line*: received before the destination's
    line checkpoint but sent after the source's line checkpoint."""
    orphans = []
    for m in run.messages:
        c_src = line.get(m.src)
        c_dst = line.get(m.dst)
        if c_src is None or c_dst is None:
            continue
        if m.src_pos >= c_src.position and m.dst_pos < c_dst.position:
            orphans.append(m)
    return orphans


def is_consistent(run: AnnotatedRun, line: GlobalCheckpoint) -> bool:
    """True iff *line* admits no orphan message."""
    return not find_orphans(run, line)


def in_transit_messages(
    run: AnnotatedRun, line: GlobalCheckpoint
) -> list[MessageRecord]:
    """Messages sent before the line but received after it (lost on
    rollback unless logged; reported for completeness)."""
    result = []
    for m in run.messages:
        c_src = line.get(m.src)
        c_dst = line.get(m.dst)
        if c_src is None or c_dst is None:
            continue
        if m.src_pos < c_src.position and m.dst_pos >= c_dst.position:
            result.append(m)
    return result


def build_recovery_line(
    run: AnnotatedRun, protocol: CheckpointingProtocol
) -> GlobalCheckpoint:
    """Materialise the protocol's on-the-fly recovery line on *run*.

    For index-based protocols the line is, per host, the **latest**
    checkpoint carrying index ``min_i sn_i`` -- or, after a jump, the
    first checkpoint with a greater index (paper Section 4.2).  For TP
    the last checkpoint of every host forms a consistent global
    checkpoint.  The protocol's own ``recovery_line_indices`` supplies
    the per-host index; this function resolves it to positions.
    """
    indices = protocol.recovery_line_indices()
    line: GlobalCheckpoint = {}
    for host, index in indices.items():
        exact = run.latest_with_index(host, index)
        ck = exact if exact is not None else run.first_with_index_at_least(host, index)
        if ck is None:
            raise ValueError(
                f"host {host} has no checkpoint with index >= {index}"
            )
        line[host] = ck
    return line


def max_consistent_index(sns: Sequence[int]) -> int:
    """The index-based recovery-line index: ``min_i sn_i``.

    Exposed for the storage GC, which may reclaim anything strictly
    older than each host's last checkpoint at or below this cutoff.
    """
    if not sns:
        raise ValueError("need at least one sequence number")
    return min(sns)


def maximal_consistent_line(
    run: AnnotatedRun,
    start: Optional[GlobalCheckpoint] = None,
) -> tuple[GlobalCheckpoint, int]:
    """Find the most recent consistent line at or before *start* by
    rollback propagation; returns (line, iterations).

    This is the a-posteriori search an *uncoordinated* protocol is stuck
    with: start from each host's last checkpoint and, while some message
    is orphaned, roll its receiver back before the receive.  The
    iteration count exposes the domino effect (CIC protocols converge in
    one pass; uncoordinated ones can cascade to the initial state).
    """
    line = dict(start) if start is not None else {
        h: run.last_checkpoint(h) for h in range(run.n_hosts)
    }
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for m in find_orphans(run, line):
            # The line mutates within this pass: skip orphans an earlier
            # rollback already resolved (their receive is now uncovered).
            if not (
                m.src_pos >= line[m.src].position
                and m.dst_pos < line[m.dst].position
            ):
                continue
            # receiver must roll back before the receive of m
            candidates = [
                ck
                for ck in run.checkpoints[m.dst]
                if ck.position <= m.dst_pos and ck.position < line[m.dst].position
            ]
            if not candidates:
                raise RuntimeError(
                    f"no checkpoint of host {m.dst} precedes orphan receive; "
                    "initial checkpoint missing?"
                )
            line[m.dst] = max(candidates, key=lambda ck: ck.position)
            changed = True
    return line, iterations


# ---------------------------------------------------------------------------
# vector clocks
# ---------------------------------------------------------------------------


class CausalOrder:
    """Vector clocks over an annotated run: Lamport's happened-before.

    Built once from an :class:`AnnotatedRun`, then answers
    ``happens_before((host_a, pos_a), (host_b, pos_b))`` queries in O(1)
    and exposes clocks for checkpoints.  Used by the property-test suite
    to verify recovery lines against an independent definition of
    consistency: a line is consistent iff no line checkpoint happens
    before another line member's *covered* region in a way that orphans
    a message -- i.e. the orphan criterion and the vector-clock
    criterion must agree.
    """

    def __init__(self, run: AnnotatedRun):
        self.run = run
        n = run.n_hosts
        recv_from: dict[tuple[int, int], tuple[int, int]] = {
            (m.dst, m.dst_pos): (m.src, m.src_pos) for m in run.messages
        }
        clocks: dict[tuple[int, int], tuple[int, ...]] = {}
        last: dict[int, list[int]] = {}
        for host, pos in run.order:
            vc = list(last.get(host, (0,) * n))
            origin = recv_from.get((host, pos))
            if origin is not None:
                src_vc = clocks[origin]
                for k in range(n):
                    if src_vc[k] > vc[k]:
                        vc[k] = src_vc[k]
            vc[host] += 1
            tup = tuple(vc)
            clocks[(host, pos)] = tup
            last[host] = vc
        self._clocks = clocks

    def clock(self, host: int, pos: int) -> tuple[int, ...]:
        """Vector clock of the event at (host, pos)."""
        return self._clocks[(host, pos)]

    def happens_before(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> bool:
        """Lamport happened-before between two (host, position) events."""
        if a == b:
            return False
        va, vb = self._clocks[a], self._clocks[b]
        return va[a[0]] <= vb[a[0]] and va != vb

    def concurrent(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        """Neither happens before the other."""
        return (
            a != b
            and not self.happens_before(a, b)
            and not self.happens_before(b, a)
        )

    def checkpoint_clock(self, ck: LocalCheckpoint) -> tuple[int, ...]:
        """Vector clock of a checkpoint (as an event of its host)."""
        return self._clocks[(ck.host, ck.position)]

    def line_is_consistent(self, line: GlobalCheckpoint) -> bool:
        """Independent consistency check: no line member happens before
        another (checkpoints of a consistent global checkpoint must be
        pairwise concurrent or unordered, Lamport [12] / paper Section 1).
        """
        members = list(line.values())
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pa = (a.host, a.position)
                pb = (b.host, b.position)
                if self.happens_before(pa, pb) or self.happens_before(pb, pa):
                    return False
        return True


# ---------------------------------------------------------------------------
# TP anchored lines
# ---------------------------------------------------------------------------


def virtual_now_checkpoint(run: AnnotatedRun, host: int) -> LocalCheckpoint:
    """A stand-in for the checkpoint a host takes *on demand* at global-
    checkpoint collection time: it covers every event of the host so
    far.  Used by :func:`tp_anchored_line` for hosts whose required
    checkpoint does not exist yet."""
    from repro.protocols.base import TakenCheckpoint

    return LocalCheckpoint(
        host=host,
        ordinal=len(run.checkpoints[host]),
        position=run.sequence_length[host],
        record=TakenCheckpoint(
            host=host,
            index=-1,
            time=float("inf"),
            reason="virtual",
        ),
    )


def tp_anchored_line(
    run: AnnotatedRun, protocol, anchor: int
) -> GlobalCheckpoint:
    """The consistent global checkpoint containing *anchor*'s latest TP
    checkpoint (paper Section 4.1).

    Per the dependency vectors recorded with that checkpoint, every
    other host contributes its checkpoint with index ``CKPT_a[j] + 1``
    -- the first one covering the interval the anchor depends on.  A
    host that has not taken it yet contributes the checkpoint it would
    take on demand (virtual-now): the two-phase rule (all receives of
    an interval precede its first send) guarantees this closes the line
    with no orphan and no cascading, which the property-test suite
    verifies against the independent orphan checker.
    """
    line: GlobalCheckpoint = {anchor: run.last_checkpoint(anchor)}
    for j, index in protocol.required_indices(anchor).items():
        ck = run.first_with_index_at_least(j, index)
        line[j] = ck if ck is not None else virtual_now_checkpoint(run, j)
    return line
