"""Checkpoint dependency graphs and Z-path/Z-cycle analysis.

Communication-induced checkpointing theory (Netzer-Xu): a local
checkpoint is *useful* (belongs to some consistent global checkpoint)
iff it lies on no **Z-cycle**.  A Z-path from ``A`` to ``B`` is a chain
of messages ``m1 .. mn`` where ``m1`` is sent after ``A``, ``mn`` is
received before ``B``, and each ``m_{l+1}`` is sent by the receiver of
``m_l`` in the *same or a later* checkpoint interval -- crucially,
possibly *before* ``m_l`` arrives, which is what makes Z-paths strictly
weaker than causal paths.

Index-based protocols (BCS/QBC) are Z-cycle-free by construction --
their forced-checkpoint rule keeps sequence numbers non-decreasing
along any Z-path, and a cycle would need a strictly larger index than
itself.  The property-test suite verifies that claim against this
independent implementation, and the uncoordinated baseline demonstrably
produces useless checkpoints.

Built on networkx digraph reachability.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import networkx as nx

from repro.core.consistency import AnnotatedRun, LocalCheckpoint


@dataclass(slots=True, frozen=True)
class _Msg:
    """Message with interval coordinates (hashable graph node)."""

    msg_id: int
    src: int
    src_interval: int
    dst: int
    dst_interval: int


class ZPathAnalysis:
    """Z-path reachability over one annotated run."""

    def __init__(self, run: AnnotatedRun):
        self.run = run
        #: Per host: checkpoint positions, sorted (they are by construction).
        self._ckpt_positions = [
            [ck.position for ck in cks] for cks in run.checkpoints
        ]
        self._messages = [
            _Msg(
                msg_id=m.msg_id,
                src=m.src,
                src_interval=self.interval_of(m.src, m.src_pos),
                dst=m.dst,
                dst_interval=self.interval_of(m.dst, m.dst_pos),
            )
            for m in run.messages
        ]
        self.graph = self._build_graph()

    # ------------------------------------------------------------------
    def interval_of(self, host: int, position: int) -> int:
        """Checkpoint interval containing an event position.

        Interval ``k`` spans the events between checkpoint ordinal ``k``
        and ordinal ``k+1`` of the host (the last interval is open).
        """
        positions = self._ckpt_positions[host]
        return bisect_right(positions, position) - 1

    def _build_graph(self) -> nx.DiGraph:
        """Edge m -> m' iff m' continues a Z-path after m: same host
        relays, and m' departs in the receive interval of m or later
        (the same-interval case is the non-causal Z-step)."""
        g = nx.DiGraph()
        g.add_nodes_from(self._messages)
        by_sender: dict[int, list[_Msg]] = {}
        for m in self._messages:
            by_sender.setdefault(m.src, []).append(m)
        for m in self._messages:
            for m2 in by_sender.get(m.dst, ()):
                if m2.src_interval >= m.dst_interval:
                    g.add_edge(m, m2)
        return g

    # ------------------------------------------------------------------
    def has_z_path(self, a: LocalCheckpoint, b: LocalCheckpoint) -> bool:
        """Is there a Z-path from checkpoint *a* to checkpoint *b*?"""
        starts = [
            m
            for m in self._messages
            if m.src == a.host and m.src_interval >= a.ordinal
        ]
        targets = {
            m
            for m in self._messages
            if m.dst == b.host and m.dst_interval < b.ordinal
        }
        if not starts or not targets:
            return False
        seen: set[_Msg] = set()
        stack = list(starts)
        while stack:
            m = stack.pop()
            if m in seen:
                continue
            seen.add(m)
            if m in targets:
                return True
            stack.extend(self.graph.successors(m))
        return False

    def on_z_cycle(self, ck: LocalCheckpoint) -> bool:
        """A checkpoint on a Z-cycle is useless (Netzer-Xu)."""
        return self.has_z_path(ck, ck)

    def useless_checkpoints(self) -> list[LocalCheckpoint]:
        """All checkpoints lying on a Z-cycle."""
        return [
            ck
            for host_cks in self.run.checkpoints
            for ck in host_cks
            if self.on_z_cycle(ck)
        ]

    # ------------------------------------------------------------------
    def interval_graph(self) -> nx.DiGraph:
        """The rollback-dependency graph over (host, interval) nodes:
        program-order edges plus one edge per message (send interval ->
        receive interval).  Useful for visualisation and for computing
        rollback closures."""
        g = nx.DiGraph()
        for host, cks in enumerate(self.run.checkpoints):
            for k in range(len(cks)):
                g.add_node((host, k))
                if k:
                    g.add_edge((host, k - 1), (host, k))
        for m in self._messages:
            g.add_edge((m.src, m.src_interval), (m.dst, m.dst_interval))
        return g
