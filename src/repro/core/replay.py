"""Trace-driven protocol evaluation.

Replays a :class:`~repro.core.trace.Trace` through a protocol instance:
every SEND event asks the protocol for the piggyback it would attach;
every RECEIVE event hands the *stored* piggyback of that message to the
receiver.  Because checkpoint insertion is instantaneous in the paper's
model, this reproduces exactly what the protocol would have done inside
the simulation -- while letting every protocol see the *identical*
schedule (the paper's common-random-numbers comparison) and running
several times faster than the full event simulation.

Two engines share the contract:

* :func:`replay` -- the reference implementation: one protocol, one
  pass over the raw :class:`~repro.core.trace.TraceEvent` list.
* :func:`replay_fused` -- the production engine: N fresh protocol
  instances driven over one *compiled* trace
  (:mod:`repro.core.compiled`) in a single pass, with a flat
  slot-indexed piggyback store per protocol instead of a hash table.
  The equivalence suite asserts both produce bit-identical checkpoint
  sequences for every registered protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core import compiled as _compiled
from repro.core.metrics import CheckpointStats, ProtocolRunMetrics
from repro.core.trace import EventType, Trace
from repro.protocols.base import CheckpointingProtocol


@dataclass(slots=True)
class ReplayResult:
    """Outcome of one (trace, protocol) replay."""

    protocol: CheckpointingProtocol
    metrics: ProtocolRunMetrics

    @property
    def n_total(self) -> int:
        """The run's N_tot (basic + forced checkpoints)."""
        return self.metrics.n_total


def _check_replayable(trace: Trace, protocol: CheckpointingProtocol) -> None:
    """Shared entry validation of both engines."""
    if not protocol.replayable:
        raise ValueError(
            f"protocol {protocol.name} is not replayable; use repro.core.online"
        )
    if protocol.n_hosts != trace.n_hosts:
        raise ValueError(
            f"protocol sized for {protocol.n_hosts} hosts, trace has {trace.n_hosts}"
        )


def _run_metrics(
    trace: Trace,
    protocol: CheckpointingProtocol,
    n_sends: int,
    n_receives: int,
    seed: Optional[int],
) -> ProtocolRunMetrics:
    """Assemble the metrics record both engines return."""
    return ProtocolRunMetrics(
        protocol=protocol.name,
        stats=CheckpointStats.from_protocol(protocol),
        n_sends=n_sends,
        n_receives=n_receives,
        piggyback_ints_total=n_sends * protocol.piggyback_ints,
        sim_time=trace.sim_time,
        seed=seed if seed is not None else trace.meta.get("seed"),
    )


def _audit_instance(protocol: CheckpointingProtocol, seed) -> None:
    """Raise the first post-run invariant breach of *protocol*."""
    # Imported lazily: repro.obs.audit imports this module.
    from repro.obs.audit import check_protocol_invariants

    violations = check_protocol_invariants(protocol, seed=seed)
    if violations:
        raise violations[0]


def replay(
    trace: Trace,
    protocol: CheckpointingProtocol,
    seed: Optional[int] = None,
    audit: bool = False,
) -> ReplayResult:
    """Run *protocol* over *trace*; returns protocol + metrics.

    The protocol instance is mutated (it accumulates its checkpoint log)
    and must be fresh.  Raises if the protocol is not replayable (the
    coordinated baselines inject control messages and need
    :mod:`repro.core.online`).

    With ``audit=True`` the run's structural invariants (counter/log
    consistency, per-host index monotonicity -- see
    :mod:`repro.obs.audit`) are checked afterwards and the first breach
    is raised as a structured
    :class:`~repro.obs.audit.AuditViolation`.
    """
    _check_replayable(trace, protocol)
    # msg_id -> (piggyback, src); entries are dropped once consumed.
    in_flight: dict[int, tuple[object, int]] = {}
    n_sends = 0
    n_receives = 0
    # Local bindings for the hot loop.
    on_send = protocol.on_send
    on_receive = protocol.on_receive
    on_cell_switch = protocol.on_cell_switch
    on_disconnect = protocol.on_disconnect
    on_reconnect = protocol.on_reconnect
    SEND, RECEIVE = EventType.SEND, EventType.RECEIVE
    CELL_SWITCH, DISCONNECT = EventType.CELL_SWITCH, EventType.DISCONNECT
    RECONNECT = EventType.RECONNECT

    for ev in trace.events:
        et = ev.etype
        if et is SEND:
            piggyback = on_send(ev.host, ev.peer, ev.time)
            in_flight[ev.msg_id] = (piggyback, ev.host)
            n_sends += 1
        elif et is RECEIVE:
            try:
                piggyback, src = in_flight.pop(ev.msg_id)
            except KeyError:
                raise ValueError(
                    f"trace receives msg {ev.msg_id} that was never sent "
                    "(validate() the trace first)"
                ) from None
            on_receive(ev.host, piggyback, src, ev.time)
            n_receives += 1
        elif et is CELL_SWITCH:
            on_cell_switch(ev.host, ev.time, ev.cell)
        elif et is DISCONNECT:
            on_disconnect(ev.host, ev.time)
        elif et is RECONNECT:
            on_reconnect(ev.host, ev.time, ev.cell)
        # INTERNAL events carry no protocol action.

    if audit:
        _audit_instance(protocol, seed)
    metrics = _run_metrics(trace, protocol, n_sends, n_receives, seed)
    return ReplayResult(protocol=protocol, metrics=metrics)


def replay_fused(
    trace: Trace,
    protocols: Sequence[CheckpointingProtocol],
    seed: Optional[int] = None,
    audit: bool = False,
) -> list[ReplayResult]:
    """Drive several fresh protocol instances over *trace* in one pass.

    Equivalent to ``[replay(trace, p, seed) for p in protocols]`` (the
    instances share no state, so interleaving cannot change any
    outcome) but decodes every event exactly once: the trace is lowered
    to its compiled structure-of-arrays form
    (:meth:`~repro.core.trace.Trace.compiled`, cached on the trace) and
    each protocol keeps a flat piggyback store indexed by the
    precomputed send slot -- no per-message hashing, no dataclass
    attribute loads, no enum comparisons in the hot loop.

    With ``audit=True`` every instance is deep-copied *before* the run,
    the copies are replayed through the reference engine afterwards,
    and any counter divergence (or per-instance invariant breach) is
    raised as an :class:`~repro.obs.audit.AuditViolation` -- the
    fused-vs-reference tripwire, paid only when asked for.
    """
    for protocol in protocols:
        _check_replayable(trace, protocol)
    references: list[CheckpointingProtocol] = []
    if audit:
        import copy

        # Pristine pre-run clones preserve constructor parameters the
        # registry cannot reproduce (periods, initial cells, ...).
        references = [copy.deepcopy(p) for p in protocols]
    ct = trace.compiled()
    # One piggyback store per protocol: the "in-flight table", laid out
    # as a list indexed by the send's compile-time slot.
    stores: list[list[object]] = [[None] * ct.n_sends for _ in protocols]
    send_pairs = [(p.on_send, store) for p, store in zip(protocols, stores)]
    recv_pairs = [(p.on_receive, store) for p, store in zip(protocols, stores)]
    switch_hooks = [p.on_cell_switch for p in protocols]
    disconnect_hooks = [p.on_disconnect for p in protocols]
    reconnect_hooks = [p.on_reconnect for p in protocols]
    SEND, RECEIVE = _compiled.SEND, _compiled.RECEIVE
    CELL_SWITCH, DISCONNECT = _compiled.CELL_SWITCH, _compiled.DISCONNECT
    RECONNECT = _compiled.RECONNECT

    for et, slot, args in zip(ct.etype, ct.slot, ct.argv):
        if et == SEND:
            # args = (host, dst, now), exactly the on_send signature.
            for on_send, store in send_pairs:
                store[slot] = on_send(*args)
        elif et == RECEIVE:
            # args = (host, src, now); src is the original sender by
            # trace invariant.  Nulling the slot after consumption
            # releases the piggyback right away (like the reference
            # engine's dict pop), which keeps the allocator hot for
            # piggyback-heavy protocols like TP.
            h, src, t = args
            for on_receive, store in recv_pairs:
                on_receive(h, store[slot], src, t)
                store[slot] = None
        elif et == CELL_SWITCH:
            for hook in switch_hooks:
                hook(*args)
        elif et == DISCONNECT:
            for hook in disconnect_hooks:
                hook(*args)
        elif et == RECONNECT:
            for hook in reconnect_hooks:
                hook(*args)
        # INTERNAL events carry no protocol action.

    if audit:
        from repro.obs.audit import FUSED_DIVERGENCE, AuditViolation

        for p, ref in zip(protocols, references):
            _audit_instance(p, seed)
            replay(trace, ref, seed=seed)
            p_sig, ref_sig = p.counter_signature(), ref.counter_signature()
            if p_sig != ref_sig:
                diff = {
                    key: (ref_sig[key], p_sig[key])
                    for key in ref_sig
                    if ref_sig[key] != p_sig[key]
                }
                raise AuditViolation(
                    FUSED_DIVERGENCE,
                    p.name,
                    f"fused vs reference counters differ: {diff}",
                    seed=seed,
                )

    return [
        ReplayResult(
            protocol=p,
            metrics=_run_metrics(trace, p, ct.n_sends, ct.n_receives, seed),
        )
        for p in protocols
    ]


def replay_vectorized(
    trace: Trace,
    protocols: Sequence[CheckpointingProtocol],
    seed: Optional[int] = None,
    audit: bool = False,
) -> list[ReplayResult]:
    """Drive several fresh protocol instances over *trace* as batch
    kernels -- the fused contract with no per-event dispatch at all.

    Every protocol must declare ``vectorizable`` and ship a
    ``vectorized_replay`` kernel (see :mod:`repro.core.vectorized`);
    results are bit-identical to :func:`replay` / :func:`replay_fused`
    -- counters, live state and (in logging mode) the checkpoint log --
    which the equivalence suite asserts per protocol.

    With ``audit=True`` every instance is deep-copied before the run
    and re-executed on the reference engine afterwards, raising
    :class:`~repro.obs.audit.AuditViolation` on any counter divergence
    (the same tripwire as :func:`replay_fused`).
    """
    from repro.core.vectorized import VectorizationError

    for protocol in protocols:
        _check_replayable(trace, protocol)
        if not (protocol.vectorizable and protocol.fusable):
            raise VectorizationError(
                f"protocol {protocol.name} has no vectorized kernel; "
                "use replay_fused"
            )
    references: list[CheckpointingProtocol] = []
    if audit:
        import copy

        references = [copy.deepcopy(p) for p in protocols]
    from repro.core.vectorized import vectorized_trace

    vt = vectorized_trace(trace)
    for protocol in protocols:
        type(protocol).vectorized_replay(vt, [protocol])

    if audit:
        from repro.obs.audit import FUSED_DIVERGENCE, AuditViolation

        for p, ref in zip(protocols, references):
            _audit_instance(p, seed)
            replay(trace, ref, seed=seed)
            p_sig, ref_sig = p.counter_signature(), ref.counter_signature()
            if p_sig != ref_sig:
                diff = {
                    key: (ref_sig[key], p_sig[key])
                    for key in ref_sig
                    if ref_sig[key] != p_sig[key]
                }
                raise AuditViolation(
                    FUSED_DIVERGENCE,
                    p.name,
                    f"vectorized vs reference counters differ: {diff}",
                    seed=seed,
                )

    vt0 = vt.blocks[0]
    return [
        ReplayResult(
            protocol=p,
            metrics=_run_metrics(trace, p, vt0.n_sends, vt0.n_receives, seed),
        )
        for p in protocols
    ]


def replay_vectorized_batch(
    traces: Sequence[Trace],
    factories: Sequence[Callable[[], CheckpointingProtocol]],
    seed: Optional[int] = None,
) -> list[list[ReplayResult]]:
    """Replay *several traces* through fresh instances of each protocol
    in one row-block batch: all traces become blocks of a single
    :class:`~repro.core.vectorized.VectorizedTrace` and every
    protocol's kernel runs once over the whole grid.

    Returns one result row per trace (each a list parallel to
    *factories*), exactly as ``[replay_vectorized(t, ...) for t in
    traces]`` would -- but with the per-pass numpy overheads amortized
    across the batch.  Per-result seeds come from each trace's
    ``meta["seed"]`` unless *seed* overrides them all.
    """
    from repro.core.vectorized import VectorizationError, VectorizedTrace

    grid = [[factory() for _ in traces] for factory in factories]
    for instances in grid:
        for trace, protocol in zip(traces, instances):
            _check_replayable(trace, protocol)
            if not (protocol.vectorizable and protocol.fusable):
                raise VectorizationError(
                    f"protocol {protocol.name} has no vectorized kernel; "
                    "use replay_fused"
                )
    vt = VectorizedTrace.from_traces(traces)
    for instances in grid:
        type(instances[0]).vectorized_replay(vt, instances)
    results: list[list[ReplayResult]] = []
    for b, trace in enumerate(traces):
        block = vt.blocks[b]
        results.append(
            [
                ReplayResult(
                    protocol=instances[b],
                    metrics=_run_metrics(
                        trace,
                        instances[b],
                        block.n_sends,
                        block.n_receives,
                        seed,
                    ),
                )
                for instances in grid
            ]
        )
    return results


def replay_many(
    trace: Trace,
    factories: Sequence[Callable[[], CheckpointingProtocol]],
    seed: Optional[int] = None,
    audit: bool = False,
) -> list[ReplayResult]:
    """Replay the same trace through several fresh protocol instances --
    the pointwise comparison the paper's figures are built from.

    Runs on the fused single-pass engine; *seed* is threaded into every
    run's metrics (falling back to ``trace.meta["seed"]`` when omitted,
    exactly like :func:`replay`), and ``audit=True`` arms the
    fused-vs-reference tripwire of :func:`replay_fused`.
    """
    return replay_fused(
        trace, [factory() for factory in factories], seed=seed, audit=audit
    )
