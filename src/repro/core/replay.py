"""Trace-driven protocol evaluation.

Replays a :class:`~repro.core.trace.Trace` through a protocol instance:
every SEND event asks the protocol for the piggyback it would attach;
every RECEIVE event hands the *stored* piggyback of that message to the
receiver.  Because checkpoint insertion is instantaneous in the paper's
model, this reproduces exactly what the protocol would have done inside
the simulation -- while letting every protocol see the *identical*
schedule (the paper's common-random-numbers comparison) and running
several times faster than the full event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.metrics import CheckpointStats, ProtocolRunMetrics
from repro.core.trace import EventType, Trace
from repro.protocols.base import CheckpointingProtocol


@dataclass(slots=True)
class ReplayResult:
    """Outcome of one (trace, protocol) replay."""

    protocol: CheckpointingProtocol
    metrics: ProtocolRunMetrics

    @property
    def n_total(self) -> int:
        """The run's N_tot (basic + forced checkpoints)."""
        return self.metrics.n_total


def replay(
    trace: Trace,
    protocol: CheckpointingProtocol,
    seed: Optional[int] = None,
) -> ReplayResult:
    """Run *protocol* over *trace*; returns protocol + metrics.

    The protocol instance is mutated (it accumulates its checkpoint log)
    and must be fresh.  Raises if the protocol is not replayable (the
    coordinated baselines inject control messages and need
    :mod:`repro.core.online`).
    """
    if not protocol.replayable:
        raise ValueError(
            f"protocol {protocol.name} is not replayable; use repro.core.online"
        )
    if protocol.n_hosts != trace.n_hosts:
        raise ValueError(
            f"protocol sized for {protocol.n_hosts} hosts, trace has {trace.n_hosts}"
        )
    # msg_id -> (piggyback, src); entries are dropped once consumed.
    in_flight: dict[int, tuple[object, int]] = {}
    n_sends = 0
    n_receives = 0
    # Local bindings for the hot loop.
    on_send = protocol.on_send
    on_receive = protocol.on_receive
    on_cell_switch = protocol.on_cell_switch
    on_disconnect = protocol.on_disconnect
    on_reconnect = protocol.on_reconnect
    SEND, RECEIVE = EventType.SEND, EventType.RECEIVE
    CELL_SWITCH, DISCONNECT = EventType.CELL_SWITCH, EventType.DISCONNECT
    RECONNECT = EventType.RECONNECT

    for ev in trace.events:
        et = ev.etype
        if et is SEND:
            piggyback = on_send(ev.host, ev.peer, ev.time)
            in_flight[ev.msg_id] = (piggyback, ev.host)
            n_sends += 1
        elif et is RECEIVE:
            try:
                piggyback, src = in_flight.pop(ev.msg_id)
            except KeyError:
                raise ValueError(
                    f"trace receives msg {ev.msg_id} that was never sent "
                    "(validate() the trace first)"
                ) from None
            on_receive(ev.host, piggyback, src, ev.time)
            n_receives += 1
        elif et is CELL_SWITCH:
            on_cell_switch(ev.host, ev.time, ev.cell)
        elif et is DISCONNECT:
            on_disconnect(ev.host, ev.time)
        elif et is RECONNECT:
            on_reconnect(ev.host, ev.time, ev.cell)
        # INTERNAL events carry no protocol action.

    metrics = ProtocolRunMetrics(
        protocol=protocol.name,
        stats=CheckpointStats.from_protocol(protocol),
        n_sends=n_sends,
        n_receives=n_receives,
        piggyback_ints_total=n_sends * protocol.piggyback_ints,
        sim_time=trace.sim_time,
        seed=seed if seed is not None else trace.meta.get("seed"),
    )
    return ReplayResult(protocol=protocol, metrics=metrics)


def replay_many(
    trace: Trace,
    factories: Sequence[Callable[[], CheckpointingProtocol]],
) -> list[ReplayResult]:
    """Replay the same trace through several fresh protocol instances --
    the pointwise comparison the paper's figures are built from."""
    return [replay(trace, factory()) for factory in factories]
