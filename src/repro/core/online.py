"""Online execution, including the coordinated baselines.

The communication-induced protocols run online through
:func:`repro.workload.driver.run_online` (re-exported here).  This
module adds the *coordinated* checkpointing baselines the paper's
Section 2 discusses and dismisses for mobile settings:

* **Chandy-Lamport** [8]: an initiator floods a MARKER control message
  to every connected host; each takes a checkpoint on its first marker
  of the round.  Cost: one located control message per host per round
  -- points (1), (2), (3) of the paper's critique.
* **Koo-Toueg** [11]: blocking two-phase coordination restricted to the
  initiator's *dependents* (hosts from which it received messages since
  its last checkpoint): request / tentative checkpoint / ack / commit,
  3 control messages per participant, and participants must hold their
  sends until commit (reported as blocked time).
* **Prakash-Singhal** [13]: non-blocking coordination over the
  *transitive* dependency set, 2 control messages per participant.
* **Tuli-Kumar**: a min-process scheme for mobile environments from the
  follow-up literature (PAPERS.md): like Koo-Toueg it coordinates only
  the initiator's *direct* dependents, but non-blocking -- tentative
  checkpoints are made permanent lazily, so participants keep sending.
  Cost: request / reply, 2 control messages per participant, no
  blocked time.

These cannot be trace-replayed -- their control messages perturb the
schedule -- so they run embedded in the simulation.  The implementations
are deliberately scoped to what the paper's comparison needs (checkpoint
counts, control-message counts, blocking time); they are baselines, not
full recovery stacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.protocols.base import CheckpointingProtocol
from repro.workload.config import WorkloadConfig
from repro.workload.driver import OnlineResult, _Driver, run_online

__all__ = [
    "CoordinatedResult",
    "CoordinatedScheme",
    "OnlineResult",
    "run_coordinated",
    "run_online",
]


class CoordinatedScheme(enum.Enum):
    """The coordinated baselines: the paper's Section 2 trio plus the
    Tuli-Kumar min-process scheme from the mobile follow-up work."""
    CHANDY_LAMPORT = "chandy-lamport"
    KOO_TOUEG = "koo-toueg"
    PRAKASH_SINGHAL = "prakash-singhal"
    TULI_KUMAR = "tuli-kumar"


class _CoordinatedBookkeeper(CheckpointingProtocol):
    """Counts checkpoints for a coordinated run.

    Mobility-mandated basic checkpoints (cell switch / disconnection)
    are taken exactly like in the CIC protocols; snapshot checkpoints
    are injected by the coordinator.  No piggyback rides on messages.
    """

    name = "COORD"
    replayable = False
    fusable = False

    def __init__(self, n_hosts: int, n_mss: int = 1):
        super().__init__(n_hosts, n_mss)
        self.count = [1] * n_hosts
        for host in range(n_hosts):
            self.take(host, 0, "initial", 0.0)

    def _checkpoint(self, host: int, reason: str, now: float) -> None:
        self.take(host, self.count[host], reason, now)
        self.count[host] += 1

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        self._checkpoint(host, "basic", now)

    def on_disconnect(self, host: int, now: float) -> None:
        self._checkpoint(host, "basic", now)

    def snapshot(self, host: int, now: float) -> None:
        """A coordinator-induced checkpoint (counted as forced)."""
        self._checkpoint(host, "forced", now)


@dataclass(slots=True)
class CoordinatedResult:
    """Outcome of one coordinated run."""

    scheme: CoordinatedScheme
    n_total: int
    n_basic: int
    n_snapshot: int
    rounds: int
    #: Control messages of the coordination itself (markers, requests,
    #: acks) -- NOT counting handoff/disconnect signalling.
    control_messages: int
    #: Located-host lookups performed to deliver coordination messages.
    location_lookups: int
    #: Summed time participants spent blocked (Koo-Toueg only).
    blocked_time: float
    n_sends: int
    sim_time: float


class _CoordinatedDriver(_Driver):
    """Workload driver + periodic coordinated snapshot rounds."""

    def __init__(
        self,
        config: WorkloadConfig,
        scheme: CoordinatedScheme,
        snapshot_interval: float,
        initiator: int = 0,
    ):
        if snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        bookkeeper = _CoordinatedBookkeeper(config.n_hosts, config.n_mss)
        super().__init__(config, protocol=bookkeeper)
        self.scheme = scheme
        self.snapshot_interval = snapshot_interval
        self.initiator = initiator
        self.bookkeeper = bookkeeper
        self.rounds = 0
        self.coordination_messages = 0
        self.location_lookups = 0
        self.blocked_time = 0.0
        #: received_from[i][j]: i consumed a message from j since i's
        #: last checkpoint (the dependency sets of Koo-Toueg / P-S).
        self._received_from = [
            [False] * config.n_hosts for _ in range(config.n_hosts)
        ]
        #: Round id each host last checkpointed in (marker dedup).
        self._round_done = [-1] * config.n_hosts

    # -- dependency tracking -------------------------------------------------
    def _consume(self, host: int, msg) -> None:
        self._received_from[host][msg.src] = True
        super()._consume(host, msg)

    def _snapshot_checkpoint(self, host: int, round_id: int) -> None:
        if self._round_done[host] >= round_id:
            return
        self._round_done[host] = round_id
        self.bookkeeper.snapshot(host, self.env.now)
        self._received_from[host] = [False] * self.config.n_hosts

    # -- participant selection -------------------------------------------------
    def _participants(self) -> list[int]:
        connected = set(self.system.connected_hosts())
        if self.scheme is CoordinatedScheme.CHANDY_LAMPORT:
            return sorted(connected - {self.initiator})
        direct = {
            j
            for j, flag in enumerate(self._received_from[self.initiator])
            if flag
        }
        if self.scheme in (
            CoordinatedScheme.KOO_TOUEG,
            CoordinatedScheme.TULI_KUMAR,
        ):
            return sorted(direct & connected)
        # Prakash-Singhal: transitive closure of the dependency relation.
        closure = set(direct)
        frontier = list(direct)
        while frontier:
            j = frontier.pop()
            for k, flag in enumerate(self._received_from[j]):
                if flag and k not in closure and k != self.initiator:
                    closure.add(k)
                    frontier.append(k)
        return sorted(closure & connected)

    # -- rounds ------------------------------------------------------------
    def _delivery_delay(self, host: int) -> float:
        """Marker travel time: wired hop (if cross-cell) + wireless leg."""
        self.location_lookups += 1
        lat = self.config.leg_latency
        same_cell = (
            self.system.hosts[host].mss_id
            == self.system.hosts[self.initiator].mss_id
        )
        return lat if same_cell else 2 * lat

    def _snapshot_round(self) -> None:
        round_id = self.rounds
        self.rounds += 1
        if self.system.hosts[self.initiator].is_connected:
            participants = self._participants()
            self._snapshot_checkpoint(self.initiator, round_id)
            per_participant = {
                CoordinatedScheme.CHANDY_LAMPORT: 1,  # marker
                CoordinatedScheme.KOO_TOUEG: 3,  # request, ack, commit
                CoordinatedScheme.PRAKASH_SINGHAL: 2,  # request, reply
                CoordinatedScheme.TULI_KUMAR: 2,  # request, reply
            }[self.scheme]
            for host in participants:
                delay = self._delivery_delay(host)
                self.coordination_messages += per_participant
                if self.scheme is CoordinatedScheme.KOO_TOUEG:
                    # blocked from tentative checkpoint until commit:
                    # one round trip back to the initiator.
                    self.blocked_time += 2 * delay
                self.env.call_later(
                    delay, lambda h=host, r=round_id: self._snapshot_checkpoint(h, r)
                )
        self.env.call_later(self.snapshot_interval, self._snapshot_round)

    def run_coordinated(self) -> CoordinatedResult:
        """Run the workload with periodic snapshot rounds."""
        self.env.call_later(self.snapshot_interval, self._snapshot_round)
        self.run()
        stats = self.bookkeeper
        return CoordinatedResult(
            scheme=self.scheme,
            n_total=stats.n_total,
            n_basic=stats.n_basic,
            n_snapshot=stats.n_forced,
            rounds=self.rounds,
            control_messages=self.coordination_messages,
            location_lookups=self.location_lookups,
            blocked_time=self.blocked_time,
            n_sends=self.n_sends,
            sim_time=self.config.sim_time,
        )


def run_coordinated(
    config: WorkloadConfig,
    scheme: CoordinatedScheme,
    snapshot_interval: float,
    initiator: int = 0,
) -> CoordinatedResult:
    """Run the workload under a coordinated checkpointing baseline.

    ``snapshot_interval`` sets how often the initiator opens a round.
    Returns checkpoint and control-message counts for the Section 2
    overhead comparison against the CIC protocols.
    """
    driver = _CoordinatedDriver(
        config, scheme, snapshot_interval, initiator=initiator
    )
    return driver.run_coordinated()
