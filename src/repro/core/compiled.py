"""Compiled traces: structure-of-arrays form of a :class:`Trace`.

Replay spends most of its time decoding :class:`TraceEvent` objects --
five attribute loads and an ``IntEnum`` comparison per event, repeated
once per protocol under :func:`repro.core.replay.replay`.  Compiling a
trace lowers the event list into parallel plain-``int``/``float``
columns once, so the fused replay engine
(:func:`repro.core.replay.replay_fused`) streams tuples out of a single
``zip`` instead of touching dataclass instances.

Compilation also resolves message identity ahead of time: every SEND is
assigned a dense *slot* (its ordinal among sends) and every RECEIVE
carries the slot of its matching SEND, so replay needs no per-message
hash table -- the in-flight piggyback store becomes a flat list indexed
by slot.  The matching is validated while building the mapping
(unmatched or double-consumed receives raise :class:`TraceError`).

A compiled trace is a pure read-only view: it never mutates the source
trace, and :meth:`Trace.compiled` caches it per trace instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.trace import EventType, Trace, TraceError

#: Event-type codes as plain ints (hot loops compare against these
#: instead of the IntEnum members).
SEND = int(EventType.SEND)
RECEIVE = int(EventType.RECEIVE)
CELL_SWITCH = int(EventType.CELL_SWITCH)
DISCONNECT = int(EventType.DISCONNECT)
RECONNECT = int(EventType.RECONNECT)
INTERNAL = int(EventType.INTERNAL)


@dataclass(slots=True, frozen=True)
class CompiledTrace:
    """Column-oriented view of one trace.

    All columns have ``n_events`` entries and hold plain ints/floats
    (no enums, no dataclasses).  ``slot`` is the dense send ordinal for
    SEND events, the matching send's ordinal for RECEIVE events and -1
    otherwise; ``peer`` already names the original *sender* for RECEIVE
    events (the trace invariant), so replay needs no in-flight lookup
    at all.

    ``argv`` packs each event's hook arguments into one ready-made
    tuple, so the fused engine dispatches with ``hook(*args)`` instead
    of assembling arguments per protocol per event:

    * SEND / RECEIVE: ``(host, peer, time)`` -- the send hook takes it
      verbatim; the receive hook splices the piggyback in between.
    * CELL_SWITCH / RECONNECT: ``(host, time, cell)``.
    * DISCONNECT: ``(host, time)``.
    * INTERNAL: ``()`` (no protocol action).
    """

    n_hosts: int
    n_mss: int
    sim_time: float
    n_events: int
    n_sends: int
    n_receives: int
    etype: list[int]
    time: list[float]
    host: list[int]
    msg_id: list[int]
    peer: list[int]
    cell: list[int]
    slot: list[int]
    argv: list[tuple]

    def __len__(self) -> int:
        return self.n_events


#: The one integer / one float dtype every numpy column uses.  Pinned
#: explicitly (never numpy's platform default int, which is 32-bit on
#: Windows) so vectorized kernel results and on-disk compiled columns
#: are bit-identical across platforms.
INT_DTYPE = "int64"
FLOAT_DTYPE = "float64"


@dataclass(slots=True, frozen=True)
class ArrayColumns:
    """Numpy view of the compiled columns, dtype-pinned.

    The lowering the vectorized engine (:mod:`repro.core.vectorized`)
    consumes: the :class:`CompiledTrace` event columns as ``int64`` /
    ``float64`` numpy arrays (``argv`` has no array form -- batch
    kernels never dispatch per event).  Built once per trace via
    :func:`array_columns` and cached, or attached directly by the trace
    loader when a stored trace already carries native array columns.
    """

    n_hosts: int
    n_mss: int
    sim_time: float
    n_events: int
    n_sends: int
    n_receives: int
    etype: "np.ndarray"  # noqa: F821 - numpy imported lazily
    time: "np.ndarray"  # noqa: F821
    host: "np.ndarray"  # noqa: F821
    msg_id: "np.ndarray"  # noqa: F821
    peer: "np.ndarray"  # noqa: F821
    cell: "np.ndarray"  # noqa: F821
    slot: "np.ndarray"  # noqa: F821

    def __len__(self) -> int:
        return self.n_events

    @classmethod
    def from_compiled(cls, ct: CompiledTrace) -> "ArrayColumns":
        """Lower *ct*'s list columns into pinned-dtype numpy arrays."""
        import numpy as np

        return cls(
            n_hosts=ct.n_hosts,
            n_mss=ct.n_mss,
            sim_time=ct.sim_time,
            n_events=ct.n_events,
            n_sends=ct.n_sends,
            n_receives=ct.n_receives,
            etype=np.asarray(ct.etype, dtype=INT_DTYPE),
            time=np.asarray(ct.time, dtype=FLOAT_DTYPE),
            host=np.asarray(ct.host, dtype=INT_DTYPE),
            msg_id=np.asarray(ct.msg_id, dtype=INT_DTYPE),
            peer=np.asarray(ct.peer, dtype=INT_DTYPE),
            cell=np.asarray(ct.cell, dtype=INT_DTYPE),
            slot=np.asarray(ct.slot, dtype=INT_DTYPE),
        )


def array_columns(trace: Trace) -> ArrayColumns:
    """The pinned-dtype numpy columns of *trace*, cached per instance.

    Served from ``trace._array_columns_cache`` when present -- either a
    previous call here, or the v2 trace loader
    (:mod:`repro.core.trace_io`), which stores the columns natively as
    arrays so a disk cache hit feeds the vectorized engine without a
    list round-trip.  Invalidation mirrors :meth:`Trace.compiled`:
    keyed on the event count.
    """
    cached: Optional[tuple[int, ArrayColumns]] = getattr(
        trace, "_array_columns_cache", None
    )
    if cached is not None and cached[0] == len(trace.events):
        return cached[1]
    arrays = ArrayColumns.from_compiled(trace.compiled())
    trace._array_columns_cache = (len(trace.events), arrays)
    return arrays


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower *trace* into :class:`CompiledTrace` columns.

    Raises
    ------
    TraceError
        On a receive whose send is missing or already consumed -- the
        same conditions :meth:`Trace.validate` rejects, caught here so
        an uncompilable trace never reaches the hot loop.
    """
    n = len(trace.events)
    etype: list[int] = [0] * n
    time: list[float] = [0.0] * n
    host: list[int] = [0] * n
    msg_id: list[int] = [0] * n
    peer: list[int] = [0] * n
    cell: list[int] = [0] * n
    slot: list[int] = [-1] * n
    argv: list[tuple] = [()] * n
    open_sends: dict[int, int] = {}
    n_sends = 0
    n_receives = 0
    for i, ev in enumerate(trace.events):
        et = int(ev.etype)
        etype[i] = et
        time[i] = ev.time
        host[i] = ev.host
        msg_id[i] = ev.msg_id
        peer[i] = ev.peer
        cell[i] = ev.cell
        if et == SEND:
            if ev.msg_id in open_sends:
                raise TraceError(f"duplicate send of msg {ev.msg_id}")
            open_sends[ev.msg_id] = n_sends
            slot[i] = n_sends
            n_sends += 1
            argv[i] = (ev.host, ev.peer, ev.time)
        elif et == RECEIVE:
            try:
                slot[i] = open_sends.pop(ev.msg_id)
            except KeyError:
                raise TraceError(
                    f"receive of msg {ev.msg_id} that was never sent or "
                    "was already consumed (validate() the trace first)"
                ) from None
            n_receives += 1
            argv[i] = (ev.host, ev.peer, ev.time)
        elif et == DISCONNECT:
            argv[i] = (ev.host, ev.time)
        elif et != INTERNAL:  # CELL_SWITCH / RECONNECT
            argv[i] = (ev.host, ev.time, ev.cell)
    return CompiledTrace(
        n_hosts=trace.n_hosts,
        n_mss=trace.n_mss,
        sim_time=trace.sim_time,
        n_events=n,
        n_sends=n_sends,
        n_receives=n_receives,
        etype=etype,
        time=time,
        host=host,
        msg_id=msg_id,
        peer=peer,
        cell=cell,
        slot=slot,
        argv=argv,
    )
