"""Core analysis machinery: the paper's contribution.

* :mod:`repro.core.trace` -- protocol-independent event traces of a
  mobile computation (sends/receives/cell switches/disconnections).
* :mod:`repro.core.replay` -- deterministic trace-driven evaluation of a
  checkpointing protocol; the paper's common-random-numbers comparison.
* :mod:`repro.core.compiled` -- structure-of-arrays trace lowering that
  feeds the fused multi-protocol replay engine.
* :mod:`repro.core.online` -- in-simulation protocol execution, needed
  for non-negligible checkpoint latency and coordinated baselines.
* :mod:`repro.core.consistency` -- happens-before, orphan detection and
  recovery-line construction/verification.
* :mod:`repro.core.recovery` -- failure injection, rollback and the
  undone-computation metric (the paper's stated future work).
* :mod:`repro.core.dependency` -- checkpoint dependency graphs and
  Z-path/Z-cycle analysis (networkx).
* :mod:`repro.core.metrics` -- N_tot and friends.
* :mod:`repro.core.recovery_online` -- recovery *execution* planning
  (control messages, fetches, latency on the mobile architecture).
* :mod:`repro.core.failures` -- Poisson crash injection with live
  protocol rollback inside a running simulation.
* :mod:`repro.core.trace_io` -- compact trace serialization (npz).
"""

from repro.core.consistency import (
    CausalOrder,
    build_recovery_line,
    find_orphans,
    is_consistent,
    max_consistent_index,
)
from repro.core.metrics import CheckpointStats, ProtocolRunMetrics
from repro.core.failures import FailureRunResult, run_with_failures
from repro.core.recovery import (
    RecoveryOutcome,
    minimal_rollback,
    protocol_line_rollback,
)
from repro.core.compiled import CompiledTrace, compile_trace
from repro.core.recovery_online import RecoveryPlan, plan_recovery
from repro.core.replay import ReplayResult, replay, replay_fused, replay_many
from repro.core.trace import EventType, Trace, TraceEvent
from repro.core.trace_io import load_trace, save_trace

__all__ = [
    "CausalOrder",
    "CheckpointStats",
    "CompiledTrace",
    "EventType",
    "ProtocolRunMetrics",
    "ReplayResult",
    "Trace",
    "TraceEvent",
    "FailureRunResult",
    "RecoveryOutcome",
    "RecoveryPlan",
    "build_recovery_line",
    "compile_trace",
    "find_orphans",
    "is_consistent",
    "load_trace",
    "max_consistent_index",
    "minimal_rollback",
    "plan_recovery",
    "protocol_line_rollback",
    "replay",
    "replay_fused",
    "replay_many",
    "run_with_failures",
    "save_trace",
]
