"""Protocol-independent execution traces.

The paper evaluates all protocols under instantaneous checkpoint
insertion, which makes the application/mobility schedule independent of
the protocol under study.  A :class:`Trace` captures that schedule once
-- as a time-ordered sequence of :class:`TraceEvent` records -- and
every protocol is then replayed over the *same* trace
(:mod:`repro.core.replay`), giving pointwise-comparable checkpoint
counts exactly like the paper's common-random-numbers simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


class EventType(enum.IntEnum):
    """Kinds of trace events a protocol can react to."""

    #: Application send operation (protocol attaches piggyback).
    SEND = 0
    #: Application receive operation consuming one message.
    RECEIVE = 1
    #: Cell switch (basic-checkpoint trigger).
    CELL_SWITCH = 2
    #: Voluntary disconnection (basic-checkpoint trigger).
    DISCONNECT = 3
    #: Reconnection (no checkpoint; ends the unreachable period).
    RECONNECT = 4
    #: Internal event (recorded only when explicitly requested).
    INTERNAL = 5


@dataclass(slots=True, frozen=True)
class TraceEvent:
    """One event of one host.

    Fields are interpreted per :class:`EventType`:

    * SEND: ``msg_id`` is the message identity, ``peer`` the destination.
    * RECEIVE: ``msg_id`` identifies the consumed message, ``peer`` the
      original sender.
    * CELL_SWITCH: ``cell`` is the new MSS id (``peer`` the old one).
    * DISCONNECT / RECONNECT / INTERNAL: only ``host`` matters
      (RECONNECT also carries the cell reconnected into).
    """

    time: float
    etype: EventType
    host: int
    msg_id: int = -1
    peer: int = -1
    cell: int = -1


class TraceError(ValueError):
    """A structurally invalid trace (unmatched receive, bad ordering...)."""


@dataclass
class Trace:
    """A validated, time-ordered event schedule.

    Parameters
    ----------
    n_hosts, n_mss:
        System dimensions the trace was generated under.
    events:
        Events sorted by time (ties keep generation order).
    sim_time:
        Horizon the generating simulation ran until.
    meta:
        Arbitrary generation parameters (seed, workload config, ...).
    """

    n_hosts: int
    n_mss: int
    events: list[TraceEvent] = field(default_factory=list)
    sim_time: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def compiled(self):
        """Structure-of-arrays view of this trace, compiled lazily and
        cached on the instance (see :mod:`repro.core.compiled`).

        The cache is keyed on ``len(self.events)``: appending events
        triggers a recompile, but in-place event *replacement* (which
        nothing in the codebase does -- traces are effectively frozen
        once generated) would go unnoticed.
        """
        from repro.core.compiled import CompiledTrace, compile_trace

        cached: Optional[tuple[int, CompiledTrace]] = getattr(
            self, "_compiled_cache", None
        )
        if cached is not None and cached[0] == len(self.events):
            return cached[1]
        compiled = compile_trace(self)
        self._compiled_cache = (len(self.events), compiled)
        return compiled

    # ------------------------------------------------------------------
    def validate(self) -> "Trace":
        """Check structural invariants; return self (chainable).

        Raises
        ------
        TraceError
            On non-monotone timestamps, receives without a matching
            earlier send, double-consumed messages, host ids out of
            range, or mobility state violations (e.g. a disconnected
            host sending).
        """
        last_time = float("-inf")
        sent: dict[int, TraceEvent] = {}
        consumed: set[int] = set()
        connected = [True] * self.n_hosts
        for ev in self.events:
            if ev.time < last_time:
                raise TraceError(
                    f"events out of order: {ev} after t={last_time}"
                )
            last_time = ev.time
            if not 0 <= ev.host < self.n_hosts:
                raise TraceError(f"unknown host in {ev}")
            if ev.etype is EventType.SEND:
                if not connected[ev.host]:
                    raise TraceError(f"disconnected host sends: {ev}")
                if ev.msg_id in sent:
                    raise TraceError(f"duplicate send of msg {ev.msg_id}")
                sent[ev.msg_id] = ev
            elif ev.etype is EventType.RECEIVE:
                if not connected[ev.host]:
                    raise TraceError(f"disconnected host receives: {ev}")
                origin = sent.get(ev.msg_id)
                if origin is None:
                    raise TraceError(
                        f"receive of never-sent msg {ev.msg_id}: {ev}"
                    )
                if ev.msg_id in consumed:
                    raise TraceError(f"msg {ev.msg_id} consumed twice")
                if origin.peer != ev.host:
                    raise TraceError(
                        f"msg {ev.msg_id} sent to {origin.peer} but "
                        f"received by {ev.host}"
                    )
                consumed.add(ev.msg_id)
            elif ev.etype is EventType.CELL_SWITCH:
                if not connected[ev.host]:
                    raise TraceError(f"disconnected host switches cell: {ev}")
                if not 0 <= ev.cell < self.n_mss:
                    raise TraceError(f"switch to unknown cell: {ev}")
            elif ev.etype is EventType.DISCONNECT:
                if not connected[ev.host]:
                    raise TraceError(f"double disconnect: {ev}")
                connected[ev.host] = False
            elif ev.etype is EventType.RECONNECT:
                if connected[ev.host]:
                    raise TraceError(f"reconnect while connected: {ev}")
                connected[ev.host] = True
        return self

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    def count(self, etype: EventType) -> int:
        """Number of events of the given type."""
        return sum(1 for ev in self.events if ev.etype is etype)

    @property
    def n_sends(self) -> int:
        """Number of SEND events."""
        return self.count(EventType.SEND)

    @property
    def n_receives(self) -> int:
        """Number of RECEIVE events."""
        return self.count(EventType.RECEIVE)

    @property
    def n_basic_triggers(self) -> int:
        """Cell switches + disconnects = basic checkpoints any protocol
        in the paper will take."""
        return self.count(EventType.CELL_SWITCH) + self.count(EventType.DISCONNECT)

    def events_for(self, host: int) -> list[TraceEvent]:
        """This host's events in time order."""
        return [ev for ev in self.events if ev.host == host]

    def undelivered_messages(self) -> int:
        """Sends whose receive never happened within the horizon."""
        sent = {ev.msg_id for ev in self.events if ev.etype is EventType.SEND}
        recv = {ev.msg_id for ev in self.events if ev.etype is EventType.RECEIVE}
        return len(sent - recv)

    # ------------------------------------------------------------------
    def merged_with(self, other: "Trace") -> "Trace":
        """Concatenate two traces of the same system (``other`` shifted
        after this trace's horizon).  Useful for long-run splicing."""
        if (self.n_hosts, self.n_mss) != (other.n_hosts, other.n_mss):
            raise TraceError("cannot merge traces of different systems")
        shift = self.sim_time
        shifted = [
            TraceEvent(
                time=ev.time + shift,
                etype=ev.etype,
                host=ev.host,
                msg_id=ev.msg_id,
                peer=ev.peer,
                cell=ev.cell,
            )
            for ev in other.events
        ]
        return Trace(
            n_hosts=self.n_hosts,
            n_mss=self.n_mss,
            events=self.events + shifted,
            sim_time=self.sim_time + other.sim_time,
            meta={**other.meta, **self.meta, "merged": True},
        )


def build_trace(
    n_hosts: int,
    n_mss: int,
    events: Iterable[tuple],
    sim_time: Optional[float] = None,
    meta: Optional[dict[str, Any]] = None,
) -> Trace:
    """Construct a validated trace from plain tuples.

    Each tuple is ``(time, etype, host[, msg_id, peer, cell])`` --
    a compact format used heavily by tests and by hypothesis strategies.
    """
    evs = []
    for item in events:
        time, etype, host, *rest = item
        msg_id = rest[0] if len(rest) > 0 else -1
        peer = rest[1] if len(rest) > 1 else -1
        cell = rest[2] if len(rest) > 2 else -1
        evs.append(
            TraceEvent(
                time=float(time),
                etype=EventType(etype),
                host=host,
                msg_id=msg_id,
                peer=peer,
                cell=cell,
            )
        )
    evs.sort(key=lambda e: e.time)
    horizon = sim_time if sim_time is not None else (evs[-1].time if evs else 0.0)
    return Trace(
        n_hosts=n_hosts,
        n_mss=n_mss,
        events=evs,
        sim_time=horizon,
        meta=dict(meta or {}),
    ).validate()
