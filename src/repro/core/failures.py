"""Failure injection: crash-and-recover inside a running simulation.

Extends the online driver with a Poisson failure process: a crash
destroys a random connected host's volatile state, the system executes
the protocol's rollback -- computed and costed by
:mod:`repro.core.recovery_online` -- and the computation resumes from
the recovery line:

* the protocol's live per-host state is restored with
  ``rollback_to`` (sequence numbers, receive numbers, TP's phase and
  dependency vectors, from the metadata recorded with the line
  checkpoints);
* all pre-failure application messages become stale -- in-flight ones
  and queued inbox ones are discarded at the transport (epoch tags),
  exactly as a rolled-back computation would refuse messages from an
  undone past;
* every host pauses its application loop for the plan's recovery time
  (mobility continues -- hosts keep moving while software recovers);
* lost work is accounted as the wall-clock each host is rolled back
  plus the recovery downtime.

This closes the paper's future-work loop: failure-free overhead
(N_tot) and failure cost (lost work + recovery time) can now be traded
off in one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.recovery_online import RecoveryPlan, plan_recovery
from repro.core.trace import EventType, TraceEvent
from repro.protocols.base import CheckpointingProtocol
from repro.workload.config import WorkloadConfig
from repro.workload.driver import _Driver


@dataclass(slots=True)
class FailureEvent:
    """One crash and its recovery cost."""

    time: float
    victim: int
    recovery_time: float
    control_messages: int
    checkpoint_fetches: int
    #: Wall-clock of computation undone, summed over hosts.
    lost_work_time: float
    deferred_hosts: int


@dataclass
class FailureRunResult:
    """Outcome of a run with failure injection."""

    protocol: CheckpointingProtocol
    failures: list[FailureEvent] = field(default_factory=list)
    stale_messages_dropped: int = 0
    n_sends: int = 0
    n_receives: int = 0
    sim_time: float = 0.0

    @property
    def n_failures(self) -> int:
        """Number of crashes injected."""
        return len(self.failures)

    @property
    def total_lost_work(self) -> float:
        """Wall-clock of undone computation, summed over failures."""
        return sum(f.lost_work_time for f in self.failures)

    @property
    def total_recovery_downtime(self) -> float:
        """Summed recovery pauses across failures."""
        return sum(f.recovery_time for f in self.failures)

    @property
    def availability(self) -> float:
        """Fraction of host-time not spent recovering (downtime model:
        every host pauses for each failure's recovery time)."""
        if self.sim_time == 0:
            return 1.0
        return max(0.0, 1.0 - self.total_recovery_downtime / self.sim_time)


class _FailureDriver(_Driver):
    """Online driver + Poisson crash process."""

    def __init__(
        self,
        config: WorkloadConfig,
        protocol: CheckpointingProtocol,
        failure_mean_interval: float,
        ckpt_latency: float = 0.0,
    ):
        if failure_mean_interval <= 0:
            raise ValueError("failure_mean_interval must be positive")
        super().__init__(config, protocol=protocol, ckpt_latency=ckpt_latency)
        self.failure_mean_interval = failure_mean_interval
        self._epoch = 0
        self._epoch_of_msg: dict[int, int] = {}
        self._resume_after = [0.0] * config.n_hosts
        self.result = FailureRunResult(protocol=protocol)

    # -- epoch-tagged application traffic ---------------------------------
    def _do_send(self, host: int) -> None:
        before = len(self.events)
        super()._do_send(host)
        if len(self.events) > before:  # a send actually happened
            # tag the just-sent message with the current epoch
            sent_ev = self.events[-1]
            assert sent_ev.etype is EventType.SEND
            # the Message object is reachable via the piggyback dict the
            # driver attached; stash the epoch alongside it
            self._epoch_of_msg[sent_ev.msg_id] = self._epoch

    def _consume(self, host: int, msg) -> None:
        if self._epoch_of_msg.get(msg.msg_id, 0) != self._epoch:
            # stale message from an undone epoch: the transport drops it
            self.result.stale_messages_dropped += 1
            return
        super()._consume(host, msg)

    # -- application pause during recovery ---------------------------------
    def _app_step(self, host: int) -> None:
        resume = self._resume_after[host]
        if self.env.now < resume:
            self.env.call_later(resume - self.env.now, lambda: self._app_step(host))
            return
        super()._app_step(host)

    # -- the crash process --------------------------------------------------
    def _schedule_failure(self) -> None:
        delay = self.rng.exponential("failures/interval", self.failure_mean_interval)
        self.env.call_later(delay, self._fail)

    def _fail(self) -> None:
        victim = self.rng.choice_index("failures/victim", self.config.n_hosts)
        if not self.system.hosts[victim].is_connected:
            # A disconnected host has no running computation to crash;
            # draw again later.
            self._schedule_failure()
            return
        now = self.env.now
        plan: RecoveryPlan = plan_recovery(self.system, self.protocol, victim)
        indices = {step.host: step.restart_index for step in plan.steps}
        if hasattr(self.protocol, "take_on_demand"):
            # TP: a host whose required checkpoint does not exist yet
            # takes it on demand (no rollback for that host).
            for h, idx in indices.items():
                if idx >= self.protocol.count[h]:
                    indices[h] = self.protocol.take_on_demand(h, now)
        lost = self._lost_work(indices, now)
        self.protocol.rollback_to(indices, now)
        self._epoch += 1
        # queued-but-unconsumed messages are part of the undone past
        for h in self.system.hosts:
            self.result.stale_messages_dropped += len(h.inbox.items)
            h.inbox.items.clear()
        until = now + plan.recovery_time
        for h in range(self.config.n_hosts):
            self._resume_after[h] = max(self._resume_after[h], until)
        self.result.failures.append(
            FailureEvent(
                time=now,
                victim=victim,
                recovery_time=plan.recovery_time,
                control_messages=plan.control_messages
                + plan.line_computation_messages,
                checkpoint_fetches=plan.checkpoint_fetches,
                lost_work_time=lost,
                deferred_hosts=len(plan.deferred_hosts),
            )
        )
        self._schedule_failure()

    def _lost_work(self, indices: dict[int, int], now: float) -> float:
        """Wall-clock rolled back, summed over hosts: now minus the time
        of each host's line checkpoint (latest record at that index)."""
        when: dict[int, float] = {}
        for ck in self.protocol.checkpoints:
            if indices.get(ck.host) == ck.index:
                when[ck.host] = ck.time
        return sum(max(0.0, now - t) for t in when.values())

    # ------------------------------------------------------------------
    def run_with_failures(self) -> FailureRunResult:
        """Run the workload with the crash process armed."""
        self._schedule_failure()
        self.run()
        self.result.n_sends = self.n_sends
        self.result.n_receives = self.n_receives
        self.result.sim_time = self.config.sim_time
        return self.result


def run_with_failures(
    config: WorkloadConfig,
    protocol: CheckpointingProtocol,
    failure_mean_interval: float,
    ckpt_latency: float = 0.0,
) -> FailureRunResult:
    """Run the workload with Poisson failures (mean inter-arrival
    ``failure_mean_interval``) and full rollback execution."""
    driver = _FailureDriver(
        config, protocol, failure_mean_interval, ckpt_latency=ckpt_latency
    )
    return driver.run_with_failures()
