"""Failure injection and rollback: the paper's stated future work.

Section 6: "Future work is focused on the evaluation of the recovery
time and of the amount of undone computation due to a failure."  This
module implements that evaluation:

* :func:`minimal_rollback` -- protocol-independent: anchor the failed
  host at its last checkpoint, leave everyone else at their current
  state, and propagate rollbacks until no orphan remains.  For CIC
  protocols this converges immediately; for uncoordinated checkpointing
  it exhibits the domino effect.
* :func:`protocol_line_rollback` -- roll everyone back to the
  protocol's own on-the-fly recovery line (what a real implementation
  would do without any search).
* :class:`RecoveryOutcome` -- undone computation per host (events and
  time), orphan/in-transit counts, and the propagation iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.consistency import (
    AnnotatedRun,
    GlobalCheckpoint,
    build_recovery_line,
    in_transit_messages,
    maximal_consistent_line,
    tp_anchored_line,
    virtual_now_checkpoint,
)
from repro.protocols.base import CheckpointingProtocol


@dataclass(slots=True)
class RecoveryOutcome:
    """What a rollback to *line* costs."""

    failed_host: int
    line: GlobalCheckpoint
    #: Per host: events undone (positions after the line checkpoint).
    undone_events: dict[int, int] = field(default_factory=dict)
    #: Per host: simulated time rolled back (run end - checkpoint time).
    rollback_time: dict[int, float] = field(default_factory=dict)
    #: Messages in transit across the line (would need replay/logging).
    in_transit: int = 0
    #: Rollback-propagation passes (1 = no cascading).
    iterations: int = 1

    @property
    def total_undone_events(self) -> int:
        """The paper's "amount of undone computation" proxy."""
        return sum(self.undone_events.values())

    @property
    def max_rollback_time(self) -> float:
        """Worst per-host time rolled back (recovery-time proxy)."""
        return max(self.rollback_time.values(), default=0.0)


def _outcome(
    run: AnnotatedRun,
    failed_host: int,
    line: GlobalCheckpoint,
    end_time: float,
    iterations: int,
) -> RecoveryOutcome:
    undone = {}
    rb_time = {}
    for host, ck in line.items():
        undone[host] = max(0, run.sequence_length[host] - ck.position)
        when = ck.record.time
        rb_time[host] = 0.0 if when == float("inf") else max(0.0, end_time - when)
    return RecoveryOutcome(
        failed_host=failed_host,
        line=line,
        undone_events=undone,
        rollback_time=rb_time,
        in_transit=len(in_transit_messages(run, line)),
        iterations=iterations,
    )


def minimal_rollback(
    run: AnnotatedRun, failed_host: int, end_time: float
) -> RecoveryOutcome:
    """Least-rollback recovery from a crash of *failed_host*.

    The failed host restarts from its last checkpoint; every other host
    keeps its current state unless orphans force it back (computed by
    rollback propagation).  The iteration count exposes the domino
    effect of uncoordinated checkpointing.
    """
    start: GlobalCheckpoint = {
        h: (
            run.last_checkpoint(h)
            if h == failed_host
            else virtual_now_checkpoint(run, h)
        )
        for h in range(run.n_hosts)
    }
    line, iterations = maximal_consistent_line(run, start)
    return _outcome(run, failed_host, line, end_time, iterations)


def protocol_line_rollback(
    run: AnnotatedRun,
    protocol: CheckpointingProtocol,
    failed_host: int,
    end_time: float,
) -> RecoveryOutcome:
    """Rollback to the protocol's own on-the-fly recovery line.

    This is what a deployed system does without any graph search: the
    index-based protocols roll every host back to the min-index line;
    TP rolls back to the line anchored at the failed host's latest
    checkpoint.  Raises for protocols without an on-the-fly line
    (uncoordinated ones must use :func:`minimal_rollback`).
    """
    if hasattr(protocol, "required_indices"):  # TP's anchored construction
        line = tp_anchored_line(run, protocol, failed_host)
    else:
        line = build_recovery_line(run, protocol)
    return _outcome(run, failed_host, line, end_time, 1)


def recoverable_in_transit(
    run: AnnotatedRun,
    line: GlobalCheckpoint,
    system,
) -> tuple[int, int]:
    """(replayable, total) in-transit messages across *line*.

    In-transit messages (sent before the line, received after it) are
    lost by a plain rollback; with pessimistic message logging at the
    MSSs (``NetworkParams.log_messages``) they can be replayed from the
    wired side instead.  Returns how many of the line's in-transit
    messages appear in some MSS log.
    """
    logged: set[int] = set()
    for station in system.stations:
        logged |= station.message_log
    in_transit = in_transit_messages(run, line)
    replayable = sum(1 for m in in_transit if m.msg_id in logged)
    return replayable, len(in_transit)
