"""Global checkpoint collection over the wired network.

The paper's Section 2.2 makes "Global Checkpoint Collection Latency" a
first-class concern: assembling a consistent global checkpoint (e.g. to
archive it, garbage-collect behind it, or seed a recovery) should not
require chatting with the mobile hosts, and disconnected hosts must not
stall it -- their disconnect checkpoint "will belong to every global
consistent checkpoint of the application collected during the
disconnection period".

Both protocol families allow a purely wired-side collection, with
different location mechanics -- implemented and costed here:

* **index-based (BCS/QBC)**: the collector knows only the line index
  rule, so it *scans*: one query per MSS (each returns its records for
  the wanted indices), then fetches each component from wherever it
  lives.  Query cost: ``r - 1`` wired round trips (r = #MSSs).
* **TP**: the anchor checkpoint's ``LOC[]`` vector names the MSS of
  every required component directly -- the paper's "efficient retrieval
  of checkpoints over the wired network".  Query cost: zero; the
  collector goes straight to the recorded MSS per component (with a
  scan fallback if the record migrated since).

Collection latency is dominated by the *parallel* fetches: one wired
round trip per component not already local to the collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.system import MobileSystem
from repro.protocols.base import CheckpointingProtocol
from repro.storage.stable import CheckpointRecord


@dataclass(slots=True)
class CollectedComponent:
    """One local checkpoint pulled into the global checkpoint."""

    host: int
    index: int
    found_at_mss: Optional[int]
    #: True when TP's LOC vector pointed at the right MSS directly.
    located_directly: bool
    #: Wired round trips spent finding + fetching this component.
    wired_round_trips: int


@dataclass(slots=True)
class CollectionResult:
    """A collected consistent global checkpoint and its cost."""

    collector_mss: int
    components: list[CollectedComponent] = field(default_factory=list)
    #: Broadcast queries needed before any fetch (index-based scan).
    scan_queries: int = 0
    #: Total wired round trips (queries + fetches).
    total_round_trips: int = 0
    #: Latency until the last component arrived, in wired-leg units
    #: (fetches proceed in parallel; queries must complete first).
    latency_legs: int = 0

    @property
    def complete(self) -> bool:
        """True when every component was found in some MSS storage."""
        return all(c.found_at_mss is not None for c in self.components)


def _find_record(
    system: MobileSystem, host: int, index: int
) -> Optional[CheckpointRecord]:
    for station in system.stations:
        rec = station.storage.get(host, index)
        if rec is not None:
            return rec
    return None


def _find_first_at_least(
    system: MobileSystem, host: int, index: int
) -> Optional[CheckpointRecord]:
    best: Optional[CheckpointRecord] = None
    for station in system.stations:
        for rec in station.storage.records_for(host):
            if rec.index >= index and (best is None or rec.index < best.index):
                best = rec
    return best


def collect_global_checkpoint(
    system: MobileSystem,
    protocol: CheckpointingProtocol,
    collector_mss: int = 0,
    anchor: Optional[int] = None,
) -> CollectionResult:
    """Assemble a consistent global checkpoint on the wired side.

    For index-based protocols the line is ``recovery_line_indices()``;
    for TP pass *anchor* (default: host 0) and the line anchored at its
    latest checkpoint is collected using the stored ``LOC`` vector.
    Requires MSS storage populated by an online run.
    """
    if not 0 <= collector_mss < system.params.n_mss:
        raise ValueError(f"unknown collector MSS {collector_mss}")
    result = CollectionResult(collector_mss=collector_mss)

    is_tp = hasattr(protocol, "required_indices")
    if is_tp:
        anchor = 0 if anchor is None else anchor
        indices = dict(protocol.required_indices(anchor))
        own = [c for c in protocol.checkpoints if c.host == anchor]
        indices[anchor] = own[-1].index
        # the anchor's recorded LOC vector names each component's MSS
        loc_vec = own[-1].metadata["loc_vec"]
    else:
        indices = protocol.recovery_line_indices()
        loc_vec = None
        # scan: ask every other MSS what it holds (one parallel round)
        result.scan_queries = system.params.n_mss - 1
        result.total_round_trips += result.scan_queries

    fetch_legs = 0
    for host, index in sorted(indices.items()):
        trips = 0
        located_directly = False
        if is_tp:
            hinted = loc_vec[host] if loc_vec[host] >= 0 else None
            rec = None
            if hinted is not None:
                rec = system.stations[hinted].storage.get(host, index)
                if rec is None:
                    # index numbering is dense under TP; the hinted MSS
                    # may hold a later record after a migration -- or
                    # nothing, in which case scan.
                    rec_alt = _find_record(system, host, index)
                    rec = rec_alt
                else:
                    located_directly = True
            if rec is None:
                rec = _find_first_at_least(system, host, index)
                trips += system.params.n_mss - 1  # fallback scan
                result.total_round_trips += system.params.n_mss - 1
        else:
            rec = _find_record(system, host, index)
            if rec is None:
                rec = _find_first_at_least(system, host, index)
        found_at = rec.mss_id if rec is not None else None
        if found_at is not None and found_at != collector_mss:
            trips += 1  # the fetch itself
            result.total_round_trips += 1
            fetch_legs = max(fetch_legs, 2)  # round trip, in parallel
        result.components.append(
            CollectedComponent(
                host=host,
                index=rec.index if rec is not None else index,
                found_at_mss=found_at,
                located_directly=located_directly,
                wired_round_trips=trips,
            )
        )
    # queries (if any) complete before fetches start
    result.latency_legs = (2 if result.scan_queries else 0) + fetch_legs
    return result
