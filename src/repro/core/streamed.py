"""Streaming trace compilation: SoA blocks built incrementally.

:func:`~repro.core.compiled.compile_trace` needs the whole event list
in memory first -- a :class:`~repro.core.trace.TraceEvent` dataclass
per event (~300 bytes with object headers) before any column exists.
That caps trace size at RAM, which the scenario registry's large
workloads (millions of hosts, long horizons) blow through.

:class:`StreamingCompiler` accepts events one at a time, stages them in
plain python lists and flushes a :class:`CompiledBlock` of numpy
columns every ``block_events`` events.  Block *storage* uses the
narrowest lossless dtypes (``int8`` event types, ``int32`` host / peer
/ cell / slot ids, ``int64`` message ids, ``float64`` times -- 33
bytes per event); the lowerings (:meth:`StreamedTrace.array_columns`,
:meth:`StreamedTrace.to_compiled`) widen back to the engine's pinned
``int64``/``float64``, which is exact because every stored value is an
integer in range (numpy raises ``OverflowError`` rather than wrap if a
feed ever exceeds a column's range).  Peak *staging* memory is
O(``block_events``) python objects; the total output is the compact
numpy blocks.  Slot assignment and validation are the same as
``compile_trace`` -- the same ``open_sends`` matching, the same
:class:`~repro.core.trace.TraceError` messages -- and
:meth:`StreamedTrace.to_compiled` reconstructs a **bit-identical**
:class:`~repro.core.compiled.CompiledTrace` (``argv`` tuples included),
which CI gates against the materialized path.

The driver side is :func:`repro.workload.driver.generate_streamed`,
which feeds the simulation's events here instead of growing
``Trace.events``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.compiled import (
    DISCONNECT,
    FLOAT_DTYPE,
    INT_DTYPE,
    INTERNAL,
    RECEIVE,
    SEND,
    ArrayColumns,
    CompiledTrace,
)
from repro.core.trace import TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.trace import TraceEvent

#: Default events per flushed block: large enough that numpy conversion
#: amortizes, small enough that staging stays a few MB.
DEFAULT_BLOCK_EVENTS = 65_536

#: Column name -> (storage dtype, lowering dtype) of one block.  The
#: storage side is the narrowest type that holds the column losslessly:
#: event types are tiny enums, host/peer/cell ids are bounded by the
#: system size, and a slot is a send ordinal (an int32 overflows only
#: past 2**31 sends, far beyond what fits in memory at all); message
#: ids stay int64 because callers may feed arbitrary identities.
_COLUMNS = (
    ("etype", "int8", INT_DTYPE),
    ("time", FLOAT_DTYPE, FLOAT_DTYPE),
    ("host", "int32", INT_DTYPE),
    ("msg_id", INT_DTYPE, INT_DTYPE),
    ("peer", "int32", INT_DTYPE),
    ("cell", "int32", INT_DTYPE),
    ("slot", "int32", INT_DTYPE),
)


@dataclass(slots=True, frozen=True)
class CompiledBlock:
    """One flushed slab of compiled columns (storage dtypes; see
    :data:`_COLUMNS` for the widths and the lossless-widening rule)."""

    etype: "np.ndarray"
    time: "np.ndarray"
    host: "np.ndarray"
    msg_id: "np.ndarray"
    peer: "np.ndarray"
    cell: "np.ndarray"
    slot: "np.ndarray"

    def __len__(self) -> int:
        return int(self.etype.shape[0])

    @property
    def nbytes(self) -> int:
        return sum(getattr(self, name).nbytes for name, *_ in _COLUMNS)


@dataclass(slots=True, frozen=True)
class StreamedTrace:
    """A block-compiled trace: the streaming twin of ``CompiledTrace``.

    Holds the flushed :class:`CompiledBlock` slabs plus the totals the
    compiled form carries.  :meth:`to_compiled` rebuilds the exact
    :class:`~repro.core.compiled.CompiledTrace` the materialized
    pipeline produces; :meth:`array_columns` concatenates the blocks
    into the vectorized engine's
    :class:`~repro.core.compiled.ArrayColumns` lowering directly.
    """

    n_hosts: int
    n_mss: int
    sim_time: float
    n_events: int
    n_sends: int
    n_receives: int
    blocks: tuple[CompiledBlock, ...]

    def __len__(self) -> int:
        return self.n_events

    @property
    def nbytes(self) -> int:
        """Total bytes held by the numpy blocks."""
        return sum(block.nbytes for block in self.blocks)

    def _cat(self, name: str, dtype: str) -> "np.ndarray":
        import numpy as np

        if not self.blocks:
            return np.empty(0, dtype=dtype)
        out = np.concatenate([getattr(b, name) for b in self.blocks])
        # Widen the storage dtype back to the engine's pinned lowering
        # dtype (exact: integer values, in range by construction).
        return out.astype(dtype, copy=False)

    def array_columns(self) -> ArrayColumns:
        """The blocks concatenated into one ``ArrayColumns`` view."""
        columns = {
            name: self._cat(name, lowering)
            for name, _storage, lowering in _COLUMNS
        }
        return ArrayColumns(
            n_hosts=self.n_hosts,
            n_mss=self.n_mss,
            sim_time=self.sim_time,
            n_events=self.n_events,
            n_sends=self.n_sends,
            n_receives=self.n_receives,
            **columns,
        )

    def to_compiled(self) -> CompiledTrace:
        """Rebuild the bit-identical ``CompiledTrace`` list form.

        ``tolist()`` converts ``int64``/``float64`` back to the exact
        python ints/floats ``compile_trace`` stored, and the ``argv``
        tuples are reassembled per event type from the columns.
        """
        etype: list[int] = []
        time: list[float] = []
        host: list[int] = []
        msg_id: list[int] = []
        peer: list[int] = []
        cell: list[int] = []
        slot: list[int] = []
        argv: list[tuple] = []
        for block in self.blocks:
            b_etype = block.etype.tolist()
            b_time = block.time.tolist()
            b_host = block.host.tolist()
            b_peer = block.peer.tolist()
            b_cell = block.cell.tolist()
            etype.extend(b_etype)
            time.extend(b_time)
            host.extend(b_host)
            msg_id.extend(block.msg_id.tolist())
            peer.extend(b_peer)
            cell.extend(b_cell)
            slot.extend(block.slot.tolist())
            for i, et in enumerate(b_etype):
                if et == SEND or et == RECEIVE:
                    argv.append((b_host[i], b_peer[i], b_time[i]))
                elif et == DISCONNECT:
                    argv.append((b_host[i], b_time[i]))
                elif et == INTERNAL:
                    argv.append(())
                else:  # CELL_SWITCH / RECONNECT
                    argv.append((b_host[i], b_time[i], b_cell[i]))
        return CompiledTrace(
            n_hosts=self.n_hosts,
            n_mss=self.n_mss,
            sim_time=self.sim_time,
            n_events=self.n_events,
            n_sends=self.n_sends,
            n_receives=self.n_receives,
            etype=etype,
            time=time,
            host=host,
            msg_id=msg_id,
            peer=peer,
            cell=cell,
            slot=slot,
            argv=argv,
        )


class StreamingCompiler:
    """Incremental ``compile_trace``: feed events, flush SoA blocks.

    Same slot assignment and validation as the materialized compiler:
    a duplicate send or an unmatched receive raises
    :class:`~repro.core.trace.TraceError` with the identical message,
    at feed time (so a broken generator fails as early as possible).

    Usage::

        compiler = StreamingCompiler(n_hosts=10, n_mss=5, sim_time=1e5)
        for event in source:
            compiler.feed_event(event)
        streamed = compiler.finish()
    """

    def __init__(
        self,
        n_hosts: int,
        n_mss: int,
        sim_time: float,
        block_events: int = DEFAULT_BLOCK_EVENTS,
    ):
        if block_events < 1:
            raise ValueError("block_events must be >= 1")
        self.n_hosts = n_hosts
        self.n_mss = n_mss
        self.sim_time = sim_time
        self.block_events = block_events
        self.n_events = 0
        self.n_sends = 0
        self.n_receives = 0
        self._etype: list[int] = []
        self._time: list[float] = []
        self._host: list[int] = []
        self._msg_id: list[int] = []
        self._peer: list[int] = []
        self._cell: list[int] = []
        self._slot: list[int] = []
        self._blocks: list[CompiledBlock] = []
        self._open_sends: dict[int, int] = {}
        self._finished = False

    def __len__(self) -> int:
        return self.n_events

    def feed(
        self,
        time: float,
        etype: int,
        host: int,
        msg_id: int = -1,
        peer: int = -1,
        cell: int = -1,
    ) -> None:
        """Compile one event (field order mirrors ``TraceEvent``)."""
        if self._finished:
            raise TraceError("StreamingCompiler already finished")
        et = int(etype)
        slot = -1
        if et == SEND:
            if msg_id in self._open_sends:
                raise TraceError(f"duplicate send of msg {msg_id}")
            slot = self.n_sends
            self._open_sends[msg_id] = slot
            self.n_sends += 1
        elif et == RECEIVE:
            try:
                slot = self._open_sends.pop(msg_id)
            except KeyError:
                raise TraceError(
                    f"receive of msg {msg_id} that was never sent or "
                    "was already consumed (validate() the trace first)"
                ) from None
            self.n_receives += 1
        self._etype.append(et)
        self._time.append(time)
        self._host.append(host)
        self._msg_id.append(msg_id)
        self._peer.append(peer)
        self._cell.append(cell)
        self._slot.append(slot)
        self.n_events += 1
        if len(self._etype) >= self.block_events:
            self._flush()

    def feed_event(self, event: "TraceEvent") -> None:
        """Compile one :class:`~repro.core.trace.TraceEvent`."""
        self.feed(
            event.time,
            event.etype,
            event.host,
            event.msg_id,
            event.peer,
            event.cell,
        )

    def _flush(self) -> None:
        if not self._etype:
            return
        import numpy as np

        self._blocks.append(
            CompiledBlock(
                etype=np.asarray(self._etype, dtype="int8"),
                time=np.asarray(self._time, dtype=FLOAT_DTYPE),
                host=np.asarray(self._host, dtype="int32"),
                msg_id=np.asarray(self._msg_id, dtype=INT_DTYPE),
                peer=np.asarray(self._peer, dtype="int32"),
                cell=np.asarray(self._cell, dtype="int32"),
                slot=np.asarray(self._slot, dtype="int32"),
            )
        )
        self._etype.clear()
        self._time.clear()
        self._host.clear()
        self._msg_id.clear()
        self._peer.clear()
        self._cell.clear()
        self._slot.clear()

    def finish(self) -> StreamedTrace:
        """Flush the tail block and seal the compiler.

        Sends still in flight at the horizon are fine (they are in the
        materialized compile too); further feeds raise ``TraceError``.
        """
        self._flush()
        self._finished = True
        return StreamedTrace(
            n_hosts=self.n_hosts,
            n_mss=self.n_mss,
            sim_time=self.sim_time,
            n_events=self.n_events,
            n_sends=self.n_sends,
            n_receives=self.n_receives,
            blocks=tuple(self._blocks),
        )
