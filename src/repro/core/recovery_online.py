"""Recovery execution planning: what a real rollback costs on the wire.

:mod:`repro.core.recovery` measures *undone computation*;
this module measures the other half of the paper's future work, the
**recovery time**: the control messages, checkpoint fetches and
latencies of actually executing a rollback in the mobile architecture.

The index-based protocols were selected exactly because this phase is
light (paper Section 2.2, "Consistent Checkpoints Built On-The-Fly"):
the recovery line is determined by the checkpoint *indices*, which the
MSSs already hold in stable storage -- so the line is computed entirely
on the wired side, without any wireless round trips.  The per-host work
is then:

1. **notify**: one located control message MSS -> host telling it which
   checkpoint to restart from (wired hop when the initiating MSS is not
   the host's current MSS, then one wireless leg);
2. **reload**: the host's line checkpoint record may live at a *previous*
   MSS (it checkpointed there before a handoff) -- then the current MSS
   first fetches it over the wired network (one round trip), and finally
   ships the state over the wireless link.

Hosts disconnected at failure time cannot be notified; their stored
disconnect checkpoint is part of the line already (paper Section 2.2,
global-checkpoint-collection latency), so recovery *completes* without
them and their notification is deferred to reconnection time.

The plan is computed from a finished online run
(:class:`repro.workload.driver.OnlineResult`): the storage distribution
across MSSs and the hosts' current cells are exactly the state a real
recovery would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.system import MobileSystem
from repro.protocols.base import CheckpointingProtocol


@dataclass(slots=True)
class HostRecoveryStep:
    """Recovery actions for one host."""

    host: int
    #: Checkpoint index the host restarts from.
    restart_index: int
    #: MSS holding the checkpoint record.
    record_mss: Optional[int]
    #: Host's current MSS (None while disconnected).
    current_mss: Optional[int]
    #: Wired fetch needed to move the record to the current MSS.
    needs_fetch: bool
    #: Notification deferred because the host is disconnected.
    deferred: bool
    #: Latency until this host has restarted (inf when deferred).
    latency: float


@dataclass(slots=True)
class RecoveryPlan:
    """Executable rollback plan + its cost."""

    failed_host: int
    initiator_mss: int
    steps: list[HostRecoveryStep] = field(default_factory=list)
    #: Wired-side messages used to compute the line (storage queries).
    line_computation_messages: int = 0
    #: Located control messages to hosts (notifications).
    control_messages: int = 0
    #: Wired checkpoint fetches (records stranded at previous MSSs).
    checkpoint_fetches: int = 0

    @property
    def recovery_time(self) -> float:
        """Time until every *reachable* host restarted."""
        finite = [s.latency for s in self.steps if not s.deferred]
        return max(finite, default=0.0)

    @property
    def deferred_hosts(self) -> list[int]:
        """Hosts whose notification waits for their reconnection."""
        return [s.host for s in self.steps if s.deferred]


def plan_recovery(
    system: MobileSystem,
    protocol: CheckpointingProtocol,
    failed_host: int,
) -> RecoveryPlan:
    """Plan the rollback after a crash of *failed_host*.

    Requires a protocol with an on-the-fly recovery line: index-based
    protocols use ``recovery_line_indices()``; TP uses its anchored
    construction (``required_indices``).  The storage state must have
    been populated by an online run (``run_online`` wires the protocol's
    storage hook automatically).
    """
    host = system.hosts[failed_host]
    # The failed host recovers through the MSS of the cell it was last
    # seen in.
    initiator_mss = (
        host.mss_id
        if host.is_connected
        else system.directory.buffering_mss(failed_host)
    )
    assert initiator_mss is not None
    lat = system.params.leg_latency

    if hasattr(protocol, "required_indices"):
        indices = dict(protocol.required_indices(failed_host))
        # TP anchor restarts from its own latest checkpoint.
        own = [c for c in protocol.checkpoints if c.host == failed_host]
        indices[failed_host] = own[-1].index
    else:
        indices = protocol.recovery_line_indices()

    plan = RecoveryPlan(failed_host=failed_host, initiator_mss=initiator_mss)
    # Wired-side line computation: one storage query per other MSS.
    plan.line_computation_messages = system.params.n_mss - 1
    line_computed_at = 2 * lat  # query + reply over the wired fabric

    for h, index in sorted(indices.items()):
        current = system.directory.locate(h)
        holder = _record_holder(system, h, index)
        deferred = current is None
        needs_fetch = (
            not deferred and holder is not None and holder != current
        )
        if deferred:
            latency = float("inf")
        else:
            latency = line_computed_at
            if current != initiator_mss:
                latency += lat  # wired hop for the notification
            latency += lat  # wireless notification leg
            if needs_fetch:
                latency += 2 * lat  # wired fetch round trip
                plan.checkpoint_fetches += 1
            latency += lat  # wireless state download
            plan.control_messages += 1
        plan.steps.append(
            HostRecoveryStep(
                host=h,
                restart_index=index,
                record_mss=holder,
                current_mss=current,
                needs_fetch=needs_fetch,
                deferred=deferred,
                latency=latency,
            )
        )
    return plan


def _record_holder(
    system: MobileSystem, host: int, index: int
) -> Optional[int]:
    """MSS holding the checkpoint (host, index); prefers an exact match,
    falls back to the first record with a greater index (the jump rule),
    then to the host's newest record anywhere."""
    first_greater: Optional[tuple[int, int]] = None
    newest: Optional[tuple[float, int]] = None
    for station in system.stations:
        if station.storage.get(host, index) is not None:
            return station.mss_id
        for rec in station.storage.records_for(host):
            if rec.index > index and (
                first_greater is None or rec.index < first_greater[0]
            ):
                first_greater = (rec.index, station.mss_id)
            if newest is None or rec.taken_at > newest[0]:
                newest = (rec.taken_at, station.mss_id)
    if first_greater is not None:
        return first_greater[1]
    return newest[1] if newest else None
