"""Trace serialization: save/load traces for sharing and offline replay.

Format: a single ``.npz`` file holding the event columns as compact
numpy arrays plus the trace header/metadata as a JSON string.  A
50k-time-unit trace (~300k events) round-trips in well under a second
and compresses to a few hundred KiB, so recorded workloads can ship
with papers or bug reports and be replayed bit-identically elsewhere.

Every file carries a SHA-256 digest over the event columns and header,
so a truncated or bit-flipped file is detected at load time
(:class:`TraceIntegrityError`) instead of silently replaying garbage --
the trace cache relies on this to treat corrupt entries as misses.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.trace import EventType, Trace, TraceEvent

#: Format version written into every file.
FORMAT_VERSION = 1


class TraceIntegrityError(ValueError):
    """A stored trace failed its checksum or structural decode.

    Raised by :func:`load_trace` when the file is truncated, bit-flipped
    or otherwise not the bytes :func:`save_trace` wrote.  Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` handlers keep
    working.
    """


class TraceDigestMissing(TraceIntegrityError):
    """A stored trace carries no column digest (pre-digest legacy file).

    Raised by ``load_trace(verify=True)`` when the file has no
    ``digest`` array at all -- distinct from a checksum *mismatch* so
    callers (the trace cache) can fall back to a structural validation
    instead of condemning every legacy file as corrupt.
    """


def _column_digest(header_json: str, columns) -> str:
    """Hex SHA-256 over the header JSON and the raw column bytes."""
    h = hashlib.sha256()
    h.update(header_json.encode("utf-8"))
    for arr in columns:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to ``path`` (npz; '.npz' appended if missing)."""
    n = len(trace.events)
    time = np.empty(n, dtype=np.float64)
    etype = np.empty(n, dtype=np.int8)
    host = np.empty(n, dtype=np.int32)
    msg_id = np.empty(n, dtype=np.int64)
    peer = np.empty(n, dtype=np.int32)
    cell = np.empty(n, dtype=np.int32)
    for i, ev in enumerate(trace.events):
        time[i] = ev.time
        etype[i] = int(ev.etype)
        host[i] = ev.host
        msg_id[i] = ev.msg_id
        peer[i] = ev.peer
        cell[i] = ev.cell
    header = {
        "format_version": FORMAT_VERSION,
        "n_hosts": trace.n_hosts,
        "n_mss": trace.n_mss,
        "sim_time": trace.sim_time,
        "meta": trace.meta,
    }
    header_json = json.dumps(header)
    digest = _column_digest(
        header_json, (time, etype, host, msg_id, peer, cell)
    )
    np.savez_compressed(
        str(path),
        header=np.frombuffer(header_json.encode("utf-8"), dtype=np.uint8),
        digest=np.frombuffer(digest.encode("ascii"), dtype=np.uint8),
        time=time,
        etype=etype,
        host=host,
        msg_id=msg_id,
        peer=peer,
        cell=cell,
    )


def load_trace(
    path: Union[str, Path], validate: bool = True, verify: bool = False
) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises ``ValueError`` on unknown format versions; validates the
    trace structurally unless ``validate=False``.  ``verify=True``
    additionally recomputes the stored SHA-256 column digest and raises
    :class:`TraceIntegrityError` on mismatch (a file written before the
    digest existed raises the :class:`TraceDigestMissing` subclass so
    callers can tell "legacy" from "damaged"); any undecodable file --
    truncated zip, garbage bytes, missing arrays -- is reported as a
    :class:`TraceIntegrityError` as well.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        trace = _load_trace_inner(path, verify=verify)
    except TraceIntegrityError:
        raise
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        struct.error,
    ) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceIntegrityError(
            f"cannot decode trace file {path}: {exc!r}"
        ) from exc
    return trace.validate() if validate else trace


def _load_trace_inner(path: Path, verify: bool) -> Trace:
    with np.load(path) as data:
        header_json = bytes(data["header"]).decode("utf-8")
        header = json.loads(header_json)
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version "
                f"{header.get('format_version')!r} (expected {FORMAT_VERSION})"
            )
        if verify:
            if "digest" not in data.files:
                raise TraceDigestMissing(
                    f"trace file {path} has no stored digest (written "
                    f"before checksums existed) and cannot be verified"
                )
            columns = tuple(
                data[name]
                for name in ("time", "etype", "host", "msg_id", "peer", "cell")
            )
            stored = bytes(data["digest"]).decode("ascii")
            computed = _column_digest(header_json, columns)
            if stored != computed:
                raise TraceIntegrityError(
                    f"trace file {path} failed checksum verification "
                    f"(stored {stored!r}, computed {computed[:16]}...)"
                )
        events = [
            TraceEvent(
                time=float(t),
                etype=EventType(int(e)),
                host=int(h),
                msg_id=int(m),
                peer=int(p),
                cell=int(c),
            )
            for t, e, h, m, p, c in zip(
                data["time"],
                data["etype"],
                data["host"],
                data["msg_id"],
                data["peer"],
                data["cell"],
            )
        ]
    return Trace(
        n_hosts=int(header["n_hosts"]),
        n_mss=int(header["n_mss"]),
        events=events,
        sim_time=float(header["sim_time"]),
        meta=dict(header["meta"]),
    )
