"""Trace serialization: save/load traces for sharing and offline replay.

Format: a single ``.npz`` file holding the event columns as compact
numpy arrays plus the trace header/metadata as a JSON string.  A
50k-time-unit trace (~300k events) round-trips in well under a second
and compresses to a few hundred KiB, so recorded workloads can ship
with papers or bug reports and be replayed bit-identically elsewhere.

Every file carries a SHA-256 digest over the event columns and header,
so a truncated or bit-flipped file is detected at load time
(:class:`TraceIntegrityError`) instead of silently replaying garbage --
the trace cache relies on this to treat corrupt entries as misses.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.compiled import FLOAT_DTYPE, INT_DTYPE, ArrayColumns
from repro.core.trace import EventType, Trace, TraceEvent

#: Format version written into every file.  v2 stores the *compiled*
#: columns (pinned ``int64``/``float64`` dtypes, plus the dense message
#: ``slot`` column and the send/receive counts in the header) so a load
#: feeds the vectorized engine natively -- no list round-trip, no
#: re-matching of sends to receives.  v1 files are still read.
FORMAT_VERSION = 2


class TraceIntegrityError(ValueError):
    """A stored trace failed its checksum or structural decode.

    Raised by :func:`load_trace` when the file is truncated, bit-flipped
    or otherwise not the bytes :func:`save_trace` wrote.  Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` handlers keep
    working.
    """


class TraceDigestMissing(TraceIntegrityError):
    """A stored trace carries no column digest (pre-digest legacy file).

    Raised by ``load_trace(verify=True)`` when the file has no
    ``digest`` array at all -- distinct from a checksum *mismatch* so
    callers (the trace cache) can fall back to a structural validation
    instead of condemning every legacy file as corrupt.
    """


def _column_digest(header_json: str, columns) -> str:
    """Hex SHA-256 over the header JSON and the raw column bytes."""
    h = hashlib.sha256()
    h.update(header_json.encode("utf-8"))
    for arr in columns:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to ``path`` (npz; '.npz' appended if missing).

    Columns come from the compiled view -- one lowering shared with
    replay (cached on the trace), dtypes pinned to ``int64`` /
    ``float64`` so the stored bytes are platform-independent and the
    digest is stable.
    """
    from repro.core.compiled import array_columns

    cols = array_columns(trace)
    header = {
        "format_version": FORMAT_VERSION,
        "n_hosts": trace.n_hosts,
        "n_mss": trace.n_mss,
        "sim_time": trace.sim_time,
        "n_sends": cols.n_sends,
        "n_receives": cols.n_receives,
        "meta": trace.meta,
    }
    header_json = json.dumps(header)
    columns = (
        cols.time,
        cols.etype,
        cols.host,
        cols.msg_id,
        cols.peer,
        cols.cell,
        cols.slot,
    )
    digest = _column_digest(header_json, columns)
    np.savez_compressed(
        str(path),
        header=np.frombuffer(header_json.encode("utf-8"), dtype=np.uint8),
        digest=np.frombuffer(digest.encode("ascii"), dtype=np.uint8),
        time=cols.time,
        etype=cols.etype,
        host=cols.host,
        msg_id=cols.msg_id,
        peer=cols.peer,
        cell=cols.cell,
        slot=cols.slot,
    )


def load_trace(
    path: Union[str, Path], validate: bool = True, verify: bool = False
) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises ``ValueError`` on unknown format versions; validates the
    trace structurally unless ``validate=False``.  ``verify=True``
    additionally recomputes the stored SHA-256 column digest and raises
    :class:`TraceIntegrityError` on mismatch (a file written before the
    digest existed raises the :class:`TraceDigestMissing` subclass so
    callers can tell "legacy" from "damaged"); any undecodable file --
    truncated zip, garbage bytes, missing arrays -- is reported as a
    :class:`TraceIntegrityError` as well.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        trace = _load_trace_inner(path, verify=verify)
    except TraceIntegrityError:
        raise
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
        struct.error,
    ) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceIntegrityError(
            f"cannot decode trace file {path}: {exc!r}"
        ) from exc
    return trace.validate() if validate else trace


#: Column names per format version (digest order).
_V1_COLUMNS = ("time", "etype", "host", "msg_id", "peer", "cell")
_V2_COLUMNS = ("time", "etype", "host", "msg_id", "peer", "cell", "slot")


def _load_trace_inner(path: Path, verify: bool) -> Trace:
    with np.load(path) as data:
        header_json = bytes(data["header"]).decode("utf-8")
        header = json.loads(header_json)
        version = header.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise ValueError(
                f"unsupported trace format version {version!r} "
                f"(expected 1..{FORMAT_VERSION})"
            )
        names = _V2_COLUMNS if version >= 2 else _V1_COLUMNS
        if verify:
            if "digest" not in data.files:
                raise TraceDigestMissing(
                    f"trace file {path} has no stored digest (written "
                    f"before checksums existed) and cannot be verified"
                )
            columns = tuple(data[name] for name in names)
            stored = bytes(data["digest"]).decode("ascii")
            computed = _column_digest(header_json, columns)
            if stored != computed:
                raise TraceIntegrityError(
                    f"trace file {path} failed checksum verification "
                    f"(stored {stored!r}, computed {computed[:16]}...)"
                )
        events = [
            TraceEvent(
                time=float(t),
                etype=EventType(int(e)),
                host=int(h),
                msg_id=int(m),
                peer=int(p),
                cell=int(c),
            )
            for t, e, h, m, p, c in zip(
                data["time"],
                data["etype"],
                data["host"],
                data["msg_id"],
                data["peer"],
                data["cell"],
            )
        ]
        trace = Trace(
            n_hosts=int(header["n_hosts"]),
            n_mss=int(header["n_mss"]),
            events=events,
            sim_time=float(header["sim_time"]),
            meta=dict(header["meta"]),
        )
        if version >= 2:
            # The stored columns *are* the compiled arrays: seed the
            # per-trace cache so the vectorized engine starts from them
            # without re-lowering (or re-matching sends to receives).
            cols = ArrayColumns(
                n_hosts=trace.n_hosts,
                n_mss=trace.n_mss,
                sim_time=trace.sim_time,
                n_events=len(events),
                n_sends=int(header["n_sends"]),
                n_receives=int(header["n_receives"]),
                etype=np.asarray(data["etype"], dtype=INT_DTYPE),
                time=np.asarray(data["time"], dtype=FLOAT_DTYPE),
                host=np.asarray(data["host"], dtype=INT_DTYPE),
                msg_id=np.asarray(data["msg_id"], dtype=INT_DTYPE),
                peer=np.asarray(data["peer"], dtype=INT_DTYPE),
                cell=np.asarray(data["cell"], dtype=INT_DTYPE),
                slot=np.asarray(data["slot"], dtype=INT_DTYPE),
            )
            trace._array_columns_cache = (len(events), cols)
    return trace
