"""Trace serialization: save/load traces for sharing and offline replay.

Format: a single ``.npz`` file holding the event columns as compact
numpy arrays plus the trace header/metadata as a JSON string.  A
50k-time-unit trace (~300k events) round-trips in well under a second
and compresses to a few hundred KiB, so recorded workloads can ship
with papers or bug reports and be replayed bit-identically elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.trace import EventType, Trace, TraceEvent

#: Format version written into every file.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to ``path`` (npz; '.npz' appended if missing)."""
    n = len(trace.events)
    time = np.empty(n, dtype=np.float64)
    etype = np.empty(n, dtype=np.int8)
    host = np.empty(n, dtype=np.int32)
    msg_id = np.empty(n, dtype=np.int64)
    peer = np.empty(n, dtype=np.int32)
    cell = np.empty(n, dtype=np.int32)
    for i, ev in enumerate(trace.events):
        time[i] = ev.time
        etype[i] = int(ev.etype)
        host[i] = ev.host
        msg_id[i] = ev.msg_id
        peer[i] = ev.peer
        cell[i] = ev.cell
    header = {
        "format_version": FORMAT_VERSION,
        "n_hosts": trace.n_hosts,
        "n_mss": trace.n_mss,
        "sim_time": trace.sim_time,
        "meta": trace.meta,
    }
    np.savez_compressed(
        str(path),
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        time=time,
        etype=etype,
        host=host,
        msg_id=msg_id,
        peer=peer,
        cell=cell,
    )


def load_trace(path: Union[str, Path], validate: bool = True) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises ``ValueError`` on unknown format versions; validates the
    trace structurally unless ``validate=False``.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version "
                f"{header.get('format_version')!r} (expected {FORMAT_VERSION})"
            )
        events = [
            TraceEvent(
                time=float(t),
                etype=EventType(int(e)),
                host=int(h),
                msg_id=int(m),
                peer=int(p),
                cell=int(c),
            )
            for t, e, h, m, p, c in zip(
                data["time"],
                data["etype"],
                data["host"],
                data["msg_id"],
                data["peer"],
                data["cell"],
            )
        ]
    trace = Trace(
        n_hosts=int(header["n_hosts"]),
        n_mss=int(header["n_mss"]),
        events=events,
        sim_time=float(header["sim_time"]),
        meta=dict(header["meta"]),
    )
    return trace.validate() if validate else trace
